//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the subset of proptest the workspace's property tests use: the
//! [`Strategy`] trait (`prop_map`, `prop_recursive`, `boxed`), range and
//! tuple strategies, [`Just`], `prop_oneof!`, `prop::sample::select`,
//! `option::of`, `any::<T>()`, the `proptest!` test macro with
//! [`ProptestConfig`], and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: inputs are drawn from a fixed seed per test
//! (deterministic runs), and failing cases are reported without
//! shrinking. That is sufficient for this repo's CI role: the tests
//! assert exact algebraic invariants where any counterexample is small
//! and directly printable.
#![warn(missing_docs)]

use std::rc::Rc;

pub use rand::{Rng, SeedableRng};

/// The generator threaded through strategies.
pub type TestRng = rand::StdRng;

/// Why a test case did not pass: a hard failure or a rejected input
/// (`prop_assume!`).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure — the property is violated.
    Fail(String),
    /// Input rejected by `prop_assume!`; draw another.
    Reject(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail<S: Into<String>>(msg: S) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject<S: Into<String>>(msg: S) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
    /// Maximum rejected draws before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted inputs.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65536,
        }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The produced type.
    type Value;

    /// Draw one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map the produced value.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        let inner = self;
        BoxedStrategy::new(move |rng| f(inner.gen_value(rng)))
    }

    /// Build a recursive strategy: `depth` levels of `expand` applied on
    /// top of `self` as the leaf (the `desired_size`/`expected_branch`
    /// hints are accepted for signature compatibility and ignored).
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.clone().boxed();
        let mut cur = self.boxed();
        for _ in 0..depth {
            let deeper = expand(cur).boxed();
            let leaf = leaf.clone();
            // mix leaves back in so sizes vary below the maximum depth
            cur = BoxedStrategy::new(move |rng| {
                if rng.gen_bool(0.33) {
                    leaf.gen_value(rng)
                } else {
                    deeper.gen_value(rng)
                }
            });
        }
        cur
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy::new(move |rng| inner.gen_value(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> BoxedStrategy<T> {
    /// Wrap a draw function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::new(f))
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized + 'static {
    /// The canonical strategy.
    fn arbitrary() -> BoxedStrategy<Self>;
}

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        BoxedStrategy::new(|rng| rng.gen::<bool>())
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<$t> {
                BoxedStrategy::new(|rng| rng.gen::<$t>())
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

/// `Option` strategies, mirroring `proptest::option`.
pub mod option {
    use super::{BoxedStrategy, Strategy};
    use rand::Rng as _;

    /// Produce `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy + 'static>(inner: S) -> BoxedStrategy<Option<S::Value>> {
        BoxedStrategy::new(move |rng| {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(inner.gen_value(rng))
            }
        })
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{BoxedStrategy, Strategy};
    use rand::Rng as _;

    /// A `Vec` of `inner` draws with length drawn from `len`.
    pub fn vec<S: Strategy + 'static>(
        inner: S,
        len: core::ops::Range<usize>,
    ) -> BoxedStrategy<Vec<S::Value>> {
        assert!(!len.is_empty(), "collection::vec: empty length range");
        BoxedStrategy::new(move |rng| {
            let n = rng.gen_range(len.clone());
            (0..n).map(|_| inner.gen_value(rng)).collect()
        })
    }
}

/// `bool` strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::BoxedStrategy;
    use rand::Rng as _;

    /// A uniformly random boolean (`proptest::bool::ANY` is a unit
    /// struct upstream; a function-backed constant serves the same
    /// call sites here).
    pub fn any() -> BoxedStrategy<bool> {
        BoxedStrategy::new(|rng| rng.gen::<bool>())
    }
}

/// Sampling strategies, mirroring `proptest::sample`.
pub mod sample {
    use super::BoxedStrategy;
    use rand::Rng as _;

    /// Pick uniformly from the given values.
    pub fn select<T: Clone + 'static>(values: Vec<T>) -> BoxedStrategy<T> {
        assert!(!values.is_empty(), "select: empty choice set");
        BoxedStrategy::new(move |rng| values[rng.gen_range(0..values.len())].clone())
    }
}

/// Union of equally weighted strategies — the engine behind `prop_oneof!`.
pub fn union<T: 'static>(choices: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!choices.is_empty(), "prop_oneof: no choices");
    BoxedStrategy::new(move |rng| choices[rng.gen_range(0..choices.len())].gen_value(rng))
}

/// Driver used by the `proptest!` macro expansion. Runs `body` on fresh
/// draws until `config.cases` accepted cases pass, panicking on the
/// first failure.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    // stable per-test seed so failures reproduce
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut rng = TestRng::seed_from_u64(seed);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        match body(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "{test_name}: gave up after {rejected} rejected inputs \
                         ({accepted} accepted)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: property failed at case {accepted}: {msg}")
            }
        }
    }
}

/// Everything the tests import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
    /// Module alias so `prop::sample::select` / `prop::option::of` work.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Equal-weight choice between strategies. Entries may carry an ignored
/// `weight =>` prefix like upstream.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assert inside a `proptest!` body (early-returns a failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?}): {}",
            stringify!($a), stringify!($b), a, b, format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}` (both: {:?}): {}",
            stringify!($a), stringify!($b), a, format!($($fmt)*)
        );
    }};
}

/// Reject the current input (draw another) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The property-test definition macro. Supports the forms used in this
/// workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(200))]
///     #[test]
///     fn my_prop(x in 0i64..10, y in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $(let $arg = $crate::Strategy::boxed($strat);)+
            let strategies = ($($arg,)+);
            $crate::run_cases(stringify!($name), &config, |rng| {
                let ($($arg,)+) = &strategies;
                $(let $arg = $crate::Strategy::gen_value($arg, rng);)+
                $body
                #[allow(unreachable_code)]
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::SeedableRng;

    fn arb_small() -> impl Strategy<Value = i64> {
        prop_oneof![0i64..10, (100i64..110).prop_map(|x| x - 100)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -5i64..5, y in arb_small()) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((0..10).contains(&y));
        }

        #[test]
        fn assume_rejects(x in 0i64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn tuples_and_just(pair in (0i64..4, Just(7i64)), flag in any::<bool>()) {
            prop_assert_eq!(pair.1, 7);
            prop_assert_ne!(pair.0, 99);
            let _ = flag;
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic() {
        crate::run_cases("failures_panic", &ProptestConfig::with_cases(5), |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0i64..10).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::TestRng::seed_from_u64(1);
        for _ in 0..200 {
            assert!(depth(&strat.gen_value(&mut rng)) <= 3);
        }
    }
}
