//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the benchmark-harness API surface the workspace's benches use:
//! [`Criterion`] with `sample_size` / `measurement_time` / `warm_up_time`
//! builders, [`BenchmarkId`], benchmark groups, `bench_function` /
//! `bench_with_input`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark warms up for `warm_up_time`, then
//! runs `sample_size` samples, each timing one closure invocation, until
//! `measurement_time` is exhausted (whichever comes first, but always at
//! least three samples). The harness reports min/mean/max per-iteration
//! wall time on stdout. No statistical analysis, plots, or baselines —
//! the repo's EXPERIMENTS.md numbers come from the JSON reports the
//! benches write themselves.
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The display name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Times the benchmark body.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    budget: Duration,
    sample_size: usize,
    warm_up: Duration,
}

impl Bencher<'_> {
    /// Run `body` repeatedly, timing each invocation.
    pub fn iter<R>(&mut self, mut body: impl FnMut() -> R) {
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            black_box(body());
        }
        let started = Instant::now();
        while self.samples.len() < self.sample_size {
            let t0 = Instant::now();
            black_box(body());
            self.samples.push(t0.elapsed());
            if self.samples.len() >= 3 && started.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// The benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// Wall-clock budget for one benchmark's samples.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up running time before sampling starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(self, id.into_name(), f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

fn run_one(config: &Criterion, name: String, mut f: impl FnMut(&mut Bencher)) {
    let mut samples: Vec<Duration> = Vec::with_capacity(config.sample_size);
    let mut b = Bencher {
        samples: &mut samples,
        budget: config.measurement_time,
        sample_size: config.sample_size,
        warm_up: config.warm_up_time,
    };
    f(&mut b);
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().unwrap();
    let max = *samples.iter().max().unwrap();
    println!(
        "{name:<48} time: [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        samples.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_name());
        run_one(self.criterion, full, f);
        self
    }

    /// Run one benchmark receiving a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_name());
        run_one(self.criterion, full, |b| f(b, input));
        self
    }

    /// Override the sample count for the rest of the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(3);
        self
    }

    /// Override the measurement budget for the rest of the group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Finish the group (printing is immediate; this is a no-op kept for
    /// API compatibility).
    pub fn finish(&mut self) {}
}

/// Declare a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs >= 5, "body ran {runs} times");
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7i64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_function(BenchmarkId::from_parameter(3), |b| b.iter(|| black_box(3)));
        group.finish();
    }
}
