//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *tiny* slice of the `rand 0.8` API its tests and benches
//! actually call: a seedable deterministic generator (`StdRng`), the
//! [`Rng`] extension methods `gen`, `gen_range`, `gen_bool`, and the
//! [`SeedableRng::seed_from_u64`] constructor. The generator is a
//! xoshiro256++ seeded through SplitMix64 — statistically fine for test
//! input generation, with no claim of compatibility with upstream
//! `rand`'s stream (tests here only require determinism, not identical
//! sequences).
#![warn(missing_docs)]

/// Common generator types, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// A deterministic xoshiro256++ generator, stand-in for `rand::rngs::StdRng`.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl StdRng {
    fn next_u64_impl(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw(rng: &mut StdRng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut StdRng) -> $t {
                rng.next_u64_impl() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut StdRng) -> bool {
        rng.next_u64_impl() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut StdRng) -> f64 {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64_impl() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Half-open ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64_impl() as u128) << 64 | rng.next_u64_impl() as u128)
                    % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64_impl() as u128) << 64 | rng.next_u64_impl() as u128)
                    % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator methods, mirroring `rand::Rng`.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draw a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: AsStdRng,
    {
        T::draw(self.as_std_rng())
    }

    /// Draw uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: AsStdRng,
    {
        range.sample(self.as_std_rng())
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: AsStdRng,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::draw(self.as_std_rng()) < p
    }
}

/// Helper giving the blanket [`Rng`] methods access to the concrete
/// generator state.
pub trait AsStdRng {
    /// The underlying generator.
    fn as_std_rng(&mut self) -> &mut StdRng;
}

impl AsStdRng for StdRng {
    fn as_std_rng(&mut self) -> &mut StdRng {
        self
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: i64 = a.gen_range(-50..50);
            assert_eq!(x, b.gen_range(-50..50));
            assert!((-50..50).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(7);
        let mut trues = 0;
        for _ in 0..1000 {
            if c.gen_bool(0.3) {
                trues += 1;
            }
        }
        assert!(
            (200..400).contains(&trues),
            "gen_bool(0.3) gave {trues}/1000"
        );
        let _: u8 = c.gen();
        let f: f64 = c.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
