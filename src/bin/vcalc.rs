//! `vcalc` — the V-cal compiler driver.
//!
//! Reads a program in the miniature imperative language and a *separate*
//! decomposition specification, then prints the V-cal form, the SPMD
//! plan, and generated node programs — and can execute the program on
//! the simulated distributed machine, verifying against the sequential
//! reference.
//!
//! ```text
//! vcalc <program> <spec> [--emit vcal|plan|shared|dist|dist-closed|derivation]
//!                        [--run] [--naive] [--node <p>]
//! ```
//!
//! Example files are under `examples/vcalc/`.

use std::collections::BTreeMap;
use std::process::ExitCode;
use vcal_suite::core::{Array, Env};
use vcal_suite::lang;
use vcal_suite::machine::{run_distributed, DistArray, DistOptions};
use vcal_suite::spmd::{emit, SpmdPlan};

struct Options {
    program_path: String,
    spec_path: String,
    emits: Vec<String>,
    run: bool,
    naive: bool,
    advise: bool,
    node: i64,
}

fn usage() -> &'static str {
    "usage: vcalc <program> <spec> [--emit vcal|plan|shared|dist|dist-closed|derivation]... \
     [--run] [--naive] [--advise] [--node <p>]"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut positional = Vec::new();
    let mut emits = Vec::new();
    let mut run = false;
    let mut naive = false;
    let mut advise = false;
    let mut node = 0i64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--emit" => {
                let v = it.next().ok_or("--emit needs a value")?;
                emits.push(v.clone());
            }
            "--run" => run = true,
            "--naive" => naive = true,
            "--advise" => advise = true,
            "--node" => {
                node = it
                    .next()
                    .ok_or("--node needs a value")?
                    .parse()
                    .map_err(|_| "--node needs an integer")?;
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other if !other.starts_with('-') => positional.push(other.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if positional.len() != 2 {
        return Err(usage().to_string());
    }
    if emits.is_empty() && !run && !advise {
        emits.push("vcal".into());
        emits.push("plan".into());
    }
    Ok(Options {
        program_path: positional[0].clone(),
        spec_path: positional[1].clone(),
        emits,
        run,
        naive,
        advise,
        node,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match drive(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("vcalc: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn drive(opts: &Options) -> Result<(), String> {
    let program_src = std::fs::read_to_string(&opts.program_path)
        .map_err(|e| format!("cannot read {}: {e}", opts.program_path))?;
    let spec_src = std::fs::read_to_string(&opts.spec_path)
        .map_err(|e| format!("cannot read {}: {e}", opts.spec_path))?;

    let clauses = lang::compile(&program_src).map_err(|e| e.to_string())?;
    let spec = lang::parse_spec(&spec_src).map_err(|e| e.to_string())?;

    println!(
        "compiled {} clause(s) for {} processors\n",
        clauses.len(),
        spec.pmax
    );

    if opts.advise {
        let mut extents = BTreeMap::new();
        for (name, dec) in &spec.decomps {
            extents.insert(name.clone(), dec.extent());
        }
        let ranked = vcal_suite::spmd::advise(
            &clauses,
            &extents,
            spec.pmax,
            vcal_suite::spmd::AdvisorOptions::default(),
        )?;
        println!("decomposition advisor (best first):");
        for c in ranked.iter().take(5) {
            println!("  {}", vcal_suite::spmd::advisor::describe(c));
        }
        println!();
    }

    for (n, clause) in clauses.iter().enumerate() {
        println!("--- clause {n} ---");
        let plan = if opts.naive {
            SpmdPlan::build_naive(clause, &spec.decomps)
        } else {
            SpmdPlan::build(clause, &spec.decomps)
        }
        .map_err(|e| format!("clause {n}: {e}"))?;

        for e in &opts.emits {
            match e.as_str() {
                "vcal" => println!("{}\n", lang::to_vcal(clause)),
                "plan" => println!("{}", emit::plan_report(&plan)),
                "shared" => println!("{}", emit::emit_shared_node(&plan, opts.node)),
                "dist" => println!("{}", emit::emit_distributed_node(&plan, opts.node)),
                "dist-closed" => {
                    println!("{}", emit::emit_distributed_node_closed(&plan, opts.node))
                }
                "derivation" => {
                    println!(
                        "{}",
                        vcal_suite::spmd::derive(clause, &spec.decomps)
                            .map_err(|e| format!("clause {n}: {e}"))?
                    )
                }
                other => return Err(format!("unknown emit target `{other}`\n{}", usage())),
            }
        }

        if opts.run {
            run_and_verify(clause, &plan, &spec.decomps)?;
        }
    }
    Ok(())
}

/// Execute on the distributed machine with deterministic ramp-initialized
/// arrays and verify against the sequential reference.
fn run_and_verify(
    clause: &vcal_suite::core::Clause,
    plan: &SpmdPlan,
    decomps: &vcal_suite::spmd::DecompMap,
) -> Result<(), String> {
    let mut env = Env::new();
    let mut names: Vec<&str> = vec![clause.lhs.array.as_str()];
    for r in clause.read_refs() {
        if !names.contains(&r.array.as_str()) {
            names.push(&r.array);
        }
    }
    for name in &names {
        let dec = decomps
            .get(*name)
            .ok_or_else(|| format!("array `{name}` missing from the spec"))?;
        // deterministic mixed-sign initial data so guards fire both ways
        env.insert(
            name.to_string(),
            Array::from_fn(dec.extent(), |i| {
                let v = i.scalar();
                if v % 3 == 0 {
                    -(v as f64)
                } else {
                    v as f64 * 0.5
                }
            }),
        );
    }

    let mut reference = env.clone();
    reference.exec_clause(clause);

    let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
    for name in &names {
        arrays.insert(
            name.to_string(),
            DistArray::scatter_from(env.get(name).unwrap(), decomps[*name].clone()),
        );
    }
    let report = run_distributed(plan, clause, &mut arrays, DistOptions::default())
        .map_err(|e| e.to_string())?;
    let diff = arrays[&clause.lhs.array]
        .gather()
        .max_abs_diff(reference.get(&clause.lhs.array).unwrap());
    if diff != 0.0 {
        return Err(format!("VERIFICATION FAILED: max |diff| = {diff}"));
    }
    let t = report.total();
    println!(
        "run: OK — {} iterations over {} nodes, {} messages, {} local reads; \
         result identical to the sequential reference\n",
        t.iterations,
        report.nodes.len(),
        t.msgs_sent,
        t.local_reads
    );
    Ok(())
}
