//! `vcalc` — the V-cal compiler driver.
//!
//! Reads a program in the miniature imperative language and a *separate*
//! decomposition specification, then prints the V-cal form, the SPMD
//! plan, and generated node programs — and can execute the program on
//! the simulated distributed machine, verifying against the sequential
//! reference.
//!
//! ```text
//! vcalc <program> <spec> [--emit vcal|plan|shared|dist|dist-closed|derivation]
//!                        [--run] [--steps <N>] [--naive] [--node <p>]
//!                        [--overlap on|off] [--simd auto|on|off]
//!                        [--schedule seq|dag]
//!                        [--trace] [--trace-out <path>]
//! ```
//!
//! `--overlap off` disables the interior/boundary split of the compiled
//! kernel path (DESIGN.md §13): every run then waits for its receives
//! in visit order. Results are bit-identical either way.
//!
//! `--simd` selects the lane execution tier for fused interior runs
//! (DESIGN.md §14): `auto` (default) uses AVX2 where detected, `on`
//! forces the portable chunk loops, `off` keeps the scalar per-element
//! baseline. Results are bit-identical under every setting; `--trace`
//! prints the SIMD census next to the interior/boundary census.
//!
//! `--trace` executes each clause under a collecting tracer: the
//! enumeration-dispatch counts, per-phase wall-clock timings (next to
//! the `perfmodel` prediction), and the replay-checker verdict are
//! printed, and `--trace-out` writes the deterministic JSONL event log.
//!
//! `--steps <N>` executes the whole program as an `N`-iteration timestep
//! loop through a steady-state [`DistSession`]: plans are cached, node
//! threads persist across steps, and the printed cache statistics show
//! that only the first step paid for planning (DESIGN.md §12).
//!
//! `--schedule` runs the whole program through the program-level
//! scheduler (DESIGN.md §16): `seq` executes the clauses in strict
//! program order (the oracle), `dag` analyses the clause dependence DAG
//! and dispatches independent clauses concurrently as waves on the
//! persistent pool. Results are bit-identical either way; the DAG shape
//! (waves, edges, width) is printed after the run.
//!
//! Example files are under `examples/vcalc/`.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Duration;
use vcal_suite::core::{Array, Env};
use vcal_suite::lang;
use vcal_suite::machine::{
    build_dag, replay_check, replay_check_dag, run_distributed, run_distributed_traced,
    worker_entry_with, CollectingTracer, DistArray, DistOptions, DistSession, PerfModel,
    ProgramStep, ScheduleMode, ServeClient, ServeConfig, ServeHandle, ServeRequest, SimdPolicy,
    TransportKind, TuneOptions, NULL_TRACER,
};
use vcal_suite::spmd::{emit, PlanSummary, SpmdPlan};

struct Options {
    program_path: String,
    spec_path: String,
    emits: Vec<String>,
    run: bool,
    steps: u64,
    naive: bool,
    advise: bool,
    autotune: bool,
    tune_budget: usize,
    retune_every: Option<u64>,
    node: i64,
    overlap: bool,
    simd: SimdPolicy,
    transport: TransportKind,
    schedule: Option<ScheduleMode>,
    trace: bool,
    trace_out: Option<String>,
}

fn usage() -> &'static str {
    "usage: vcalc <program> <spec> [--emit vcal|plan|shared|dist|dist-closed|derivation]... \
     [--run] [--steps <N>] [--naive] [--advise] [--autotune] [--tune-budget <K>] \
     [--node <p>] [--overlap on|off] \
     [--simd auto|on|off] [--transport inproc|uds|tcp] [--schedule seq|dag] \
     [--trace] [--trace-out <path>]\n\
     \n\
     --autotune runs the --steps loop with the cost-driven decomposition\n\
     auto-tuner in the loop: the first steps are profiled, the measured\n\
     timings calibrate the Section 4 cost model, every candidate layout is\n\
     priced from its plans alone, and a mid-loop redistribution is inserted\n\
     when switching is predicted to pay for itself over the remaining steps.\n\
     --tune-budget caps the candidates priced (default 16). Results stay\n\
     bit-identical to the untuned loop.\n\
     --transport selects the execution backend: `inproc` (default) runs the\n\
     nodes as threads over channels; `uds` and `tcp` run each node as a real\n\
     worker OS process speaking the framed wire protocol over Unix-domain or\n\
     loopback TCP sockets. Results are bit-identical on every backend.\n\
     --schedule runs the whole program through the program-level scheduler:\n\
     `seq` keeps strict program order, `dag` dispatches independent clauses\n\
     concurrently as dependence-DAG waves. Results are bit-identical.\n\
     --retune-every <N> re-profiles and re-tunes the --autotune loop every N\n\
     steps instead of tuning once up front.\n\
     \n\
     vcalc serve [--transport uds|tcp] [--pool inproc|uds|tcp]\n\
                 [--concurrency <N>] [--queue <N>] [--deadline-ms <N>]\n\
                 [--cache-entries <N>] [--cache-bytes <N>] [--cold]\n\
     starts the resident multi-session service (DESIGN.md §18): prints the\n\
     dial address, then serves concurrent client sessions off one shared\n\
     plan/DAG/tune cache hierarchy and one persistent worker pool.\n\
     \n\
     vcalc request <program> <spec> --connect <addr> [--tenant <name>]\n\
                 [--steps <N>] [--schedule seq|dag] [--autotune]\n\
                 [--tune-budget <K>] [--retune-every <N>] [--deadline-ms <N>]\n\
     compiles the program locally, submits it to a running service, and\n\
     verifies the response bit-exactly against the sequential reference.\n\
     (vcalc worker <addr> <node> <pmax> [hb_ms] is the internal worker entry.)"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut positional = Vec::new();
    let mut emits = Vec::new();
    let mut run = false;
    let mut steps = 1u64;
    let mut naive = false;
    let mut advise = false;
    let mut autotune = false;
    let mut tune_budget = 16usize;
    let mut retune_every = None;
    let mut node = 0i64;
    let mut overlap = true;
    let mut simd = SimdPolicy::default();
    let mut transport = TransportKind::default();
    let mut schedule = None;
    let mut trace = false;
    let mut trace_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--emit" => {
                let v = it.next().ok_or("--emit needs a value")?;
                emits.push(v.clone());
            }
            "--run" => run = true,
            "--steps" => {
                steps = it
                    .next()
                    .ok_or("--steps needs a value")?
                    .parse()
                    .map_err(|_| "--steps needs a positive integer")?;
                if steps == 0 {
                    return Err("--steps needs a positive integer".into());
                }
                run = true; // a timestep loop is a kind of execution
            }
            "--naive" => naive = true,
            "--advise" => advise = true,
            "--autotune" => {
                autotune = true;
                run = true; // tuning is a property of an execution
            }
            "--tune-budget" => {
                tune_budget = it
                    .next()
                    .ok_or("--tune-budget needs a value")?
                    .parse()
                    .map_err(|_| "--tune-budget needs a positive integer")?;
                if tune_budget == 0 {
                    return Err("--tune-budget needs a positive integer".into());
                }
                autotune = true;
                run = true;
            }
            "--retune-every" => {
                let n: u64 = it
                    .next()
                    .ok_or("--retune-every needs a value")?
                    .parse()
                    .map_err(|_| "--retune-every needs a positive integer")?;
                if n == 0 {
                    return Err("--retune-every needs a positive integer".into());
                }
                retune_every = Some(n);
                autotune = true;
                run = true;
            }
            "--node" => {
                node = it
                    .next()
                    .ok_or("--node needs a value")?
                    .parse()
                    .map_err(|_| "--node needs an integer")?;
            }
            "--overlap" => {
                overlap = match it.next().map(String::as_str) {
                    Some("on") => true,
                    Some("off") => false,
                    _ => return Err("--overlap needs `on` or `off`".into()),
                };
            }
            "--simd" => {
                simd = it
                    .next()
                    .and_then(|v| SimdPolicy::parse(v))
                    .ok_or("--simd needs `auto`, `on` or `off`")?;
            }
            "--transport" => {
                transport = it
                    .next()
                    .and_then(|v| TransportKind::parse(v))
                    .ok_or("--transport needs `inproc`, `uds` or `tcp`")?;
            }
            "--schedule" => {
                schedule = match it.next().map(String::as_str) {
                    Some("seq") => Some(ScheduleMode::Seq),
                    Some("dag") => Some(ScheduleMode::Dag),
                    _ => return Err("--schedule needs `seq` or `dag`".into()),
                };
                run = true; // a scheduled program is a kind of execution
            }
            "--trace" => trace = true,
            "--trace-out" => {
                trace = true;
                trace_out = Some(it.next().ok_or("--trace-out needs a path")?.clone());
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other if !other.starts_with('-') => positional.push(other.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if positional.len() != 2 {
        return Err(usage().to_string());
    }
    if trace {
        run = true; // tracing is a property of an execution
    }
    if emits.is_empty() && !run && !advise {
        emits.push("vcal".into());
        emits.push("plan".into());
    }
    if steps > 1 && naive {
        return Err("--naive is a cold-path flag; the --steps loop always runs optimized".into());
    }
    if schedule.is_some() && naive {
        return Err("--naive is a cold-path flag; --schedule always runs optimized".into());
    }
    if autotune && naive {
        return Err("--naive is a cold-path flag; --autotune always runs optimized".into());
    }
    Ok(Options {
        program_path: positional[0].clone(),
        spec_path: positional[1].clone(),
        emits,
        run,
        steps,
        naive,
        advise,
        autotune,
        tune_budget,
        retune_every,
        node,
        overlap,
        simd,
        transport,
        schedule,
        trace,
        trace_out,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // internal: `vcalc worker <addr> <node> <pmax> [hb_ms]` is the entry
    // point the socket backends spawn for each node process
    if args.first().map(String::as_str) == Some("worker") {
        return match worker_args(&args[1..])
            .and_then(|(addr, node, pmax, hb)| worker_entry_with(&addr, node, pmax, hb))
        {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("vcalc worker: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("serve") {
        return match serve_args(&args[1..]).and_then(run_serve) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("vcalc serve: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("request") {
        return match request_args(&args[1..]).and_then(|o| run_request_cmd(&o)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("vcalc request: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match drive(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("vcalc: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn worker_args(rest: &[String]) -> Result<(String, i64, usize, Duration), String> {
    if rest.len() != 3 && rest.len() != 4 {
        return Err("usage: vcalc worker <addr> <node> <pmax> [hb_ms]".into());
    }
    let node = rest[1]
        .parse::<i64>()
        .map_err(|_| "worker <node> must be an integer".to_string())?;
    let pmax = rest[2]
        .parse::<usize>()
        .map_err(|_| "worker <pmax> must be a non-negative integer".to_string())?;
    let hb = match rest.get(3) {
        None => Duration::ZERO, // keep the built-in default interval
        Some(ms) => Duration::from_millis(
            ms.parse::<u64>()
                .map_err(|_| "worker [hb_ms] must be a non-negative integer".to_string())?,
        ),
    };
    Ok((rest[0].clone(), node, pmax, hb))
}

/// Parse `vcalc serve` flags into a [`ServeConfig`].
fn serve_args(rest: &[String]) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig::default();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--transport" => {
                cfg.listen = it
                    .next()
                    .and_then(|v| TransportKind::parse(v))
                    .filter(|k| *k != TransportKind::InProc)
                    .ok_or("--transport needs `uds` or `tcp`")?;
            }
            "--pool" => {
                cfg.opts.transport = it
                    .next()
                    .and_then(|v| TransportKind::parse(v))
                    .ok_or("--pool needs `inproc`, `uds` or `tcp`")?;
            }
            "--concurrency" => {
                cfg.concurrency = parse_pos(it.next(), "--concurrency")?;
            }
            "--queue" => {
                cfg.queue_depth = it
                    .next()
                    .ok_or("--queue needs a value")?
                    .parse()
                    .map_err(|_| "--queue needs a non-negative integer")?;
            }
            "--deadline-ms" => {
                cfg.default_deadline =
                    Duration::from_millis(parse_pos(it.next(), "--deadline-ms")? as u64);
            }
            "--cache-entries" => {
                cfg.cache_budget.max_entries = parse_pos(it.next(), "--cache-entries")?;
            }
            "--cache-bytes" => {
                cfg.cache_budget.max_bytes = parse_pos(it.next(), "--cache-bytes")?;
            }
            "--cold" => cfg.cold = true,
            other => return Err(format!("unknown serve flag `{other}`\n{}", usage())),
        }
    }
    Ok(cfg)
}

fn parse_pos(v: Option<&String>, flag: &str) -> Result<usize, String> {
    let n: usize = v
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag} needs a positive integer"))?;
    if n == 0 {
        return Err(format!("{flag} needs a positive integer"));
    }
    Ok(n)
}

/// Start the resident service and block until killed. The address line
/// is printed (and flushed) first so supervisors can scrape it.
fn run_serve(cfg: ServeConfig) -> Result<(), String> {
    let handle = ServeHandle::start(cfg).map_err(|e| e.to_string())?;
    println!("serve: listening on {}", handle.addr());
    println!(
        "serve: concurrency {}, queue {}, deadline {:?}, cache budget {} entries / {} bytes{}",
        cfg.concurrency,
        cfg.queue_depth,
        cfg.default_deadline,
        cfg.cache_budget.max_entries,
        cfg.cache_budget.max_bytes,
        if cfg.cold {
            " [cold baseline mode]"
        } else {
            ""
        }
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    // resident: the accept loop runs on background threads; park until
    // the process is killed
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

struct RequestOptions {
    program_path: String,
    spec_path: String,
    connect: String,
    tenant: String,
    steps: u64,
    schedule: ScheduleMode,
    autotune: bool,
    tune_budget: usize,
    retune_every: Option<u64>,
    deadline: Option<Duration>,
}

fn request_args(rest: &[String]) -> Result<RequestOptions, String> {
    let mut positional = Vec::new();
    let mut connect = None;
    let mut tenant = "default".to_string();
    let mut steps = 1u64;
    let mut schedule = ScheduleMode::Seq;
    let mut autotune = false;
    let mut tune_budget = 16usize;
    let mut retune_every = None;
    let mut deadline = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--connect" => connect = Some(it.next().ok_or("--connect needs an address")?.clone()),
            "--tenant" => tenant = it.next().ok_or("--tenant needs a name")?.clone(),
            "--steps" => steps = parse_pos(it.next(), "--steps")? as u64,
            "--schedule" => {
                schedule = match it.next().map(String::as_str) {
                    Some("seq") => ScheduleMode::Seq,
                    Some("dag") => ScheduleMode::Dag,
                    _ => return Err("--schedule needs `seq` or `dag`".into()),
                };
            }
            "--autotune" => autotune = true,
            "--tune-budget" => {
                tune_budget = parse_pos(it.next(), "--tune-budget")?;
                autotune = true;
            }
            "--retune-every" => {
                retune_every = Some(parse_pos(it.next(), "--retune-every")? as u64);
                autotune = true;
            }
            "--deadline-ms" => {
                deadline = Some(Duration::from_millis(
                    parse_pos(it.next(), "--deadline-ms")? as u64,
                ));
            }
            other if !other.starts_with('-') => positional.push(other.to_string()),
            other => return Err(format!("unknown request flag `{other}`\n{}", usage())),
        }
    }
    if positional.len() != 2 {
        return Err("usage: vcalc request <program> <spec> --connect <addr> [...]".into());
    }
    Ok(RequestOptions {
        program_path: positional[0].clone(),
        spec_path: positional[1].clone(),
        connect: connect.ok_or("vcalc request needs --connect <addr>")?,
        tenant,
        steps,
        schedule,
        autotune,
        tune_budget,
        retune_every,
        deadline,
    })
}

/// Compile a program locally, submit it to a running service, verify
/// the response bit-exactly against the local sequential reference, and
/// print the service-side counters.
fn run_request_cmd(opts: &RequestOptions) -> Result<(), String> {
    let program_src = std::fs::read_to_string(&opts.program_path)
        .map_err(|e| format!("cannot read {}: {e}", opts.program_path))?;
    let spec_src = std::fs::read_to_string(&opts.spec_path)
        .map_err(|e| format!("cannot read {}: {e}", opts.spec_path))?;
    let clauses = lang::compile(&program_src).map_err(|e| e.to_string())?;
    let spec = lang::parse_spec(&spec_src).map_err(|e| e.to_string())?;

    // deterministic mixed-sign initial data so guards fire both ways —
    // the same init every other vcalc execution path uses
    let mut globals = BTreeMap::new();
    let mut env = Env::new();
    for (name, dec) in spec.decomps.iter() {
        let b = dec.extent();
        let arr = Array::from_fn(b, |i| {
            let v = i.scalar();
            if v % 3 == 0 {
                -(v as f64)
            } else {
                v as f64 * 0.5
            }
        });
        let lo = b.lo().scalar();
        let hi = b.hi().scalar();
        globals.insert(
            name.clone(),
            (lo..=hi)
                .map(|i| arr.get(&vcal_suite::core::Ix::d1(i)))
                .collect::<Vec<f64>>(),
        );
        env.insert(name.clone(), arr);
    }

    let mut reference = env;
    for _ in 0..opts.steps {
        for clause in &clauses {
            reference.exec_clause(clause);
        }
    }

    let steps: Vec<ProgramStep> = clauses.iter().cloned().map(ProgramStep::Clause).collect();
    let req = ServeRequest {
        steps,
        decomps: spec.decomps.clone(),
        globals,
        n_steps: opts.steps,
        schedule: opts.schedule,
        autotune: opts.autotune,
        tune: TuneOptions {
            budget: opts.tune_budget,
            retune_every: opts.retune_every,
            ..TuneOptions::default()
        },
        deadline: opts.deadline,
    };
    let mut client =
        ServeClient::connect(&opts.connect, &opts.tenant).map_err(|e| e.to_string())?;
    let resp = client.request(&req).map_err(|e| e.to_string())?;

    for (name, got) in &resp.globals {
        let want = reference
            .get(name)
            .ok_or_else(|| format!("reference lost array `{name}`"))?;
        let b = spec.decomps[name].extent();
        let lo = b.lo().scalar();
        for (k, v) in got.iter().enumerate() {
            let w = want.get(&vcal_suite::core::Ix::d1(lo + k as i64));
            if v.to_bits() != w.to_bits() {
                return Err(format!(
                    "VERIFICATION FAILED on `{name}`[{}]: service {v} != reference {w}",
                    lo + k as i64
                ));
            }
        }
    }
    let s = resp.service;
    println!(
        "request: OK — {} step(s) x {} clause(s) as tenant `{}`; result identical \
         to the sequential reference",
        opts.steps,
        clauses.len(),
        opts.tenant
    );
    println!(
        "request: service counters: queue wait {} ns, session #{}, plan cache {}/{} \
         hit/miss, dag cache {}/{}, tune cache {}/{}, {} eviction(s)",
        s.queue_wait_ns,
        s.sessions_served,
        s.plan_hits,
        s.plan_misses,
        s.dag_hits,
        s.dag_misses,
        s.tune_hits,
        s.tune_misses,
        s.evictions
    );
    Ok(())
}

fn drive(opts: &Options) -> Result<(), String> {
    let program_src = std::fs::read_to_string(&opts.program_path)
        .map_err(|e| format!("cannot read {}: {e}", opts.program_path))?;
    let spec_src = std::fs::read_to_string(&opts.spec_path)
        .map_err(|e| format!("cannot read {}: {e}", opts.spec_path))?;

    let clauses = lang::compile(&program_src).map_err(|e| e.to_string())?;
    let spec = lang::parse_spec(&spec_src).map_err(|e| e.to_string())?;

    println!(
        "compiled {} clause(s) for {} processors\n",
        clauses.len(),
        spec.pmax
    );

    if opts.advise {
        let mut extents = BTreeMap::new();
        for (name, dec) in &spec.decomps {
            extents.insert(name.clone(), dec.extent());
        }
        let ranked = vcal_suite::spmd::advise(
            &clauses,
            &extents,
            spec.pmax,
            vcal_suite::spmd::AdvisorOptions::default(),
        )?;
        println!("decomposition advisor (best first):");
        for c in ranked.iter().take(5) {
            println!("  {}", vcal_suite::spmd::advisor::describe(c));
        }
        println!();
    }

    for (n, clause) in clauses.iter().enumerate() {
        println!("--- clause {n} ---");
        let plan = if opts.naive {
            SpmdPlan::build_naive(clause, &spec.decomps)
        } else {
            SpmdPlan::build(clause, &spec.decomps)
        }
        .map_err(|e| format!("clause {n}: {e}"))?;

        for e in &opts.emits {
            match e.as_str() {
                "vcal" => println!("{}\n", lang::to_vcal(clause)),
                "plan" => println!("{}", emit::plan_report(&plan)),
                "shared" => println!("{}", emit::emit_shared_node(&plan, opts.node)),
                "dist" => println!("{}", emit::emit_distributed_node(&plan, opts.node)),
                "dist-closed" => {
                    println!("{}", emit::emit_distributed_node_closed(&plan, opts.node))
                }
                "derivation" => {
                    println!(
                        "{}",
                        vcal_suite::spmd::derive(clause, &spec.decomps)
                            .map_err(|e| format!("clause {n}: {e}"))?
                    )
                }
                other => return Err(format!("unknown emit target `{other}`\n{}", usage())),
            }
        }

        if opts.run && opts.steps == 1 && opts.schedule.is_none() && !opts.autotune {
            run_and_verify(clause, &plan, &spec.decomps, opts)?;
        }
    }
    if opts.autotune {
        run_autotune(&clauses, &spec.decomps, opts)?;
    } else if let Some(mode) = opts.schedule {
        run_program_schedule(&clauses, &spec.decomps, mode, opts)?;
    } else if opts.steps > 1 {
        run_timestep_loop(&clauses, &spec.decomps, opts)?;
    }
    Ok(())
}

/// Execute the whole program as a `--steps` timestep loop with the
/// decomposition auto-tuner in the loop
/// ([`DistSession::run_program_tuned`]), print what the tuner saw and
/// decided, and verify the final state against the iterated sequential
/// reference — tuning must never change a single bit of the result.
fn run_autotune(
    clauses: &[vcal_suite::core::Clause],
    decomps: &vcal_suite::spmd::DecompMap,
    opts: &Options,
) -> Result<(), String> {
    let mode = opts.schedule.unwrap_or_default();
    let mode_name = match mode {
        ScheduleMode::Seq => "seq",
        ScheduleMode::Dag => "dag",
    };
    println!(
        "--- autotune: {} step(s), schedule {mode_name}, budget {} ---",
        opts.steps, opts.tune_budget
    );
    let steps: Vec<ProgramStep> = clauses.iter().cloned().map(ProgramStep::Clause).collect();
    let mut env = Env::new();
    for (name, dec) in decomps.iter() {
        // deterministic mixed-sign initial data so guards fire both ways
        env.insert(
            name.clone(),
            Array::from_fn(dec.extent(), |i| {
                let v = i.scalar();
                if v % 3 == 0 {
                    -(v as f64)
                } else {
                    v as f64 * 0.5
                }
            }),
        );
    }

    let mut reference = env.clone();
    for _ in 0..opts.steps {
        for clause in clauses {
            reference.exec_clause(clause);
        }
    }

    let mut session = DistSession::new(&env, decomps.clone())
        .map_err(|e| e.to_string())?
        .with_options(DistOptions {
            overlap: opts.overlap,
            simd: opts.simd,
            transport: opts.transport,
            ..DistOptions::default()
        });
    let topts = TuneOptions {
        budget: opts.tune_budget,
        retune_every: opts.retune_every,
        ..TuneOptions::default()
    };
    let (report, tune) = session
        .run_program_tuned(&steps, opts.steps, mode, topts, &NULL_TRACER)
        .map_err(|e| e.to_string())?;

    println!(
        "autotune: priced {} candidate(s) over {} round(s) ({} tune-cache hits), model {}",
        tune.candidates_priced,
        tune.rounds,
        tune.tune_cache_hits,
        if tune.calibrated {
            "calibrated from measured timings"
        } else {
            "uncalibrated (era-default ratios)"
        }
    );
    println!("autotune: chosen layout: {}", tune.chosen);
    if tune.switched {
        println!(
            "autotune: switched layout mid-loop — {} redistribution(s), \
             predicted switch cost {:.0} ns amortized over the remaining steps",
            tune.redistributions_inserted, tune.switch_cost_ns
        );
    } else {
        println!("autotune: kept the incumbent layout (no profitable switch)");
    }
    println!(
        "autotune: predicted step {:.0} ns (baseline {:.0} ns, worst candidate {:.0} ns); \
         measured profile step {:.0} ns, model error {:.0}%",
        tune.predicted_step_ns,
        tune.baseline_step_ns,
        tune.worst_step_ns,
        tune.measured_step_ns,
        tune.model_error * 100.0
    );

    let got = session.gather_all();
    for name in decomps.keys() {
        let diff = got
            .get(name)
            .ok_or_else(|| format!("array `{name}` lost"))?
            .max_abs_diff(reference.get(name).ok_or("reference missing array")?);
        if diff != 0.0 {
            return Err(format!(
                "VERIFICATION FAILED on `{name}` after {} steps: max |diff| = {diff}",
                opts.steps
            ));
        }
    }
    println!(
        "run: OK — autotuned {} step(s) x {} clause(s); result identical to the \
         iterated sequential reference\n",
        opts.steps,
        report.steps.len()
    );
    Ok(())
}

/// Execute the whole program `--steps` times through the program-level
/// scheduler ([`DistSession::run_program`]) and verify against the
/// iterated sequential reference. Prints the DAG shape and, when
/// tracing, the `replay_check_dag` verdict for the last step.
fn run_program_schedule(
    clauses: &[vcal_suite::core::Clause],
    decomps: &vcal_suite::spmd::DecompMap,
    mode: ScheduleMode,
    opts: &Options,
) -> Result<(), String> {
    let mode_name = match mode {
        ScheduleMode::Seq => "seq",
        ScheduleMode::Dag => "dag",
    };
    println!(
        "--- program schedule: {mode_name}, {} step(s) ---",
        opts.steps
    );
    let steps: Vec<ProgramStep> = clauses.iter().cloned().map(ProgramStep::Clause).collect();
    let mut env = Env::new();
    for (name, dec) in decomps.iter() {
        // deterministic mixed-sign initial data so guards fire both ways
        env.insert(
            name.clone(),
            Array::from_fn(dec.extent(), |i| {
                let v = i.scalar();
                if v % 3 == 0 {
                    -(v as f64)
                } else {
                    v as f64 * 0.5
                }
            }),
        );
    }

    let mut reference = env.clone();
    for _ in 0..opts.steps {
        for clause in clauses {
            reference.exec_clause(clause);
        }
    }

    let mut session = DistSession::new(&env, decomps.clone())
        .map_err(|e| e.to_string())?
        .with_options(DistOptions {
            overlap: opts.overlap,
            simd: opts.simd,
            transport: opts.transport,
            ..DistOptions::default()
        });
    let mut last_report = None;
    for step in 0..opts.steps {
        let last = step + 1 == opts.steps;
        let tracer = (opts.trace && last).then(CollectingTracer::new);
        let report = match &tracer {
            Some(t) => session.run_program(&steps, mode, t),
            None => session.run_program(&steps, mode, &NULL_TRACER),
        }
        .map_err(|e| format!("step {step}: {e}"))?;
        if let Some(tracer) = tracer {
            let dag = build_dag(&steps, decomps);
            let log = tracer.finish();
            let summary = replay_check_dag(&log, &dag)
                .map_err(|e| format!("step {step}: DAG replay check FAILED: {e}"))?;
            println!(
                "trace: step {step} DAG replay OK — {} host scheduling events",
                summary.det_events
            );
            if let Some(path) = &opts.trace_out {
                std::fs::write(path, log.to_jsonl())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("trace: deterministic event log written to {path}");
            }
        }
        last_report = Some(report);
    }

    let got = session.gather_all();
    for name in decomps.keys() {
        let diff = got
            .get(name)
            .ok_or_else(|| format!("array `{name}` lost"))?
            .max_abs_diff(reference.get(name).ok_or("reference missing array")?);
        if diff != 0.0 {
            return Err(format!(
                "VERIFICATION FAILED on `{name}` after {} steps: max |diff| = {diff}",
                opts.steps
            ));
        }
    }
    let report = last_report.ok_or("no steps executed")?;
    println!(
        "run: OK — schedule {mode_name}: {} clause(s) in {} wave(s), {} dependence edge(s), \
         width {}; result identical to the iterated sequential reference\n",
        report.steps.len(),
        report.waves,
        report.dag_edges,
        report.dag_width
    );
    Ok(())
}

/// Execute the whole program `--steps` times through a steady-state
/// [`DistSession`] and verify against the iterated sequential reference.
/// Prints the plan-cache statistics: only the first step should miss.
fn run_timestep_loop(
    clauses: &[vcal_suite::core::Clause],
    decomps: &vcal_suite::spmd::DecompMap,
    opts: &Options,
) -> Result<(), String> {
    println!("--- timestep loop: {} steps ---", opts.steps);
    let mut env = Env::new();
    for (name, dec) in decomps.iter() {
        // deterministic mixed-sign initial data so guards fire both ways
        env.insert(
            name.clone(),
            Array::from_fn(dec.extent(), |i| {
                let v = i.scalar();
                if v % 3 == 0 {
                    -(v as f64)
                } else {
                    v as f64 * 0.5
                }
            }),
        );
    }

    let mut reference = env.clone();
    for _ in 0..opts.steps {
        for clause in clauses {
            reference.exec_clause(clause);
        }
    }

    let mut session = DistSession::new(&env, decomps.clone())
        .map_err(|e| e.to_string())?
        .with_options(DistOptions {
            overlap: opts.overlap,
            simd: opts.simd,
            transport: opts.transport,
            ..DistOptions::default()
        });
    let (mut hits, mut misses) = (0u64, 0u64);
    for step in 0..opts.steps {
        let last = step + 1 == opts.steps;
        for (n, clause) in clauses.iter().enumerate() {
            let tracer = (opts.trace && last).then(CollectingTracer::new);
            let report = match &tracer {
                Some(t) => session.run_traced(clause, t),
                None => session.run(clause),
            }
            .map_err(|e| format!("step {step}, clause {n}: {e}"))?;
            hits += report.cache_hits;
            misses += report.cache_misses;
            if let Some(tracer) = tracer {
                let plan = session.plan(clause).map_err(|e| e.to_string())?;
                let log = tracer.finish();
                let summary = replay_check(&log, &plan, DistOptions::default().mode, {
                    DistOptions::default().retry
                })
                .map_err(|e| format!("clause {n}: warm replay check FAILED: {e}"))?;
                println!(
                    "trace: step {step} clause {n} replay OK — {} deterministic events, \
                     {} elems sent / {} received",
                    summary.det_events, summary.send_elems, summary.recv_elems
                );
                if let Some(path) = &opts.trace_out {
                    std::fs::write(path, log.to_jsonl())
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    println!("trace: deterministic event log written to {path}");
                }
            }
        }
    }

    let got = session.gather_all();
    for name in decomps.keys() {
        let diff = got
            .get(name)
            .ok_or_else(|| format!("array `{name}` lost"))?
            .max_abs_diff(reference.get(name).ok_or("reference missing array")?);
        if diff != 0.0 {
            return Err(format!(
                "VERIFICATION FAILED on `{name}` after {} steps: max |diff| = {diff}",
                opts.steps
            ));
        }
    }
    println!(
        "run: OK — {} steps x {} clause(s); plan cache: {} hits / {} misses \
         (steady state after the first step); result identical to the \
         iterated sequential reference\n",
        opts.steps,
        clauses.len(),
        hits,
        misses
    );
    Ok(())
}

/// Execute on the distributed machine with deterministic ramp-initialized
/// arrays and verify against the sequential reference.
fn run_and_verify(
    clause: &vcal_suite::core::Clause,
    plan: &SpmdPlan,
    decomps: &vcal_suite::spmd::DecompMap,
    opts: &Options,
) -> Result<(), String> {
    let mut env = Env::new();
    let mut names: Vec<&str> = vec![clause.lhs.array.as_str()];
    for r in clause.read_refs() {
        if !names.contains(&r.array.as_str()) {
            names.push(&r.array);
        }
    }
    for name in &names {
        let dec = decomps
            .get(*name)
            .ok_or_else(|| format!("array `{name}` missing from the spec"))?;
        // deterministic mixed-sign initial data so guards fire both ways
        env.insert(
            name.to_string(),
            Array::from_fn(dec.extent(), |i| {
                let v = i.scalar();
                if v % 3 == 0 {
                    -(v as f64)
                } else {
                    v as f64 * 0.5
                }
            }),
        );
    }

    let mut reference = env.clone();
    reference.exec_clause(clause);

    let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
    for name in &names {
        arrays.insert(
            name.to_string(),
            DistArray::scatter_from(env.get(name).unwrap(), decomps[*name].clone()),
        );
    }
    let dist_opts = DistOptions {
        overlap: opts.overlap,
        simd: opts.simd,
        transport: opts.transport,
        ..DistOptions::default()
    };
    let tracer = opts.trace.then(CollectingTracer::new);
    let report = match &tracer {
        Some(t) => run_distributed_traced(plan, clause, &mut arrays, dist_opts, t),
        None => run_distributed(plan, clause, &mut arrays, dist_opts),
    }
    .map_err(|e| e.to_string())?;
    let diff = arrays[&clause.lhs.array]
        .gather()
        .max_abs_diff(reference.get(&clause.lhs.array).unwrap());
    if diff != 0.0 {
        return Err(format!("VERIFICATION FAILED: max |diff| = {diff}"));
    }
    let t = report.total();
    println!(
        "run: OK — {} iterations over {} nodes, {} messages, {} local reads; \
         result identical to the sequential reference\n",
        t.iterations,
        report.nodes.len(),
        t.msgs_sent,
        t.local_reads
    );
    if let Some(tracer) = tracer {
        report_trace(&tracer, plan, clause, decomps, &report, dist_opts, opts)?;
    }
    Ok(())
}

/// Print the trace digest: dispatch counts, the interior/boundary run
/// census of the compiled kernel path, replay verdict, measured
/// per-phase timings next to the analytical `perfmodel` prediction.
#[allow(clippy::too_many_arguments)]
fn report_trace(
    tracer: &CollectingTracer,
    plan: &SpmdPlan,
    clause: &vcal_suite::core::Clause,
    decomps: &vcal_suite::spmd::DecompMap,
    report: &vcal_suite::machine::ExecReport,
    dist_opts: DistOptions,
    opts: &Options,
) -> Result<(), String> {
    let log = tracer.finish();
    let summary = replay_check(&log, plan, dist_opts.mode, dist_opts.retry)
        .map_err(|e| format!("replay check FAILED: {e}"))?;
    println!(
        "trace: replay OK — {} deterministic events, {} elems sent / {} received, \
         {} retransmits",
        summary.det_events, summary.send_elems, summary.recv_elems, summary.retransmits
    );
    let dispatch = PlanSummary::of(plan);
    print!("trace: enumeration dispatch:");
    for (kind, n) in dispatch.dispatch_counts() {
        print!(" {kind}×{n}");
    }
    println!(
        "{}",
        if dispatch.is_fully_closed_form() {
            " (all closed-form)"
        } else {
            " (CONTAINS NAIVE FALLBACK)"
        }
    );
    let compiled = vcal_suite::spmd::CompiledSchedule::compile_exec(plan, clause, decomps);
    if compiled.has_exec() {
        let census = compiled.overlap_census();
        println!(
            "trace: kernel runs: {} interior ({} elems) / {} boundary \
             ({} elems, {} remote reads) [overlap {}]",
            census.interior_runs,
            census.interior_elems,
            census.boundary_runs,
            census.boundary_elems,
            census.remote_elems,
            if dist_opts.overlap { "on" } else { "off" }
        );
        let planned = compiled.simd_census(dist_opts.simd);
        let ran = report.simd_census();
        println!(
            "trace: simd census: {} lanes, {} vector runs ({} lane elems, \
             {} tail elems) / {} fallback runs [plan]; {} vector / {} fallback [ran]",
            planned.lanes,
            planned.vector_runs,
            planned.lane_elems,
            planned.tail_elems,
            planned.fallback_runs,
            ran.vector_runs,
            ran.fallback_runs
        );
    } else {
        println!("trace: kernel runs: none (tree-interpreter fallback)");
    }
    let model = PerfModel::default();
    let predicted = model.price_report(report);
    println!(
        "trace: perfmodel predicts {:.1} time units (bottleneck node {})",
        predicted.total, predicted.bottleneck
    );
    for (phase, total) in log.phase_totals() {
        let max = log.phase_bottlenecks()[&phase];
        println!(
            "trace:   phase {:<12} total {:>10.3?}  bottleneck {:>10.3?}",
            phase.name(),
            total,
            max
        );
    }
    if let Some(path) = &opts.trace_out {
        std::fs::write(path, log.to_jsonl()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("trace: deterministic event log written to {path}");
    }
    println!();
    Ok(())
}
