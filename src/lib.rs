//! Umbrella crate re-exporting the whole V-cal workspace for examples and
//! integration tests.
//!
//! The full pipeline in one example — source text to a verified parallel
//! execution:
//!
//! ```
//! use vcal_suite::{core, decomp::Decomp1, lang, machine, spmd};
//! use core::{Array, Bounds, Env};
//! use spmd::{DecompMap, SpmdPlan};
//!
//! // an ordinary loop (the paper's Fig. 1 shape)
//! let clause = lang::compile("for i := 0 to 30 do A[i] := B[i+1] * 0.5; od;")
//!     .unwrap()
//!     .remove(0);
//!
//! // decompositions chosen separately from the program
//! let mut decomps = DecompMap::new();
//! decomps.insert("A".into(), Decomp1::block(4, Bounds::range(0, 31)));
//! decomps.insert("B".into(), Decomp1::scatter(4, Bounds::range(0, 31)));
//!
//! // per-processor SPMD plan with closed-form schedules
//! let plan = SpmdPlan::build(&clause, &decomps).unwrap();
//!
//! // execute on the shared-memory machine and check vs the reference
//! let mut env = Env::new();
//! env.insert("A", Array::zeros(Bounds::range(0, 31)));
//! env.insert("B", Array::from_fn(Bounds::range(0, 31), |i| i.scalar() as f64));
//! let mut expect = env.clone();
//! expect.exec_clause(&clause);
//! machine::run_shared(&plan, &clause, &mut env, machine::WriteStrategy::Direct).unwrap();
//! assert_eq!(env.get("A").unwrap().max_abs_diff(expect.get("A").unwrap()), 0.0);
//! ```
pub use vcal_core as core;
pub use vcal_decomp as decomp;
pub use vcal_lang as lang;
pub use vcal_machine as machine;
pub use vcal_numth as numth;
pub use vcal_spmd as spmd;
