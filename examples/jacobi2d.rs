//! Domain example 4 — a 2-D Jacobi sweep on a processor grid.
//!
//! The paper's derivations are 1-D "for reasons of clarity"; the natural
//! generalization decomposes each array axis independently onto one axis
//! of a processor grid, and the ownership condition factorizes into a
//! Cartesian product of per-axis Table I schedules. This example runs a
//! 2-D five-point stencil over a 2x2 grid with a different decomposition
//! per axis and verifies against the sequential reference.
//!
//! Run with: `cargo run --example jacobi2d`

use vcal_suite::core::func::Fn1;
use vcal_suite::core::map::IndexMap;
use vcal_suite::core::{Array, ArrayRef, Bounds, Clause, Env, Expr, Guard, IndexSet, Ordering};
use vcal_suite::decomp::{Decomp1, DecompNd};
use vcal_suite::machine::run_shared_nd;
use vcal_suite::spmd::optimize_nd;

fn main() {
    let n: i64 = 64;
    let sweeps = 5;

    // V[i,j] := 0.25 * (U[i-1,j] + U[i+1,j] + U[i,j-1] + U[i,j+1])
    let u = |di: i64, dj: i64| {
        Expr::Ref(ArrayRef::new(
            "U",
            IndexMap::per_dim(vec![Fn1::shift(di), Fn1::shift(dj)]),
        ))
    };
    let sweep = Clause {
        iter: IndexSet::full(Bounds::range2(1, n - 2, 1, n - 2)),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::new("V", IndexMap::identity(2)),
        rhs: Expr::mul(
            Expr::add(Expr::add(u(-1, 0), u(1, 0)), Expr::add(u(0, -1), u(0, 1))),
            Expr::Lit(0.25),
        ),
    };
    let copy_back = Clause {
        iter: IndexSet::full(Bounds::range2(1, n - 2, 1, n - 2)),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::new("U", IndexMap::identity(2)),
        rhs: Expr::Ref(ArrayRef::new("V", IndexMap::identity(2))),
    };

    // rows block-decomposed, columns block-scatter — a 2x2 grid
    let dec = DecompNd::new(vec![
        Decomp1::block(2, Bounds::range(0, n - 1)),
        Decomp1::block_scatter(8, 2, Bounds::range(0, n - 1)),
    ]);
    println!(
        "grid: {} processors = {:?} over a {n}x{n} domain",
        dec.pmax(),
        dec.axes().iter().map(|a| a.pmax()).collect::<Vec<_>>()
    );

    // show the per-axis schedule factorization for one processor
    let s = optimize_nd(&sweep.lhs.map, &dec, &sweep.iter.bounds, 3).unwrap();
    println!("\nprocessor 3 schedule factorization:");
    for (axis, (sched, kind)) in s.axes.iter().zip(&s.kinds).enumerate() {
        println!(
            "  axis {axis}: {} iterations via {} ({})",
            sched.count(),
            sched.kind_name(),
            kind.name()
        );
    }
    println!(
        "  product: {} of {} total points\n",
        s.count(),
        (n - 2) * (n - 2)
    );

    // run the sweeps and verify
    let mut env = Env::new();
    env.insert(
        "U",
        Array::from_fn(Bounds::range2(0, n - 1, 0, n - 1), |i| {
            if i[0] == 0 || i[0] == n - 1 || i[1] == 0 || i[1] == n - 1 {
                1.0
            } else {
                0.0
            }
        }),
    );
    env.insert("V", Array::zeros(Bounds::range2(0, n - 1, 0, n - 1)));

    let mut reference = env.clone();
    for _ in 0..sweeps {
        reference.exec_clause(&sweep);
        reference.exec_clause(&copy_back);
    }

    let mut total_iters = 0;
    for _ in 0..sweeps {
        total_iters += run_shared_nd(&sweep, &dec, &mut env)
            .unwrap()
            .total()
            .iterations;
        run_shared_nd(&copy_back, &dec, &mut env).unwrap();
    }
    let diff = env
        .get("U")
        .unwrap()
        .max_abs_diff(reference.get("U").unwrap());
    assert!(
        diff < 1e-12,
        "parallel and sequential results differ by {diff}"
    );
    println!(
        "{sweeps} sweeps on the 2x2 grid: {total_iters} stencil updates, result matches the \
         sequential reference exactly."
    );
    // near-boundary value after diffusion from the hot boundary
    let c = env.get("U").unwrap().get(&vcal_suite::core::Ix::d2(2, 2));
    println!("value at (2,2) after {sweeps} sweeps: {c:.6}");

    // ---- the same sweeps on the distributed grid machine ---------------
    use std::collections::BTreeMap;
    use std::time::Duration;
    use vcal_suite::machine::{run_distributed_nd, DistArrayNd};
    let mut env2 = Env::new();
    env2.insert(
        "U",
        Array::from_fn(Bounds::range2(0, n - 1, 0, n - 1), |i| {
            if i[0] == 0 || i[0] == n - 1 || i[1] == 0 || i[1] == n - 1 {
                1.0
            } else {
                0.0
            }
        }),
    );
    env2.insert("V", Array::zeros(Bounds::range2(0, n - 1, 0, n - 1)));
    let mut arrays: BTreeMap<String, DistArrayNd> = BTreeMap::new();
    for a in ["U", "V"] {
        arrays.insert(
            a.into(),
            DistArrayNd::scatter_from(env2.get(a).unwrap(), dec.clone()),
        );
    }
    let mut msgs = 0;
    for _ in 0..sweeps {
        msgs += run_distributed_nd(&sweep, &mut arrays, Duration::from_secs(5))
            .unwrap()
            .total()
            .msgs_sent;
        msgs += run_distributed_nd(&copy_back, &mut arrays, Duration::from_secs(5))
            .unwrap()
            .total()
            .msgs_sent;
    }
    let diff2 = arrays["U"]
        .gather()
        .max_abs_diff(reference.get("U").unwrap());
    assert!(diff2 < 1e-12);
    println!(
        "\ndistributed grid machine: same result, {msgs} boundary messages over \
         {sweeps} sweeps\n(row halos cross the block axis; column traffic follows the \
         block-scatter axis)."
    );
}
