//! Domain example 2 — rotate and shuffle views (paper Section 3.3).
//!
//! Index functions like `f(i) = (i+6) mod 20` are only *piecewise*
//! monotonic; the paper splits them at breakpoints into de-modded
//! monotonic pieces and optimizes each piece with its own Table I row.
//! This example shows the split, the resulting schedules, and a verified
//! distributed execution of a rotate assignment.
//!
//! Run with: `cargo run --example rotate`

use std::collections::BTreeMap;
use vcal_suite::core::func::Fn1;
use vcal_suite::core::{Array, Bounds, Env};
use vcal_suite::decomp::Decomp1;
use vcal_suite::lang;
use vcal_suite::machine::{run_distributed, DistArray, DistOptions};
use vcal_suite::spmd::{optimize, DecompMap, SpmdPlan};

fn main() {
    let n: i64 = 20;
    let pmax = 4;

    // the paper's own example: f(i) = (i+6) mod 20
    let f = Fn1::rotate(6, 20);
    println!("f(i) = (i+6) mod 20 on 0..=19 — breakpoint analysis:");
    for piece in f.monotone_pieces(0, n - 1).unwrap() {
        println!(
            "  piece [{:>2}, {:>2}]: f(i) = {}",
            piece.lo,
            piece.hi,
            vcal_suite::core::map::display_fn1(&piece.f, "i")
        );
    }
    println!();

    // schedules under block and scatter decompositions
    for dec in [
        Decomp1::block(pmax, Bounds::range(0, n - 1)),
        Decomp1::scatter(pmax, Bounds::range(0, n - 1)),
    ] {
        println!("{dec}:");
        for p in 0..pmax {
            let opt = optimize(&f, &dec, 0, n - 1, p);
            println!(
                "  p{p}: {:?}  via {}",
                opt.schedule.to_sorted_vec(),
                opt.kind.name()
            );
        }
        println!();
    }

    // a rotate assignment, executed on the distributed machine
    let src = "for i := 0 to 19 do A[i] := B[(i+6) mod 20]; od;";
    let clause = lang::compile(src).expect("compiles")[0].clone();
    println!("clause: {}\n", lang::to_vcal(&clause));

    let mut env = Env::new();
    env.insert("A", Array::zeros(Bounds::range(0, n - 1)));
    env.insert(
        "B",
        Array::from_fn(Bounds::range(0, n - 1), |i| i.scalar() as f64),
    );

    let mut expect = env.clone();
    expect.exec_clause(&clause);

    let mut dm = DecompMap::new();
    dm.insert("A".into(), Decomp1::block(pmax, Bounds::range(0, n - 1)));
    dm.insert("B".into(), Decomp1::scatter(pmax, Bounds::range(0, n - 1)));
    let plan = SpmdPlan::build(&clause, &dm).expect("plan");

    let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
    for a in ["A", "B"] {
        arrays.insert(
            a.into(),
            DistArray::scatter_from(env.get(a).unwrap(), dm[a].clone()),
        );
    }
    let report = run_distributed(&plan, &clause, &mut arrays, DistOptions::default()).unwrap();
    let got = arrays["A"].gather();
    assert_eq!(got.max_abs_diff(expect.get("A").unwrap()), 0.0);
    println!(
        "distributed rotate verified: A = B rotated by 6 ({} messages).",
        report.total().msgs_sent
    );
    println!("A = {:?}", got.data());
}
