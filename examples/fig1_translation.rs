//! Figure 1 + Section 2.6, reproduced end to end: the imperative program,
//! its V-cal form, and the full rewrite chain Eq. (1) → Eq. (2) → Eq. (3)
//! that turns a clause plus a data decomposition into an SPMD program.
//!
//! Run with: `cargo run --example fig1_translation`

use vcal_suite::core::term::{Ordering, Term};
use vcal_suite::lang;

fn main() {
    // ---- Fig. 1: program and corresponding V-cal expression ------------
    let src = "for i := 1 to 9 do if A[i] > 0 then A[i] := B[i+1]; fi; od;";
    println!("Fig. 1 — example program:\n\n{src}\n");
    let clause = lang::compile(src).expect("compiles")[0].clone();
    println!(
        "corresponding V-cal expression:\n\n  {}\n",
        lang::to_vcal(&clause)
    );
    println!(
        "and back to imperative form:\n\n{}",
        lang::to_imperative(&clause)
    );

    // ---- Section 2.6: the derivation chain ------------------------------
    println!("{}", "-".repeat(72));
    println!("Section 2.6 — deriving the SPMD form by rewriting:\n");

    // Eq. (1): ∆(i ∈ (imin:imax)) ◊ [f(i)]A := Expr([g(i)](B))
    let eq1 = Term::param(
        "i",
        "imin:imax",
        Ordering::Par,
        Term::assign(
            Term::select(&["f(i)"], Term::Array("A".into())),
            Term::Call {
                name: "Expr".into(),
                args: vec![Term::select(&["g(i)"], Term::Array("B".into()))],
            },
        ),
    );
    println!("Eq. (1):\n  {eq1}\n");

    // substitute the decomposition views A -> A', B -> B'
    let substituted = eq1
        .substitute_decomposition("A", "0:n-1")
        .substitute_decomposition("B", "0:m-1");
    println!("after decomposition substitution:\n  {substituted}\n");

    // Eq. (2): contraction (Definition 5)
    let eq2 = substituted.contract();
    println!("Eq. (2), after contraction:\n  {eq2}\n");

    // renaming: procA(f(i)) ⇒ fresh processor parameter p
    let Term::Param {
        var,
        range,
        cond,
        ord,
        body,
    } = &eq2
    else {
        panic!("Eq. (2) must be a parameter expression");
    };
    let renamed = body.rename("procA(f(i))", "p", "0:pmax-1");
    let with_i = Term::Param {
        var: var.clone(),
        range: range.clone(),
        cond: cond.clone(),
        ord: *ord,
        body: Box::new(renamed),
    };
    println!("after renaming:\n  {with_i}\n");

    // Eq. (3): interchange — processor parameter outermost
    let eq3 = with_i.interchange().expect("interchangeable");
    println!("Eq. (3), after interchange (the SPMD form):\n  {eq3}\n");

    println!(
        "instantiating Eq. (3) for each value of p yields the node programs;\n\
         see `cargo run --example quickstart` for the executable version."
    );
}
