//! Domain example 1 — a 1-D Jacobi relaxation sweep, the workload class
//! the paper's introduction motivates (identical operations over large
//! arrays). Shows how the *same program* gets radically different
//! communication behaviour from different decompositions, and how the
//! Section 5 "overlapped decomposition" extension reduces a block
//! stencil's traffic to one ghost exchange.
//!
//! Run with: `cargo run --example stencil`

use std::collections::BTreeMap;
use vcal_suite::core::{Array, Bounds, Env};
use vcal_suite::decomp::{Decomp1, OverlapDecomp};
use vcal_suite::lang;
use vcal_suite::machine::{run_distributed, DistArray, DistOptions};
use vcal_suite::spmd::{CommStats, DecompMap, SpmdPlan};

fn main() {
    let n: i64 = 256;
    let pmax = 8;
    let sweeps = 10;

    // U_new[i] := 0.5 * (U[i-1] + U[i+1]) on the interior
    let src = "for i := 1 to 254 do V[i] := 0.5 * (U[i-1] + U[i+1]); od;";
    let clause = lang::compile(src).expect("compiles")[0].clone();
    println!("stencil clause: {}\n", lang::to_vcal(&clause));

    // initial condition: a spike in the middle
    let mut init = Env::new();
    init.insert(
        "U",
        Array::from_fn(Bounds::range(0, n - 1), |i| {
            if i.scalar() == n / 2 {
                1.0
            } else {
                0.0
            }
        }),
    );
    init.insert("V", Array::zeros(Bounds::range(0, n - 1)));

    // sequential reference: `sweeps` ping-pong iterations
    let mut seq = init.clone();
    let back = lang::compile("for i := 1 to 254 do U[i] := V[i]; od;").unwrap()[0].clone();
    for _ in 0..sweeps {
        seq.exec_clause(&clause);
        seq.exec_clause(&back);
    }

    println!("per-sweep communication by decomposition of U and V:");
    println!(
        "{:<14} {:>10} {:>12} {:>14}",
        "layout", "messages", "local reads", "max node work"
    );
    for (name, dec) in [
        ("Block", Decomp1::block(pmax, Bounds::range(0, n - 1))),
        ("Scatter", Decomp1::scatter(pmax, Bounds::range(0, n - 1))),
        (
            "BS(4)",
            Decomp1::block_scatter(4, pmax, Bounds::range(0, n - 1)),
        ),
        (
            "BS(16)",
            Decomp1::block_scatter(16, pmax, Bounds::range(0, n - 1)),
        ),
    ] {
        let mut dm = DecompMap::new();
        dm.insert("U".into(), dec.clone());
        dm.insert("V".into(), dec.clone());
        let plan = SpmdPlan::build(&clause, &dm).expect("plan");
        let stats = CommStats::of_plan(&plan, &dm);
        let max_work = plan
            .nodes
            .iter()
            .map(|nd| nd.modify.schedule.work_estimate())
            .max()
            .unwrap();
        println!(
            "{:<14} {:>10} {:>12} {:>14}",
            name, stats.sends, stats.local_updates, max_work
        );

        // actually run the sweeps on the distributed machine and verify
        let plan_back = SpmdPlan::build(&back, &dm).expect("plan");
        let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
        for a in ["U", "V"] {
            arrays.insert(
                a.into(),
                DistArray::scatter_from(init.get(a).unwrap(), dm[a].clone()),
            );
        }
        let mut total_msgs = 0;
        for _ in 0..sweeps {
            let r1 = run_distributed(&plan, &clause, &mut arrays, DistOptions::default()).unwrap();
            let r2 =
                run_distributed(&plan_back, &back, &mut arrays, DistOptions::default()).unwrap();
            total_msgs += r1.total().msgs_sent + r2.total().msgs_sent;
        }
        let got = arrays["U"].gather();
        let diff = got.max_abs_diff(seq.get("U").unwrap());
        assert!(diff < 1e-12, "{name}: distributed result differs by {diff}");
        println!(
            "{:<14} verified over {sweeps} sweeps ({total_msgs} messages total)",
            ""
        );
    }

    // ---- overlapped decomposition (Section 5 extension) -----------------
    println!("\noverlapped block decomposition (halo = 1):");
    let ov = OverlapDecomp::new(Decomp1::block(pmax, Bounds::range(0, n - 1)), 1);
    println!(
        "  ghost exchange: {} messages / {} elements per sweep, then ALL stencil reads are local",
        ov.exchange_plan().len(),
        ov.exchange_volume()
    );
    println!(
        "  vs. the plain block template above: {} boundary messages per half-sweep",
        2 * (pmax - 1)
    );
}
