//! Domain example 3 — dynamic redistribution (the paper's Section 5
//! "further research": dynamic decompositions, i.e. a redistribution of
//! the data at run time).
//!
//! A program phase that favours block layout (stencil) is followed by a
//! phase that favours scatter layout (strided access). We plan and apply
//! a block → scatter redistribution in between and compare the total
//! communication against staying in either layout throughout.
//!
//! Run with: `cargo run --example redistribute`

use vcal_suite::core::{Array, Bounds, Env};
use vcal_suite::decomp::{Decomp1, RedistPlan};
use vcal_suite::lang;
use vcal_suite::machine::DistArray;
use vcal_suite::spmd::{CommStats, DecompMap, SpmdPlan};

fn phase_cost(src: &str, dec_write: &Decomp1, dec_read: &Decomp1) -> u64 {
    let clause = lang::compile(src).expect("compiles")[0].clone();
    let mut dm = DecompMap::new();
    dm.insert(clause.lhs.array.clone(), dec_write.clone());
    for r in clause.read_refs() {
        dm.entry(r.array.clone())
            .or_insert_with(|| dec_read.clone());
    }
    let plan = SpmdPlan::build(&clause, &dm).expect("plan");
    CommStats::of_plan(&plan, &dm).sends
}

fn main() {
    let n: i64 = 1024;
    let pmax = 8;
    let ext = Bounds::range(0, n - 1);
    let block = Decomp1::block(pmax, ext);
    let scatter = Decomp1::scatter(pmax, ext);

    // phase 1: stencil (neighbour access) — block-friendly for V
    let stencil = "for i := 1 to 1022 do V[i] := 0.5 * (U[i-1] + U[i+1]); od;";
    // phase 2: feed V into a consumer W whose layout is fixed to scatter
    // (say, a solver that needs cyclic layout for load balance)
    let consume = "for i := 0 to 1023 do W[i] := V[i] * 2; od;";

    let stencil_block = phase_cost(stencil, &block, &block);
    let stencil_scatter = phase_cost(stencil, &scatter, &scatter);
    println!("phase 1 (stencil) per sweep:  V block {stencil_block:>5} msgs | V scatter {stencil_scatter:>5} msgs");

    let dm_stride_block = phase_cost(consume, &scatter, &block);
    let dm_stride_scatter = phase_cost(consume, &scatter, &scatter);
    println!("phase 2 (consume) per sweep:  V block {dm_stride_block:>5} msgs | V scatter {dm_stride_scatter:>5} msgs");

    // redistribution plan between the phases
    let plan = RedistPlan::build(&block, &scatter);
    println!(
        "\nblock -> scatter redistribution: {} elements move in {} messages ({} pairs), {} stay",
        plan.moved_elements(),
        plan.message_count(),
        plan.pair_count(),
        plan.stationary
    );

    // total costs of the three strategies for S sweeps of each phase
    let s = 20u64;
    let stay_block = s * stencil_block + s * dm_stride_block;
    let stay_scatter = s * stencil_scatter + s * dm_stride_scatter;
    let redistribute = s * stencil_block + plan.moved_elements() as u64 + s * dm_stride_scatter;
    println!("\ntotal communication for {s} sweeps of each phase:");
    println!("  stay block all along:    {stay_block:>7} elements");
    println!("  stay scatter all along:  {stay_scatter:>7} elements");
    println!("  redistribute in between: {redistribute:>7} elements");

    // apply the redistribution to real data and verify element identity
    let mut env = Env::new();
    env.insert("V", Array::from_fn(ext, |i| (i.scalar() * 7 % 101) as f64));
    let src = DistArray::scatter_from(env.get("V").unwrap(), block.clone());
    // execute the plan: gather (what a real runtime would do with
    // per-pair messages) and scatter into the target layout
    let dst;
    {
        // stationary elements + moves, element by element, as the plan says
        let global = src.gather();
        let moved: std::collections::HashSet<i64> =
            plan.element_moves().map(|(g, _, _)| g).collect();
        let mut check = 0;
        for g in 0..n {
            if !moved.contains(&g) {
                assert_eq!(block.proc_of(g), scatter.proc_of(g), "stationary {g}");
            } else {
                check += 1;
            }
        }
        assert_eq!(check as i64, plan.moved_elements());
        dst = DistArray::scatter_from(&global, scatter.clone());
    }
    assert_eq!(dst.gather().max_abs_diff(env.get("V").unwrap()), 0.0);
    println!("\nredistribution applied and verified: data identical in the new layout.");
}
