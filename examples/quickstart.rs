//! Quickstart: the full pipeline of the paper on one page.
//!
//! 1. Parse an imperative loop (the paper's Fig. 1 shape).
//! 2. Translate it into a V-cal clause.
//! 3. Assign data decompositions (separately from the program!).
//! 4. Derive the SPMD plan — closed-form per-processor schedules.
//! 5. Execute on the simulated shared-memory and distributed-memory
//!    machines and check both against the sequential reference.
//!
//! Run with: `cargo run --example quickstart`

use std::collections::BTreeMap;
use vcal_suite::core::{Array, Bounds, Env};
use vcal_suite::decomp::{Decomp1, LayoutMap};
use vcal_suite::lang;
use vcal_suite::machine::{
    run_distributed, run_sequential, run_shared, DistArray, DistOptions, WriteStrategy,
};
use vcal_suite::spmd::{self, DecompMap, SpmdPlan};

fn main() {
    let n: i64 = 32;
    let pmax = 4;

    // ---- 1+2: source program -> V-cal clause ---------------------------
    let src = "for i := 1 to 30 do if A[i] > 0 then A[i] := B[i+1] * 0.5; fi; od;";
    println!("source:\n{src}\n");
    let clause = lang::compile(src).expect("compiles")[0].clone();
    println!("V-cal:  {}\n", lang::to_vcal(&clause));

    // ---- 3: decompositions (chosen independently of the program) -------
    let dec_a = Decomp1::block(pmax, Bounds::range(0, n - 1));
    let dec_b = Decomp1::scatter(pmax, Bounds::range(0, n));
    println!("{}", LayoutMap::of(&dec_a));
    println!("\n{}\n", LayoutMap::of(&dec_b));

    let mut decomps = DecompMap::new();
    decomps.insert("A".into(), dec_a.clone());
    decomps.insert("B".into(), dec_b.clone());

    // ---- 4: SPMD plan ----------------------------------------------------
    let plan = SpmdPlan::build(&clause, &decomps).expect("plan");
    println!("{}", spmd::emit::plan_report(&plan));
    println!("generated node program for p = 1 (distributed template):");
    println!("{}", spmd::emit::emit_distributed_node(&plan, 1));

    // ---- 5: execute everywhere and compare ------------------------------
    let mut env = Env::new();
    env.insert(
        "A",
        Array::from_fn(Bounds::range(0, n - 1), |i| {
            if i.scalar() % 3 == 0 {
                -1.0
            } else {
                i.scalar() as f64
            }
        }),
    );
    env.insert(
        "B",
        Array::from_fn(Bounds::range(0, n), |i| (i.scalar() * 2) as f64),
    );

    // sequential reference
    let mut seq_env = env.clone();
    run_sequential(&clause, &mut seq_env);

    // shared-memory machine
    let mut shm_env = env.clone();
    let shm = run_shared(&plan, &clause, &mut shm_env, WriteStrategy::Direct).expect("shared");
    assert_eq!(
        shm_env
            .get("A")
            .unwrap()
            .max_abs_diff(seq_env.get("A").unwrap()),
        0.0
    );
    println!(
        "shared-memory machine: OK ({} iterations over {} nodes, {} barrier)",
        shm.total().iterations,
        shm.nodes.len(),
        shm.barriers
    );

    // distributed-memory machine
    let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
    for name in ["A", "B"] {
        arrays.insert(
            name.into(),
            DistArray::scatter_from(env.get(name).unwrap(), decomps[name].clone()),
        );
    }
    let dist = run_distributed(&plan, &clause, &mut arrays, DistOptions::default()).expect("dist");
    assert_eq!(
        arrays["A"].gather().max_abs_diff(seq_env.get("A").unwrap()),
        0.0
    );
    println!(
        "distributed machine:   OK ({} messages exchanged, {} local reads)",
        dist.total().msgs_sent,
        dist.total().local_reads
    );
    println!("\nall three executions agree.");
}
