//! Domain example 5 — reductions: a dot product and a convergence-tested
//! iteration, the "intermediate tests on data values" the paper names as
//! the inherent sequential component of real algorithms.
//!
//! Each node folds its local elements (owner-computes), then the partials
//! combine along a binary tree — `pmax - 1` messages in `ceil(log2 pmax)`
//! rounds, the natural pattern of the paper's hypercube-era targets. The
//! recorded traffic is priced under several interconnect topologies.
//!
//! Run with: `cargo run --example dot_product`

use std::collections::BTreeMap;
use vcal_suite::core::clause::{ReduceOp, Reduction};
use vcal_suite::core::func::Fn1;
use vcal_suite::core::{Array, ArrayRef, Bounds, Env, Expr, IndexSet};
use vcal_suite::decomp::Decomp1;
use vcal_suite::machine::{
    price_traffic, run_reduce_distributed, run_reduce_shared, DistArray, Topology,
};

fn main() {
    let n: i64 = 1 << 14;
    let pmax = 8;

    let mut env = Env::new();
    env.insert(
        "A",
        Array::from_fn(Bounds::range(0, n - 1), |i| (i.scalar() % 13) as f64),
    );
    env.insert(
        "B",
        Array::from_fn(Bounds::range(0, n - 1), |i| 1.0 / (1.0 + i.scalar() as f64)),
    );

    let dot = Reduction {
        iter: IndexSet::range(0, n - 1),
        op: ReduceOp::Sum,
        expr: Expr::mul(
            Expr::Ref(ArrayRef::d1("A", Fn1::identity())),
            Expr::Ref(ArrayRef::d1("B", Fn1::identity())),
        ),
    };
    println!("reduction: {dot}\n");

    let reference = env.eval_reduction(&dot);
    println!("sequential reference:     {reference:.9}");

    // shared-memory machine with two iteration decompositions
    for dec in [
        Decomp1::block(pmax, Bounds::range(0, n - 1)),
        Decomp1::scatter(pmax, Bounds::range(0, n - 1)),
    ] {
        let (v, report) = run_reduce_shared(&dot, &dec, &env).unwrap();
        println!(
            "shared  ({:<24}): {v:.9}  (rel.err {:.1e}, {} iterations)",
            dec.to_string(),
            (v - reference).abs() / reference,
            report.total().iterations
        );
    }

    // distributed machine: co-located arrays, tree combine
    let dec = Decomp1::block(pmax, Bounds::range(0, n - 1));
    let mut arrays = BTreeMap::new();
    for name in ["A", "B"] {
        arrays.insert(
            name.to_string(),
            DistArray::scatter_from(env.get(name).unwrap(), dec.clone()),
        );
    }
    let (v, report) = run_reduce_distributed(ReduceOp::Sum, &dot.expr, &arrays).unwrap();
    println!(
        "distributed (tree combine): {v:.9}  (rel.err {:.1e}, {} messages)",
        (v - reference).abs() / reference,
        report.total().msgs_sent
    );

    println!("\ncombining-tree traffic priced by topology (pmax = {pmax}):");
    for (name, topo) in [
        ("crossbar", Topology::Crossbar),
        ("ring", Topology::Ring),
        ("mesh 2x4", Topology::Mesh2D { rows: 2, cols: 4 }),
        ("hypercube", Topology::Hypercube),
    ] {
        let cost = price_traffic(topo, &report.traffic);
        println!(
            "  {name:<10} {} messages, {} total hops (diameter {})",
            cost.messages,
            cost.total_hops,
            topo.diameter(pmax)
        );
    }

    // convergence-tested iteration: max-residual reduction drives the loop
    println!("\nconvergence-driven sweep (max-residual reduction as loop test):");
    let mut u = Env::new();
    u.insert(
        "U",
        Array::from_fn(Bounds::range(0, 63), |i| {
            if i.scalar() == 32 {
                64.0
            } else {
                0.0
            }
        }),
    );
    u.insert("V", Array::zeros(Bounds::range(0, 63)));
    let sweep =
        vcal_suite::lang::compile("for i := 1 to 62 do V[i] := 0.5 * (U[i-1] + U[i+1]); od;")
            .unwrap()[0]
            .clone();
    let copy =
        vcal_suite::lang::compile("for i := 1 to 62 do U[i] := V[i]; od;").unwrap()[0].clone();
    let residual = Reduction {
        iter: IndexSet::range(1, 62),
        op: ReduceOp::Max,
        expr: Expr::Bin(
            vcal_suite::core::BinOp::Max,
            Box::new(Expr::Bin(
                vcal_suite::core::BinOp::Sub,
                Box::new(Expr::Ref(ArrayRef::d1("U", Fn1::identity()))),
                Box::new(Expr::Ref(ArrayRef::d1("V", Fn1::identity()))),
            )),
            Box::new(Expr::Bin(
                vcal_suite::core::BinOp::Sub,
                Box::new(Expr::Ref(ArrayRef::d1("V", Fn1::identity()))),
                Box::new(Expr::Ref(ArrayRef::d1("U", Fn1::identity()))),
            )),
        ),
    };
    let iter_dec = Decomp1::block(pmax, Bounds::range(1, 62));
    let mut sweeps = 0;
    loop {
        u.exec_clause(&sweep);
        let (res, _) = run_reduce_shared(&residual, &iter_dec, &u).unwrap();
        u.exec_clause(&copy);
        sweeps += 1;
        if res < 2.0 || sweeps >= 2000 {
            println!("  converged after {sweeps} sweeps (max residual {res:.4})");
            break;
        }
    }
}
