//! Domain example 6 — a sequential recurrence executed as a DOACROSS
//! pipeline.
//!
//! The paper notes that non-trivial orderings of the SPMD form yield
//! "DOACROSS-style synchronization patterns" (Section 2.6). For a
//! forward recurrence `A[i] := A[i-d] + B[i]` (`•` ordering — the
//! front-end infers it automatically from the carried dependence), a
//! block decomposition lets processor `p` start as soon as the last `d`
//! values of processor `p-1` arrive: a software pipeline with exactly
//! `d` boundary messages per processor pair.
//!
//! Run with: `cargo run --example recurrence`

use std::collections::BTreeMap;
use vcal_suite::core::{Array, Bounds, Env};
use vcal_suite::decomp::Decomp1;
use vcal_suite::lang;
use vcal_suite::machine::{carried_distances, run_doacross, DistArray};

fn main() {
    let n: i64 = 4096;
    let pmax = 8;

    // prefix-sum-flavoured recurrence; the translator infers `•`
    let src = "for i := 1 to 4095 do A[i] := A[i-1] + B[i]; od;";
    let clause = lang::compile(src).expect("compiles")[0].clone();
    println!("source:\n{src}\n");
    println!(
        "V-cal (note the sequential ordering \u{2022}):\n  {}\n",
        lang::to_vcal(&clause)
    );
    println!(
        "carried distances: {:?}\n",
        carried_distances(&clause).unwrap()
    );

    let mut env = Env::new();
    env.insert("A", Array::zeros(Bounds::range(0, n - 1)));
    env.insert(
        "B",
        Array::from_fn(Bounds::range(0, n - 1), |i| ((i.scalar() % 10) + 1) as f64),
    );

    // sequential reference
    let mut reference = env.clone();
    reference.exec_clause(&clause);

    // DOACROSS pipeline over block-decomposed arrays
    let dec = Decomp1::block(pmax, Bounds::range(0, n - 1));
    let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
    for name in ["A", "B"] {
        arrays.insert(
            name.into(),
            DistArray::scatter_from(env.get(name).unwrap(), dec.clone()),
        );
    }
    let report = run_doacross(&clause, &mut arrays).expect("pipeline");
    let diff = arrays["A"]
        .gather()
        .max_abs_diff(reference.get("A").unwrap());
    assert_eq!(diff, 0.0, "pipeline result differs");

    println!("DOACROSS pipeline over {pmax} processors:");
    println!("  iterations executed: {}", report.total().iterations);
    println!(
        "  boundary messages:   {} (exactly d = 1 per processor pair)",
        report.total().msgs_received
    );
    println!("  result identical to the sequential loop.");
    println!();
    println!(
        "pipeline intuition: each node's {} iterations overlap with its\n\
         successor's after a startup delay of d values — wall-clock approaches\n\
         (n + pmax*d)/pmax instead of n for large n.",
        n / pmax
    );

    // higher-order recurrence: d = 3
    let src3 = "for i := 3 to 4095 do A[i] := A[i-3] + B[i]; od;";
    let clause3 = lang::compile(src3).expect("compiles")[0].clone();
    let mut arrays3: BTreeMap<String, DistArray> = BTreeMap::new();
    for name in ["A", "B"] {
        arrays3.insert(
            name.into(),
            DistArray::scatter_from(env.get(name).unwrap(), dec.clone()),
        );
    }
    let mut reference3 = env.clone();
    reference3.exec_clause(&clause3);
    let report3 = run_doacross(&clause3, &mut arrays3).expect("pipeline d=3");
    assert_eq!(
        arrays3["A"]
            .gather()
            .max_abs_diff(reference3.get("A").unwrap()),
        0.0
    );
    println!(
        "\nthird-order recurrence (d = 3): verified, {} boundary messages \
         (3 per pair).",
        report3.total().msgs_received
    );
}
