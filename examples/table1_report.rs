//! Regenerates the paper's **Table I** as a live classification report:
//! for every access-function row and decomposition column, which theorem
//! the optimizer fires, the resulting schedule shape for a sample
//! processor, and the work reduction against the naive membership test.
//!
//! Run with: `cargo run --example table1_report`

use vcal_suite::core::func::Fn1;
use vcal_suite::core::Bounds;
use vcal_suite::decomp::Decomp1;
use vcal_suite::spmd::{emit, naive_schedule, optimize};

fn main() {
    let n: i64 = 4096;
    let pmax = 8;
    let p = 1;

    let rows: Vec<(&str, Fn1, i64, i64)> = vec![
        ("c", Fn1::Const(n / 2), 0, n - 1),
        ("i+c", Fn1::shift(3), 0, n - 4),
        ("a*i+c (pmax mod a=0)", Fn1::affine(2, 1), 0, (n - 2) / 2),
        ("a*i+c (a mod pmax=0)", Fn1::affine(8, 1), 0, (n - 2) / 8),
        ("a*i+c (general)", Fn1::affine(3, 1), 0, (n - 2) / 3),
        (
            "monotonic: i+(i div 4)",
            Fn1::i_plus_i_div(4),
            0,
            (n - 1) * 4 / 5,
        ),
        ("piecewise: (i+c) mod z", Fn1::rotate(n / 3, n), 0, n - 1),
    ];
    let cols: Vec<(&str, Decomp1)> = vec![
        ("Block", Decomp1::block(pmax, Bounds::range(0, n - 1))),
        ("Scatter", Decomp1::scatter(pmax, Bounds::range(0, n - 1))),
        (
            "BS(4)",
            Decomp1::block_scatter(4, pmax, Bounds::range(0, n - 1)),
        ),
    ];

    println!("Table I, regenerated (n = {n}, pmax = {pmax}, shown for p = {p}):\n");
    println!(
        "{:<26} {:<9} {:<26} {:>8} {:>8} {:>7}",
        "f(i)", "layout", "optimization", "naive", "closed", "ratio"
    );
    println!("{}", "-".repeat(88));
    for (fname, f, imin, imax) in &rows {
        for (dname, dec) in &cols {
            let opt = optimize(f, dec, *imin, *imax, p);
            let naive = naive_schedule(f, dec, *imin, *imax, p);
            // exactness check before reporting
            assert_eq!(
                opt.schedule.to_sorted_vec(),
                naive.to_sorted_vec(),
                "{fname}/{dname}"
            );
            let (nw, cw) = (naive.work_estimate(), opt.schedule.work_estimate());
            println!(
                "{:<26} {:<9} {:<26} {:>8} {:>8} {:>7.1}",
                fname,
                dname,
                opt.kind.name(),
                nw,
                cw,
                nw as f64 / cw.max(1) as f64
            );
        }
        println!();
    }

    // show one generated loop per interesting kind
    println!("{}", "=".repeat(88));
    println!("\ngenerated loops (p = {p}):\n");
    for (fname, f, imin, imax) in [
        ("a*i+c (general)", Fn1::affine(3, 1), 0, (n - 2) / 3),
        (
            "monotonic under BS(4)",
            Fn1::i_plus_i_div(4),
            0,
            (n - 1) * 4 / 5,
        ),
    ] {
        let dec = if fname.contains("BS") {
            Decomp1::block_scatter(4, pmax, Bounds::range(0, n - 1))
        } else {
            Decomp1::scatter(pmax, Bounds::range(0, n - 1))
        };
        let opt = optimize(&f, &dec, imin, imax, p);
        println!("f(i) = {fname} under {dec}:");
        println!(
            "{}",
            emit::emit_optimized(&opt, "i", "  A'[p, local(f(i))] := ...;\n")
        );
    }
}
