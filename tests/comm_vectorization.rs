//! Equivalence and fault-detection suite for the vectorized
//! communication path of the distributed machine.
//!
//! For every (decomposition × access-function) combination of the
//! paper's Table I shapes, element mode (one tagged message per remote
//! value) and vectorized mode (one packet per planned run) must produce
//! bit-identical arrays and identical element-traffic totals — the
//! batching may only change *how* values travel, never *which* values.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};
use vcal_suite::core::func::Fn1;
use vcal_suite::core::{Array, ArrayRef, Bounds, Clause, Env, Expr, Guard, IndexSet, Ordering};
use vcal_suite::decomp::Decomp1;
use vcal_suite::machine::{
    run_distributed, CommMode, DistArray, DistOptions, FaultPlan, MachineError, NodeStats,
    RetryPolicy,
};
use vcal_suite::spmd::{DecompMap, SpmdPlan};

const N: i64 = 1024;
const PMAX: i64 = 8;

/// `A[f(i)] := B[g(i)] + 0.5` over `[0, imax]`.
fn clause(f: Fn1, g: Fn1, imax: i64) -> Clause {
    Clause {
        iter: IndexSet::range(0, imax),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1("A", f),
        rhs: Expr::add(Expr::Ref(ArrayRef::d1("B", g)), Expr::Lit(0.5)),
    }
}

/// A over `[0, N-1]`, B over `[0, 3N]` (roomy enough for `a·i+c`).
fn env() -> Env {
    let mut env = Env::new();
    env.insert("A", Array::zeros(Bounds::range(0, N - 1)));
    env.insert(
        "B",
        Array::from_fn(Bounds::range(0, 3 * N), |i| {
            (i.scalar() * 7 % 97) as f64 - 40.0
        }),
    );
    env
}

fn decomp_menu(e: Bounds) -> Vec<(&'static str, Decomp1)> {
    vec![
        ("block", Decomp1::block(PMAX, e)),
        ("scatter", Decomp1::scatter(PMAX, e)),
        ("bs4", Decomp1::block_scatter(4, PMAX, e)),
    ]
}

/// Run one (plan, mode) combination, check the result against the
/// sequential reference, and return the summed node stats.
fn run_mode(
    plan: &SpmdPlan,
    cl: &Clause,
    env0: &Env,
    dm: &DecompMap,
    reference: &Env,
    mode: CommMode,
    ctx: &str,
) -> NodeStats {
    let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
    for name in ["A", "B"] {
        arrays.insert(
            name.into(),
            DistArray::scatter_from(env0.get(name).unwrap(), dm[name].clone()),
        );
    }
    let opts = DistOptions {
        mode,
        ..DistOptions::default()
    };
    let report = run_distributed(plan, cl, &mut arrays, opts)
        .unwrap_or_else(|e| panic!("{ctx} [{mode:?}]: {e}"));
    assert_eq!(
        arrays["A"]
            .gather()
            .max_abs_diff(reference.get("A").unwrap()),
        0.0,
        "{ctx} [{mode:?}]: result differs from sequential reference"
    );
    report.total()
}

#[test]
fn element_and_vectorized_agree_on_all_combos() {
    let env0 = env();
    let fns: Vec<(&str, Fn1, Fn1, i64)> = vec![
        ("f=i, g=i+c", Fn1::identity(), Fn1::shift(3), N - 1),
        ("f=i, g=a*i+c", Fn1::identity(), Fn1::affine(3, 1), N - 1),
        (
            "f=a*i+c, g=i+c",
            Fn1::affine(2, 1),
            Fn1::shift(3),
            (N - 2) / 2,
        ),
        (
            "f=a*i+c, g=a*i+c",
            Fn1::affine(2, 1),
            Fn1::affine(3, 1),
            (N - 2) / 2,
        ),
    ];
    for (da_name, dec_a) in decomp_menu(Bounds::range(0, N - 1)) {
        for (db_name, dec_b) in decomp_menu(Bounds::range(0, 3 * N)) {
            for (fname, f, g, imax) in &fns {
                let cl = clause(f.clone(), g.clone(), *imax);
                let mut reference = env0.clone();
                reference.exec_clause(&cl);
                let mut dm = DecompMap::new();
                dm.insert("A".into(), dec_a.clone());
                dm.insert("B".into(), dec_b.clone());
                for naive in [false, true] {
                    let plan = if naive {
                        SpmdPlan::build_naive(&cl, &dm).unwrap()
                    } else {
                        SpmdPlan::build(&cl, &dm).unwrap()
                    };
                    let ctx = format!("A={da_name} B={db_name} {fname} naive={naive}");
                    let elem =
                        run_mode(&plan, &cl, &env0, &dm, &reference, CommMode::Element, &ctx);
                    let vect = run_mode(
                        &plan,
                        &cl,
                        &env0,
                        &dm,
                        &reference,
                        CommMode::Vectorized,
                        &ctx,
                    );
                    // identical element totals: batching changes the wire
                    // layout, never the set of communicated values
                    assert_eq!(elem.msgs_sent, vect.msgs_sent, "{ctx}");
                    assert_eq!(elem.msgs_received, vect.msgs_received, "{ctx}");
                    assert_eq!(vect.msgs_received, vect.msgs_sent, "{ctx}");
                    // element mode is one wire message per element
                    assert_eq!(elem.packets_sent, elem.msgs_sent, "{ctx}");
                    // vectorized never sends more wire messages
                    assert!(vect.packets_sent <= elem.packets_sent, "{ctx}");
                }
            }
        }
    }
}

#[test]
fn scatter_affine_meets_ten_x_aggregation() {
    // The acceptance configuration: 1024 elements, scatter decomposition,
    // a·i+c access, 8 nodes — vectorized mode must put at least 10×
    // fewer messages on the wire than element mode.
    let env0 = env();
    let cl = clause(Fn1::identity(), Fn1::affine(3, 1), N - 1);
    let mut reference = env0.clone();
    reference.exec_clause(&cl);
    let mut dm = DecompMap::new();
    dm.insert("A".into(), Decomp1::scatter(PMAX, Bounds::range(0, N - 1)));
    dm.insert("B".into(), Decomp1::scatter(PMAX, Bounds::range(0, 3 * N)));
    let plan = SpmdPlan::build(&cl, &dm).unwrap();
    let ctx = "scatter a*i+c acceptance";
    let elem = run_mode(&plan, &cl, &env0, &dm, &reference, CommMode::Element, ctx);
    let vect = run_mode(
        &plan,
        &cl,
        &env0,
        &dm,
        &reference,
        CommMode::Vectorized,
        ctx,
    );
    assert!(elem.msgs_sent > 0, "config must actually communicate");
    assert!(
        elem.packets_sent >= 10 * vect.packets_sent,
        "aggregation below 10x: element packets {} vs vectorized {}",
        elem.packets_sent,
        vect.packets_sent
    );
    assert!(vect.bytes_sent < elem.bytes_sent);
}

/// Shared setup for the packet-loss tests: a plan where node 1's first
/// packet carries a whole multi-element run, plus the scattered arrays.
fn drop_setup() -> (SpmdPlan, Clause, BTreeMap<String, DistArray>) {
    let env0 = env();
    let cl = clause(Fn1::identity(), Fn1::identity(), N - 1);
    let mut dm = DecompMap::new();
    dm.insert("A".into(), Decomp1::block(PMAX, Bounds::range(0, N - 1)));
    dm.insert("B".into(), Decomp1::scatter(PMAX, Bounds::range(0, 3 * N)));
    let plan = SpmdPlan::build(&cl, &dm).unwrap();
    // node 1 must really have a multi-element first run, so the drop
    // removes a packet, not a single value
    let first_run = &plan.nodes[1].comm.sends[0].runs[0];
    assert!(first_run.count > 1, "first run should batch elements");

    let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
    for name in ["A", "B"] {
        arrays.insert(
            name.into(),
            DistArray::scatter_from(env0.get(name).unwrap(), dm[name].clone()),
        );
    }
    (plan, cl, arrays)
}

#[test]
fn dropped_packet_recovered_by_retransmission() {
    // Drop node 1's first *packet* (a whole run). With a retry budget
    // the receiver NACKs the gap, node 1 retransmits, and the run
    // completes bit-identically to the fault-free result.
    let (plan, cl, mut arrays) = drop_setup();
    let mut reference = env();
    reference.exec_clause(&cl);
    let opts = DistOptions {
        recv_timeout: Duration::from_secs(5),
        faults: Some(FaultPlan::drop_nth(1, 0)),
        mode: CommMode::Vectorized,
        retry: RetryPolicy::fast(),
        ..DistOptions::default()
    };
    let report = run_distributed(&plan, &cl, &mut arrays, opts).expect("recoverable drop");
    let total = report.total();
    assert!(
        total.retransmits > 0,
        "recovery must go through retransmission"
    );
    assert!(total.nacks_sent > 0, "receiver must have NACKed the gap");
    assert_eq!(
        arrays["A"]
            .gather()
            .max_abs_diff(reference.get("A").unwrap()),
        0.0,
        "recovered run differs from sequential reference"
    );
}

#[test]
fn dropped_packet_detected_within_timeout() {
    // With retries disabled (legacy behaviour) the same dropped packet
    // must surface as a typed MissingPacket error carrying the wire
    // coordinates (peer, slot, run) within the configured receive
    // timeout instead of hanging.
    let (plan, cl, mut arrays) = drop_setup();
    let timeout = Duration::from_millis(250);
    let opts = DistOptions {
        recv_timeout: timeout,
        faults: Some(FaultPlan::drop_nth(1, 0)),
        mode: CommMode::Vectorized,
        retry: RetryPolicy::none(),
        ..DistOptions::default()
    };
    let t0 = Instant::now();
    let err = run_distributed(&plan, &cl, &mut arrays, opts).unwrap_err();
    let elapsed = t0.elapsed();
    match err {
        MachineError::MissingPacket { peer, .. } => {
            assert_eq!(peer, 1, "loss should be attributed to the dropping peer")
        }
        other => panic!("expected MissingPacket, got {other}"),
    }
    // detection happens within the receive timeout (plus scheduling
    // slack), not after a hang
    assert!(
        elapsed < timeout * 10,
        "loss detection took {elapsed:?} with a {timeout:?} timeout"
    );
}
