//! Differential oracle harness for the decomposition auto-tuner
//! (DESIGN.md §17).
//!
//! [`DistSession::run_program_tuned`] profiles the leading steps of a
//! timestep loop, calibrates the §4 cost model from the measured
//! timings, prices the candidate layout space from plans alone, and may
//! insert a mid-loop redistribution when switching is predicted to
//! amortize. The contract is twofold:
//!
//! * **bitwise correctness** — whatever layout the tuner picks, and
//!   whether or not it switches, the final state of every array is
//!   bit-identical to the iterated sequential reference, under every
//!   execution configuration (CommMode × overlap × SimdPolicy ×
//!   schedule mode);
//! * **decision sanity** — a clearly misaligned incumbent with plenty
//!   of remaining steps is switched away from (redistribution
//!   inserted); an already-optimal incumbent is kept.
//!
//! Deterministic fixtures pin the canonical cases; the proptest sweep
//! drives random clause programs through the configuration matrix.

use proptest::prelude::*;
use vcal_suite::core::func::Fn1;
use vcal_suite::core::pred::CmpOp;
use vcal_suite::core::{Array, ArrayRef, Bounds, Clause, Env, Expr, Guard, IndexSet, Ordering};
use vcal_suite::decomp::{Decomp1, Distribution};
use vcal_suite::machine::{
    CommMode, DistOptions, DistSession, MachineError, ProgramStep, ScheduleMode, SimdPolicy,
    TuneOptions, TuneReport, NULL_TRACER,
};
use vcal_suite::spmd::DecompMap;

const N: i64 = 96;
const PMAX: i64 = 4;
const NAMES: [&str; 3] = ["A", "B", "C"];

/// Communication modes under test, honouring the CI matrix filter
/// (`VCAL_FAULT_MODE=element|vectorized`; unset, both modes run).
fn modes() -> Vec<CommMode> {
    match std::env::var("VCAL_FAULT_MODE").as_deref() {
        Ok("element") => vec![CommMode::Element],
        Ok("vectorized") => vec![CommMode::Vectorized],
        _ => vec![CommMode::Element, CommMode::Vectorized],
    }
}

/// Deterministic mixed-sign initial data so guards fire both ways.
fn initial_env(decomps: &DecompMap) -> Env {
    let mut env = Env::new();
    for (name, dec) in decomps.iter() {
        let salt = name.bytes().next().unwrap_or(0) as i64;
        env.insert(
            name.clone(),
            Array::from_fn(dec.extent(), |i| {
                let v = i.scalar() + salt;
                if v % 3 == 0 {
                    -(v as f64)
                } else {
                    v as f64 * 0.5
                }
            }),
        );
    }
    env
}

fn clause(lhs: &str, rhs: Expr, guard: Guard) -> ProgramStep {
    ProgramStep::Clause(Clause {
        iter: IndexSet::range(1, N - 2),
        ordering: Ordering::Par,
        guard,
        lhs: ArrayRef::d1(lhs, Fn1::identity()),
        rhs,
    })
}

fn read(name: &str, shift: i64) -> Expr {
    Expr::Ref(ArrayRef::d1(name, Fn1::shift(shift)))
}

/// Stencil A→B plus a guarded consume B→C: enough cross-array traffic
/// for layouts to price differently.
fn stencil_program() -> Vec<ProgramStep> {
    vec![
        clause(
            "B",
            Expr::mul(Expr::add(read("A", -1), read("A", 1)), Expr::Lit(0.5)),
            Guard::Always,
        ),
        clause(
            "C",
            Expr::add(read("B", 0), Expr::Lit(1.0)),
            Guard::Cmp {
                lhs: ArrayRef::d1("A", Fn1::identity()),
                op: CmpOp::Gt,
                rhs: 0.0,
            },
        ),
    ]
}

fn all_block() -> DecompMap {
    let mut dm = DecompMap::new();
    for name in NAMES {
        dm.insert(name.into(), Decomp1::block(PMAX, Bounds::range(0, N - 1)));
    }
    dm
}

/// Run the tuned loop on a fresh session and assert every array ends
/// bit-identical to `n_steps` iterations of the sequential reference.
fn assert_tuned_matches_oracle(
    steps: &[ProgramStep],
    n_steps: u64,
    decomps: &DecompMap,
    opts: DistOptions,
    schedule: ScheduleMode,
    topts: TuneOptions,
    ctx: &str,
) -> (DistSession, TuneReport) {
    let env = initial_env(decomps);
    let mut reference = env.clone();
    for _ in 0..n_steps {
        for step in steps {
            if let ProgramStep::Clause(c) = step {
                reference.exec_clause(c);
            }
        }
    }
    let mut session = DistSession::new(&env, decomps.clone())
        .unwrap()
        .with_options(opts);
    let (report, tune) = session
        .run_program_tuned(steps, n_steps, schedule, topts, &NULL_TRACER)
        .unwrap_or_else(|e| panic!("{ctx}: tuned run failed: {e}"));
    assert!(
        tune.candidates_priced >= 2,
        "{ctx}: the tuner must price a real candidate space, got {}",
        tune.candidates_priced
    );
    assert_eq!(
        report.candidates_priced, tune.candidates_priced,
        "{ctx}: ProgramReport and TuneReport disagree on candidates priced"
    );
    assert_eq!(
        report.redistributions_inserted, tune.redistributions_inserted,
        "{ctx}: ProgramReport and TuneReport disagree on redistributions"
    );
    assert_eq!(
        report.tune_cache_hits, tune.tune_cache_hits,
        "{ctx}: ProgramReport and TuneReport disagree on tune-cache hits"
    );
    let got = session.gather_all();
    for name in decomps.keys() {
        let diff = got
            .get(name)
            .unwrap_or_else(|| panic!("{ctx}: array `{name}` lost"))
            .max_abs_diff(reference.get(name).unwrap());
        assert_eq!(
            diff, 0.0,
            "{ctx}: array `{name}` diverged from the iterated oracle \
             (chosen layout: {}, switched: {})",
            tune.chosen, tune.switched
        );
    }
    (session, tune)
}

/// The full configuration matrix: CommMode × overlap × SimdPolicy ×
/// schedule mode, bitwise equality to the iterated oracle.
#[test]
fn tuned_loop_matches_oracle_across_config_matrix() {
    let steps = stencil_program();
    let decomps = all_block();
    for mode in modes() {
        for overlap in [true, false] {
            for simd in ["auto", "on", "off"] {
                for schedule in [ScheduleMode::Seq, ScheduleMode::Dag] {
                    let opts = DistOptions {
                        mode,
                        overlap,
                        simd: SimdPolicy::parse(simd).unwrap(),
                        ..DistOptions::default()
                    };
                    let ctx = format!(
                        "mode={mode:?} overlap={overlap} simd={simd} schedule={schedule:?}"
                    );
                    assert_tuned_matches_oracle(
                        &steps,
                        6,
                        &decomps,
                        opts,
                        schedule,
                        TuneOptions::default(),
                        &ctx,
                    );
                }
            }
        }
    }
}

/// A clearly misaligned incumbent (stencil input scattered) with many
/// remaining steps: the tuner must insert a redistribution, actually
/// change the session layout, and still land on the oracle's bits. The
/// prediction that justified the switch must also rank the chosen
/// layout ahead of the incumbent.
#[test]
fn tuner_inserts_redistribution_when_profitable() {
    let steps = stencil_program();
    let mut decomps = all_block();
    decomps.insert("A".into(), Decomp1::scatter(PMAX, Bounds::range(0, N - 1)));
    let (session, tune) = assert_tuned_matches_oracle(
        &steps,
        400,
        &decomps,
        DistOptions::default(),
        ScheduleMode::Seq,
        TuneOptions::default(),
        "misaligned incumbent",
    );
    assert!(
        tune.switched,
        "400 steps of scattered stencil input must amortize a switch \
         (baseline {:.0} ns vs best {:.0} ns, switch cost {:.0} ns)",
        tune.baseline_step_ns, tune.predicted_step_ns, tune.switch_cost_ns
    );
    assert!(tune.redistributions_inserted >= 1);
    assert!(
        tune.predicted_step_ns < tune.baseline_step_ns,
        "a switch must be justified by a strictly better prediction"
    );
    assert!(
        tune.switch_cost_ns > 0.0,
        "moving elements cannot be predicted free"
    );
    assert_ne!(
        session.decomp_of("A").unwrap().dist(),
        Distribution::Scatter,
        "the session layout must actually change"
    );
}

/// An already-aligned incumbent: nothing beats it by enough to pay for
/// a redistribution, so the tuner must keep it and insert nothing.
#[test]
fn tuner_keeps_aligned_incumbent() {
    let steps = stencil_program();
    let decomps = all_block();
    let (session, tune) = assert_tuned_matches_oracle(
        &steps,
        8,
        &decomps,
        DistOptions::default(),
        ScheduleMode::Seq,
        TuneOptions::default(),
        "aligned incumbent",
    );
    assert!(!tune.switched, "all-block stencil incumbent must be kept");
    assert_eq!(tune.redistributions_inserted, 0);
    assert_eq!(
        session.decomp_of("A").unwrap().dist(),
        Distribution::Block { b: N / PMAX },
    );
}

/// A repeated clause prices once per candidate: the second occurrence
/// is served from the session tune cache.
#[test]
fn repeated_clauses_hit_the_tune_cache() {
    let double = clause("A", Expr::mul(read("A", 0), Expr::Lit(2.0)), Guard::Always);
    let steps = vec![double.clone(), double];
    let decomps = all_block();
    let (_, tune) = assert_tuned_matches_oracle(
        &steps,
        3,
        &decomps,
        DistOptions::default(),
        ScheduleMode::Seq,
        TuneOptions::default(),
        "repeated clause",
    );
    assert!(
        tune.tune_cache_hits >= tune.candidates_priced,
        "every candidate must serve its second identical clause from \
         the cache: {} hits for {} candidates",
        tune.tune_cache_hits,
        tune.candidates_priced
    );
}

/// The tuner owns mid-loop layout changes: a program with an explicit
/// redistribution step is rejected with a typed plan error.
#[test]
fn explicit_redistribution_is_rejected() {
    let steps = vec![
        clause("A", Expr::add(read("A", -1), Expr::Lit(1.0)), Guard::Always),
        ProgramStep::Redistribute {
            array: "A".into(),
            to: Decomp1::scatter(PMAX, Bounds::range(0, N - 1)),
        },
    ];
    let decomps = all_block();
    let env = initial_env(&decomps);
    let mut session = DistSession::new(&env, decomps).unwrap();
    match session.run_program_tuned(
        &steps,
        4,
        ScheduleMode::Seq,
        TuneOptions::default(),
        &NULL_TRACER,
    ) {
        Err(MachineError::PlanMismatch(msg)) => {
            assert!(msg.contains("redistribution"), "unexpected message: {msg}")
        }
        other => panic!("explicit redistribution must be rejected, got {other:?}"),
    }
    // zero steps are rejected the same way
    let one = vec![clause(
        "A",
        Expr::add(read("A", -1), Expr::Lit(1.0)),
        Guard::Always,
    )];
    assert!(matches!(
        session.run_program_tuned(
            &one,
            0,
            ScheduleMode::Seq,
            TuneOptions::default(),
            &NULL_TRACER
        ),
        Err(MachineError::PlanMismatch(_))
    ));
}

/// A budget of 1 still works: the incumbent is force-included next to
/// the single enumerated survivor, so the stay/switch comparison is
/// always possible — even from an out-of-family (replicated) incumbent.
#[test]
fn tiny_budget_and_out_of_family_incumbent() {
    let steps = stencil_program();
    let mut decomps = all_block();
    decomps.insert(
        "C".into(),
        Decomp1::replicated(PMAX, Bounds::range(0, N - 1)),
    );
    let (_, tune) = assert_tuned_matches_oracle(
        &steps,
        4,
        &decomps,
        DistOptions::default(),
        ScheduleMode::Seq,
        TuneOptions {
            budget: 1,
            ..TuneOptions::default()
        },
        "budget 1, replicated incumbent",
    );
    assert_eq!(
        tune.candidates_priced, 2,
        "one survivor plus the force-included incumbent"
    );
}

// ---------------------------------------------------------------------
// randomized programs
// ---------------------------------------------------------------------

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0usize..NAMES.len(), -1i64..=1).prop_map(|(a, s)| read(NAMES[a], s));
    (
        leaf.clone(),
        prop::option::of((leaf, any::<bool>())),
        -3i64..=3,
    )
        .prop_map(|(first, second, lit)| {
            let base = match second {
                Some((other, true)) => Expr::add(first, other),
                Some((other, false)) => Expr::mul(first, other),
                None => first,
            };
            Expr::add(base, Expr::Lit(lit as f64 * 0.5))
        })
}

fn arb_guard() -> impl Strategy<Value = Guard> {
    prop_oneof![
        3 => Just(Guard::Always),
        1 => (0usize..NAMES.len(), any::<bool>()).prop_map(|(a, gt)| Guard::Cmp {
            lhs: ArrayRef::d1(NAMES[a], Fn1::identity()),
            op: if gt { CmpOp::Gt } else { CmpOp::Le },
            rhs: 0.0,
        }),
    ]
}

fn arb_decomps() -> impl Strategy<Value = DecompMap> {
    prop::collection::vec(0u8..3, NAMES.len()..NAMES.len() + 1).prop_map(|kinds| {
        let mut dm = DecompMap::new();
        for (name, kind) in NAMES.iter().zip(kinds) {
            let dec = match kind {
                0 => Decomp1::block(PMAX, Bounds::range(0, N - 1)),
                1 => Decomp1::scatter(PMAX, Bounds::range(0, N - 1)),
                _ => Decomp1::block_scatter(3, PMAX, Bounds::range(0, N - 1)),
            };
            dm.insert((*name).to_string(), dec);
        }
        dm
    })
}

fn arb_opts() -> impl Strategy<Value = DistOptions> {
    (
        any::<bool>(),
        any::<bool>(),
        prop::sample::select(vec!["auto", "on", "off"]),
    )
        .prop_map(|(vectorized, overlap, simd)| DistOptions {
            mode: if vectorized {
                CommMode::Vectorized
            } else {
                CommMode::Element
            },
            overlap,
            simd: SimdPolicy::parse(simd).unwrap(),
            ..DistOptions::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The differential property: any random clause program, any
    /// incumbent layout mixture, any configuration, either schedule —
    /// the tuned loop is bitwise equal to the iterated sequential
    /// oracle, whether or not the tuner decided to switch.
    #[test]
    fn random_tuned_programs_match_oracle(
        specs in prop::collection::vec(
            (0usize..NAMES.len(), arb_expr(), arb_guard()), 1..5),
        decomps in arb_decomps(),
        opts in arb_opts(),
        dag in any::<bool>(),
        n_steps in 2u64..6,
    ) {
        let steps: Vec<ProgramStep> = specs
            .into_iter()
            .map(|(lhs, rhs, guard)| clause(NAMES[lhs], rhs, guard))
            .collect();
        let schedule = if dag { ScheduleMode::Dag } else { ScheduleMode::Seq };
        assert_tuned_matches_oracle(
            &steps,
            n_steps,
            &decomps,
            opts,
            schedule,
            TuneOptions::default(),
            "random tuned program",
        );
    }
}
