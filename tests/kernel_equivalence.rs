//! Compiled-kernel equivalence: the plan-time bytecode/fused-shape
//! execution path must be **bit-identical** to the tree interpreter
//! ([`Env::eval_expr`]) it replaces, and communication/computation
//! overlap must be purely a scheduling change — never a value change.
//!
//! Covered properties, over random expression trees × Table I
//! index-function classes × block/scatter/block-scatter decompositions:
//!
//! * [`CompiledKernel::eval`] reproduces `Env::eval_expr` bit-for-bit at
//!   every loop index (unit level — no machine involved);
//! * the distributed machine's compiled update path produces arrays
//!   bit-identical to the sequential reference executor, with overlap on
//!   and off, in both communication modes;
//! * overlap-on is bit-identical to overlap-off under recoverable
//!   seeded `FaultPlan`s — a dropped boundary packet is retransmitted
//!   and consumed, never satisfied from stale staging by an interior
//!   run;
//! * the plan-time interior/boundary split is exhaustive: interior plus
//!   boundary elements equal the clause's iteration count;
//! * the SIMD lane tier is bit-identical to the scalar path — and both
//!   to `eval_expr` — across every policy (AVX2 auto, forced chunk
//!   loops at 4/8/16 lanes, off), with iteration counts chosen to cover
//!   remainder-lane tails (n not a multiple of the lane width) and
//!   single-element runs, with and without recoverable fault plans.
//!
//! The CI fault matrix runs this suite once per communication mode via
//! `VCAL_FAULT_MODE=element|vectorized`; the SIMD matrix once per
//! policy via `VCAL_SIMD=on|off|auto`. Unset, all variants run.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;
use vcal_suite::core::func::Fn1;
use vcal_suite::core::{
    Array, ArrayRef, BinOp, Bounds, Clause, CmpOp, Env, Expr, Guard, IndexSet, Ix, Ordering,
};
use vcal_suite::decomp::Decomp1;
use vcal_suite::machine::{
    run_distributed, CommMode, DistArray, DistOptions, FaultPlan, RetryPolicy, SimdMode, SimdPolicy,
};
use vcal_suite::spmd::{CompiledKernel, CompiledSchedule, DecompMap, SpmdPlan};

const N: i64 = 64;
const PMAX: i64 = 4;
/// Operand extent covering every vocabulary access over `0..N-1`
/// (worst case: `2i+1` at `i = N-1`, `i-2` at `i = 0`).
const OP_LO: i64 = -2;
const OP_HI: i64 = 2 * (N - 1) + 1;

/// Communication modes to exercise, honouring the CI matrix filter.
fn modes() -> Vec<CommMode> {
    match std::env::var("VCAL_FAULT_MODE").as_deref() {
        Ok("element") => vec![CommMode::Element],
        Ok("vectorized") => vec![CommMode::Vectorized],
        _ => vec![CommMode::Element, CommMode::Vectorized],
    }
}

/// SIMD policies to exercise, honouring the CI matrix filter. Unset,
/// every case compares the auto tier (AVX2 where detected), a forced
/// portable chunk path at a case-chosen lane width, and scalar off.
fn simd_policies(lanes: usize) -> Vec<SimdPolicy> {
    match std::env::var("VCAL_SIMD").as_deref() {
        Ok("on") => vec![SimdPolicy::on()],
        Ok("off") => vec![SimdPolicy::off()],
        Ok("auto") => vec![SimdPolicy::auto()],
        _ => vec![
            SimdPolicy::auto(),
            SimdPolicy {
                mode: SimdMode::On,
                lanes,
            },
            SimdPolicy::off(),
        ],
    }
}

/// The read-reference vocabulary random expressions draw from — Table I
/// index-function classes (`i`, `i+c`, `a·i+c`) over two operand arrays.
fn vocab() -> Vec<(&'static str, Fn1)> {
    vec![
        ("B", Fn1::identity()),
        ("B", Fn1::shift(-1)),
        ("B", Fn1::shift(1)),
        ("B", Fn1::shift(2)),
        ("B", Fn1::affine(2, 1)),
        ("C", Fn1::identity()),
        ("C", Fn1::shift(-2)),
    ]
}

/// Random expression trees over the vocabulary: literals, the loop
/// index, negation and every scalar binary operator, to depth 3.
fn arb_expr() -> BoxedStrategy<Expr> {
    let mut leaves: Vec<Expr> = vocab()
        .into_iter()
        .map(|(a, g)| Expr::Ref(ArrayRef::d1(a, g)))
        .collect();
    leaves.extend([
        Expr::Lit(-2.5),
        Expr::Lit(0.0),
        Expr::Lit(0.5),
        Expr::Lit(3.25),
        Expr::LoopVar { dim: 0 },
    ]);
    let ops = vec![
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Min,
        BinOp::Max,
    ];
    let leaf = prop::sample::select(leaves);
    leaf.prop_recursive(3, 24, 2, move |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            (prop::sample::select(ops.clone()), inner.clone(), inner)
                .prop_map(|(op, a, b)| Expr::Bin(op, Box::new(a), Box::new(b))),
        ]
    })
}

/// Deduplicated `(array, g)` read list of an expression — the slot
/// numbering the machines hand to [`CompiledKernel::compile`].
fn read_list(e: &Expr) -> Vec<(String, Fn1)> {
    let mut out: Vec<(String, Fn1)> = Vec::new();
    for r in e.refs() {
        if let Some(g) = r.map.as_fn1() {
            if !out.iter().any(|(a, h)| *a == r.array && h == g) {
                out.push((r.array.clone(), g.clone()));
            }
        }
    }
    out
}

/// Operand arrays with value mixes that expose sign/NaN-sensitive
/// divergence (negatives, zeros, a spread of magnitudes).
fn operand_env() -> Env {
    let mut env = Env::new();
    env.insert("A", Array::zeros(Bounds::range(0, N - 1)));
    env.insert(
        "B",
        Array::from_fn(Bounds::range(OP_LO, OP_HI), |i| {
            (i.scalar() % 23) as f64 * 0.5 - 5.0
        }),
    );
    env.insert(
        "C",
        Array::from_fn(Bounds::range(OP_LO, OP_HI), |i| {
            let v = i.scalar();
            if v % 7 == 0 {
                0.0
            } else {
                v as f64 * -0.37 + 1.25
            }
        }),
    );
    env
}

fn dec_of(kind: u8, ext: Bounds) -> Decomp1 {
    match kind % 3 {
        0 => Decomp1::block(PMAX, ext),
        1 => Decomp1::scatter(PMAX, ext),
        _ => Decomp1::block_scatter(3, PMAX, ext),
    }
}

fn decomps(a_kind: u8, b_kind: u8, c_kind: u8) -> DecompMap {
    let mut dm = DecompMap::new();
    dm.insert("A".into(), dec_of(a_kind, Bounds::range(0, N - 1)));
    dm.insert("B".into(), dec_of(b_kind, Bounds::range(OP_LO, OP_HI)));
    dm.insert("C".into(), dec_of(c_kind, Bounds::range(OP_LO, OP_HI)));
    dm
}

/// `A[i] := rhs` over `0..n-1`, optionally guarded by a data-dependent
/// comparison on `B[i]` (the paper's Fig. 1 shape). `n` below `N`
/// shrinks per-node runs off lane-width multiples, so the SIMD tier's
/// remainder tails — down to single-element runs at `n = 1` — are
/// exercised against the same scalar oracle.
fn clause_of_n(rhs: Expr, guarded: bool, n: i64) -> Clause {
    Clause {
        iter: IndexSet::range(0, n - 1),
        ordering: Ordering::Par,
        guard: if guarded {
            Guard::Cmp {
                lhs: ArrayRef::d1("B", Fn1::identity()),
                op: CmpOp::Gt,
                rhs: 0.0,
            }
        } else {
            Guard::Always
        },
        lhs: ArrayRef::d1("A", Fn1::identity()),
        rhs,
    }
}

/// One distributed execution; returns the gathered `A`.
fn run_dist(
    cl: &Clause,
    dm: &DecompMap,
    env0: &Env,
    mode: CommMode,
    overlap: bool,
    simd: SimdPolicy,
    faults: Option<FaultPlan>,
) -> Result<Array, String> {
    let plan = SpmdPlan::build(cl, dm).map_err(|e| e.to_string())?;
    let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
    for name in ["A", "B", "C"] {
        arrays.insert(
            name.to_string(),
            DistArray::scatter_from(env0.get(name).unwrap(), dm[name].clone()),
        );
    }
    let opts = DistOptions {
        recv_timeout: Duration::from_secs(10),
        faults,
        mode,
        retry: if faults.is_some() {
            RetryPolicy::fast()
        } else {
            RetryPolicy::default()
        },
        overlap,
        simd,
        ..DistOptions::default()
    };
    run_distributed(&plan, cl, &mut arrays, opts).map_err(|e| e.to_string())?;
    Ok(arrays["A"].gather())
}

/// Bit pattern of every element — `-0.0` vs `0.0` and NaN payloads
/// included, which `max_abs_diff` cannot distinguish.
fn bits(a: &Array) -> Vec<u64> {
    a.data().iter().map(|v| v.to_bits()).collect()
}

/// The plan-time interior/boundary split covers the stencil's iteration
/// space exactly and both classes are non-empty on a block layout.
#[test]
fn interior_boundary_split_is_exhaustive() {
    let rhs = Expr::mul(
        Expr::add(
            Expr::Ref(ArrayRef::d1("B", Fn1::shift(-1))),
            Expr::Ref(ArrayRef::d1("B", Fn1::shift(1))),
        ),
        Expr::Lit(0.5),
    );
    let cl = Clause {
        iter: IndexSet::range(1, N - 2),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1("A", Fn1::identity()),
        rhs,
    };
    let mut dm = DecompMap::new();
    dm.insert("A".into(), Decomp1::block(PMAX, Bounds::range(0, N - 1)));
    dm.insert("B".into(), Decomp1::block(PMAX, Bounds::range(0, N - 1)));
    let plan = SpmdPlan::build(&cl, &dm).unwrap();
    let cs = CompiledSchedule::compile_exec(&plan, &cl, &dm);
    assert!(cs.has_exec(), "stencil clause must compile");
    let census = cs.overlap_census();
    assert_eq!(
        census.interior_elems + census.boundary_elems,
        (N - 2) as u64,
        "split must cover the iteration space exactly"
    );
    assert!(census.interior_elems > 0, "block stencil has interior work");
    assert!(
        census.boundary_runs > 0,
        "block stencil has halo boundaries"
    );
    assert!(
        census.remote_elems >= census.boundary_runs,
        "every boundary run consumes at least one remote element"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unit level: the compiled bytecode reproduces the tree interpreter
    /// bit-for-bit at every loop index, for random expression trees.
    #[test]
    fn bytecode_bitwise_equals_eval_expr(e in arb_expr()) {
        let env = operand_env();
        let reads = read_list(&e);
        let k = CompiledKernel::compile(&e, reads.len(), |r: &ArrayRef| {
            let g = r.map.as_fn1()?;
            reads.iter().position(|(a, h)| *a == r.array && h == g)
        });
        let k = k.expect("every vocabulary reference resolves");
        let mut stack = Vec::with_capacity(k.stack_capacity());
        for i in 0..N {
            let vals: Vec<f64> = reads
                .iter()
                .map(|(a, g)| env.get(a).unwrap().get(&Ix::d1(g.eval(i))))
                .collect();
            let want = env.eval_expr(&e, &Ix::d1(i));
            let got = k.eval(&[i], &vals, &mut stack);
            prop_assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "expr={:?} i={} got={} want={}",
                &e, i, got, want
            );
        }
    }

    /// Machine level: the compiled update path is bit-identical to the
    /// sequential reference — overlap-on to overlap-off, and every SIMD
    /// policy to the scalar path — across random expressions, guards,
    /// decomposition layouts, and iteration extents (including extents
    /// that leave remainder-lane tails or single-element runs).
    #[test]
    fn distributed_matches_sequential_bitwise(
        e in arb_expr(),
        guarded in any::<bool>(),
        n in 1i64..=N,
        a_kind in 0u8..3,
        b_kind in 0u8..3,
        c_kind in 0u8..3,
        mode_ix in 0usize..2,
        lanes_ix in 0usize..3,
    ) {
        let all = modes();
        let mode = all[mode_ix % all.len()];
        let cl = clause_of_n(e, guarded, n);
        let dm = decomps(a_kind, b_kind, c_kind);
        let env0 = operand_env();
        let mut reference = env0.clone();
        reference.exec_clause(&cl);
        let want = bits(reference.get("A").unwrap());

        for simd in simd_policies([4, 8, 16][lanes_ix]) {
            let on = run_dist(&cl, &dm, &env0, mode, true, simd, None)
                .map_err(TestCaseError::fail)?;
            let off = run_dist(&cl, &dm, &env0, mode, false, simd, None)
                .map_err(TestCaseError::fail)?;
            prop_assert_eq!(
                &bits(&on), &want,
                "{:?} overlap=on simd={:?} n={} diverges: {}", mode, simd, n, cl
            );
            prop_assert_eq!(
                &bits(&off), &want,
                "{:?} overlap=off simd={:?} n={} diverges: {}", mode, simd, n, cl
            );
        }
    }

    /// Under a recoverable seeded fault plan the results are *still*
    /// bit-identical to the sequential reference with overlap on and
    /// off and under every SIMD policy — a dropped boundary packet is
    /// recovered and consumed, never replaced by stale staging in an
    /// interior-first schedule, and retry loops never re-enter the
    /// vector tier with partial state.
    #[test]
    fn overlap_invariant_under_recoverable_faults(
        e in arb_expr(),
        seed in any::<u64>(),
        p_drop in 0u32..15,
        n in 1i64..=N,
        a_kind in 0u8..3,
        b_kind in 0u8..3,
        mode_ix in 0usize..2,
        lanes_ix in 0usize..3,
    ) {
        let all = modes();
        let mode = all[mode_ix % all.len()];
        let cl = clause_of_n(e, false, n);
        let dm = decomps(a_kind, b_kind, 0);
        let env0 = operand_env();
        let mut reference = env0.clone();
        reference.exec_clause(&cl);
        let want = bits(reference.get("A").unwrap());

        let fp = FaultPlan::seeded(seed)
            .with_drop(f64::from(p_drop) / 100.0)
            .with_duplicate(0.05)
            .with_reorder(0.05);
        for simd in simd_policies([4, 8, 16][lanes_ix]) {
            let on = run_dist(&cl, &dm, &env0, mode, true, simd, Some(fp))
                .map_err(TestCaseError::fail)?;
            let off = run_dist(&cl, &dm, &env0, mode, false, simd, Some(fp))
                .map_err(TestCaseError::fail)?;
            prop_assert_eq!(
                &bits(&on), &want,
                "{:?} overlap=on simd={:?} under faults: {}", mode, simd, cl
            );
            prop_assert_eq!(
                &bits(&off), &want,
                "{:?} overlap=off simd={:?} under faults: {}", mode, simd, cl
            );
        }
    }
}

/// The plan-time SIMD census and the runtime per-node counters agree:
/// same lane width, same vectorized/fallback run split, same lane/tail
/// element accounting. This pins the shared eligibility predicate —
/// what the planner promises is exactly what the machine executes.
#[test]
fn simd_census_plan_matches_runtime() {
    let rhs = Expr::mul(
        Expr::add(
            Expr::Ref(ArrayRef::d1("B", Fn1::shift(-1))),
            Expr::Ref(ArrayRef::d1("B", Fn1::shift(1))),
        ),
        Expr::Lit(0.5),
    );
    let cl = Clause {
        iter: IndexSet::range(1, N - 2),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1("A", Fn1::identity()),
        rhs,
    };
    let mut dm = DecompMap::new();
    dm.insert("A".into(), Decomp1::block(PMAX, Bounds::range(0, N - 1)));
    dm.insert("B".into(), Decomp1::block(PMAX, Bounds::range(0, N - 1)));
    let plan = SpmdPlan::build(&cl, &dm).unwrap();
    let cs = CompiledSchedule::compile_exec(&plan, &cl, &dm);
    assert!(cs.has_exec(), "stencil clause must compile");

    for simd in [SimdPolicy::auto(), SimdPolicy::on(), SimdPolicy::off()] {
        let planned = cs.simd_census(simd);
        let mut env0 = Env::new();
        env0.insert("A", Array::zeros(Bounds::range(0, N - 1)));
        env0.insert(
            "B",
            Array::from_fn(Bounds::range(0, N - 1), |i| i.scalar() as f64 * 0.25 - 3.0),
        );
        let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
        for name in ["A", "B"] {
            arrays.insert(
                name.to_string(),
                DistArray::scatter_from(env0.get(name).unwrap(), dm[name].clone()),
            );
        }
        let report = run_distributed(
            &plan,
            &cl,
            &mut arrays,
            DistOptions {
                simd,
                ..DistOptions::default()
            },
        )
        .unwrap();
        let ran = report.simd_census();
        assert_eq!(ran.vector_runs, planned.vector_runs, "simd={simd:?}");
        assert_eq!(ran.fallback_runs, planned.fallback_runs, "simd={simd:?}");
        assert_eq!(ran.lane_elems, planned.lane_elems, "simd={simd:?}");
        assert_eq!(ran.tail_elems, planned.tail_elems, "simd={simd:?}");
        if simd.enabled() {
            assert!(planned.vector_runs > 0, "interior stencil must vectorize");
            assert_eq!(ran.lanes, planned.lanes, "lane width must agree");
        } else {
            assert_eq!(planned.vector_runs, 0, "off policy never vectorizes");
        }
    }
}
