//! Deterministic event-log replay: for random clauses, decompositions,
//! and seeded recoverable fault plans, the captured trace must
//!
//! 1. pass the replay checker (every planned send matched by a recv,
//!    retransmits within the NACK budget, packet sizes equal to the
//!    planned `CommRun` lengths), and
//! 2. serialize to a **byte-identical** deterministic JSONL log across
//!    two runs of the same configuration — thread scheduling and the
//!    reliability machinery must never leak into the deterministic
//!    stream.
//!
//! The CI trace job runs this suite once per communication mode via
//! `VCAL_FAULT_MODE=element|vectorized`; unset, both modes run.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;
use vcal_suite::core::func::Fn1;
use vcal_suite::core::{Array, ArrayRef, Bounds, Clause, Env, Expr, Guard, IndexSet, Ordering};
use vcal_suite::decomp::Decomp1;
use vcal_suite::machine::{
    replay_check, run_distributed_traced, CollectingTracer, CommMode, DistArray, DistOptions,
    EventKind, FaultPlan, ReplayError, ReplaySummary, RetryPolicy, TraceLog, TransportKind,
};
use vcal_suite::spmd::{DecompMap, SpmdPlan};

/// Communication modes to exercise, honouring the CI matrix filter.
fn modes() -> Vec<CommMode> {
    match std::env::var("VCAL_FAULT_MODE").as_deref() {
        Ok("element") => vec![CommMode::Element],
        Ok("vectorized") => vec![CommMode::Vectorized],
        _ => vec![CommMode::Element, CommMode::Vectorized],
    }
}

/// Transport backend under test (`VCAL_TRANSPORT=inproc|uds|tcp`,
/// unset means in-process): the trace/replay properties double as the
/// cross-backend regression harness, since worker processes ship their
/// buffered trace events back over the wire.
fn transport() -> TransportKind {
    static WORKER_BIN: std::sync::Once = std::sync::Once::new();
    let kind = match std::env::var("VCAL_TRANSPORT").as_deref() {
        Ok("uds") => TransportKind::Uds,
        Ok("tcp") => TransportKind::Tcp,
        _ => return TransportKind::InProc,
    };
    WORKER_BIN.call_once(|| std::env::set_var("VCAL_WORKER_BIN", env!("CARGO_BIN_EXE_vcalc")));
    kind
}

/// Build `A[i] := B[g(i)] + 1` with A/B decomposed by `(dec_kind % 3)`.
fn build_case(n: i64, pmax: i64, g: Fn1, dec_kind: usize) -> (SpmdPlan, Clause, DecompMap, Env) {
    // image of g over 0..n-1 must stay inside B's extent
    let (lo, hi) = (g.eval(0).min(g.eval(n - 1)), g.eval(0).max(g.eval(n - 1)));
    let b_lo = lo.min(0);
    let b_hi = hi.max(n - 1);
    let cl = Clause {
        iter: IndexSet::range(0, n - 1),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1("A", Fn1::identity()),
        rhs: Expr::add(Expr::Ref(ArrayRef::d1("B", g)), Expr::Lit(1.0)),
    };
    let mut env0 = Env::new();
    env0.insert("A", Array::zeros(Bounds::range(0, n - 1)));
    env0.insert(
        "B",
        Array::from_fn(Bounds::range(b_lo, b_hi), |i| {
            (i.scalar() % 23) as f64 * 0.5 - 5.0
        }),
    );
    let a_ext = Bounds::range(0, n - 1);
    let b_ext = Bounds::range(b_lo, b_hi);
    let dec = |ext: Bounds| match dec_kind % 3 {
        0 => Decomp1::block(pmax, ext),
        1 => Decomp1::scatter(pmax, ext),
        _ => Decomp1::block_scatter(3, pmax, ext),
    };
    let mut dm = DecompMap::new();
    dm.insert("A".into(), dec(a_ext));
    dm.insert("B".into(), Decomp1::scatter(pmax, b_ext));
    let plan = SpmdPlan::build(&cl, &dm).unwrap();
    (plan, cl, dm, env0)
}

/// One traced execution; returns the replay summary and the
/// deterministic JSONL serialization.
fn traced_run(
    plan: &SpmdPlan,
    cl: &Clause,
    env0: &Env,
    dm: &DecompMap,
    mode: CommMode,
    faults: Option<FaultPlan>,
) -> Result<(ReplaySummary, String, TraceLog), String> {
    let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
    for name in ["A", "B"] {
        arrays.insert(
            name.to_string(),
            DistArray::scatter_from(env0.get(name).unwrap(), dm[name].clone()),
        );
    }
    let opts = DistOptions {
        recv_timeout: Duration::from_secs(10),
        faults,
        mode,
        retry: if faults.is_some() {
            RetryPolicy::fast()
        } else {
            RetryPolicy::default()
        },
        transport: transport(),
        ..DistOptions::default()
    };
    let tracer = CollectingTracer::new();
    run_distributed_traced(plan, cl, &mut arrays, opts, &tracer).map_err(|e| e.to_string())?;
    let log = tracer.finish();
    let summary = replay_check(&log, plan, mode, opts.retry).map_err(|e| e.to_string())?;
    Ok((summary, log.to_jsonl(), log))
}

/// The PR's acceptance configuration: a 1024-element scatter `a·i+c`
/// run emits a replay-valid, seed-deterministic event log with per-node
/// phase timings for every participating node.
#[test]
fn acceptance_1024_scatter_affine() {
    let n = 1024i64;
    let (plan, cl, dm, env0) = build_case(n / 2, 8, Fn1::affine(2, 1), 1);
    for mode in modes() {
        let (s1, jsonl1, log) = traced_run(&plan, &cl, &env0, &dm, mode, None).unwrap();
        let (s2, jsonl2, _) = traced_run(&plan, &cl, &env0, &dm, mode, None).unwrap();
        assert_eq!(jsonl1, jsonl2, "{mode:?}: log not deterministic");
        assert_eq!(s1.send_elems, s1.recv_elems, "{mode:?}");
        assert_eq!(s1.det_events, s2.det_events, "{mode:?}");
        assert_eq!(s1.retransmits, 0, "{mode:?}: faultless run retransmitted");
        // every node timed its send and update phases; wall-time never
        // appears in the log body, only in the side-band timings
        let timed_nodes: std::collections::BTreeSet<i64> =
            log.timings.iter().map(|t| t.node).collect();
        for p in 0..8 {
            assert!(timed_nodes.contains(&p), "{mode:?}: node {p} untimed");
        }
        assert!(!jsonl1.contains("nanos"), "wall-time leaked into the log");
    }
}

/// The Jacobi stencil on a block layout — the canonical config with
/// both interior runs (owner-local) and boundary runs (halo traffic).
fn stencil_case(n: i64, pmax: i64) -> (SpmdPlan, Clause, DecompMap, Env) {
    let cl = Clause {
        iter: IndexSet::range(1, n - 2),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1("A", Fn1::identity()),
        rhs: Expr::mul(
            Expr::add(
                Expr::Ref(ArrayRef::d1("B", Fn1::shift(-1))),
                Expr::Ref(ArrayRef::d1("B", Fn1::shift(1))),
            ),
            Expr::Lit(0.5),
        ),
    };
    let mut env0 = Env::new();
    env0.insert("A", Array::zeros(Bounds::range(0, n - 1)));
    env0.insert(
        "B",
        Array::from_fn(Bounds::range(0, n - 1), |i| {
            (i.scalar() % 13) as f64 * 0.75 - 2.0
        }),
    );
    let mut dm = DecompMap::new();
    dm.insert("A".into(), Decomp1::block(pmax, Bounds::range(0, n - 1)));
    dm.insert("B".into(), Decomp1::block(pmax, Bounds::range(0, n - 1)));
    let plan = SpmdPlan::build(&cl, &dm).unwrap();
    (plan, cl, dm, env0)
}

/// With compiled kernels + overlap enabled (the defaults) the stencil
/// log carries interior/boundary run completions, still replays against
/// its plan, and stays byte-identical across runs; overlap-off replays
/// too, and both settings trace the same send/recv multiset.
#[test]
fn overlap_log_has_runs_replays_and_is_deterministic() {
    let (plan, cl, dm, env0) = stencil_case(160, 8);
    for mode in modes() {
        let (s_on, j_on1, log) = traced_run(&plan, &cl, &env0, &dm, mode, None).unwrap();
        let (_, j_on2, _) = traced_run(&plan, &cl, &env0, &dm, mode, None).unwrap();
        assert_eq!(j_on1, j_on2, "{mode:?}: overlap-on log not deterministic");
        assert!(
            j_on1.contains("\"kind\":\"interior_run\""),
            "{mode:?}: no interior runs traced"
        );
        assert!(
            j_on1.contains("\"kind\":\"boundary_run\""),
            "{mode:?}: no boundary runs traced"
        );
        // interior completions precede every boundary completion on each
        // node: overlap schedules owner-local work while halo packets fly
        let mut boundary_seen: std::collections::BTreeSet<i64> = std::collections::BTreeSet::new();
        for e in log.deterministic() {
            match &e.kind {
                EventKind::BoundaryRun { .. } => {
                    boundary_seen.insert(e.node);
                }
                EventKind::InteriorRun { run, .. } => {
                    assert!(
                        !boundary_seen.contains(&e.node),
                        "{mode:?}: node {} interior run {run} after a boundary run",
                        e.node
                    );
                }
                _ => {}
            }
        }

        // overlap-off: replay-valid with the identical send/recv multiset
        let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
        for name in ["A", "B"] {
            arrays.insert(
                name.to_string(),
                DistArray::scatter_from(env0.get(name).unwrap(), dm[name].clone()),
            );
        }
        let opts = DistOptions {
            recv_timeout: Duration::from_secs(10),
            mode,
            overlap: false,
            transport: transport(),
            ..DistOptions::default()
        };
        let tracer = CollectingTracer::new();
        run_distributed_traced(&plan, &cl, &mut arrays, opts, &tracer).unwrap();
        let off_log = tracer.finish();
        let s_off = replay_check(&off_log, &plan, mode, opts.retry).unwrap();
        assert_eq!(s_on.send_elems, s_off.send_elems, "{mode:?}");
        assert_eq!(s_on.recv_elems, s_off.recv_elems, "{mode:?}");
    }
}

/// The checker's interior/boundary phase-ordering rule: a log where a
/// boundary run completes *before* the receives it depends on were
/// consumed must be rejected.
#[test]
fn replay_rejects_boundary_run_before_its_receives() {
    let (plan, cl, dm, env0) = stencil_case(96, 4);
    for mode in modes() {
        let (_, _, mut log) = traced_run(&plan, &cl, &env0, &dm, mode, None).unwrap();
        // find a boundary-run completion that consumed remote operands…
        let bidx = log
            .events
            .iter()
            .position(|e| matches!(e.kind, EventKind::BoundaryRun { recvs, .. } if recvs > 0))
            .expect("stencil trace must contain a boundary run with receives");
        let node = log.events[bidx].node;
        // …and hoist it ahead of that node's first consumed receive
        let ridx = log
            .events
            .iter()
            .position(|e| e.node == node && matches!(e.kind, EventKind::RecvValue { .. }))
            .expect("boundary node must have consumed a receive");
        assert!(ridx < bidx, "{mode:?}: receive should precede completion");
        let ev = log.events.remove(bidx);
        log.events.insert(ridx, ev);
        match replay_check(&log, &plan, mode, RetryPolicy::default()) {
            Err(ReplayError::Phase { node: n, why }) => {
                assert_eq!(n, node, "{mode:?}");
                assert!(why.contains("boundary run"), "{mode:?}: {why}");
            }
            other => panic!("{mode:?}: expected a phase rejection, got {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random clause/decomposition: the event log replays against the
    /// plan and serializes byte-identically across two fault-free runs.
    #[test]
    fn random_case_replays_and_is_deterministic(
        n_sel in 0usize..3,
        pmax_sel in 0usize..3,
        a in 1i64..4,
        c in -3i64..8,
        dec_kind in 0usize..3,
        mode_ix in 0usize..2,
    ) {
        let n = [96i64, 160, 288][n_sel];
        let pmax = [2i64, 4, 8][pmax_sel];
        let all = modes();
        let mode = all[mode_ix % all.len()];
        let (plan, cl, dm, env0) = build_case(n, pmax, Fn1::affine(a, c), dec_kind);
        let (s1, j1, _) = traced_run(&plan, &cl, &env0, &dm, mode, None)
            .map_err(TestCaseError::fail)?;
        let (_, j2, _) = traced_run(&plan, &cl, &env0, &dm, mode, None)
            .map_err(TestCaseError::fail)?;
        prop_assert_eq!(j1, j2, "log not byte-identical (n={}, pmax={})", n, pmax);
        prop_assert_eq!(s1.send_elems, s1.recv_elems);
        prop_assert_eq!(s1.retransmits, 0);
    }

    /// Under a recoverable seeded fault plan the deterministic stream is
    /// *still* byte-identical across same-seed runs — retransmits, dups
    /// and NACKs live in the auxiliary stream and the replay budget
    /// still holds.
    #[test]
    fn recoverable_faults_keep_log_deterministic(
        seed in any::<u64>(),
        p_drop in 0u32..12,
        p_dup in 0u32..12,
        dec_kind in 0usize..3,
        mode_ix in 0usize..2,
    ) {
        let all = modes();
        let mode = all[mode_ix % all.len()];
        let (plan, cl, dm, env0) = build_case(160, 4, Fn1::shift(3), dec_kind);
        let fp = FaultPlan::seeded(seed)
            .with_drop(f64::from(p_drop) / 100.0)
            .with_duplicate(f64::from(p_dup) / 100.0);
        let (s1, j1, _) = traced_run(&plan, &cl, &env0, &dm, mode, Some(fp))
            .map_err(TestCaseError::fail)?;
        let (s2, j2, _) = traced_run(&plan, &cl, &env0, &dm, mode, Some(fp))
            .map_err(TestCaseError::fail)?;
        prop_assert_eq!(&j1, &j2, "same-seed logs differ (seed={})", seed);
        prop_assert_eq!(s1.send_elems, s2.send_elems);
        // stronger still: drops/dups are pure reliability traffic, so
        // the deterministic stream equals the fault-free run's stream
        // (retransmit *counts* are wall-clock dependent and are only
        // bounded — by the replay check above — never compared)
        let (_, j_clean, _) = traced_run(&plan, &cl, &env0, &dm, mode, None)
            .map_err(TestCaseError::fail)?;
        prop_assert_eq!(j1, j_clean, "faults leaked into the deterministic stream");
    }
}
