//! Multi-tenant stress harness for the resident service (`vcalc serve`):
//! many concurrent client sessions with mixed programs, layouts, and
//! tenants against one `ServeHandle`.
//!
//! * every response is bit-identical to a per-session sequential oracle
//!   (compared via `f64::to_bits`, so NaN-safe and exact);
//! * cache hits never cross tenants: the service-side hit/miss counters
//!   sum to *exactly* the per-(tenant, program, layout) cold-miss count,
//!   so a single cross-tenant hit (or a single spurious eviction) fails
//!   the accounting;
//! * the admission gate under `concurrency = 1` serializes overlapping
//!   requests and reports the queue wait;
//! * a one-entry cache budget surfaces evictions on the per-request
//!   service stats and on the handle's aggregate counter;
//! * the same harness holds when the service's worker pool runs as real
//!   OS processes over UDS and requests use the DAG schedule.

use std::collections::BTreeMap;
use std::sync::{Barrier, Once};
use std::thread;
use std::time::Duration;
use vcal_suite::core::func::Fn1;
use vcal_suite::core::{Array, ArrayRef, Bounds, Clause, Env, Expr, Guard, IndexSet, Ordering};
use vcal_suite::decomp::Decomp1;
use vcal_suite::machine::{
    CacheBudget, DistOptions, ProgramStep, ScheduleMode, ServeClient, ServeConfig, ServeHandle,
    ServeRequest, TransportKind,
};
use vcal_suite::spmd::DecompMap;

const N: i64 = 64;
const PMAX: i64 = 4;

/// Point process-backed pools at the `vcalc` binary (which implements
/// the `worker` subcommand); the test binary itself does not.
fn init() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| std::env::set_var("VCAL_WORKER_BIN", env!("CARGO_BIN_EXE_vcalc")));
}

/// Deterministic mixed-sign ramp, exact in f64.
fn seed_val(i: i64, salt: i64) -> f64 {
    let v = (i * 13 + salt) % 31;
    v as f64 - 15.0
}

fn par(lhs: ArrayRef, iter: IndexSet, rhs: Expr) -> ProgramStep {
    ProgramStep::Clause(Clause {
        iter,
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs,
        rhs,
    })
}

/// Program A over `U`, `T`: a stencil sweep (remote reads both ways)
/// plus a scaled copy into a second array.
fn prog_a(n: i64) -> (Vec<ProgramStep>, Vec<&'static str>) {
    let sweep = par(
        ArrayRef::d1("U", Fn1::identity()),
        IndexSet::range(1, n - 2),
        Expr::mul(
            Expr::add(
                Expr::Ref(ArrayRef::d1("U", Fn1::shift(-1))),
                Expr::Ref(ArrayRef::d1("U", Fn1::shift(1))),
            ),
            Expr::Lit(0.5),
        ),
    );
    let copy = par(
        ArrayRef::d1("T", Fn1::identity()),
        IndexSet::range(0, n - 1),
        Expr::mul(
            Expr::Ref(ArrayRef::d1("U", Fn1::identity())),
            Expr::Lit(2.0),
        ),
    );
    (vec![sweep, copy], vec!["U", "T"])
}

/// Program B over `V`, `W`: an axpy-style accumulate plus a coupled
/// update — different clause signatures and array names than program A.
fn prog_b(n: i64) -> (Vec<ProgramStep>, Vec<&'static str>) {
    let axpy = par(
        ArrayRef::d1("V", Fn1::identity()),
        IndexSet::range(0, n - 1),
        Expr::add(
            Expr::Ref(ArrayRef::d1("V", Fn1::identity())),
            Expr::mul(
                Expr::Ref(ArrayRef::d1("W", Fn1::identity())),
                Expr::Lit(0.5),
            ),
        ),
    );
    let couple = par(
        ArrayRef::d1("W", Fn1::identity()),
        IndexSet::range(0, n - 1),
        Expr::add(
            Expr::mul(
                Expr::Ref(ArrayRef::d1("W", Fn1::identity())),
                Expr::Lit(2.0),
            ),
            Expr::Ref(ArrayRef::d1("V", Fn1::identity())),
        ),
    );
    (vec![axpy, couple], vec!["V", "W"])
}

/// One workload shape: a program, its arrays, and a layout variant.
struct Shape {
    steps: Vec<ProgramStep>,
    names: Vec<&'static str>,
    decomps: DecompMap,
    globals: BTreeMap<String, Vec<f64>>,
}

fn shape(n: i64, prog_ix: usize, dec_ix: usize) -> Shape {
    let (steps, names) = if prog_ix == 0 { prog_a(n) } else { prog_b(n) };
    let extent = Bounds::range(0, n - 1);
    let mut decomps = DecompMap::new();
    let mut globals = BTreeMap::new();
    for (k, name) in names.iter().enumerate() {
        let d = if dec_ix == 0 {
            Decomp1::block(PMAX, extent)
        } else {
            Decomp1::scatter(PMAX, extent)
        };
        decomps.insert((*name).to_string(), d);
        let salt = (prog_ix as i64) * 7 + k as i64 * 3 + 1;
        globals.insert(
            (*name).to_string(),
            (0..n).map(|i| seed_val(i, salt)).collect(),
        );
    }
    Shape {
        steps,
        names,
        decomps,
        globals,
    }
}

/// The iterated sequential oracle for a shape, flattened like the
/// service's response.
fn oracle(sh: &Shape, n: i64, n_steps: u64) -> BTreeMap<String, Vec<f64>> {
    let mut env = Env::new();
    for name in &sh.names {
        let vals = &sh.globals[*name];
        env.insert(
            *name,
            Array::from_fn(Bounds::range(0, n - 1), |i| vals[i.scalar() as usize]),
        );
    }
    for _ in 0..n_steps {
        for step in &sh.steps {
            if let ProgramStep::Clause(c) = step {
                env.exec_clause(c);
            }
        }
    }
    sh.names
        .iter()
        .map(|name| {
            let a = env.get(name).unwrap();
            let vals = (0..n)
                .map(|i| a.get(&vcal_suite::core::Ix::d1(i)))
                .collect();
            ((*name).to_string(), vals)
        })
        .collect()
}

/// Bitwise comparison of a response against the oracle: `to_bits` per
/// element, so `-0.0` vs `0.0` or NaN payload drift would fail.
fn assert_bit_identical(
    got: &BTreeMap<String, Vec<f64>>,
    want: &BTreeMap<String, Vec<f64>>,
    who: &str,
) {
    assert_eq!(
        got.keys().collect::<Vec<_>>(),
        want.keys().collect::<Vec<_>>(),
        "{who}: array set differs"
    );
    for (name, w) in want {
        let g = &got[name];
        assert_eq!(g.len(), w.len(), "{who}: `{name}` length differs");
        for (i, (a, b)) in g.iter().zip(w).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{who}: `{name}`[{i}] differs from the sequential oracle ({a} vs {b})"
            );
        }
    }
}

/// Eight concurrent client sessions — three tenants × two programs ×
/// two layouts, every (tenant, program, layout) combination distinct —
/// each issuing three requests against one shared service.
///
/// Exact accounting proves tenant isolation: each of the 8 combinations
/// owns 2 clauses, so the cold misses must total exactly 16 and the
/// warm hits exactly 80 (2 hits on the first request's second timestep
/// plus 4 per repeat request, × 8 sessions). A single cross-tenant hit
/// would drop the miss total below 16; a spurious eviction or a leak
/// between layouts would raise it.
#[test]
fn stress_mixed_tenants_bit_identical_and_isolated() {
    let threads = 8usize;
    let n_steps = 2u64;
    let requests = 3usize;
    let handle = ServeHandle::start(ServeConfig::default()).expect("service start");
    let addr = handle.addr().to_string();

    let barrier = Barrier::new(threads);
    let stats: Vec<_> = thread::scope(|scope| {
        let mut joins = Vec::new();
        for t in 0..threads {
            let addr = &addr;
            let barrier = &barrier;
            joins.push(scope.spawn(move || {
                let tenant = format!("tenant-{}", t % 3);
                let sh = shape(N, t % 2, (t / 2) % 2);
                let want = oracle(&sh, N, n_steps);
                let mut client = ServeClient::connect(addr, &tenant).expect("connect");
                let req = ServeRequest::new(
                    sh.steps.clone(),
                    sh.decomps.clone(),
                    sh.globals.clone(),
                    n_steps,
                );
                barrier.wait();
                let mut per_thread = Vec::new();
                for r in 0..requests {
                    let resp = client.request(&req).expect("request");
                    assert_bit_identical(
                        &resp.globals,
                        &want,
                        &format!("thread {t} ({tenant}) request {r}"),
                    );
                    per_thread.push(resp.service);
                }
                per_thread
            }));
        }
        joins
            .into_iter()
            .flat_map(|j| j.join().expect("client thread"))
            .collect()
    });

    let misses: u64 = stats.iter().map(|s| s.plan_misses).sum();
    let hits: u64 = stats.iter().map(|s| s.plan_hits).sum();
    let evictions: u64 = stats.iter().map(|s| s.evictions).sum();
    assert_eq!(
        misses, 16,
        "plan misses must be exactly one cold build per (tenant, clause, layout)"
    );
    assert_eq!(
        hits, 80,
        "every non-cold clause run must hit its tenant's cache"
    );
    assert_eq!(
        evictions, 0,
        "default budget must hold the whole working set"
    );
    assert_eq!(handle.sessions_served(), (threads * requests) as u64);
    handle.stop();
}

/// Two overlapping requests under `concurrency = 1`: the admission gate
/// serializes them (exactly one waits, and reports a non-zero queue
/// wait) and both still come back bit-identical.
#[test]
fn admission_serializes_and_reports_queue_wait() {
    let handle = ServeHandle::start(ServeConfig {
        concurrency: 1,
        ..ServeConfig::default()
    })
    .expect("service start");
    let addr = handle.addr().to_string();
    let n = 1024i64;
    let n_steps = 12u64;

    let barrier = Barrier::new(2);
    let waits: Vec<u64> = thread::scope(|scope| {
        let joins: Vec<_> = (0..2)
            .map(|t| {
                let addr = &addr;
                let barrier = &barrier;
                scope.spawn(move || {
                    let sh = shape(n, t % 2, 0);
                    let want = oracle(&sh, n, n_steps);
                    let mut client = ServeClient::connect(addr, "solo").expect("connect");
                    let req = ServeRequest::new(
                        sh.steps.clone(),
                        sh.decomps.clone(),
                        sh.globals.clone(),
                        n_steps,
                    );
                    barrier.wait();
                    let resp = client.request(&req).expect("request");
                    assert_bit_identical(&resp.globals, &want, &format!("client {t}"));
                    resp.service.queue_wait_ns
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("client"))
            .collect()
    });

    assert!(
        waits.iter().any(|w| *w > 0),
        "one of two overlapping requests must have queued: waits {waits:?}"
    );
    assert_eq!(handle.sessions_served(), 2);
    handle.stop();
}

/// A one-entry cache budget: alternating programs thrash the single
/// plan slot, the per-request stats surface the evictions, and the
/// handle's aggregate eviction counter agrees — results stay exact.
#[test]
fn tiny_budget_surfaces_evictions_on_reports() {
    let handle = ServeHandle::start(ServeConfig {
        cache_budget: CacheBudget {
            max_entries: 1,
            max_bytes: usize::MAX,
        },
        ..ServeConfig::default()
    })
    .expect("service start");
    let mut client = ServeClient::connect(handle.addr(), "cramped").expect("connect");

    let mut evictions = 0u64;
    for round in 0..2 {
        for prog_ix in 0..2 {
            let sh = shape(N, prog_ix, 0);
            let want = oracle(&sh, N, 1);
            let req =
                ServeRequest::new(sh.steps.clone(), sh.decomps.clone(), sh.globals.clone(), 1);
            let resp = client.request(&req).expect("request");
            assert_bit_identical(
                &resp.globals,
                &want,
                &format!("round {round} prog {prog_ix}"),
            );
            // two clauses through a one-entry tier: the second build
            // always evicts the first
            assert!(
                resp.service.evictions >= 1,
                "round {round} prog {prog_ix}: expected evictions, got {:?}",
                resp.service
            );
            assert_eq!(
                resp.service.plan_hits, 0,
                "nothing can survive a 1-entry tier"
            );
            evictions += resp.service.evictions;
        }
    }
    assert!(
        handle.evictions() >= evictions.saturating_sub(1),
        "aggregate counter must reflect the per-request evictions"
    );
    handle.stop();
}

/// The shared pool as real worker processes over UDS, requests on the
/// DAG schedule: results stay bit-identical, the DAG tier warms within
/// a tenant, and a second tenant running the *same* program still pays
/// its own cold misses (zero cross-tenant hits).
#[test]
fn wire_pool_dag_schedule_and_tenant_cold_start() {
    init();
    let handle = ServeHandle::start(ServeConfig {
        opts: DistOptions {
            transport: TransportKind::Uds,
            ..ServeConfig::default().opts
        },
        ..ServeConfig::default()
    })
    .expect("service start");
    let n_steps = 2u64;
    let sh = shape(N, 0, 0);
    let want = oracle(&sh, N, n_steps);
    let mut req = ServeRequest::new(
        sh.steps.clone(),
        sh.decomps.clone(),
        sh.globals.clone(),
        n_steps,
    );
    req.schedule = ScheduleMode::Dag;
    req.deadline = Some(Duration::from_secs(120));

    let mut alice = ServeClient::connect(handle.addr(), "alice").expect("connect alice");
    let r1 = alice.request(&req).expect("alice cold");
    assert_bit_identical(&r1.globals, &want, "alice cold");
    assert_eq!(r1.service.plan_misses, 2, "alice pays both clause builds");
    assert_eq!(r1.service.dag_misses, 1, "alice pays the DAG build");
    assert_eq!(r1.service.dag_hits, 1, "second timestep reuses the DAG");

    let r2 = alice.request(&req).expect("alice warm");
    assert_bit_identical(&r2.globals, &want, "alice warm");
    assert_eq!(r2.service.plan_misses, 0, "alice's repeat is fully warm");
    assert_eq!(r2.service.dag_misses, 0);

    // same program, same layout, different tenant: everything cold
    let mut bob = ServeClient::connect(handle.addr(), "bob").expect("connect bob");
    let r3 = bob.request(&req).expect("bob cold");
    assert_bit_identical(&r3.globals, &want, "bob cold");
    assert_eq!(
        r3.service.plan_misses, 2,
        "bob must never hit alice's entries"
    );
    assert_eq!(r3.service.dag_misses, 1, "bob pays his own DAG build");
    assert_eq!(handle.sessions_served(), 3);
    handle.stop();
}
