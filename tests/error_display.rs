//! Rendering contract for [`MachineError`]: every variant's `Display`
//! output names the failing node and the failure mechanism, because
//! these strings are what a `vcalc` user (or a CI log reader) gets when
//! a distributed run dies. The suite also pins the `std::error::Error`
//! integration — boxing, `source()` chains through wrapper errors —
//! so typed machine errors compose with ordinary Rust error handling.

use vcal_suite::machine::MachineError;

/// Every variant, with representative payloads.
fn all_variants() -> Vec<MachineError> {
    vec![
        MachineError::SequentialClause,
        MachineError::UnknownArray("U".to_string()),
        MachineError::MissingMessage {
            node: 2,
            array: "B".to_string(),
            index: 17,
        },
        MachineError::MissingPacket {
            node: 1,
            peer: 3,
            slot: 0,
            run: 4,
        },
        MachineError::Unrecoverable {
            node: 0,
            peer: 2,
            retries: 9,
        },
        MachineError::NodePanicked { node: 3 },
        MachineError::PeerDisconnected { node: 1, peer: 0 },
        MachineError::PlanMismatch("array `A` was redistributed".to_string()),
        MachineError::Transport {
            node: 2,
            detail: "wire version 1 != host version 2".to_string(),
        },
    ]
}

#[test]
fn every_variant_renders_nonempty_and_distinct() {
    let rendered: Vec<String> = all_variants().iter().map(|e| e.to_string()).collect();
    for (e, s) in all_variants().iter().zip(&rendered) {
        assert!(!s.is_empty(), "{e:?} renders empty");
        assert!(
            !s.contains("MachineError"),
            "{e:?} leaks the type name into user output: {s}"
        );
    }
    for i in 0..rendered.len() {
        for j in (i + 1)..rendered.len() {
            assert_ne!(rendered[i], rendered[j], "two variants render identically");
        }
    }
}

#[test]
fn displays_name_the_failing_node_and_payload() {
    let cases: Vec<(MachineError, Vec<&str>)> = vec![
        (MachineError::SequentialClause, vec!["`//`"]),
        (MachineError::UnknownArray("Vel".to_string()), vec!["`Vel`"]),
        (
            MachineError::MissingMessage {
                node: 2,
                array: "B".to_string(),
                index: 17,
            },
            vec!["node 2", "B", "17", "lost"],
        ),
        (
            MachineError::MissingPacket {
                node: 1,
                peer: 3,
                slot: 5,
                run: 4,
            },
            vec!["node 1", "peer 3", "slot 5", "run 4", "lost"],
        ),
        (
            MachineError::Unrecoverable {
                node: 0,
                peer: 2,
                retries: 9,
            },
            vec!["node 0", "peer 2", "9 retransmit"],
        ),
        (
            MachineError::NodePanicked { node: 3 },
            vec!["node 3", "panicked", "restored"],
        ),
        (
            MachineError::PeerDisconnected { node: 1, peer: 0 },
            vec!["node 1", "peer 0", "hung up"],
        ),
        (
            MachineError::PlanMismatch("extent 7 != 9".to_string()),
            vec!["mismatch", "extent 7 != 9"],
        ),
        (
            MachineError::Transport {
                node: 2,
                detail: "wire version 1 != host version 2".to_string(),
            },
            vec!["node 2", "transport", "wire version 1 != host version 2"],
        ),
    ];
    for (err, needles) in cases {
        let s = err.to_string();
        for needle in needles {
            assert!(
                s.contains(needle),
                "{err:?} rendering {s:?} lacks {needle:?}"
            );
        }
    }
}

#[test]
fn transport_host_side_uses_sentinel_node() {
    // the router itself reports node -1 (no worker to blame)
    let s = MachineError::Transport {
        node: -1,
        detail: "chaos proxy bind failed".to_string(),
    }
    .to_string();
    assert!(s.contains("node -1"), "host-side sentinel missing: {s}");
}

/// A wrapper in the style of an application error type, to pin the
/// `source()` chain contract.
#[derive(Debug)]
struct StepFailed {
    step: usize,
    cause: MachineError,
}

impl std::fmt::Display for StepFailed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "timestep {} failed", self.step)
    }
}

impl std::error::Error for StepFailed {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.cause)
    }
}

#[test]
fn error_trait_boxes_and_chains() {
    for err in all_variants() {
        // a leaf error: no further source
        assert!(
            std::error::Error::source(&err).is_none(),
            "{err:?} is a leaf"
        );

        // boxing preserves the rendering
        let display = err.to_string();
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert_eq!(boxed.to_string(), display);
    }

    // a wrapped machine error is reachable (and typed) via source()
    let wrapped = StepFailed {
        step: 12,
        cause: MachineError::NodePanicked { node: 1 },
    };
    let src = std::error::Error::source(&wrapped).expect("wrapper exposes a source");
    let leaf = src
        .downcast_ref::<MachineError>()
        .expect("source downcasts back to MachineError");
    assert_eq!(*leaf, MachineError::NodePanicked { node: 1 });
    assert!(src.to_string().contains("node 1"));
}
