//! E6 — Section 4's run-time cost claims for the extended Euclid
//! algorithm, checked statistically:
//!
//! * worst case never exceeds `4.8 * log10(N) - 0.32` steps (Knuth);
//! * the average is below `1.9504 * log10(n)`;
//! * for realistic strides `a <= 7` the maximum is 5 steps and the
//!   average about 2.65.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vcal_suite::numth::euclid::{ext_gcd, gcd_steps};

#[test]
fn worst_case_bound_random_pairs() {
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..20_000 {
        let a: i64 = rng.gen_range(1..1_000_000_000);
        let b: i64 = rng.gen_range(1..1_000_000_000);
        let (_, steps) = gcd_steps(a, b);
        let n = a.max(b) as f64;
        let bound = 4.8 * n.log10() - 0.32;
        assert!(
            (steps as f64) <= bound,
            "gcd({a},{b}) took {steps} steps > bound {bound:.2}"
        );
    }
}

#[test]
fn average_matches_knuth() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut total_steps = 0u64;
    let mut total_bound = 0.0f64;
    let trials = 50_000;
    for _ in 0..trials {
        let a: i64 = rng.gen_range(1..100_000);
        let b: i64 = rng.gen_range(1..100_000);
        let (_, steps) = gcd_steps(a, b);
        total_steps += steps as u64;
        total_bound += 1.9504 * (a.max(b) as f64).log10();
    }
    let avg = total_steps as f64 / trials as f64;
    let bound = total_bound / trials as f64;
    // Knuth's average is for gcd(n, m) with m uniform; random pairs come
    // in slightly under the bound
    assert!(
        avg <= bound * 1.05,
        "average {avg:.3} exceeds Knuth average bound {bound:.3}"
    );
}

#[test]
fn small_strides_match_paper_numbers() {
    // "suppose a <= 7, then the maximal number of steps is 5 and the
    // average number of steps is ~2.65"
    let mut max_steps = 0u32;
    let mut total = 0u64;
    let mut count = 0u64;
    for a in 1..=7i64 {
        for pmax in 2..=1024i64 {
            let (_, s) = gcd_steps(pmax, a); // reduce to args <= a first
            max_steps = max_steps.max(s);
            total += s as u64;
            count += 1;
        }
    }
    assert!(max_steps <= 5, "max steps {max_steps} > 5");
    let avg = total as f64 / count as f64;
    assert!(
        (1.5..=3.2).contains(&avg),
        "average {avg:.3} outside the paper's ~2.65 neighbourhood"
    );
}

#[test]
fn bezout_holds_for_large_random_inputs() {
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..10_000 {
        let a: i64 = rng.gen_range(-1_000_000..1_000_000);
        let b: i64 = rng.gen_range(-1_000_000..1_000_000);
        let e = ext_gcd(a, b);
        assert_eq!(a * e.x + b * e.y, e.g, "({a},{b})");
        if a != 0 || b != 0 {
            assert!(e.g > 0);
            assert_eq!(a % e.g, 0);
            assert_eq!(b % e.g, 0);
        }
    }
}
