//! Differential oracle harness for program-level DAG scheduling
//! (DESIGN.md §16).
//!
//! [`DistSession::run_program`] under [`ScheduleMode::Dag`] reorders
//! and overlaps independent clauses; the contract is that every array
//! ends **bit-identical** to the strict-sequential oracle
//! ([`ScheduleMode::Seq`]), under every execution configuration:
//!
//! * random multi-clause programs over a shared array pool — RAW, WAR
//!   and WAW hazards in arbitrary mixtures, plus dynamic
//!   redistributions in the middle of the program;
//! * both communication modes × overlap on/off × every SIMD policy;
//! * recoverable fault plans (seeded packet drop + reorder with
//!   retransmission) — the DAG schedule must recover to the same bits.
//!
//! Deterministic fixtures pin the canonical hazard shapes; the
//! proptest sweep then drives randomly generated programs through the
//! full configuration matrix.

use proptest::prelude::*;
use std::time::Duration;
use vcal_suite::core::func::Fn1;
use vcal_suite::core::pred::CmpOp;
use vcal_suite::core::{Array, ArrayRef, Bounds, Clause, Env, Expr, Guard, IndexSet, Ordering};
use vcal_suite::decomp::Decomp1;
use vcal_suite::machine::{
    replay_check_dag, CollectingTracer, CommMode, DistOptions, DistSession, EventKind, FaultPlan,
    ProgramStep, ReplayError, RetryPolicy, ScheduleMode, SimdPolicy, TraceLog,
};
use vcal_suite::spmd::{build_dag, DecompMap};

const N: i64 = 96;
const PMAX: i64 = 4;
const NAMES: [&str; 4] = ["A", "B", "C", "D"];

/// Communication modes under test, honouring the CI matrix filter
/// (`VCAL_FAULT_MODE=element|vectorized`; unset, both modes run) —
/// same convention as the fault/trace/steady-state suites.
fn modes() -> Vec<CommMode> {
    match std::env::var("VCAL_FAULT_MODE").as_deref() {
        Ok("element") => vec![CommMode::Element],
        Ok("vectorized") => vec![CommMode::Vectorized],
        _ => vec![CommMode::Element, CommMode::Vectorized],
    }
}

/// Deterministic mixed-sign initial data so guards fire both ways.
fn initial_env(decomps: &DecompMap) -> Env {
    let mut env = Env::new();
    for (name, dec) in decomps.iter() {
        let salt = name.bytes().next().unwrap_or(0) as i64;
        env.insert(
            name.clone(),
            Array::from_fn(dec.extent(), |i| {
                let v = i.scalar() + salt;
                if v % 3 == 0 {
                    -(v as f64)
                } else {
                    v as f64 * 0.5
                }
            }),
        );
    }
    env
}

/// Run the same program through both schedules on fresh sessions and
/// assert every array is bitwise identical.
fn assert_dag_matches_seq(
    steps: &[ProgramStep],
    decomps: &DecompMap,
    opts: DistOptions,
    ctx: &str,
) {
    let env = initial_env(decomps);
    let mut seq = DistSession::new(&env, decomps.clone())
        .unwrap()
        .with_options(opts);
    let mut dag = DistSession::new(&env, decomps.clone())
        .unwrap()
        .with_options(opts);
    let rs = seq
        .run_program(steps, ScheduleMode::Seq, &vcal_suite::machine::NULL_TRACER)
        .unwrap_or_else(|e| panic!("{ctx}: seq oracle failed: {e}"));
    let rd = dag
        .run_program(steps, ScheduleMode::Dag, &vcal_suite::machine::NULL_TRACER)
        .unwrap_or_else(|e| panic!("{ctx}: dag schedule failed: {e}"));
    assert_eq!(rs.steps.len(), steps.len(), "{ctx}: seq report incomplete");
    assert_eq!(rd.steps.len(), steps.len(), "{ctx}: dag report incomplete");
    assert!(
        rd.waves <= steps.len(),
        "{ctx}: more waves than steps ({} > {})",
        rd.waves,
        steps.len()
    );
    let want = seq.gather_all();
    let got = dag.gather_all();
    for name in decomps.keys() {
        let diff = got
            .get(name)
            .unwrap_or_else(|| panic!("{ctx}: array `{name}` lost"))
            .max_abs_diff(want.get(name).unwrap());
        assert_eq!(diff, 0.0, "{ctx}: array `{name}` diverged from the oracle");
    }
}

fn base_decomps() -> DecompMap {
    let mut dm = DecompMap::new();
    for name in NAMES {
        dm.insert(name.into(), Decomp1::block(PMAX, Bounds::range(0, N - 1)));
    }
    dm
}

fn clause(lhs: &str, lhs_shift: i64, rhs: Expr, guard: Guard) -> ProgramStep {
    ProgramStep::Clause(Clause {
        iter: IndexSet::range(1, N - 2),
        ordering: Ordering::Par,
        guard,
        lhs: ArrayRef::d1(lhs, Fn1::shift(lhs_shift)),
        rhs,
    })
}

fn read(name: &str, shift: i64) -> Expr {
    Expr::Ref(ArrayRef::d1(name, Fn1::shift(shift)))
}

/// The canonical hazard mixture, shared by the deterministic matrix
/// sweep: RAW (A→C), WAR (reads B, then B overwritten), WAW (D written
/// twice), one guarded clause, and a redistribution of A in the middle.
fn hazard_program() -> Vec<ProgramStep> {
    vec![
        // wave candidates: A and B writes are independent
        clause(
            "A",
            0,
            Expr::add(read("A", -1), Expr::Lit(1.0)),
            Guard::Always,
        ),
        clause(
            "B",
            0,
            Expr::mul(read("B", 1), Expr::Lit(0.5)),
            Guard::Always,
        ),
        // RAW on A and B; WAR on C is created by the later C overwrite
        clause(
            "C",
            0,
            Expr::add(read("A", 1), read("B", -1)),
            Guard::Always,
        ),
        // redistribution of A mid-program: aliases A across layouts
        ProgramStep::Redistribute {
            array: "A".into(),
            to: Decomp1::scatter(PMAX, Bounds::range(0, N - 1)),
        },
        // RAW through the redistribution, guarded on C (mixed-sign data)
        clause(
            "D",
            0,
            Expr::add(read("A", 0), Expr::Lit(2.0)),
            Guard::Cmp {
                lhs: ArrayRef::d1("C", Fn1::identity()),
                op: CmpOp::Gt,
                rhs: 0.0,
            },
        ),
        // WAW on D
        clause("D", 0, Expr::mul(read("D", 0), read("C", 0)), Guard::Always),
    ]
}

/// The full configuration matrix: CommMode × overlap × SimdPolicy, the
/// canonical hazard program, bitwise equality on every array.
#[test]
fn hazard_mixture_matches_oracle_across_config_matrix() {
    let steps = hazard_program();
    let decomps = base_decomps();
    for mode in modes() {
        for overlap in [true, false] {
            for simd in ["auto", "on", "off"] {
                let opts = DistOptions {
                    mode,
                    overlap,
                    simd: SimdPolicy::parse(simd).unwrap(),
                    ..DistOptions::default()
                };
                let ctx = format!("mode={mode:?} overlap={overlap} simd={simd}");
                assert_dag_matches_seq(&steps, &decomps, opts, &ctx);
            }
        }
    }
}

/// Recoverable faults: seeded drop + reorder with retransmission must
/// still converge to the oracle's bits under the DAG schedule.
#[test]
fn recoverable_faults_still_match_oracle() {
    let steps = hazard_program();
    let decomps = base_decomps();
    for mode in modes() {
        for seed in [7u64, 1991] {
            let opts = DistOptions {
                mode,
                faults: Some(FaultPlan::seeded(seed).with_drop(0.05).with_reorder(0.05)),
                retry: RetryPolicy::fast(),
                recv_timeout: Duration::from_secs(10),
                ..DistOptions::default()
            };
            let ctx = format!("mode={mode:?} fault_seed={seed}");
            assert_dag_matches_seq(&steps, &decomps, opts, &ctx);
        }
    }
}

/// A program of pairwise-independent clauses must actually be scheduled
/// wider than sequential — the harness would be vacuous if every DAG
/// degenerated to one clause per wave.
#[test]
fn independent_clauses_really_share_waves() {
    let steps: Vec<ProgramStep> = NAMES
        .iter()
        .map(|name| {
            clause(
                name,
                0,
                Expr::add(read(name, -1), Expr::Lit(1.0)),
                Guard::Always,
            )
        })
        .collect();
    let decomps = base_decomps();
    let dag = build_dag(&steps, &decomps);
    assert_eq!(dag.waves.len(), 1, "independent clauses must share a wave");
    assert_eq!(dag.width(), NAMES.len());
    assert_dag_matches_seq(
        &steps,
        &decomps,
        DistOptions::default(),
        "independent fan-out",
    );
}

// ---------------------------------------------------------------------
// trace determinism and DAG replay checking
// ---------------------------------------------------------------------

/// A diamond without redistributions: A and B fan out, C joins them,
/// D extends the chain. Unguarded so repeated runs on one session stay
/// structurally identical.
fn diamond_program() -> Vec<ProgramStep> {
    vec![
        clause(
            "A",
            0,
            Expr::add(read("A", -1), Expr::Lit(1.0)),
            Guard::Always,
        ),
        clause(
            "B",
            0,
            Expr::mul(read("B", 1), Expr::Lit(0.5)),
            Guard::Always,
        ),
        clause(
            "C",
            0,
            Expr::add(read("A", 1), read("B", -1)),
            Guard::Always,
        ),
        clause(
            "D",
            0,
            Expr::add(read("C", 0), Expr::Lit(1.0)),
            Guard::Always,
        ),
    ]
}

fn traced_dag_run(
    session: &mut DistSession,
    steps: &[ProgramStep],
) -> (vcal_suite::machine::ProgramReport, TraceLog) {
    let tracer = CollectingTracer::new();
    let report = session
        .run_program(steps, ScheduleMode::Dag, &tracer)
        .unwrap();
    (report, tracer.finish())
}

/// Same seed, same configuration → byte-identical deterministic JSONL,
/// even under a recoverable fault plan (reliability traffic lives in
/// the auxiliary stream).
#[test]
fn same_seed_dag_runs_are_byte_identical() {
    let steps = diamond_program();
    let decomps = base_decomps();
    for faults in [
        None,
        Some(FaultPlan::seeded(42).with_drop(0.04).with_reorder(0.04)),
    ] {
        let opts = DistOptions {
            faults,
            retry: RetryPolicy::fast(),
            recv_timeout: Duration::from_secs(10),
            ..DistOptions::default()
        };
        let env = initial_env(&decomps);
        let mut s1 = DistSession::new(&env, decomps.clone())
            .unwrap()
            .with_options(opts);
        let mut s2 = DistSession::new(&env, decomps.clone())
            .unwrap()
            .with_options(opts);
        let (_, l1) = traced_dag_run(&mut s1, &steps);
        let (_, l2) = traced_dag_run(&mut s2, &steps);
        assert_eq!(
            l1.to_jsonl(),
            l2.to_jsonl(),
            "deterministic stream differs across same-seed runs (faults={})",
            faults.is_some()
        );
    }
}

/// A warm run (cached DAG, cached plans) must be trace-identical to the
/// cold run that populated the caches — caching is invisible in the
/// deterministic stream.
#[test]
fn warm_dag_run_is_trace_identical_to_cold() {
    let steps = diamond_program();
    let decomps = base_decomps();
    let env = initial_env(&decomps);
    let mut session = DistSession::new(&env, decomps.clone()).unwrap();
    let (cold, l_cold) = traced_dag_run(&mut session, &steps);
    assert_eq!(cold.dag_cache_misses, 1, "first run must build the DAG");
    let (warm, l_warm) = traced_dag_run(&mut session, &steps);
    assert_eq!(warm.dag_cache_hits, 1, "second run must reuse the DAG");
    assert!(
        warm.steps.iter().all(|r| r.cache_hits == 1),
        "second run must reuse every clause plan"
    );
    assert_eq!(
        l_cold.to_jsonl(),
        l_warm.to_jsonl(),
        "warm trace differs from cold"
    );
}

/// Both schedules' traces satisfy the DAG replay rule (a sequential
/// trace is a linear extension of the DAG), and a forged early
/// `clause_begin` — hoisted before its predecessor's commit — is
/// rejected as a phase violation on the host.
#[test]
fn replay_check_dag_rejects_forged_early_clause_begin() {
    let steps = diamond_program();
    let decomps = base_decomps();
    let dag = build_dag(&steps, &decomps);
    let env = initial_env(&decomps);

    // a sequential trace passes too — it is a linear extension
    let mut seq = DistSession::new(&env, decomps.clone()).unwrap();
    let tracer = CollectingTracer::new();
    seq.run_program(&steps, ScheduleMode::Seq, &tracer).unwrap();
    replay_check_dag(&tracer.finish(), &dag).expect("sequential trace must satisfy the DAG");

    let mut session = DistSession::new(&env, decomps.clone()).unwrap();
    let (_, mut log) = traced_dag_run(&mut session, &steps);
    replay_check_dag(&log, &dag).expect("untampered DAG trace must pass");

    // forge: pick a step with predecessors and swap its clause_begin
    // with the predecessor's clause_end, so the begin lands on the
    // earlier clock tick
    let dep = (0..dag.steps)
        .find(|&s| !dag.preds_of(s).is_empty())
        .expect("diamond has dependent steps");
    let pred = dag.preds_of(dep)[0];
    let bi = log
        .events
        .iter()
        .position(|e| matches!(e.kind, EventKind::ClauseBegin { step } if step == dep))
        .expect("trace has the dependent begin");
    let ei = log
        .events
        .iter()
        .position(|e| matches!(e.kind, EventKind::ClauseEnd { step } if step == pred))
        .expect("trace has the predecessor end");
    let forged = log.events[bi].kind.clone();
    log.events[bi].kind = log.events[ei].kind.clone();
    log.events[ei].kind = forged;
    match replay_check_dag(&log, &dag) {
        Err(ReplayError::Phase { node, why }) => {
            assert_eq!(node, vcal_suite::machine::HOST);
            assert!(
                why.contains("predecessor") || why.contains("dag_ready"),
                "unexpected rejection: {why}"
            );
        }
        other => panic!("forged begin must be rejected as Phase, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// randomized program generation
// ---------------------------------------------------------------------

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0usize..NAMES.len(), -1i64..=1).prop_map(|(a, s)| read(NAMES[a], s));
    (
        leaf.clone(),
        prop::option::of((leaf, any::<bool>())),
        -3i64..=3,
    )
        .prop_map(|(first, second, lit)| {
            let base = match second {
                Some((other, true)) => Expr::add(first, other),
                Some((other, false)) => Expr::mul(first, other),
                None => first,
            };
            Expr::add(base, Expr::Lit(lit as f64 * 0.5))
        })
}

fn arb_guard() -> impl Strategy<Value = Guard> {
    prop_oneof![
        3 => Just(Guard::Always),
        1 => (0usize..NAMES.len(), any::<bool>()).prop_map(|(a, gt)| Guard::Cmp {
            lhs: ArrayRef::d1(NAMES[a], Fn1::identity()),
            op: if gt { CmpOp::Gt } else { CmpOp::Le },
            rhs: 0.0,
        }),
    ]
}

fn arb_step() -> impl Strategy<Value = ProgramStep> {
    prop_oneof![
        5 => (0usize..NAMES.len(), arb_expr(), arb_guard())
            .prop_map(|(lhs, rhs, guard)| clause(NAMES[lhs], 0, rhs, guard)),
        1 => (0usize..NAMES.len(), prop::sample::select(vec![0u8, 1, 2]))
            .prop_map(|(a, kind)| ProgramStep::Redistribute {
                array: NAMES[a].into(),
                to: match kind {
                    0 => Decomp1::block(PMAX, Bounds::range(0, N - 1)),
                    1 => Decomp1::scatter(PMAX, Bounds::range(0, N - 1)),
                    _ => Decomp1::block_scatter(3, PMAX, Bounds::range(0, N - 1)),
                },
            }),
    ]
}

fn arb_opts() -> impl Strategy<Value = DistOptions> {
    (
        any::<bool>(),
        any::<bool>(),
        prop::sample::select(vec!["auto", "on", "off"]),
        prop::option::of(1u64..1000),
    )
        .prop_map(|(vectorized, overlap, simd, fault_seed)| DistOptions {
            mode: if vectorized {
                CommMode::Vectorized
            } else {
                CommMode::Element
            },
            overlap,
            simd: SimdPolicy::parse(simd).unwrap(),
            faults: fault_seed.map(|s| FaultPlan::seeded(s).with_drop(0.03).with_reorder(0.03)),
            retry: RetryPolicy::fast(),
            recv_timeout: Duration::from_secs(10),
            ..DistOptions::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The differential property: any random program (hazards in any
    /// mixture, redistributions anywhere), any configuration — the DAG
    /// schedule is bitwise equal to the sequential oracle.
    #[test]
    fn random_programs_match_oracle(
        steps in prop::collection::vec(arb_step(), 2..7),
        opts in arb_opts(),
    ) {
        let decomps = base_decomps();
        assert_dag_matches_seq(&steps, &decomps, opts, "random program");
    }
}
