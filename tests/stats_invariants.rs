//! Cross-mode counter invariants for the distributed machine — the
//! counter-coverage gap left by the comm-schedule and reliable-transport
//! PRs, closed as part of the observability layer.
//!
//! The same plan executed under [`CommMode::Element`] and
//! [`CommMode::Vectorized`] must agree on everything the paper's cost
//! model depends on:
//!
//! * identical *element* traffic (`msgs_sent` / `msgs_received`),
//!   independent of how elements are batched onto the wire;
//! * `bytes_sent` derivable from `packets_sent` and the planned
//!   `CommRun` lengths (24 bytes per element message; 16-byte header
//!   plus 8 bytes per element for packed runs);
//! * every reliability counter exactly zero when no `FaultPlan` is
//!   installed ([`NodeStats::reliability_quiet`]).

use std::collections::BTreeMap;
use vcal_suite::core::func::Fn1;
use vcal_suite::core::{Array, ArrayRef, Bounds, Clause, Env, Expr, Guard, IndexSet, Ordering};
use vcal_suite::decomp::Decomp1;
use vcal_suite::machine::{
    run_distributed, CommMode, DistArray, DistOptions, DistSession, ExecReport, FaultPlan,
    NodeStats, ProgramReport, ProgramStep, RetryPolicy, ScheduleMode, TuneOptions, NULL_TRACER,
};
use vcal_suite::spmd::{DecompMap, SpmdPlan};

const N: i64 = 256;
const PMAX: i64 = 4;

/// Wire-format constants mirrored from the distributed machine's docs:
/// a 24-byte element message, a 16-byte packet header + 8 bytes/element.
const ELEM_MSG_BYTES: u64 = 24;
const PACK_HEADER_BYTES: u64 = 16;

fn fixture(g: Fn1, imin: i64, imax: i64) -> (SpmdPlan, Clause, DecompMap, Env) {
    let cl = Clause {
        iter: IndexSet::range(imin, imax),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1("A", Fn1::identity()),
        rhs: Expr::add(Expr::Ref(ArrayRef::d1("B", g)), Expr::Lit(1.0)),
    };
    let mut env0 = Env::new();
    env0.insert("A", Array::zeros(Bounds::range(0, N - 1)));
    env0.insert(
        "B",
        Array::from_fn(Bounds::range(0, 6 * N), |i| (i.scalar() % 17) as f64 - 8.0),
    );
    let mut dm = DecompMap::new();
    dm.insert("A".into(), Decomp1::block(PMAX, Bounds::range(0, N - 1)));
    dm.insert("B".into(), Decomp1::scatter(PMAX, Bounds::range(0, 6 * N)));
    let plan = SpmdPlan::build(&cl, &dm).unwrap();
    (plan, cl, dm, env0)
}

fn run_mode(
    plan: &SpmdPlan,
    cl: &Clause,
    env0: &Env,
    dm: &DecompMap,
    mode: CommMode,
) -> ExecReport {
    let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
    for name in ["A", "B"] {
        arrays.insert(
            name.to_string(),
            DistArray::scatter_from(env0.get(name).unwrap(), dm[name].clone()),
        );
    }
    run_distributed(
        plan,
        cl,
        &mut arrays,
        DistOptions {
            mode,
            ..DistOptions::default()
        },
    )
    .unwrap()
}

/// The access functions exercised: shift, strided, gcd-degenerate.
fn accesses() -> Vec<(Fn1, i64, i64)> {
    vec![
        (Fn1::shift(3), 0, N - 1),
        (Fn1::affine(3, 2), 0, N - 1),
        (Fn1::affine(6, 1), 0, N - 1), // gcd(6, pmax) > 1
    ]
}

#[test]
fn element_counts_agree_across_modes() {
    for (g, imin, imax) in accesses() {
        let (plan, cl, dm, env0) = fixture(g.clone(), imin, imax);
        let el = run_mode(&plan, &cl, &env0, &dm, CommMode::Element).total();
        let vec = run_mode(&plan, &cl, &env0, &dm, CommMode::Vectorized).total();
        assert_eq!(el.msgs_sent, vec.msgs_sent, "g={g:?}");
        assert_eq!(el.msgs_received, vec.msgs_received, "g={g:?}");
        assert_eq!(el.msgs_sent, el.msgs_received, "g={g:?}");
        assert_eq!(el.iterations, vec.iterations, "g={g:?}");
        assert_eq!(el.local_reads, vec.local_reads, "g={g:?}");
        // both must agree with the plan's committed communication volume
        let planned: u64 = plan.nodes.iter().map(|n| n.comm.send_elems()).sum();
        assert_eq!(el.msgs_sent, planned, "g={g:?}");
    }
}

#[test]
fn bytes_consistent_with_packets_and_run_lengths() {
    for (g, imin, imax) in accesses() {
        let (plan, cl, dm, env0) = fixture(g.clone(), imin, imax);

        // element mode: one 24-byte wire message per element, max run 1
        let el = run_mode(&plan, &cl, &env0, &dm, CommMode::Element).total();
        assert_eq!(el.packets_sent, el.msgs_sent, "g={g:?}");
        assert_eq!(el.bytes_sent, ELEM_MSG_BYTES * el.msgs_sent, "g={g:?}");
        assert!(el.max_packet_elems <= 1, "g={g:?}");

        // vectorized mode: packets = planned coalesced runs, bytes =
        // header per packet + 8 per element
        let vec = run_mode(&plan, &cl, &env0, &dm, CommMode::Vectorized).total();
        let planned_packets: u64 = plan.nodes.iter().map(|n| n.comm.send_packets()).sum();
        assert_eq!(vec.packets_sent, planned_packets, "g={g:?}");
        assert_eq!(
            vec.bytes_sent,
            PACK_HEADER_BYTES * vec.packets_sent + 8 * vec.msgs_sent,
            "g={g:?}"
        );
        // the longest packet equals the longest planned run
        let longest_run: u64 = plan
            .nodes
            .iter()
            .flat_map(|n| n.comm.sends.iter())
            .flat_map(|pc| pc.runs.iter())
            .map(|r| r.len())
            .max()
            .unwrap_or(0);
        assert_eq!(vec.max_packet_elems, longest_run, "g={g:?}");
        // aggregation can only shrink wire traffic
        assert!(vec.packets_sent <= el.packets_sent, "g={g:?}");
        assert!(vec.bytes_sent <= el.bytes_sent, "g={g:?}");
    }
}

#[test]
fn reliability_counters_zero_without_faults() {
    for (g, imin, imax) in accesses() {
        let (plan, cl, dm, env0) = fixture(g.clone(), imin, imax);
        for mode in [CommMode::Element, CommMode::Vectorized] {
            let report = run_mode(&plan, &cl, &env0, &dm, mode);
            assert!(
                report.reliability_quiet(),
                "g={g:?} mode={mode:?}: {:?}",
                report.total()
            );
            for (p, n) in report.nodes.iter().enumerate() {
                assert!(n.reliability_quiet(), "node {p} g={g:?}: {n:?}");
            }
        }
    }
}

#[test]
fn reliability_counters_fire_with_faults_and_quiet_predicate_flips() {
    let (plan, cl, dm, env0) = fixture(Fn1::shift(3), 0, N - 1);
    let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
    for name in ["A", "B"] {
        arrays.insert(
            name.to_string(),
            DistArray::scatter_from(env0.get(name).unwrap(), dm[name].clone()),
        );
    }
    let report = run_distributed(
        &plan,
        &cl,
        &mut arrays,
        DistOptions {
            mode: CommMode::Vectorized,
            faults: Some(FaultPlan::seeded(7).with_drop(0.4)),
            retry: RetryPolicy::fast(),
            ..DistOptions::default()
        },
    )
    .unwrap();
    let t = report.total();
    assert!(t.retransmits > 0, "{t:?}");
    assert!(t.nacks_sent > 0, "{t:?}");
    assert!(!report.reliability_quiet());
    // a default NodeStats is quiet by construction
    assert!(NodeStats::default().reliability_quiet());
}

/// Tuner counters are quiet on every untuned path (default
/// `ProgramReport`, `run_program` under both schedules) and consistent
/// on the tuned path: the priced-candidate count covers at least the
/// enumerated-plus-incumbent floor, cache hits never exceed the
/// clause-price lookups made, and both reports agree.
#[test]
fn tuner_counters_quiet_untuned_and_consistent_tuned() {
    let d = ProgramReport::default();
    assert_eq!(
        (
            d.candidates_priced,
            d.redistributions_inserted,
            d.tune_cache_hits
        ),
        (0, 0, 0)
    );

    let n = 64i64;
    let step = ProgramStep::Clause(Clause {
        iter: IndexSet::range(1, n - 2),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1("V", Fn1::identity()),
        rhs: Expr::add(
            Expr::Ref(ArrayRef::d1("U", Fn1::shift(-1))),
            Expr::Ref(ArrayRef::d1("U", Fn1::shift(1))),
        ),
    });
    let steps = vec![step.clone(), step];
    let mut env = Env::new();
    for a in ["U", "V"] {
        env.insert(
            a,
            Array::from_fn(Bounds::range(0, n - 1), |i| i.scalar() as f64),
        );
    }
    let mut dm = DecompMap::new();
    for a in ["U", "V"] {
        dm.insert(a.into(), Decomp1::block(PMAX, Bounds::range(0, n - 1)));
    }

    // untuned program runs never touch the tuner counters
    for schedule in [ScheduleMode::Seq, ScheduleMode::Dag] {
        let mut session = DistSession::new(&env, dm.clone()).unwrap();
        let r = session.run_program(&steps, schedule, &NULL_TRACER).unwrap();
        assert_eq!(r.candidates_priced, 0, "{schedule:?}");
        assert_eq!(r.redistributions_inserted, 0, "{schedule:?}");
        assert_eq!(r.tune_cache_hits, 0, "{schedule:?}");
    }

    // tuned run: counters flow into both reports identically
    let mut session = DistSession::new(&env, dm).unwrap();
    let budget = 5;
    let (report, tune) = session
        .run_program_tuned(
            &steps,
            4,
            ScheduleMode::Seq,
            TuneOptions {
                budget,
                ..TuneOptions::default()
            },
            &NULL_TRACER,
        )
        .unwrap();
    assert_eq!(report.candidates_priced, tune.candidates_priced);
    assert_eq!(
        report.redistributions_inserted,
        tune.redistributions_inserted
    );
    assert_eq!(report.tune_cache_hits, tune.tune_cache_hits);
    assert!(
        tune.candidates_priced >= 2 && tune.candidates_priced <= budget as u64 + 1,
        "priced {} with budget {budget} (+1 incumbent)",
        tune.candidates_priced
    );
    // two identical clauses per candidate: the second is always a
    // cache hit, so hits ≥ candidates and hits < total lookups (2 per
    // candidate)
    assert!(tune.tune_cache_hits >= tune.candidates_priced);
    assert!(tune.tune_cache_hits < 2 * tune.candidates_priced);
}
