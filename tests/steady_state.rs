//! Steady-state executor properties: the warm path (plan cache +
//! persistent worker pool behind [`DistSession::run`]) must be
//! *observationally identical* to the cold path (a fresh
//! [`run_distributed`] per call) — bit-identical array states, identical
//! deterministic trace streams, identical fault recovery — while the
//! cache counters prove the warm path was actually taken.
//!
//! Covered properties:
//!
//! * N warm executions of a timestep loop are bit-identical to N cold
//!   executions, in both communication modes, with and without a seeded
//!   recoverable fault plan;
//! * a traced warm run emits a byte-identical deterministic JSONL log to
//!   a traced cold run and passes the replay checker;
//! * the first run of a clause is a cache miss, every repeat is a hit,
//!   and `redistribute` (layout change or decomposition replacement)
//!   invalidates;
//! * a crashed pooled worker surfaces as a typed `NodePanicked` without
//!   poisoning the session: the next run succeeds with correct results.
//!
//! The CI fault matrix runs this suite once per communication mode via
//! `VCAL_FAULT_MODE=element|vectorized`; unset, both modes run.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;
use vcal_suite::core::func::Fn1;
use vcal_suite::core::{Array, ArrayRef, Bounds, Clause, Env, Expr, Guard, IndexSet, Ordering};
use vcal_suite::decomp::Decomp1;
use vcal_suite::machine::{
    replay_check, run_distributed, run_distributed_traced, CollectingTracer, CommMode, DistArray,
    DistOptions, DistSession, FaultPlan, MachineError, RetryPolicy,
};
use vcal_suite::spmd::{DecompMap, SpmdPlan};

const N: i64 = 96;
const PMAX: i64 = 4;

/// Communication modes to exercise, honouring the CI matrix filter.
fn modes() -> Vec<CommMode> {
    match std::env::var("VCAL_FAULT_MODE").as_deref() {
        Ok("element") => vec![CommMode::Element],
        Ok("vectorized") => vec![CommMode::Vectorized],
        _ => vec![CommMode::Element, CommMode::Vectorized],
    }
}

/// The Jacobi-style timestep pair: `V[i] := 0.5*(U[i-1]+U[i+1])` then
/// `U[i] := V[i]` — the second clause feeds the first, so every step
/// depends on the previous one and any divergence compounds.
fn timestep_clauses() -> (Clause, Clause) {
    let sweep = Clause {
        iter: IndexSet::range(1, N - 2),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1("V", Fn1::identity()),
        rhs: Expr::mul(
            Expr::add(
                Expr::Ref(ArrayRef::d1("U", Fn1::shift(-1))),
                Expr::Ref(ArrayRef::d1("U", Fn1::shift(1))),
            ),
            Expr::Lit(0.5),
        ),
    };
    let back = Clause {
        iter: IndexSet::range(1, N - 2),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1("U", Fn1::identity()),
        rhs: Expr::Ref(ArrayRef::d1("V", Fn1::identity())),
    };
    (sweep, back)
}

fn timestep_env() -> Env {
    let mut env = Env::new();
    env.insert(
        "U",
        Array::from_fn(Bounds::range(0, N - 1), |i| {
            let v = i.scalar();
            if v % 3 == 0 {
                -(v as f64)
            } else {
                v as f64 * 0.5
            }
        }),
    );
    env.insert("V", Array::zeros(Bounds::range(0, N - 1)));
    env
}

fn dec_of(kind: u8, ext: Bounds) -> Decomp1 {
    match kind % 3 {
        0 => Decomp1::block(PMAX, ext),
        1 => Decomp1::scatter(PMAX, ext),
        _ => Decomp1::block_scatter(3, PMAX, ext),
    }
}

fn timestep_decomps(u_kind: u8, v_kind: u8) -> DecompMap {
    let ext = Bounds::range(0, N - 1);
    let mut dm = DecompMap::new();
    dm.insert("U".into(), dec_of(u_kind, ext));
    dm.insert("V".into(), dec_of(v_kind, ext));
    dm
}

fn dist_arrays(env0: &Env, dm: &DecompMap) -> BTreeMap<String, DistArray> {
    let mut arrays = BTreeMap::new();
    for name in ["U", "V"] {
        arrays.insert(
            name.to_string(),
            DistArray::scatter_from(env0.get(name).unwrap(), dm[name].clone()),
        );
    }
    arrays
}

fn opts_for(mode: CommMode, faults: Option<FaultPlan>) -> DistOptions {
    DistOptions {
        recv_timeout: Duration::from_secs(10),
        faults,
        mode,
        retry: if faults.is_some() {
            RetryPolicy::fast()
        } else {
            RetryPolicy::default()
        },
        ..DistOptions::default()
    }
}

/// N cold steps: a fresh plan/execute cycle per call, the baseline the
/// warm path must match bit-for-bit.
fn run_cold(
    steps: usize,
    mode: CommMode,
    faults: Option<FaultPlan>,
    dm: &DecompMap,
) -> (Array, Array) {
    let (sweep, back) = timestep_clauses();
    let env0 = timestep_env();
    let mut arrays = dist_arrays(&env0, dm);
    let opts = opts_for(mode, faults);
    for _ in 0..steps {
        let plan = SpmdPlan::build(&sweep, dm).unwrap();
        run_distributed(&plan, &sweep, &mut arrays, opts).unwrap();
        let plan = SpmdPlan::build(&back, dm).unwrap();
        run_distributed(&plan, &back, &mut arrays, opts).unwrap();
    }
    (arrays["U"].gather(), arrays["V"].gather())
}

/// N warm steps through the session: plan cache + persistent pool.
/// Asserts the cache counters prove the warm path engaged.
fn run_warm(
    steps: usize,
    mode: CommMode,
    faults: Option<FaultPlan>,
    dm: &DecompMap,
) -> (Array, Array) {
    let (sweep, back) = timestep_clauses();
    let env0 = timestep_env();
    let mut session = DistSession::new(&env0, dm.clone())
        .unwrap()
        .with_options(opts_for(mode, faults));
    for step in 0..steps {
        let r1 = session.run(&sweep).unwrap();
        let r2 = session.run(&back).unwrap();
        if step == 0 {
            assert_eq!((r1.cache_hits, r1.cache_misses), (0, 1), "first sweep");
            assert_eq!((r2.cache_hits, r2.cache_misses), (0, 1), "first back");
        } else {
            assert_eq!((r1.cache_hits, r1.cache_misses), (1, 0), "step {step}");
            assert_eq!((r2.cache_hits, r2.cache_misses), (1, 0), "step {step}");
        }
    }
    (session.gather("U").unwrap(), session.gather("V").unwrap())
}

/// The acceptance configuration: a faultless 8-step timestep loop in
/// both communication modes, warm bit-identical to cold.
#[test]
fn warm_timestep_loop_bit_identical_to_cold() {
    let dm = timestep_decomps(0, 1);
    for mode in modes() {
        let (cold_u, cold_v) = run_cold(8, mode, None, &dm);
        let (warm_u, warm_v) = run_warm(8, mode, None, &dm);
        assert_eq!(warm_u.max_abs_diff(&cold_u), 0.0, "{mode:?}: U differs");
        assert_eq!(warm_v.max_abs_diff(&cold_v), 0.0, "{mode:?}: V differs");
    }
}

/// A traced warm run must emit the same deterministic JSONL stream as a
/// traced cold run of the same configuration, and pass the replay
/// checker — buffered worker events replayed after the join cannot be
/// distinguished from live cold-path tracing.
#[test]
fn warm_trace_matches_cold_and_replays() {
    let dm = timestep_decomps(0, 1);
    let (sweep, _) = timestep_clauses();
    let env0 = timestep_env();
    for mode in modes() {
        let opts = opts_for(mode, None);

        let mut arrays = dist_arrays(&env0, &dm);
        let plan = SpmdPlan::build(&sweep, &dm).unwrap();
        let cold_tracer = CollectingTracer::new();
        run_distributed_traced(&plan, &sweep, &mut arrays, opts, &cold_tracer).unwrap();
        let cold_log = cold_tracer.finish();

        let mut session = DistSession::new(&env0, dm.clone())
            .unwrap()
            .with_options(opts);
        // prime the cache so the traced run below is a warm (pooled) run
        session.run(&sweep).unwrap();
        let warm_tracer = CollectingTracer::new();
        let report = session.run_traced(&sweep, &warm_tracer).unwrap();
        assert_eq!(report.cache_hits, 1, "{mode:?}: traced run was not warm");
        let warm_log = warm_tracer.finish();

        assert_eq!(
            warm_log.to_jsonl(),
            cold_log.to_jsonl(),
            "{mode:?}: warm trace diverges from cold"
        );
        let summary = replay_check(&warm_log, &plan, mode, opts.retry).unwrap();
        assert_eq!(summary.send_elems, summary.recv_elems, "{mode:?}");
    }
}

/// Redistributing a referenced array invalidates the cache: the next run
/// is a miss, replans against the new layout, and stays correct.
#[test]
fn redistribute_invalidates_cache() {
    let dm = timestep_decomps(0, 0);
    let (sweep, back) = timestep_clauses();
    let env0 = timestep_env();
    let mut reference = env0.clone();
    for _ in 0..3 {
        reference.exec_clause(&sweep);
        reference.exec_clause(&back);
    }

    let mut session = DistSession::new(&env0, dm).unwrap();
    session.run(&sweep).unwrap();
    session.run(&back).unwrap();
    let r = session.run(&sweep).unwrap();
    assert_eq!(r.cache_hits, 1);

    // layout change: block -> scatter (decomposition replacement)
    session
        .redistribute("U", Decomp1::scatter(PMAX, Bounds::range(0, N - 1)))
        .unwrap();
    let r = session.run(&back).unwrap();
    assert_eq!(
        (r.cache_hits, r.cache_misses),
        (0, 1),
        "redistribute must invalidate"
    );
    session.run(&sweep).unwrap();
    session.run(&back).unwrap();

    assert_eq!(
        session
            .gather("U")
            .unwrap()
            .max_abs_diff(reference.get("U").unwrap()),
        0.0
    );
}

/// A crashed pooled worker surfaces as `NodePanicked{node}`, leaves the
/// arrays untouched, and does NOT poison the session: after clearing
/// the fault plan, the same session runs correctly again.
#[test]
fn crashed_worker_retires_cleanly() {
    let dm = timestep_decomps(0, 1);
    let (sweep, _) = timestep_clauses();
    let env0 = timestep_env();
    let mut reference = env0.clone();
    reference.exec_clause(&sweep);
    for mode in modes() {
        for node in 0..PMAX {
            let mut session = DistSession::new(&env0, dm.clone())
                .unwrap()
                .with_options(opts_for(mode, None));
            // warm the pool and the cache with a clean run first
            session.run(&sweep).unwrap();
            // inject a crash into the pooled path
            session.set_options(opts_for(
                mode,
                Some(FaultPlan::seeded(7).with_crash(node, 1)),
            ));
            match session.run(&sweep) {
                Err(MachineError::NodePanicked { node: n }) => assert_eq!(n, node, "{mode:?}"),
                other => panic!("{mode:?} node {node}: expected NodePanicked, got {other:?}"),
            }
            // the session must survive: clear the faults and run again
            session.set_options(opts_for(mode, None));
            let report = session.run(&sweep).unwrap();
            assert_eq!(report.cache_hits, 1, "{mode:?}: plan cache lost");
            assert_eq!(
                session
                    .gather("V")
                    .unwrap()
                    .max_abs_diff(reference.get("V").unwrap()),
                0.0,
                "{mode:?} node {node}: post-crash run incorrect"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// N warm executions are bit-identical to N cold executions across
    /// decomposition layouts and communication modes, with or without a
    /// seeded recoverable fault plan.
    #[test]
    fn warm_equals_cold_under_fault_soup(
        seed in any::<u64>(),
        steps in 1usize..6,
        u_kind in 0u8..3,
        v_kind in 0u8..3,
        faulty in any::<bool>(),
        p_drop in 0u32..10,
        mode_ix in 0usize..2,
    ) {
        let all = modes();
        let mode = all[mode_ix % all.len()];
        let dm = timestep_decomps(u_kind, v_kind);
        let faults = if faulty {
            Some(
                FaultPlan::seeded(seed)
                    .with_drop(f64::from(p_drop) / 100.0)
                    .with_duplicate(0.05)
                    .with_reorder(0.05),
            )
        } else {
            None
        };
        let (cold_u, cold_v) = run_cold(steps, mode, faults, &dm);
        let (warm_u, warm_v) = run_warm(steps, mode, faults, &dm);
        prop_assert_eq!(warm_u.max_abs_diff(&cold_u), 0.0, "{:?}: U differs", mode);
        prop_assert_eq!(warm_v.max_abs_diff(&cold_v), 0.0, "{:?}: V differs", mode);
    }
}
