//! Front-end round-trip properties: pretty-printed programs re-parse and
//! re-translate to semantically identical clauses, for randomized ASTs
//! drawn from the supported grammar.

use proptest::prelude::*;
use vcal_suite::core::{Array, Bounds, Env};
use vcal_suite::lang::{self, ARef, IdxExpr, RelOp, Stmt, ValExpr};

fn arb_idx() -> impl Strategy<Value = IdxExpr> {
    // subscripts over the loop variable "i", staying in the supported
    // classes (single variable, positive mod/div)
    prop_oneof![
        (0i64..8).prop_map(IdxExpr::Num),
        Just(IdxExpr::Var("i".into())),
        (1i64..5).prop_map(|k| IdxExpr::Scale(k, Box::new(IdxExpr::Var("i".into())))),
        (1i64..5, 0i64..6).prop_map(|(k, c)| IdxExpr::Add(
            Box::new(IdxExpr::Scale(k, Box::new(IdxExpr::Var("i".into())))),
            Box::new(IdxExpr::Num(c)),
        )),
        (1i64..8, 2i64..30).prop_map(|(s, z)| IdxExpr::Mod(
            Box::new(IdxExpr::Add(
                Box::new(IdxExpr::Var("i".into())),
                Box::new(IdxExpr::Num(s)),
            )),
            z,
        )),
        (2i64..6).prop_map(|q| IdxExpr::Div(Box::new(IdxExpr::Var("i".into())), q)),
    ]
}

fn arb_val() -> impl Strategy<Value = ValExpr> {
    let leaf = prop_oneof![
        (0..100i64).prop_map(|n| ValExpr::Num(n as f64 / 4.0)),
        Just(ValExpr::Var("i".into())),
        arb_idx().prop_map(|ix| ValExpr::Ref(ARef::d1("B", ix))),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ValExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ValExpr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| ValExpr::Sub(Box::new(a), Box::new(b))),
        ]
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    (
        0i64..4,
        10i64..30,
        arb_idx(),
        arb_val(),
        proptest::option::of((arb_idx(), (0..50i64).prop_map(|n| n as f64))),
    )
        .prop_map(|(lo, hi, lhs_ix, rhs, guard)| {
            let assign = Stmt::Assign {
                lhs: ARef::d1("A", lhs_ix),
                rhs,
            };
            let body = match guard {
                Some((gix, grhs)) => vec![Stmt::If {
                    lhs: ARef::d1("B", gix),
                    op: RelOp::Gt,
                    rhs: grhs,
                    body: vec![assign],
                }],
                None => vec![assign],
            };
            Stmt::For {
                var: "i".into(),
                lo,
                hi,
                body,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn print_parse_print_is_fixpoint(stmt in arb_stmt()) {
        let text = stmt.to_string();
        let reparsed = lang::parse(&text)
            .unwrap_or_else(|e| panic!("printed program failed to parse: {e}\n{text}"));
        prop_assert_eq!(reparsed.len(), 1);
        let text2 = reparsed[0].to_string();
        prop_assert_eq!(&text, &text2, "printing is not a fixpoint");
    }

    #[test]
    fn reparsed_clause_executes_identically(stmt in arb_stmt()) {
        // translate both the original AST and its printed-and-reparsed
        // sibling; execution over the same data must agree.
        let c1 = match lang::translate(&stmt) {
            Ok(c) => c,
            Err(_) => return Ok(()), // e.g. non-injective writes rejected later
        };
        let text = stmt.to_string();
        let c2 = lang::translate(&lang::parse(&text).unwrap()[0]).unwrap();

        // domain big enough for all generated subscripts: f(i) for
        // i <= 29 stays under 5*29+6 = 151; mods stay under 30.
        let n = 256i64;
        let mut env = Env::new();
        env.insert("A", Array::from_fn(Bounds::range(0, n - 1), |i| -(i.scalar() as f64)));
        env.insert("B", Array::from_fn(Bounds::range(0, n - 1), |i| (i.scalar() % 23) as f64));
        let mut e1 = env.clone();
        let mut e2 = env;
        e1.exec_clause(&c1);
        e2.exec_clause(&c2);
        prop_assert_eq!(
            e1.get("A").unwrap().max_abs_diff(e2.get("A").unwrap()),
            0.0
        );
    }
}
