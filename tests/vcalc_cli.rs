//! End-to-end tests of the `vcalc` compiler driver binary.

use std::process::Command;

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("vcalc-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path
}

fn vcalc(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_vcalc"))
        .args(args)
        .output()
        .expect("vcalc binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const PROGRAM: &str = "for i := 1 to 62 do if A[i] > 0 then A[i] := B[i+1] * 0.5; fi; od;";
const SPEC: &str = "processors 4;\narray A[0 to 63] block;\narray B[0 to 63] scatter;\n";

#[test]
fn compile_and_report() {
    let p = write_temp("prog1.vc", PROGRAM);
    let s = write_temp("spec1.dspec", SPEC);
    let (ok, stdout, stderr) = vcalc(&[p.to_str().unwrap(), s.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");
    assert!(
        stdout.contains("\u{2206}(i \u{2208} (1:62 | [i]A>0))"),
        "{stdout}"
    );
    assert!(stdout.contains("SPMD plan: 4 nodes"), "{stdout}");
    assert!(stdout.contains("block-affine-range"), "{stdout}");
}

#[test]
fn run_verifies_against_reference() {
    let p = write_temp("prog2.vc", PROGRAM);
    let s = write_temp("spec2.dspec", SPEC);
    let (ok, stdout, stderr) = vcalc(&[p.to_str().unwrap(), s.to_str().unwrap(), "--run"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("run: OK"), "{stdout}");
    assert!(
        stdout.contains("identical to the sequential reference"),
        "{stdout}"
    );
}

#[test]
fn naive_and_closed_plans_report_different_schedules() {
    let p = write_temp("prog3.vc", PROGRAM);
    let s = write_temp("spec3.dspec", SPEC);
    let (_, optimized, _) = vcalc(&[p.to_str().unwrap(), s.to_str().unwrap(), "--emit", "plan"]);
    let (_, naive, _) = vcalc(&[
        p.to_str().unwrap(),
        s.to_str().unwrap(),
        "--emit",
        "plan",
        "--naive",
    ]);
    assert!(optimized.contains("block-affine-range"), "{optimized}");
    assert!(naive.contains("naive-guard"), "{naive}");
}

#[test]
fn emit_distributed_templates() {
    let p = write_temp("prog4.vc", PROGRAM);
    let s = write_temp("spec4.dspec", SPEC);
    let (ok, stdout, _) = vcalc(&[
        p.to_str().unwrap(),
        s.to_str().unwrap(),
        "--emit",
        "dist-closed",
        "--node",
        "1",
    ]);
    assert!(ok);
    assert!(stdout.contains("closed-form send set"), "{stdout}");
    assert!(stdout.contains("send("), "{stdout}");
}

#[test]
fn derivation_emits_equation_chain() {
    let p = write_temp("prog7.vc", PROGRAM);
    let s = write_temp("spec8.dspec", SPEC);
    let (ok, stdout, stderr) = vcalc(&[
        p.to_str().unwrap(),
        s.to_str().unwrap(),
        "--emit",
        "derivation",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("Eq.(1)"), "{stdout}");
    assert!(stdout.contains("Eq.(2)"), "{stdout}");
    assert!(stdout.contains("Eq.(3)"), "{stdout}");
    assert!(stdout.contains("contraction, Def. 5"), "{stdout}");
    assert!(stdout.contains("renaming + interchange"), "{stdout}");
}

#[test]
fn advisor_ranks_layouts() {
    let p = write_temp(
        "prog8.vc",
        "for i := 1 to 62 do V[i] := U[i-1] + U[i+1]; od;",
    );
    let s = write_temp(
        "spec9.dspec",
        "processors 4;\narray U[0 to 63] scatter;\narray V[0 to 63] scatter;\n",
    );
    let (ok, stdout, stderr) = vcalc(&[p.to_str().unwrap(), s.to_str().unwrap(), "--advise"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("decomposition advisor"), "{stdout}");
    // for a stencil the top-ranked assignment must be Block/Block,
    // regardless of the (scatter) spec supplied
    let first = stdout
        .lines()
        .skip_while(|l| !l.contains("advisor"))
        .nth(1)
        .unwrap_or("");
    assert!(
        first.contains("U: Block"),
        "top candidate: {first}\n{stdout}"
    );
    assert!(
        first.contains("V: Block"),
        "top candidate: {first}\n{stdout}"
    );
}

#[test]
fn simd_flag_runs_and_rejects_bad_values() {
    let p = write_temp("prog9.vc", PROGRAM);
    let s = write_temp("spec10.dspec", SPEC);
    for simd in ["auto", "on", "off"] {
        let (ok, stdout, stderr) = vcalc(&[
            p.to_str().unwrap(),
            s.to_str().unwrap(),
            "--run",
            "--simd",
            simd,
        ]);
        assert!(ok, "--simd {simd}: {stderr}");
        assert!(stdout.contains("run: OK"), "--simd {simd}: {stdout}");
    }
    let (ok, _, stderr) = vcalc(&[p.to_str().unwrap(), s.to_str().unwrap(), "--simd", "fast"]);
    assert!(!ok);
    assert!(stderr.contains("`auto`, `on` or `off`"), "{stderr}");
}

#[test]
fn transport_flag_runs_workers_and_rejects_bad_values() {
    let p = write_temp("prog10.vc", PROGRAM);
    let s = write_temp("spec11.dspec", SPEC);
    // uds spawns real worker processes from this very binary
    let (ok, stdout, stderr) = vcalc(&[
        p.to_str().unwrap(),
        s.to_str().unwrap(),
        "--steps",
        "2",
        "--transport",
        "uds",
    ]);
    assert!(ok, "--transport uds: {stderr}");
    assert!(stdout.contains("run: OK"), "{stdout}");
    let (ok, _, stderr) = vcalc(&[
        p.to_str().unwrap(),
        s.to_str().unwrap(),
        "--transport",
        "carrier-pigeon",
    ]);
    assert!(!ok);
    assert!(stderr.contains("`inproc`, `uds` or `tcp`"), "{stderr}");
}

/// Three clauses, the first two independent: the DAG schedule must
/// compress them into two waves and still verify against the
/// sequential reference; `seq` keeps one wave per clause.
const MULTI_PROGRAM: &str = "for i := 1 to 62 do A[i] := A[i] + 1.0; od;\n\
                             for i := 1 to 62 do B[i] := B[i] * 0.5; od;\n\
                             for i := 1 to 62 do C[i] := A[i] + B[i]; od;";
const MULTI_SPEC: &str = "processors 4;\narray A[0 to 63] block;\narray B[0 to 63] block;\n\
                          array C[0 to 63] block;\n";

#[test]
fn schedule_flag_runs_both_modes_and_rejects_bad_values() {
    let p = write_temp("prog11.vc", MULTI_PROGRAM);
    let s = write_temp("spec12.dspec", MULTI_SPEC);
    let (ok, stdout, stderr) = vcalc(&[
        p.to_str().unwrap(),
        s.to_str().unwrap(),
        "--schedule",
        "dag",
        "--steps",
        "2",
        "--trace",
    ]);
    assert!(ok, "--schedule dag: {stderr}");
    assert!(stdout.contains("3 clause(s) in 2 wave(s)"), "{stdout}");
    assert!(stdout.contains("width 2"), "{stdout}");
    assert!(stdout.contains("DAG replay OK"), "{stdout}");
    assert!(
        stdout.contains("identical to the iterated sequential reference"),
        "{stdout}"
    );

    let (ok, stdout, stderr) = vcalc(&[
        p.to_str().unwrap(),
        s.to_str().unwrap(),
        "--schedule",
        "seq",
    ]);
    assert!(ok, "--schedule seq: {stderr}");
    assert!(stdout.contains("3 clause(s) in 3 wave(s)"), "{stdout}");

    let (ok, _, stderr) = vcalc(&[
        p.to_str().unwrap(),
        s.to_str().unwrap(),
        "--schedule",
        "topological-ish",
    ]);
    assert!(!ok);
    assert!(stderr.contains("`seq` or `dag`"), "{stderr}");
}

#[test]
fn autotune_runs_and_verifies() {
    let p = write_temp("prog12.vc", PROGRAM);
    let s = write_temp("spec13.dspec", SPEC);
    let (ok, stdout, stderr) = vcalc(&[
        p.to_str().unwrap(),
        s.to_str().unwrap(),
        "--autotune",
        "--steps",
        "6",
    ]);
    assert!(ok, "--autotune: {stderr}");
    assert!(stdout.contains("--- autotune: 6 step(s)"), "{stdout}");
    assert!(stdout.contains("autotune: priced"), "{stdout}");
    assert!(stdout.contains("autotune: chosen layout:"), "{stdout}");
    assert!(stdout.contains("run: OK"), "{stdout}");
    assert!(
        stdout.contains("identical to the iterated sequential reference"),
        "{stdout}"
    );
    // the per-clause single-shot run must NOT also fire
    assert!(
        !stdout.contains("identical to the sequential reference\n\n--- autotune"),
        "{stdout}"
    );
}

/// A heavily misaligned layout over many steps makes the tuner switch
/// mid-loop — the CLI must report the inserted redistribution and still
/// verify bit-exactly.
#[test]
fn autotune_switches_misaligned_layout() {
    let p = write_temp(
        "prog13.vc",
        "for i := 1 to 62 do V[i] := U[i-1] + U[i+1]; od;",
    );
    let s = write_temp(
        "spec14.dspec",
        "processors 4;\narray U[0 to 63] scatter;\narray V[0 to 63] scatter;\n",
    );
    let (ok, stdout, stderr) = vcalc(&[
        p.to_str().unwrap(),
        s.to_str().unwrap(),
        "--autotune",
        "--steps",
        "500",
    ]);
    assert!(ok, "--autotune: {stderr}");
    assert!(
        stdout.contains("switched layout mid-loop"),
        "500 steps of a scattered stencil must amortize a switch\n{stdout}"
    );
    assert!(stdout.contains("redistribution(s)"), "{stdout}");
    assert!(stdout.contains("run: OK"), "{stdout}");
}

/// `--autotune` composes with `--schedule dag` and `--tune-budget`;
/// bad budgets and the `--naive` conflict are rejected up front.
#[test]
fn autotune_flag_interactions() {
    let p = write_temp("prog14.vc", MULTI_PROGRAM);
    let s = write_temp("spec15.dspec", MULTI_SPEC);
    let (ok, stdout, stderr) = vcalc(&[
        p.to_str().unwrap(),
        s.to_str().unwrap(),
        "--autotune",
        "--schedule",
        "dag",
        "--steps",
        "4",
        "--tune-budget",
        "3",
    ]);
    assert!(ok, "--autotune --schedule dag: {stderr}");
    assert!(stdout.contains("schedule dag, budget 3"), "{stdout}");
    assert!(stdout.contains("run: OK"), "{stdout}");

    // --tune-budget alone implies --autotune (and execution)
    let (ok, stdout, stderr) = vcalc(&[
        p.to_str().unwrap(),
        s.to_str().unwrap(),
        "--tune-budget",
        "2",
    ]);
    assert!(ok, "--tune-budget alone: {stderr}");
    assert!(stdout.contains("--- autotune:"), "{stdout}");

    for bad in ["0", "-3", "many"] {
        let (ok, _, stderr) = vcalc(&[
            p.to_str().unwrap(),
            s.to_str().unwrap(),
            "--tune-budget",
            bad,
        ]);
        assert!(!ok, "--tune-budget {bad} must be rejected");
        assert!(stderr.contains("positive integer"), "{stderr}");
    }

    let (ok, _, stderr) = vcalc(&[
        p.to_str().unwrap(),
        s.to_str().unwrap(),
        "--autotune",
        "--naive",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--naive is a cold-path flag"), "{stderr}");
}

#[test]
fn bad_inputs_fail_cleanly() {
    let p = write_temp("prog5.vc", "for i := 1 to");
    let s = write_temp("spec5.dspec", SPEC);
    let (ok, _, stderr) = vcalc(&[p.to_str().unwrap(), s.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("vcalc:"), "{stderr}");

    let p = write_temp("prog6.vc", PROGRAM);
    let s = write_temp("spec6.dspec", "processors 4;\narray A[0 to 63] wavy;\n");
    let (ok, _, stderr) = vcalc(&[p.to_str().unwrap(), s.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("wavy"), "{stderr}");

    // missing array in spec surfaces at plan time
    let s = write_temp("spec7.dspec", "processors 4;\narray A[0 to 63] block;\n");
    let (ok, _, stderr) = vcalc(&[p.to_str().unwrap(), s.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("B"), "{stderr}");

    let (ok, _, stderr) = vcalc(&["only-one-arg"]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
}
