//! Machine equivalence: for randomized clauses drawn from the paper's
//! function classes and random decomposition assignments, the sequential
//! reference, both shared-memory write strategies, and the distributed
//! machine must produce bit-identical results — with both naive and
//! optimized schedules.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use vcal_suite::core::func::Fn1;
use vcal_suite::core::{
    Array, ArrayRef, Bounds, Clause, CmpOp, Env, Expr, Guard, IndexSet, Ordering,
};
use vcal_suite::decomp::Decomp1;
use vcal_suite::machine::{run_distributed, run_shared, DistArray, DistOptions, WriteStrategy};
use vcal_suite::spmd::{DecompMap, SpmdPlan};

/// Random monotone-or-piecewise access function with its valid loop range
/// given an extent [0, n-1].
fn random_fn(rng: &mut StdRng, n: i64) -> (Fn1, i64, i64) {
    match rng.gen_range(0..6) {
        0 => (Fn1::Const(rng.gen_range(0..n)), 0, n - 1),
        1 => {
            let c = rng.gen_range(0..n / 4);
            (Fn1::shift(c), 0, n - 1 - c)
        }
        2 => {
            let a = rng.gen_range(2..6);
            let c = rng.gen_range(0..4);
            (Fn1::affine(a, c), 0, (n - 1 - c) / a)
        }
        3 => {
            // decreasing affine
            let a = -rng.gen_range(1i64..4);
            (Fn1::affine(a, n - 1), 0, (n - 1) / a.abs())
        }
        4 => {
            let s = rng.gen_range(1..n);
            (Fn1::rotate(s, n), 0, n - 1)
        }
        _ => {
            let q = rng.gen_range(2..6);
            // i + i div q has range < n for i <= (n-1)*q/(q+1)
            let imax = (n - 1) * q / (q + 1);
            (Fn1::i_plus_i_div(q), 0, imax)
        }
    }
}

fn random_decomp(rng: &mut StdRng, pmax: i64, n: i64) -> Decomp1 {
    let e = Bounds::range(0, n - 1);
    match rng.gen_range(0..4) {
        0 => Decomp1::block(pmax, e),
        1 => Decomp1::scatter(pmax, e),
        2 => Decomp1::block_scatter(rng.gen_range(1..6), pmax, e),
        _ => Decomp1::replicated(pmax, e),
    }
}

#[test]
fn randomized_equivalence_sweep() {
    let mut rng = StdRng::seed_from_u64(0x5eed_cafe);
    for trial in 0..60 {
        let n: i64 = rng.gen_range(16..128);
        let pmax: i64 = *[2, 3, 4, 7].get(rng.gen_range(0usize..4)).unwrap();

        let (f, f_lo, f_hi) = random_fn(&mut rng, n);
        let (g, g_lo, g_hi) = random_fn(&mut rng, n);
        let imin = f_lo.max(g_lo);
        let imax = f_hi.min(g_hi);
        if imin > imax {
            continue;
        }

        // writes must be injective for deterministic semantics
        if !f.is_injective(imin, imax) {
            continue;
        }

        let guarded = rng.gen_bool(0.4);
        let clause = Clause {
            iter: IndexSet::range(imin, imax),
            ordering: Ordering::Par,
            guard: if guarded {
                Guard::Cmp {
                    lhs: ArrayRef::d1("B", g.clone()),
                    op: CmpOp::Gt,
                    rhs: 0.0,
                }
            } else {
                Guard::Always
            },
            lhs: ArrayRef::d1("A", f.clone()),
            rhs: Expr::add(
                Expr::Ref(ArrayRef::d1("B", g.clone())),
                Expr::mul(Expr::LoopVar { dim: 0 }, Expr::Lit(0.25)),
            ),
        };

        let mut env = Env::new();
        env.insert(
            "A",
            Array::from_fn(Bounds::range(0, n - 1), |i| -(i.scalar() as f64)),
        );
        env.insert(
            "B",
            Array::from_fn(Bounds::range(0, n - 1), |i| {
                // mixed signs so guards matter
                let v = i.scalar() as f64;
                if i.scalar() % 3 == 0 {
                    -v
                } else {
                    v
                }
            }),
        );
        let mut reference = env.clone();
        reference.exec_clause(&clause);

        // a non-replicated decomposition for the written array
        let dec_a = loop {
            let d = random_decomp(&mut rng, pmax, n);
            if !d.is_replicated() {
                break d;
            }
        };
        let dec_b = random_decomp(&mut rng, pmax, n);
        let mut dm = DecompMap::new();
        dm.insert("A".into(), dec_a.clone());
        dm.insert("B".into(), dec_b.clone());

        for naive in [false, true] {
            let plan = if naive {
                SpmdPlan::build_naive(&clause, &dm).unwrap()
            } else {
                SpmdPlan::build(&clause, &dm).unwrap()
            };
            let ctx = format!(
                "trial {trial}: n={n} pmax={pmax} f={f:?} g={g:?} A={dec_a} B={dec_b} naive={naive} guarded={guarded}"
            );

            for strat in [WriteStrategy::Direct, WriteStrategy::GatherCommit] {
                let mut shm = env.clone();
                run_shared(&plan, &clause, &mut shm, strat).unwrap();
                assert_eq!(
                    shm.get("A")
                        .unwrap()
                        .max_abs_diff(reference.get("A").unwrap()),
                    0.0,
                    "shared {strat:?} mismatch: {ctx}"
                );
            }

            let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
            for name in ["A", "B"] {
                arrays.insert(
                    name.into(),
                    DistArray::scatter_from(env.get(name).unwrap(), dm[name].clone()),
                );
            }
            run_distributed(&plan, &clause, &mut arrays, DistOptions::default())
                .unwrap_or_else(|e| panic!("distributed failed: {e} — {ctx}"));
            assert_eq!(
                arrays["A"]
                    .gather()
                    .max_abs_diff(reference.get("A").unwrap()),
                0.0,
                "distributed mismatch: {ctx}"
            );
        }
    }
}

#[test]
fn self_referential_parallel_clause() {
    // A[i] := A[i] * 2 + B[i]: element-wise self reference under //
    let n = 48;
    let clause = Clause {
        iter: IndexSet::range(0, n - 1),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1("A", Fn1::identity()),
        rhs: Expr::add(
            Expr::mul(
                Expr::Ref(ArrayRef::d1("A", Fn1::identity())),
                Expr::Lit(2.0),
            ),
            Expr::Ref(ArrayRef::d1("B", Fn1::identity())),
        ),
    };
    let mut env = Env::new();
    env.insert(
        "A",
        Array::from_fn(Bounds::range(0, n - 1), |i| i.scalar() as f64),
    );
    env.insert(
        "B",
        Array::from_fn(Bounds::range(0, n - 1), |i| 0.5 * i.scalar() as f64),
    );
    let mut reference = env.clone();
    reference.exec_clause(&clause);

    let mut dm = DecompMap::new();
    dm.insert("A".into(), Decomp1::block(4, Bounds::range(0, n - 1)));
    dm.insert("B".into(), Decomp1::scatter(4, Bounds::range(0, n - 1)));
    let plan = SpmdPlan::build(&clause, &dm).unwrap();

    let mut shm = env.clone();
    run_shared(&plan, &clause, &mut shm, WriteStrategy::Direct).unwrap();
    assert_eq!(
        shm.get("A")
            .unwrap()
            .max_abs_diff(reference.get("A").unwrap()),
        0.0
    );

    let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
    for name in ["A", "B"] {
        arrays.insert(
            name.into(),
            DistArray::scatter_from(env.get(name).unwrap(), dm[name].clone()),
        );
    }
    run_distributed(&plan, &clause, &mut arrays, DistOptions::default()).unwrap();
    assert_eq!(
        arrays["A"]
            .gather()
            .max_abs_diff(reference.get("A").unwrap()),
        0.0
    );
}

#[test]
fn many_processors_small_problem() {
    // more processors than some nodes have elements: empty schedules must
    // be handled everywhere
    let n = 10;
    let clause = Clause {
        iter: IndexSet::range(0, n - 1),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1("A", Fn1::identity()),
        rhs: Expr::Ref(ArrayRef::d1("B", Fn1::identity())),
    };
    let mut env = Env::new();
    env.insert("A", Array::zeros(Bounds::range(0, n - 1)));
    env.insert(
        "B",
        Array::from_fn(Bounds::range(0, n - 1), |i| i.scalar() as f64),
    );
    let mut reference = env.clone();
    reference.exec_clause(&clause);

    let mut dm = DecompMap::new();
    dm.insert("A".into(), Decomp1::block(8, Bounds::range(0, n - 1)));
    dm.insert("B".into(), Decomp1::scatter(8, Bounds::range(0, n - 1)));
    let plan = SpmdPlan::build(&clause, &dm).unwrap();
    let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
    for name in ["A", "B"] {
        arrays.insert(
            name.into(),
            DistArray::scatter_from(env.get(name).unwrap(), dm[name].clone()),
        );
    }
    run_distributed(&plan, &clause, &mut arrays, DistOptions::default()).unwrap();
    assert_eq!(
        arrays["A"]
            .gather()
            .max_abs_diff(reference.get("A").unwrap()),
        0.0
    );
}
