//! E3 — Table I exactness: for every row of the paper's optimization
//! table and every decomposition column, the closed-form schedule must
//! enumerate *exactly* the ownership set `{ i | proc(f(i)) = p }`, the
//! per-processor sets must partition the loop, the expected theorem must
//! fire, and the closed-form work must be strictly below the naive
//! (`imax - imin + 1` tests per processor) cost.

use vcal_suite::core::func::Fn1;
use vcal_suite::core::Bounds;
use vcal_suite::decomp::Decomp1;
use vcal_suite::machine::{trace_plan, CollectingTracer};
use vcal_suite::spmd::{naive_schedule, optimize, OptKind, PlanSummary, SpmdPlan};

/// Check one (f, dec) pair over the loop range for all processors.
/// Returns the kinds seen.
fn check_cell(f: &Fn1, dec: &Decomp1, imin: i64, imax: i64) -> Vec<OptKind> {
    let mut kinds = Vec::new();
    let mut covered = 0u64;
    for p in 0..dec.pmax() {
        let opt = optimize(f, dec, imin, imax, p);
        let got = opt.schedule.to_sorted_vec();
        let want: Vec<i64> = (imin..=imax)
            .filter(|&i| dec.proc_of(f.eval(i)) == p)
            .collect();
        assert_eq!(
            got, want,
            "EXACTNESS p={p} f={f:?} {dec} kind={:?}",
            opt.kind
        );
        covered += got.len() as u64;
        kinds.push(opt.kind);
    }
    assert_eq!(
        covered,
        (imax - imin + 1).max(0) as u64,
        "PARTITION f={f:?} {dec}"
    );
    kinds
}

fn total_closed_work(f: &Fn1, dec: &Decomp1, imin: i64, imax: i64) -> u64 {
    (0..dec.pmax())
        .map(|p| optimize(f, dec, imin, imax, p).schedule.work_estimate())
        .sum()
}

fn total_naive_work(f: &Fn1, dec: &Decomp1, imin: i64, imax: i64) -> u64 {
    (0..dec.pmax())
        .map(|p| naive_schedule(f, dec, imin, imax, p).work_estimate())
        .sum()
}

const N: i64 = 1200;

fn block(pmax: i64) -> Decomp1 {
    Decomp1::block(pmax, Bounds::range(0, N - 1))
}
fn scatter(pmax: i64) -> Decomp1 {
    Decomp1::scatter(pmax, Bounds::range(0, N - 1))
}
fn bs(b: i64, pmax: i64) -> Decomp1 {
    Decomp1::block_scatter(b, pmax, Bounds::range(0, N - 1))
}

// ---- Table I row 1: f(i) = c ------------------------------------------

#[test]
fn row_constant() {
    for pmax in [2, 4, 7] {
        for dec in [block(pmax), scatter(pmax), bs(5, pmax)] {
            for c in [0, 1, 599, N - 1] {
                let kinds = check_cell(&Fn1::Const(c), &dec, 0, 499);
                assert!(kinds.iter().all(|k| *k == OptKind::ConstantFn));
                // exactly one processor is active
                let active = (0..pmax)
                    .filter(|&p| {
                        !optimize(&Fn1::Const(c), &dec, 0, 499, p)
                            .schedule
                            .is_empty()
                    })
                    .count();
                assert_eq!(active, 1);
            }
        }
    }
}

// ---- Table I row 2: f(i) = i + c ----------------------------------------

#[test]
fn row_shift() {
    for pmax in [2, 4, 8] {
        for c in [-3i64, 0, 1, 7] {
            let f = Fn1::shift(c);
            let (imin, imax) = (c.abs(), N - 1 - c.abs());
            let kb = check_cell(&f, &block(pmax), imin, imax);
            assert!(kb.iter().all(|k| *k == OptKind::BlockAffine), "{kb:?}");
            let ks = check_cell(&f, &scatter(pmax), imin, imax);
            assert!(
                ks.iter()
                    .all(|k| matches!(k, OptKind::ScatterLinear { corollary: 1 })),
                "a=1 should hit Corollary 1: {ks:?}"
            );
            check_cell(&f, &bs(4, pmax), imin, imax);
        }
    }
}

// ---- Table I rows 3-5: f(i) = a*i + c -----------------------------------

#[test]
fn row_linear_general_and_corollaries() {
    for pmax in [4i64, 6, 8] {
        for a in [2i64, 3, 5, 6, 7, -2, -5] {
            for c in [0i64, 1, 11] {
                let f = Fn1::affine(a, c);
                // keep accesses within 0..N-1
                let lo_img = 0.max(c.min(a * 120 + c));
                let (imin, imax) = if a > 0 {
                    (if c < 0 { (-c + a - 1) / a } else { 0 }, (N - 1 - c) / a)
                } else {
                    ((c - (N - 1)) / a.abs() + 1, c / a.abs())
                };
                assert!(lo_img >= 0);
                check_cell(&f, &block(pmax), imin, imax);
                let ks = check_cell(&f, &scatter(pmax), imin, imax);
                let expected = if a.abs() % pmax == 0 {
                    2u8
                } else if pmax % a.abs() == 0 {
                    1
                } else {
                    0
                };
                assert!(
                    ks.iter().all(|k| *k
                        == OptKind::ScatterLinear {
                            corollary: expected
                        }),
                    "a={a} pmax={pmax}: {ks:?}"
                );
                check_cell(&f, &bs(3, pmax), imin, imax);
                check_cell(&f, &bs(16, pmax), imin, imax);
            }
        }
    }
}

#[test]
fn corollary_2_single_active_processor() {
    // a mod pmax = 0: only p = c mod pmax executes anything
    let pmax = 4;
    let f = Fn1::affine(8, 3);
    let dec = scatter(pmax);
    for p in 0..pmax {
        let opt = optimize(&f, &dec, 0, (N - 1 - 3) / 8, p);
        assert_eq!(opt.schedule.is_empty(), p != 3, "p={p}");
    }
}

// ---- Table I row 6: monotone non-linear ---------------------------------

#[test]
fn row_monotonic() {
    let sq = Fn1::square();
    let idiv = Fn1::i_plus_i_div(4);
    for pmax in [4i64, 8] {
        // block column: exact range via f^{-1}
        let kb = check_cell(&sq, &block(pmax), 0, 34); // 34^2 = 1156 < N
        assert!(kb.iter().all(|k| *k == OptKind::BlockMonotonic));
        let kb = check_cell(&idiv, &block(pmax), 0, 900);
        assert!(kb.iter().all(|k| *k == OptKind::BlockMonotonic));
        // block-scatter column: repeated block (Theorem 2)
        let kbs = check_cell(&sq, &bs(40, pmax), 0, 34);
        assert!(
            kbs.iter()
                .all(|k| matches!(k, OptKind::RepeatedBlock | OptKind::RepeatedScatter)),
            "{kbs:?}"
        );
        check_cell(&idiv, &bs(7, pmax), 0, 900);
    }
    // scatter column: slope < pmax -> enumerate on k
    let ks = check_cell(&idiv, &scatter(16), 0, 900);
    assert!(
        ks.iter().all(|k| *k == OptKind::ScatterMonotonicViaK),
        "{ks:?}"
    );
    // slope >= pmax -> naive fallback (still exact)
    let ks = check_cell(&sq, &scatter(4), 0, 34);
    assert!(ks.iter().all(|k| *k == OptKind::Naive), "{ks:?}");
}

#[test]
fn monotonic_decreasing_block() {
    let f = Fn1::affine(-1, N - 1); // reversal
    let kinds = check_cell(&f, &block(4), 0, N - 1);
    assert!(kinds.iter().all(|k| *k == OptKind::BlockAffine));
    check_cell(&f, &scatter(4), 0, N - 1);
    check_cell(&f, &bs(8, 4), 0, N - 1);
}

// ---- Section 3.3: piecewise-monotonic -----------------------------------

#[test]
fn piecewise_rotate_and_multiwrap() {
    let rot = Fn1::rotate(6, 20);
    for dec in [
        Decomp1::block(4, Bounds::range(0, 19)),
        Decomp1::scatter(4, Bounds::range(0, 19)),
        Decomp1::block_scatter(2, 4, Bounds::range(0, 19)),
    ] {
        let kinds = check_cell(&rot, &dec, 0, 19);
        assert!(
            kinds.iter().all(|k| *k == OptKind::PiecewiseSplit),
            "{dec}: {kinds:?}"
        );
    }
    // rotate by a larger span with multiple wraps relative to pieces
    let rot2 = Fn1::Mod {
        inner: Box::new(Fn1::affine(1, 250)),
        z: 300,
        d: 0,
    };
    for dec in [
        Decomp1::block(4, Bounds::range(0, 299)),
        Decomp1::scatter(4, Bounds::range(0, 299)),
        Decomp1::block_scatter(5, 4, Bounds::range(0, 299)),
    ] {
        check_cell(&rot2, &dec, 0, 299);
    }
}

#[test]
fn paper_special_case_mod_multiple_of_pmax() {
    // Section 3.3: "For cases where z is a multiple of pmax and d=0,
    // f(i) mod pmax = g(i) mod pmax" — the scatter schedule of the rotate
    // then equals the scatter schedule of the unrotated inner, shifted.
    let pmax = 4;
    let z = 20; // multiple of pmax
    let rot = Fn1::rotate(6, z);
    let dec = Decomp1::scatter(pmax, Bounds::range(0, z - 1));
    for p in 0..pmax {
        let rot_sched = optimize(&rot, &dec, 0, z - 1, p).schedule.to_sorted_vec();
        let inner_sched: Vec<i64> = (0..z).filter(|&i| (i + 6).rem_euclid(pmax) == p).collect();
        assert_eq!(rot_sched, inner_sched, "p={p}");
    }
}

// ---- edge rows: negative strides ----------------------------------------

#[test]
fn row_negative_stride_exact_and_closed_form() {
    // a < 0 across all three decomposition columns: the image runs
    // backwards through the array, but every schedule must stay exact
    // and closed-form (Theorem 3 is symmetric in the sign of `a`).
    for (a, pmax, expected_corollary) in [(-3i64, 4i64, 0u8), (-4, 4, 2), (-2, 8, 1), (-7, 4, 0)] {
        for c in [N - 1, N - 5] {
            let f = Fn1::affine(a, c);
            // f(i) = a*i + c with a < 0 descends from c; keep the image
            // inside [0, N-1]
            let imax = c / a.abs();
            let kb = check_cell(&f, &block(pmax), 0, imax);
            assert!(
                kb.iter().all(|k| *k == OptKind::BlockAffine),
                "a={a}: {kb:?}"
            );
            let ks = check_cell(&f, &scatter(pmax), 0, imax);
            assert!(
                ks.iter().all(|k| *k
                    == OptKind::ScatterLinear {
                        corollary: expected_corollary
                    }),
                "a={a} pmax={pmax}: {ks:?}"
            );
            let kbs = check_cell(&f, &bs(5, pmax), 0, imax);
            assert!(kbs.iter().all(|k| k.is_closed_form()), "a={a}: {kbs:?}");
        }
    }
}

// ---- edge rows: offset outside the loop's image --------------------------

#[test]
fn offset_outside_image_stays_exact() {
    // `c` alone lies outside the accessed image (negative, or beyond the
    // far end with a negative stride); the composed accesses f(i) stay
    // inside the extent for the tested range, and every column must
    // still classify closed-form — no silent naive fallback.
    for pmax in [4i64, 8] {
        // c < 0: f(i) = 7i - 5 ∈ [2, ...] for i >= 1
        let f = Fn1::affine(7, -5);
        let (imin, imax) = (1, (N - 1 + 5) / 7);
        for dec in [block(pmax), scatter(pmax), bs(6, pmax)] {
            let kinds = check_cell(&f, &dec, imin, imax);
            assert!(kinds.iter().all(|k| k.is_closed_form()), "{dec}: {kinds:?}");
        }
        // c > N-1 with a < 0: f(i) = -3i + (N+3) ∈ [.., N-3] for i >= 2
        let f = Fn1::affine(-3, N + 3);
        let (imin, imax) = (2, (N + 3) / 3);
        for dec in [block(pmax), scatter(pmax), bs(9, pmax)] {
            let kinds = check_cell(&f, &dec, imin, imax);
            assert!(kinds.iter().all(|k| k.is_closed_form()), "{dec}: {kinds:?}");
        }
    }
}

// ---- edge rows: degenerate single-element blocks --------------------------

#[test]
fn degenerate_single_element_blocks() {
    // b = 1 makes block-scatter collapse onto plain scatter, and a block
    // decomposition with one element per processor is the finest block —
    // both must classify closed-form and enumerate exactly.
    for pmax in [2i64, 4, 8] {
        for f in [Fn1::identity(), Fn1::shift(2), Fn1::affine(3, 1)] {
            let imax = match &f {
                Fn1::Affine { a, c } => (N - 1 - c) / a,
                _ => N - 3,
            };
            let kinds = check_cell(&f, &bs(1, pmax), 0, imax);
            assert!(
                kinds.iter().all(|k| k.is_closed_form()),
                "b=1 pmax={pmax} f={f:?}: {kinds:?}"
            );
        }
    }
    // one element per processor: extent 0..pmax-1, block size 1
    let pmax = 16;
    let tiny = Decomp1::block(pmax, Bounds::range(0, pmax - 1));
    let kinds = check_cell(&Fn1::identity(), &tiny, 0, pmax - 1);
    assert!(kinds.iter().all(|k| k.is_closed_form()), "{kinds:?}");
    for p in 0..pmax {
        let opt = optimize(&Fn1::identity(), &tiny, 0, pmax - 1, p);
        assert_eq!(opt.schedule.to_sorted_vec(), vec![p], "p={p}");
    }
}

// ---- edge rows: gcd(a, P·b) > 1 Diophantine no-solution -------------------

#[test]
fn gcd_no_solution_is_empty_not_naive() {
    // gcd(a, pmax) > 1: the congruence a·i + c ≡ p (mod pmax) has no
    // solution for half the processors. Theorem 3 must answer with an
    // *empty* closed-form schedule — falling back to membership testing
    // would be exact too, which is why only the dispatch kind can catch
    // the regression.
    let (a, c, pmax) = (6i64, 1i64, 4i64);
    let f = Fn1::affine(a, c);
    let imax = (N - 1 - c) / a;
    let kinds = check_cell(&f, &scatter(pmax), 0, imax);
    assert!(
        kinds
            .iter()
            .all(|k| *k == OptKind::ScatterLinear { corollary: 0 }),
        "{kinds:?}"
    );
    for p in 0..pmax {
        let opt = optimize(&f, &scatter(pmax), 0, imax, p);
        // 6i+1 mod 4 ∈ {1, 3}: even processors own nothing
        assert_eq!(opt.schedule.is_empty(), p % 2 == 0, "p={p}");
        assert!(opt.kind.is_closed_form(), "p={p}: {:?}", opt.kind);
    }
    // block-scatter column: gcd(a, P·b) = gcd(6, 4·2) = 2 > 1
    let kbs = check_cell(&f, &bs(2, pmax), 0, imax);
    assert!(kbs.iter().all(|k| k.is_closed_form()), "{kbs:?}");
}

// ---- the dispatch trace is the witness ------------------------------------

#[test]
fn edge_rows_dispatch_trace_shows_no_fallback() {
    // Whole-plan check through the observability layer: the recorded
    // enumeration-dispatch trace for an edge clause (negative stride,
    // gcd > 1, offset outside the image) must contain no `naive-guard`
    // row — the paper's closed forms cover all of them.
    use vcal_suite::core::func::Fn1;
    use vcal_suite::core::{ArrayRef, Clause, Expr, Guard, IndexSet, Ordering};
    use vcal_suite::spmd::DecompMap;

    let cases: Vec<(Fn1, Fn1, i64, i64)> = vec![
        (Fn1::identity(), Fn1::affine(-3, N + 3), 2, (N + 3) / 3), // a<0, c>N-1
        (Fn1::identity(), Fn1::affine(6, 1), 0, (N - 2) / 6),      // gcd(6,8)=2
        (Fn1::shift(1), Fn1::affine(7, -5), 1, (N + 4) / 7),       // c<0
    ];
    for (f, g, imin, imax) in cases {
        let clause = Clause {
            iter: IndexSet::range(imin, imax),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", f),
            rhs: Expr::Ref(ArrayRef::d1("B", g.clone())),
        };
        let mut dm = DecompMap::new();
        dm.insert("A".into(), Decomp1::block(8, Bounds::range(0, N - 1)));
        dm.insert("B".into(), Decomp1::scatter(8, Bounds::range(0, N - 1)));
        let plan = SpmdPlan::build(&clause, &dm).unwrap();

        // plan-level summary and the machine-level dispatch trace must
        // agree: fully closed-form, no naive-guard row anywhere
        let summary = PlanSummary::of(&plan);
        assert!(
            summary.is_fully_closed_form(),
            "g={g:?}: {:?}",
            summary.dispatch_counts()
        );
        let tracer = CollectingTracer::new();
        trace_plan(&tracer, &plan);
        let counts = tracer.finish().dispatch_counts();
        assert!(!counts.contains_key("naive-guard"), "g={g:?}: {counts:?}");
        assert_eq!(
            counts.values().sum::<u64>(),
            summary.dispatch_counts().values().sum::<u64>(),
            "trace and plan summary disagree for g={g:?}"
        );
    }
}

// ---- work comparison: the point of the whole exercise --------------------

#[test]
fn closed_form_work_beats_naive() {
    let cases: Vec<(Fn1, Decomp1, i64, i64)> = vec![
        (Fn1::identity(), block(8), 0, N - 1),
        (Fn1::shift(3), scatter(8), 0, N - 4),
        (Fn1::affine(3, 1), scatter(8), 0, (N - 2) / 3),
        (Fn1::identity(), bs(4, 8), 0, N - 1),
        (Fn1::i_plus_i_div(4), scatter(16), 0, 900),
    ];
    for (f, dec, imin, imax) in cases {
        let closed = total_closed_work(&f, &dec, imin, imax);
        let naive = total_naive_work(&f, &dec, imin, imax);
        let loop_len = (imax - imin + 1) as u64;
        assert_eq!(naive, loop_len * dec.pmax() as u64);
        assert!(
            closed < naive / 2,
            "f={f:?} {dec}: closed {closed} not << naive {naive}"
        );
    }
}
