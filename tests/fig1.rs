//! E1 — Figure 1 reproduction: the example program translates to exactly
//! the paper's V-cal expression, and the generated SPMD programs compute
//! the same result as the original loop on every machine.

use std::collections::BTreeMap;
use vcal_suite::core::{Array, Bounds, Env};
use vcal_suite::decomp::Decomp1;
use vcal_suite::lang;
use vcal_suite::machine::{
    run_distributed, run_sequential, run_shared, DistArray, DistOptions, WriteStrategy,
};
use vcal_suite::spmd::{DecompMap, SpmdPlan};

const FIG1_SRC: &str = "for i := 1 to 9 do if A[i] > 0 then A[i] := B[i+1]; fi; od;";

#[test]
fn fig1_vcal_form_matches_paper() {
    let clause = lang::compile(FIG1_SRC).unwrap()[0].clone();
    // the paper: ∆(i ∈ (k+1: n | [i]A>0 ) // ([i](A) := [f(i)](B))
    assert_eq!(
        lang::to_vcal(&clause),
        "∆(i ∈ (1:9 | [i]A>0)) // ([i](A) := [i+1](B))"
    );
}

#[test]
fn fig1_executes_identically_on_all_machines() {
    let clause = lang::compile(FIG1_SRC).unwrap()[0].clone();

    let mut env = Env::new();
    env.insert(
        "A",
        Array::from_fn(Bounds::range(0, 9), |i| {
            // mix of guard-passing and guard-failing values
            if i.scalar() % 2 == 0 {
                -(i.scalar() as f64)
            } else {
                i.scalar() as f64
            }
        }),
    );
    env.insert(
        "B",
        Array::from_fn(Bounds::range(0, 10), |i| 100.0 + i.scalar() as f64),
    );

    let mut reference = env.clone();
    run_sequential(&clause, &mut reference);

    // try several decomposition assignments
    let layouts: Vec<(Decomp1, Decomp1)> = vec![
        (
            Decomp1::block(4, Bounds::range(0, 9)),
            Decomp1::block(4, Bounds::range(0, 10)),
        ),
        (
            Decomp1::scatter(4, Bounds::range(0, 9)),
            Decomp1::block(4, Bounds::range(0, 10)),
        ),
        (
            Decomp1::block_scatter(2, 3, Bounds::range(0, 9)),
            Decomp1::scatter(3, Bounds::range(0, 10)),
        ),
    ];
    for (dec_a, dec_b) in layouts {
        let mut dm = DecompMap::new();
        dm.insert("A".into(), dec_a.clone());
        dm.insert("B".into(), dec_b.clone());
        let plan = SpmdPlan::build(&clause, &dm).unwrap();

        for strat in [WriteStrategy::Direct, WriteStrategy::GatherCommit] {
            let mut shm = env.clone();
            run_shared(&plan, &clause, &mut shm, strat).unwrap();
            assert_eq!(
                shm.get("A")
                    .unwrap()
                    .max_abs_diff(reference.get("A").unwrap()),
                0.0,
                "shared {strat:?} differs for A={dec_a} B={dec_b}"
            );
        }

        let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
        for name in ["A", "B"] {
            arrays.insert(
                name.into(),
                DistArray::scatter_from(env.get(name).unwrap(), dm[name].clone()),
            );
        }
        run_distributed(&plan, &clause, &mut arrays, DistOptions::default()).unwrap();
        assert_eq!(
            arrays["A"]
                .gather()
                .max_abs_diff(reference.get("A").unwrap()),
            0.0,
            "distributed differs for A={dec_a} B={dec_b}"
        );
    }
}

#[test]
fn fig1_guard_blocks_updates() {
    // with all A <= 0 the guard never fires: A must be unchanged
    let clause = lang::compile(FIG1_SRC).unwrap()[0].clone();
    let mut env = Env::new();
    env.insert("A", Array::from_fn(Bounds::range(0, 9), |_| -1.0));
    env.insert("B", Array::from_fn(Bounds::range(0, 10), |_| 99.0));
    let before = env.get("A").unwrap().clone();
    let mut dm = DecompMap::new();
    dm.insert("A".into(), Decomp1::block(2, Bounds::range(0, 9)));
    dm.insert("B".into(), Decomp1::block(2, Bounds::range(0, 10)));
    let plan = SpmdPlan::build(&clause, &dm).unwrap();
    run_shared(&plan, &clause, &mut env, WriteStrategy::Direct).unwrap();
    assert_eq!(env.get("A").unwrap().max_abs_diff(&before), 0.0);
}
