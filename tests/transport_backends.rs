//! Cross-backend transport regression harness: the same plans, fault
//! seeds, and trace configuration must behave identically whether the
//! nodes are threads over channels (`inproc`) or real worker OS
//! processes speaking the framed wire protocol over Unix-domain or
//! loopback TCP sockets (`uds` / `tcp`).
//!
//! * results are bitwise-equal to the sequential oracle on every
//!   backend, cold path and steady-state session alike;
//! * the seeded recoverable-fault sweep passes over a real wire,
//!   bitwise-equal to the oracle;
//! * the deterministic trace JSONL of a same-seed run is byte-identical
//!   across all three backends — the wire is invisible to the
//!   deterministic event class;
//! * byte-level chaos (bit flips, stalls, severed connections) injected
//!   by the proxy between the workers and the router either recovers to
//!   the bit-identical result or surfaces as a typed error with the
//!   arrays untouched;
//! * SIGKILLing a worker process mid-run yields a typed
//!   [`MachineError::Transport`]-class failure, leaves the arrays
//!   untouched, and the same session completes once the fault clears.
//!
//! The CI transport matrix runs the wire-backed suites here once per
//! backend; everything is seeded, so failures reproduce exactly.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Once;
use std::time::{Duration, Instant};
use vcal_suite::core::func::Fn1;
use vcal_suite::core::{Array, ArrayRef, Bounds, Clause, Env, Expr, Guard, IndexSet, Ordering};
use vcal_suite::decomp::Decomp1;
use vcal_suite::machine::{
    run_distributed, ChaosPlan, CollectingTracer, DistOptions, DistSession, FaultPlan,
    MachineError, RetryPolicy, TransportKind,
};
use vcal_suite::spmd::DecompMap;

const N: i64 = 96;
const PMAX: i64 = 4;

/// Point the process backends at the `vcalc` binary (which implements
/// the `worker` subcommand); the test binary itself does not.
fn init() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| std::env::set_var("VCAL_WORKER_BIN", env!("CARGO_BIN_EXE_vcalc")));
}

/// The stencil + writeback pair: remote reads in both directions, both
/// interior and boundary runs, state carried across steps.
fn fixture() -> (Vec<Clause>, DecompMap, Env) {
    let sweep = Clause {
        iter: IndexSet::range(1, N - 2),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1("V", Fn1::identity()),
        rhs: Expr::mul(
            Expr::add(
                Expr::Ref(ArrayRef::d1("U", Fn1::shift(-1))),
                Expr::Ref(ArrayRef::d1("U", Fn1::shift(1))),
            ),
            Expr::Lit(0.5),
        ),
    };
    let back = Clause {
        iter: IndexSet::range(1, N - 2),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1("U", Fn1::identity()),
        rhs: Expr::Ref(ArrayRef::d1("V", Fn1::identity())),
    };
    let mut env = Env::new();
    env.insert(
        "U",
        Array::from_fn(Bounds::range(0, N - 1), |i| {
            (i.scalar() * 17 % 29) as f64 - 13.0
        }),
    );
    env.insert("V", Array::zeros(Bounds::range(0, N - 1)));
    let mut dm = DecompMap::new();
    dm.insert("U".into(), Decomp1::block(PMAX, Bounds::range(0, N - 1)));
    dm.insert("V".into(), Decomp1::block(PMAX, Bounds::range(0, N - 1)));
    (vec![sweep, back], dm, env)
}

/// The iterated sequential oracle for `steps` rounds of the fixture.
fn oracle(clauses: &[Clause], env: &Env, steps: usize) -> Env {
    let mut reference = env.clone();
    for _ in 0..steps {
        for cl in clauses {
            reference.exec_clause(cl);
        }
    }
    reference
}

/// Run the fixture for `steps` rounds through a session on `opts`,
/// returning the gathered end state.
fn run_session(
    clauses: &[Clause],
    dm: &DecompMap,
    env: &Env,
    steps: usize,
    opts: DistOptions,
    tracer: Option<&CollectingTracer>,
) -> Result<Env, MachineError> {
    let mut session = DistSession::new(env, dm.clone())?.with_options(opts);
    for _ in 0..steps {
        for cl in clauses {
            match tracer {
                Some(t) => session.run_traced(cl, t)?,
                None => session.run(cl)?,
            };
        }
    }
    Ok(session.gather_all())
}

/// Every backend, cold through warm: three session steps (plan cache
/// miss, then hits; workers persist across steps on the wire backends)
/// end bitwise-equal to the iterated sequential oracle.
#[test]
fn all_backends_match_sequential_oracle() {
    init();
    let (clauses, dm, env) = fixture();
    let reference = oracle(&clauses, &env, 3);
    for kind in [
        TransportKind::InProc,
        TransportKind::Uds,
        TransportKind::Tcp,
    ] {
        let opts = DistOptions {
            transport: kind,
            ..DistOptions::default()
        };
        let got = run_session(&clauses, &dm, &env, 3, opts, None)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        for name in ["U", "V"] {
            assert_eq!(
                got.get(name)
                    .unwrap()
                    .max_abs_diff(reference.get(name).unwrap()),
                0.0,
                "{}: `{name}` differs from the sequential oracle",
                kind.name()
            );
        }
    }
}

/// PR 3's deterministic trace logs as the cross-backend regression
/// harness: the same seeded recoverable-fault run produces a
/// byte-identical deterministic JSONL stream on all three backends —
/// frames, reconnects, and process boundaries never leak into the
/// deterministic event class.
#[test]
fn trace_jsonl_byte_identical_across_backends() {
    init();
    let (clauses, dm, env) = fixture();
    let faults = Some(FaultPlan::seeded(23).with_drop(0.05).with_reorder(0.05));
    let mut logs = Vec::new();
    for kind in [
        TransportKind::InProc,
        TransportKind::Uds,
        TransportKind::Tcp,
    ] {
        let opts = DistOptions {
            transport: kind,
            faults,
            retry: RetryPolicy::fast(),
            ..DistOptions::default()
        };
        let tracer = CollectingTracer::new();
        run_session(&clauses, &dm, &env, 1, opts, Some(&tracer))
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        logs.push((kind, tracer.finish().to_jsonl()));
    }
    let (_, reference) = &logs[0];
    for (kind, jsonl) in &logs[1..] {
        assert_eq!(
            jsonl,
            reference,
            "{}: deterministic JSONL differs from inproc",
            kind.name()
        );
    }
}

/// Recoverable byte-level chaos — bit flips caught by the frame CRC and
/// stalls — injected on the wire between workers and router: every run
/// still ends bitwise-equal to the oracle, across a dirty-handshake
/// second run.
#[test]
fn chaos_bitflip_and_stall_recover_bit_identical() {
    init();
    let (clauses, dm, env) = fixture();
    let reference = oracle(&clauses, &env, 2);
    for kind in [TransportKind::Uds, TransportKind::Tcp] {
        let opts = DistOptions {
            transport: kind,
            chaos: Some(ChaosPlan::seeded(7).with_bitflip(0.05).with_stall(0.05, 10)),
            retry: RetryPolicy::fast(),
            ..DistOptions::default()
        };
        let got = run_session(&clauses, &dm, &env, 2, opts, None)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        for name in ["U", "V"] {
            assert_eq!(
                got.get(name)
                    .unwrap()
                    .max_abs_diff(reference.get(name).unwrap()),
                0.0,
                "{}: `{name}` corrupted by recoverable chaos",
                kind.name()
            );
        }
    }
}

/// Destructive chaos — truncated frames and severed connections — must
/// either recover (reconnect + NACK retransmission) to the bit-identical
/// result or fail *typed*, leaving the arrays exactly as scattered.
#[test]
fn chaos_sever_and_truncate_recover_or_fail_typed() {
    init();
    let (clauses, dm, env) = fixture();
    let reference = oracle(&clauses, &env, 1);
    for kind in [TransportKind::Uds, TransportKind::Tcp] {
        let opts = DistOptions {
            transport: kind,
            chaos: Some(
                ChaosPlan::seeded(41)
                    .with_sever(0.02)
                    .with_truncate(0.02)
                    .with_max_faults(4),
            ),
            retry: RetryPolicy::fast(),
            ..DistOptions::default()
        };
        let mut session = DistSession::new(&env, dm.clone())
            .unwrap()
            .with_options(opts);
        let mut ran_ok = true;
        for cl in &clauses {
            if let Err(e) = session.run(cl) {
                // typed, never a panic/hang; arrays must be untouched
                assert!(
                    matches!(
                        e,
                        MachineError::Transport { .. }
                            | MachineError::Unrecoverable { .. }
                            | MachineError::MissingPacket { .. }
                            | MachineError::MissingMessage { .. }
                    ),
                    "{}: untyped failure {e:?}",
                    kind.name()
                );
                ran_ok = false;
                break;
            }
        }
        let got = session.gather_all();
        let expect = if ran_ok { &reference } else { &env };
        for name in ["U", "V"] {
            assert_eq!(
                got.get(name)
                    .unwrap()
                    .max_abs_diff(expect.get(name).unwrap()),
                0.0,
                "{}: `{name}` {} after {}",
                kind.name(),
                if ran_ok {
                    "differs from oracle"
                } else {
                    "mutated"
                },
                if ran_ok {
                    "a recovered chaos run"
                } else {
                    "a failed chaos run"
                },
            );
        }
    }
}

/// SIGKILL a worker process mid-run: the run fails with a typed
/// transport error naming a node, the arrays are untouched
/// (transactional host writes from the host-side pre-run copies), and
/// the *same session* — with the fault cleared — completes the next run
/// against the oracle, proving the pool respawned the dead worker.
#[test]
fn killed_worker_is_typed_untouched_and_session_recovers() {
    init();
    let (clauses, dm, env) = fixture();
    let sweep = &clauses[0];
    let victim = 1i64;
    let mut session = DistSession::new(&env, dm.clone())
        .unwrap()
        .with_options(DistOptions {
            transport: TransportKind::Uds,
            ..DistOptions::default()
        });

    // run 1: clean — spawns the pool and proves it works
    session.run(sweep).expect("clean run over uds");
    let after_one = session.gather_all();
    let pids = session.worker_pids();
    assert_eq!(pids.len(), PMAX as usize, "one process per node");

    // run 2: the victim's sends are all dropped, pinning its peers in
    // the NACK/drain window; SIGKILL lands inside that window
    session.set_options(DistOptions {
        transport: TransportKind::Uds,
        faults: Some(FaultPlan::seeded(5).with_drop(1.0).with_from_only(victim)),
        retry: RetryPolicy::fast(),
        recv_timeout: Duration::from_secs(2),
        ..DistOptions::default()
    });
    let victim_pid = pids[victim as usize].to_string();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        let _ = std::process::Command::new("kill")
            .args(["-9", &victim_pid])
            .status();
    });
    let t0 = Instant::now();
    let err = session.run(sweep).expect_err("victim was killed");
    killer.join().expect("killer thread");
    assert!(
        t0.elapsed() < Duration::from_secs(60),
        "death detection not bounded: {:?}",
        t0.elapsed()
    );
    // typed: process death reports Transport naming the node; if the
    // kill raced the (bounded) run's end, the total-drop fault still
    // fails typed as Unrecoverable
    match err {
        MachineError::Transport { node, .. } => assert_eq!(node, victim),
        MachineError::Unrecoverable { peer, .. } => assert_eq!(peer, victim),
        other => panic!("expected Transport/Unrecoverable, got {other:?}"),
    }
    // transactional: the failed run changed nothing
    let after_err = session.gather_all();
    for name in ["U", "V"] {
        assert_eq!(
            after_err
                .get(name)
                .unwrap()
                .max_abs_diff(after_one.get(name).unwrap()),
            0.0,
            "`{name}` mutated by the failed run"
        );
    }

    // run 3: fault cleared — the same session respawns the dead worker
    // (dirty handshake purges the wire) and completes correctly
    session.set_options(DistOptions {
        transport: TransportKind::Uds,
        ..DistOptions::default()
    });
    session
        .run(sweep)
        .expect("session must survive a dead worker");
    let mut reference = after_one.clone();
    reference.exec_clause(sweep);
    assert_eq!(
        session
            .gather_all()
            .get("V")
            .unwrap()
            .max_abs_diff(reference.get("V").unwrap()),
        0.0,
        "post-recovery run differs from the oracle"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The seeded recoverable-fault sweep of `fault_injection.rs`, over
    /// a real wire: any soup of drop/duplicate/reorder faults under a
    /// retry budget ends bitwise-equal to the sequential oracle on both
    /// socket backends (cold path — pool per case).
    #[test]
    fn fault_sweep_over_wire_matches_oracle(
        seed in any::<u64>(),
        p_drop in 0u32..12,
        p_dup in 0u32..12,
        p_reorder in 0u32..12,
        kind_ix in 0usize..2,
    ) {
        init();
        let kind = [TransportKind::Uds, TransportKind::Tcp][kind_ix];
        let (clauses, dm, env) = fixture();
        let sweep = &clauses[0];
        let reference = oracle(&clauses[..1], &env, 1);
        let plan = vcal_suite::spmd::SpmdPlan::build(sweep, &dm).unwrap();
        let mut arrays = BTreeMap::new();
        for name in ["U", "V"] {
            arrays.insert(
                name.to_string(),
                vcal_suite::machine::DistArray::scatter_from(
                    env.get(name).unwrap(),
                    dm[name].clone(),
                ),
            );
        }
        let opts = DistOptions {
            transport: kind,
            faults: Some(
                FaultPlan::seeded(seed)
                    .with_drop(f64::from(p_drop) / 100.0)
                    .with_duplicate(f64::from(p_dup) / 100.0)
                    .with_reorder(f64::from(p_reorder) / 100.0),
            ),
            retry: RetryPolicy::fast(),
            ..DistOptions::default()
        };
        if let Err(e) = run_distributed(&plan, sweep, &mut arrays, opts) {
            return Err(TestCaseError::fail(format!("{}: {e}", kind.name())));
        }
        prop_assert_eq!(
            arrays["V"].gather().max_abs_diff(reference.get("V").unwrap()),
            0.0,
            "{}: wire run differs from the sequential oracle", kind.name()
        );
    }
}
