//! Invariants of the calibrated §4 performance model (DESIGN.md §17).
//!
//! The tuner trusts [`CalibratedModel::price_plan`] to rank candidate
//! decompositions without executing them, so the model must be
//! *monotone* in the things that cost money — more messages, more
//! bytes, more iterations never get cheaper — and its calibrated
//! predictions must land within shouting distance of the wall-clock it
//! was fit from (a loose bound: the harness must catch unit mistakes
//! and inverted ratios, not microbenchmark noise).

use vcal_suite::core::func::Fn1;
use vcal_suite::core::{Array, ArrayRef, Bounds, Clause, Env, Expr, Guard, IndexSet, Ordering};
use vcal_suite::decomp::{Decomp1, RedistPlan};
use vcal_suite::machine::{
    CalibratedModel, CalibrationSample, CollectingTracer, CommMode, DistSession, ScheduleMode,
    TuneOptions, NULL_TRACER,
};
use vcal_suite::spmd::{DecompMap, ProgramStep, SpmdPlan};

const PMAX: i64 = 4;

fn stencil(n: i64) -> Clause {
    Clause {
        iter: IndexSet::range(1, n - 2),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1("V", Fn1::identity()),
        rhs: Expr::mul(
            Expr::add(
                Expr::Ref(ArrayRef::d1("U", Fn1::shift(-1))),
                Expr::Ref(ArrayRef::d1("U", Fn1::shift(1))),
            ),
            Expr::Lit(0.5),
        ),
    }
}

fn plan_for(n: i64, dec: fn(i64, Bounds) -> Decomp1) -> SpmdPlan {
    let mut dm = DecompMap::new();
    dm.insert("U".into(), dec(PMAX, Bounds::range(0, n - 1)));
    dm.insert("V".into(), dec(PMAX, Bounds::range(0, n - 1)));
    SpmdPlan::build(&stencil(n), &dm).unwrap()
}

/// More communication at equal work must never price cheaper: the
/// scatter stencil moves (nearly) every read across nodes, the block
/// stencil only the boundaries.
#[test]
fn price_is_monotone_in_message_count() {
    let model = CalibratedModel::default();
    for n in [64i64, 256, 1024] {
        let block = model.price_plan(&plan_for(n, Decomp1::block), CommMode::Vectorized);
        let scatter = model.price_plan(&plan_for(n, Decomp1::scatter), CommMode::Vectorized);
        assert!(
            block.total_ns < scatter.total_ns,
            "n={n}: block {} must undercut scatter {}",
            block.total_ns,
            scatter.total_ns
        );
        // element mode sends one wire message per element — it can
        // never price below the vectorized packing of the same plan
        let scatter_elem = model.price_plan(&plan_for(n, Decomp1::scatter), CommMode::Element);
        assert!(
            scatter_elem.total_ns >= scatter.total_ns,
            "n={n}: element {} cheaper than vectorized {}",
            scatter_elem.total_ns,
            scatter.total_ns
        );
    }
}

/// More elements at the same layout must never price cheaper, and the
/// aggregate must dominate the critical path.
#[test]
fn price_is_monotone_in_element_count() {
    let model = CalibratedModel::default();
    let mut last = 0.0f64;
    for n in [64i64, 256, 1024, 4096] {
        let p = model.price_plan(&plan_for(n, Decomp1::block), CommMode::Vectorized);
        assert!(
            p.total_ns > last,
            "n={n}: price {} did not grow past {last}",
            p.total_ns
        );
        assert!(p.aggregate_ns >= p.total_ns);
        assert!((0..PMAX).contains(&p.bottleneck));
        last = p.total_ns;
    }
}

/// Redistribution pricing grows with the volume moved.
#[test]
fn redist_price_is_monotone_in_moved_elements() {
    let model = CalibratedModel::default();
    let mut last = 0.0f64;
    for n in [64i64, 256, 1024] {
        let ext = Bounds::range(0, n - 1);
        let plan = RedistPlan::build(&Decomp1::block(PMAX, ext), &Decomp1::scatter(PMAX, ext));
        let price = model.price_redist(&plan);
        assert!(
            price > last,
            "n={n}: redistribution price {price} did not grow past {last}"
        );
        last = price;
    }
    // a no-move "redistribution" prices (near) zero
    let ext = Bounds::range(0, 63);
    let noop = RedistPlan::build(&Decomp1::block(PMAX, ext), &Decomp1::block(PMAX, ext));
    assert_eq!(model.price_redist(&noop), 0.0);
}

/// A fit from a communication-free profile preserves the era-default
/// startup/iteration ratio in absolute terms, so communication-bearing
/// candidates still rank sensibly against compute-only ones.
#[test]
fn comm_free_fit_preserves_default_ratios() {
    let default = CalibratedModel::default();
    let sample = CalibrationSample {
        iterations: 1000,
        update_ns: 250_000.0,
        ..CalibrationSample::default()
    };
    let fit = CalibratedModel::fit(&[sample]).expect("update time is enough to calibrate");
    assert_eq!(fit.iter_ns, 250.0);
    let ratio = fit.packet_ns / fit.iter_ns;
    let default_ratio = default.packet_ns / default.iter_ns;
    assert!(
        (ratio - default_ratio).abs() < 1e-9,
        "startup/iteration ratio drifted: {ratio} vs {default_ratio}"
    );
    // nothing measured at all → nothing to calibrate
    assert!(CalibratedModel::fit(&[CalibrationSample::default()]).is_none());
    assert!(CalibratedModel::fit(&[]).is_none());
}

/// End to end: profile a warm step, fit the model, and check the
/// calibrated prediction for the *observed* layout lands within a
/// generous band of the measured wall-clock. The band is wide (50×
/// either way) — it exists to catch unit mistakes (µs for ns) and
/// inverted fits, not to benchmark the host.
#[test]
fn calibrated_prediction_tracks_measurement() {
    let n = 2048i64;
    let clause = stencil(n);
    let mut dm = DecompMap::new();
    for a in ["U", "V"] {
        dm.insert(a.into(), Decomp1::block(PMAX, Bounds::range(0, n - 1)));
    }
    let mut env = Env::new();
    for a in ["U", "V"] {
        env.insert(
            a,
            Array::from_fn(Bounds::range(0, n - 1), |i| i.scalar() as f64),
        );
    }
    let mut session = DistSession::new(&env, dm.clone()).unwrap();
    // one cold step to warm plans and the pool
    session.run(&clause).unwrap();
    // one warm, traced, wall-clocked step
    let tracer = CollectingTracer::new();
    let t0 = std::time::Instant::now();
    let report = session.run_traced(&clause, &tracer).unwrap();
    let measured_ns = t0.elapsed().as_nanos() as f64;
    let sample = CalibrationSample::of(&report, &tracer.finish());
    assert!(sample.iterations > 0, "profile saw no iterations");
    assert!(sample.update_ns > 0.0, "profile saw no update time");
    let model = CalibratedModel::fit(&[sample]).expect("warm profile must calibrate");
    assert!(model.iter_ns > 0.0);

    let plan = SpmdPlan::build(&clause, &dm).unwrap();
    let predicted_ns = model.price_plan(&plan, CommMode::Vectorized).total_ns;
    assert!(
        predicted_ns > measured_ns / 50.0 && predicted_ns < measured_ns * 50.0,
        "calibrated prediction {predicted_ns} ns is not within 50x of \
         the measured {measured_ns} ns it was fit from"
    );
}

/// The tuner's own honesty counter: `model_error` relates the incumbent
/// prediction to the measured profile step, and must come out finite
/// and not absurd on a healthy run.
#[test]
fn tune_report_model_error_is_sane() {
    let n = 512i64;
    let steps = vec![ProgramStep::Clause(stencil(n))];
    let mut dm = DecompMap::new();
    for a in ["U", "V"] {
        dm.insert(a.into(), Decomp1::block(PMAX, Bounds::range(0, n - 1)));
    }
    let mut env = Env::new();
    for a in ["U", "V"] {
        env.insert(
            a,
            Array::from_fn(Bounds::range(0, n - 1), |i| i.scalar() as f64),
        );
    }
    let mut session = DistSession::new(&env, dm).unwrap();
    let (_, tune) = session
        .run_program_tuned(
            &steps,
            6,
            ScheduleMode::Seq,
            TuneOptions::default(),
            &NULL_TRACER,
        )
        .unwrap();
    assert!(tune.calibrated, "a healthy profile must calibrate");
    assert!(tune.model_error.is_finite());
    assert!(
        tune.model_error < 50.0,
        "model error {} means prediction and measurement are not even \
         on the same scale",
        tune.model_error
    );
    assert!(tune.measured_step_ns > 0.0);
    assert!(tune.baseline_step_ns > 0.0);
    assert!(tune.worst_step_ns >= tune.baseline_step_ns.min(tune.predicted_step_ns));
}
