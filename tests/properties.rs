//! Property-based tests (proptest) on the calculus invariants:
//!
//! * view composition agrees with sequential application and is
//!   associative in effect;
//! * `Fn1` composition and simplification preserve semantics;
//! * Table I schedules enumerate exactly the brute-force ownership set
//!   and partition the loop, for arbitrary parameters;
//! * decomposition `proc`/`local`/`global` stay mutually inverse;
//! * redistribution plans move every element to its new owner.

use proptest::prelude::*;
use vcal_suite::core::func::Fn1;
use vcal_suite::core::pred::{CmpOp, Pred};
use vcal_suite::core::set::IndexSet;
use vcal_suite::core::view::View;
use vcal_suite::core::{Bounds, Ix};
use vcal_suite::decomp::{Decomp1, RedistPlan};
use vcal_suite::spmd::optimize;

fn arb_fn1() -> impl Strategy<Value = Fn1> {
    prop_oneof![
        (-50i64..50).prop_map(Fn1::Const),
        (-6i64..7, -20i64..20).prop_map(|(a, c)| Fn1::affine(a, c)),
        (1i64..30, 2i64..40, -5i64..5).prop_map(|(s, z, d)| Fn1::Mod {
            inner: Box::new(Fn1::shift(s)),
            z,
            d,
        }),
        (1i64..5, 2i64..6).prop_map(|(a, q)| Fn1::Div {
            inner: Box::new(Fn1::affine(a, 0)),
            q,
        }),
        (1i64..4, 2i64..6).prop_map(|(a, q)| Fn1::Sum(
            Box::new(Fn1::affine(a, 0)),
            Box::new(Fn1::Div {
                inner: Box::new(Fn1::identity()),
                q
            }),
        )),
    ]
}

fn arb_decomp(n: i64) -> impl Strategy<Value = Decomp1> {
    (1i64..9, 1i64..7, prop::sample::select(vec![0u8, 1, 2])).prop_map(move |(pmax, b, kind)| {
        let e = Bounds::range(0, n - 1);
        match kind {
            0 => Decomp1::block(pmax, e),
            1 => Decomp1::scatter(pmax, e),
            _ => Decomp1::block_scatter(b, pmax, e),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn fn1_compose_preserves_semantics(f in arb_fn1(), g in arb_fn1(), i in -40i64..40) {
        let fg = f.compose(&g);
        prop_assert_eq!(fg.eval(i), f.eval(g.eval(i)));
    }

    #[test]
    fn fn1_simplify_preserves_semantics(f in arb_fn1(), i in -40i64..40) {
        prop_assert_eq!(f.simplify().eval(i), f.eval(i));
    }

    #[test]
    fn monotone_pieces_cover_and_agree(
        s in 0i64..40, z in 2i64..40, lo in 0i64..20, len in 0i64..40,
    ) {
        let f = Fn1::Mod { inner: Box::new(Fn1::shift(s)), z, d: 0 };
        let hi = lo + len;
        let pieces = f.monotone_pieces(lo, hi).unwrap();
        let mut expected = lo;
        for p in &pieces {
            prop_assert_eq!(p.lo, expected, "gap before piece");
            for i in p.lo..=p.hi {
                prop_assert_eq!(p.f.eval(i), f.eval(i));
            }
            expected = p.hi + 1;
        }
        prop_assert_eq!(expected, hi + 1, "pieces do not cover the domain");
    }

    #[test]
    fn view_composition_matches_sequential_application(
        c1 in -10i64..10, a2 in 1i64..4, c2 in -10i64..10,
        src_lo in -20i64..0, src_len in 0i64..60,
        probe in -30i64..30,
    ) {
        let v = View::d1(
            Bounds::range(-100, 100),
            Pred::Cmp { dim: 0, f: Fn1::identity(), op: CmpOp::Ge, rhs: c1 },
            Fn1::identity(),
            Fn1::shift(c1),
        );
        let w = View::d1(
            Bounds::range(-100, 100),
            Pred::True,
            Fn1::identity(),
            Fn1::affine(a2, c2),
        );
        let src = IndexSet::range(src_lo, src_lo + src_len);
        let composed = v.compose(&w).apply(&src);
        let sequential = v.apply(&w.apply(&src));
        let p = Ix::d1(probe);
        prop_assert_eq!(composed.contains(&p), sequential.contains(&p));
    }

    #[test]
    fn schedules_are_exact_and_partition(
        f in arb_fn1(),
        dec in arb_decomp(400),
        imin in 0i64..50,
        len in 0i64..120,
    ) {
        let imax = imin + len;
        // keep all accesses inside the extent; skip otherwise
        let ok = (imin..=imax).all(|i| (0..400).contains(&f.eval(i)));
        prop_assume!(ok);
        let mut covered = 0u64;
        for p in 0..dec.pmax() {
            let opt = optimize(&f, &dec, imin, imax, p);
            let got = opt.schedule.to_sorted_vec();
            let want: Vec<i64> =
                (imin..=imax).filter(|&i| dec.proc_of(f.eval(i)) == p).collect();
            prop_assert_eq!(&got, &want,
                "p={} f={:?} dec={} kind={:?}", p, f, dec, opt.kind);
            covered += got.len() as u64;
        }
        prop_assert_eq!(covered, (imax - imin + 1) as u64);
    }

    #[test]
    fn decomp_roundtrip(
        dec in arb_decomp(300),
        i in 0i64..300,
    ) {
        let p = dec.proc_of(i);
        let l = dec.local_of(i);
        prop_assert!((0..dec.pmax()).contains(&p));
        prop_assert!(l >= 0);
        prop_assert_eq!(dec.global_of(p, l), i);
        prop_assert!(l < dec.local_count(p));
    }

    #[test]
    fn redistribution_moves_everything_correctly(
        from in arb_decomp(200),
        to in arb_decomp(200),
    ) {
        let plan = RedistPlan::build(&from, &to);
        let mut moved = std::collections::HashSet::new();
        for (g, src, dst) in plan.element_moves() {
            prop_assert_eq!(from.proc_of(g), src);
            prop_assert_eq!(to.proc_of(g), dst);
            prop_assert_ne!(src, dst);
            prop_assert!(moved.insert(g), "element {} moved twice", g);
        }
        // stationary + moved = everything
        prop_assert_eq!(moved.len() as i64 + plan.stationary, 200);
        for g in 0..200 {
            if !moved.contains(&g) {
                prop_assert_eq!(from.proc_of(g), to.proc_of(g));
            }
        }
    }

    #[test]
    fn schedule_set_algebra_is_exact(
        s1 in 0i64..12, m1 in 1i64..12, c1 in 1i64..40,
        s2 in 0i64..12, m2 in 1i64..12, c2 in 1i64..40,
    ) {
        use vcal_suite::spmd::{intersect, subtract, Schedule};
        let a = Schedule::Strided { start: s1, step: m1, count: c1 };
        let b = Schedule::Strided { start: s2, step: m2, count: c2 };
        let va = a.to_sorted_vec();
        let vb = b.to_sorted_vec();
        if let Some(i) = intersect(&a, &b) {
            let want: Vec<i64> = va.iter().copied().filter(|x| vb.contains(x)).collect();
            prop_assert_eq!(i.to_sorted_vec(), want, "intersect");
        }
        if let Some(d) = subtract(&a, &b) {
            let want: Vec<i64> = va.iter().copied().filter(|x| !vb.contains(x)).collect();
            prop_assert_eq!(d.to_sorted_vec(), want, "subtract");
        } else {
            // only the class-explosion guard may refuse
            prop_assert!(m2 / vcal_suite::numth::gcd(m1, m2) * m1 / m1 > 64
                || m1 / vcal_suite::numth::gcd(m1, m2) * m2 / m1 > 0);
        }
        // comm_sets coherence when both succeed
        if let Some(cs) = vcal_suite::spmd::comm_sets(&a, &b) {
            let send = cs.send.to_sorted_vec();
            let recv = cs.receive.to_sorted_vec();
            let local = cs.local.to_sorted_vec();
            for x in &vb {
                let in_a = va.contains(x);
                prop_assert_eq!(send.contains(x), !in_a, "send at {}", x);
            }
            for x in &va {
                let in_b = vb.contains(x);
                prop_assert_eq!(recv.contains(x), !in_b, "recv at {}", x);
                prop_assert_eq!(local.contains(x), in_b, "local at {}", x);
            }
        }
    }

    #[test]
    fn topology_hops_are_metric(
        pmax in prop::sample::select(vec![2i64, 4, 8, 16]),
        s in 0i64..16, d in 0i64..16, e in 0i64..16,
    ) {
        use vcal_suite::machine::Topology;
        let (s, d, e) = (s % pmax, d % pmax, e % pmax);
        for topo in [
            Topology::Crossbar,
            Topology::Ring,
            Topology::Hypercube,
            Topology::Mesh2D { rows: 2, cols: pmax / 2 },
        ] {
            let h = |a, b| topo.hops(pmax, a, b);
            prop_assert_eq!(h(s, s), 0);
            prop_assert_eq!(h(s, d), h(d, s), "symmetry {:?}", topo);
            prop_assert!(h(s, e) <= h(s, d) + h(d, e), "triangle {:?}", topo);
            if s != d {
                prop_assert!(h(s, d) >= 1);
            }
        }
    }

    #[test]
    fn preimage_range_is_exact(
        f in arb_fn1(),
        y_lo in -60i64..60,
        y_len in 0i64..50,
        lo in -30i64..30,
        len in 0i64..60,
    ) {
        let (hi, y_hi) = (lo + len, y_lo + y_len);
        prop_assume!(f.monotonicity(lo, hi).is_monotone());
        let brute: Vec<i64> =
            (lo..=hi).filter(|&i| (y_lo..=y_hi).contains(&f.eval(i))).collect();
        match f.preimage_range(y_lo, y_hi, lo, hi) {
            Some((a, b)) => {
                let got: Vec<i64> = (a..=b).collect();
                prop_assert_eq!(got, brute);
            }
            None => prop_assert!(brute.is_empty(), "said empty, brute = {:?}", brute),
        }
    }
}
