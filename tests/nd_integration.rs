//! Multi-dimensional integration: per-axis schedule products are exact
//! for randomized grids and access maps, and the grid machines agree
//! with the sequential reference on randomized 2-D clauses.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::Duration;
use vcal_suite::core::func::Fn1;
use vcal_suite::core::map::{DimFn, IndexMap};
use vcal_suite::core::{Array, ArrayRef, Bounds, Clause, Env, Expr, Guard, IndexSet, Ordering};
use vcal_suite::decomp::{Decomp1, DecompNd};
use vcal_suite::machine::{run_distributed_nd, run_shared_nd, DistArrayNd};
use vcal_suite::spmd::optimize_nd;

fn axis_decomp(kind: u8, pmax: i64, n: i64) -> Decomp1 {
    let e = Bounds::range(0, n - 1);
    match kind % 3 {
        0 => Decomp1::block(pmax, e),
        1 => Decomp1::scatter(pmax, e),
        _ => Decomp1::block_scatter(2, pmax, e),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    #[test]
    fn optimize_nd_is_exact(
        k0 in 0u8..3, k1 in 0u8..3,
        p0 in 1i64..4, p1 in 1i64..4,
        shift0 in -2i64..3, a1 in 1i64..3, c1 in 0i64..3,
        swap in any::<bool>(),
    ) {
        let (n0, n1) = (18i64, 15i64);
        let dec = DecompNd::new(vec![
            axis_decomp(k0, p0, n0),
            axis_decomp(k1, p1, n1),
        ]);
        // access map, optionally transposing the loop dims
        let f0 = Fn1::shift(shift0);
        let f1 = Fn1::affine(a1, c1);
        let (s0, s1) = if swap { (1, 0) } else { (0, 1) };
        let map = IndexMap::new(2, vec![
            DimFn { src: s0, f: f0.clone() },
            DimFn { src: s1, f: f1.clone() },
        ]);
        // loop box keeping accesses inside both extents
        let (l0_lo, l0_hi, l1_lo, l1_hi);
        {
            // output axis 0 reads loop dim s0 through f0 into [0, n0-1]
            let d0 = ((0 - shift0).max(0), n0 - 1 - shift0.max(0));
            let d1 = ((0 - c1 + a1 - 1) / a1, (n1 - 1 - c1) / a1);
            if swap {
                // loop dim 0 feeds output 1 (f1), loop dim 1 feeds output 0 (f0)
                l0_lo = d1.0.max(0); l0_hi = d1.1;
                l1_lo = d0.0; l1_hi = d0.1;
            } else {
                l0_lo = d0.0; l0_hi = d0.1;
                l1_lo = d1.0.max(0); l1_hi = d1.1;
            }
        }
        prop_assume!(l0_lo <= l0_hi && l1_lo <= l1_hi);
        let lb = Bounds::range2(l0_lo, l0_hi, l1_lo, l1_hi);
        let mut covered = 0u64;
        for p in 0..dec.pmax() {
            let Some(s) = optimize_nd(&map, &dec, &lb, p) else {
                return Err(TestCaseError::fail("factorizable map rejected"));
            };
            let mut got = Vec::new();
            s.for_each(|i| got.push(*i));
            got.sort();
            let mut want: Vec<_> =
                lb.iter().filter(|i| dec.proc_of(&map.eval(i)) == p).collect();
            want.sort();
            prop_assert_eq!(&got, &want, "p={} dec axes ({},{})", p, k0, k1);
            covered += got.len() as u64;
        }
        prop_assert_eq!(covered, lb.count());
    }
}

#[test]
fn randomized_grid_machine_equivalence() {
    let mut rng = StdRng::seed_from_u64(0xd00d);
    for trial in 0..20 {
        let (n0, n1) = (rng.gen_range(8..20), rng.gen_range(8..20));
        let (p0, p1) = (rng.gen_range(1..3), rng.gen_range(1..4));
        let dec_w = DecompNd::new(vec![
            axis_decomp(rng.gen(), p0, n0),
            axis_decomp(rng.gen(), p1, n1),
        ]);
        let dec_r = DecompNd::new(vec![
            axis_decomp(rng.gen(), p0, n0),
            axis_decomp(rng.gen(), p1, n1),
        ]);
        // interior shift access
        let (di, dj) = (rng.gen_range(-1..2i64), rng.gen_range(-1..2i64));
        let clause = Clause {
            iter: IndexSet::full(Bounds::range2(1, n0 - 2, 1, n1 - 2)),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::new("W", IndexMap::identity(2)),
            rhs: Expr::add(
                Expr::Ref(ArrayRef::new(
                    "R",
                    IndexMap::per_dim(vec![Fn1::shift(di), Fn1::shift(dj)]),
                )),
                Expr::LoopVar { dim: 0 },
            ),
        };
        let mut env = Env::new();
        env.insert("W", Array::zeros(Bounds::range2(0, n0 - 1, 0, n1 - 1)));
        env.insert(
            "R",
            Array::from_fn(Bounds::range2(0, n0 - 1, 0, n1 - 1), |i| {
                ((i[0] * 13 + i[1] * 5) % 17) as f64
            }),
        );
        let mut reference = env.clone();
        reference.exec_clause(&clause);

        // shared grid machine (owner-computes on the write decomposition)
        let mut shm = env.clone();
        run_shared_nd(&clause, &dec_w, &mut shm).unwrap();
        assert_eq!(
            shm.get("W")
                .unwrap()
                .max_abs_diff(reference.get("W").unwrap()),
            0.0,
            "shared trial {trial}"
        );

        // distributed grid machine
        let mut arrays: BTreeMap<String, DistArrayNd> = BTreeMap::new();
        arrays.insert(
            "W".into(),
            DistArrayNd::scatter_from(env.get("W").unwrap(), dec_w.clone()),
        );
        arrays.insert(
            "R".into(),
            DistArrayNd::scatter_from(env.get("R").unwrap(), dec_r.clone()),
        );
        run_distributed_nd(&clause, &mut arrays, Duration::from_secs(10))
            .unwrap_or_else(|e| panic!("trial {trial}: {e}"));
        assert_eq!(
            arrays["W"]
                .gather()
                .max_abs_diff(reference.get("W").unwrap()),
            0.0,
            "distributed trial {trial}"
        );
    }
}
