//! Seeded fault-injection sweep over the reliable transport layer.
//!
//! Two families of properties, both driven by deterministic seeded
//! [`FaultPlan`]s:
//!
//! * **recoverable** faults — drop / duplicate / reorder / delay under a
//!   retry budget — must leave the distributed result bit-identical to
//!   the sequential reference, in both communication modes and across
//!   redistribution, with the recovery visible in the reliability
//!   counters;
//! * **unrecoverable** faults — an injected node crash, or a link so
//!   lossy the retry budget exhausts — must surface as a *typed*
//!   [`MachineError`] within a bounded time, never a hang or a host
//!   abort, and must leave the destination array untouched.
//!
//! The CI fault matrix runs this suite once per communication mode by
//! setting `VCAL_FAULT_MODE=element|vectorized`; unset, both modes run.
//! Orthogonally, `VCAL_TRANSPORT=inproc|uds|tcp` selects the transport
//! backend, so the same sweep doubles as the real-wire regression
//! harness: every property here must hold bit-for-bit when the nodes
//! are worker OS processes behind a socket.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};
use vcal_suite::core::func::Fn1;
use vcal_suite::core::{Array, ArrayRef, Bounds, Clause, Env, Expr, Guard, IndexSet, Ordering};
use vcal_suite::decomp::{Decomp1, RedistPlan};
use vcal_suite::machine::{
    run_distributed, run_redistribution_opts, CommMode, DistArray, DistOptions, ExecReport,
    FaultPlan, MachineError, RetryPolicy, TransportKind,
};
use vcal_suite::spmd::{DecompMap, SpmdPlan};

const N: i64 = 192;
const PMAX: i64 = 4;

/// A fault probability drawn uniformly from `{0, 0.01, …, (hi_pct-1)%}`.
fn prob(hi_pct: u32) -> impl Strategy<Value = f64> {
    (0u32..hi_pct).prop_map(|p| f64::from(p) / 100.0)
}

/// Communication modes to exercise, honouring the CI matrix filter.
fn modes() -> Vec<CommMode> {
    match std::env::var("VCAL_FAULT_MODE").as_deref() {
        Ok("element") => vec![CommMode::Element],
        Ok("vectorized") => vec![CommMode::Vectorized],
        _ => vec![CommMode::Element, CommMode::Vectorized],
    }
}

/// Transport backend under test, honouring the CI matrix filter
/// (`VCAL_TRANSPORT=inproc|uds|tcp`; unset means in-process). The
/// socket backends spawn real worker processes from the prebuilt
/// `vcalc` binary. Redistribution stays in-process regardless — only
/// the 1-D clause machine has a wire backend.
fn transport() -> TransportKind {
    static WORKER_BIN: std::sync::Once = std::sync::Once::new();
    let kind = match std::env::var("VCAL_TRANSPORT").as_deref() {
        Ok("uds") => TransportKind::Uds,
        Ok("tcp") => TransportKind::Tcp,
        _ => return TransportKind::InProc,
    };
    WORKER_BIN.call_once(|| std::env::set_var("VCAL_WORKER_BIN", env!("CARGO_BIN_EXE_vcalc")));
    kind
}

/// `A[i] := B[i+3] * 2 - 1` — A block-decomposed, B scattered, so almost
/// every read is remote and every node both sends and receives.
fn fixture() -> (SpmdPlan, Clause, DecompMap, Env, Env) {
    let cl = Clause {
        iter: IndexSet::range(0, N - 1),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1("A", Fn1::identity()),
        rhs: Expr::add(
            Expr::mul(Expr::Ref(ArrayRef::d1("B", Fn1::shift(3))), Expr::Lit(2.0)),
            Expr::Lit(-1.0),
        ),
    };
    let mut env0 = Env::new();
    env0.insert("A", Array::zeros(Bounds::range(0, N - 1)));
    env0.insert(
        "B",
        Array::from_fn(Bounds::range(0, N + 3), |i| {
            (i.scalar() * 13 % 101) as f64 - 50.0
        }),
    );
    let mut dm = DecompMap::new();
    dm.insert("A".into(), Decomp1::block(PMAX, Bounds::range(0, N - 1)));
    dm.insert("B".into(), Decomp1::scatter(PMAX, Bounds::range(0, N + 3)));
    let plan = SpmdPlan::build(&cl, &dm).unwrap();
    let mut reference = env0.clone();
    reference.exec_clause(&cl);
    (plan, cl, dm, env0, reference)
}

fn dist_arrays(env0: &Env, dm: &DecompMap) -> BTreeMap<String, DistArray> {
    let mut arrays = BTreeMap::new();
    for name in ["A", "B"] {
        arrays.insert(
            name.to_string(),
            DistArray::scatter_from(env0.get(name).unwrap(), dm[name].clone()),
        );
    }
    arrays
}

fn run_faulty(
    plan: &SpmdPlan,
    cl: &Clause,
    env0: &Env,
    dm: &DecompMap,
    mode: CommMode,
    faults: FaultPlan,
    retry: RetryPolicy,
) -> (
    Result<ExecReport, MachineError>,
    BTreeMap<String, DistArray>,
) {
    let mut arrays = dist_arrays(env0, dm);
    let opts = DistOptions {
        recv_timeout: Duration::from_secs(10),
        faults: Some(faults),
        mode,
        retry,
        transport: transport(),
        ..DistOptions::default()
    };
    let res = run_distributed(plan, cl, &mut arrays, opts);
    (res, arrays)
}

/// The acceptance configuration: a seeded ~5% per-packet drop + reorder
/// plan in both communication modes must finish bit-identical to the
/// sequential reference and must actually have gone through the
/// retransmission path.
#[test]
fn seeded_drop_reorder_sweep_is_bit_identical() {
    let (plan, cl, dm, env0, reference) = fixture();
    for mode in modes() {
        // retransmissions are asserted over the whole seed sweep: a 5%
        // drop rate may leave an individual low-traffic vectorized run
        // untouched, but the sweep as a whole must exercise recovery
        let mut retransmits = 0u64;
        for seed in [1u64, 7, 23, 1991] {
            let ctx = format!("seed={seed} mode={mode:?}");
            let fp = FaultPlan::seeded(seed).with_drop(0.05).with_reorder(0.05);
            let (res, arrays) = run_faulty(&plan, &cl, &env0, &dm, mode, fp, RetryPolicy::fast());
            let report = res.unwrap_or_else(|e| panic!("{ctx}: {e}"));
            let total = report.total();
            retransmits += total.retransmits;
            assert!(total.acks_sent > 0, "{ctx}: no acks recorded");
            assert_eq!(
                arrays["A"]
                    .gather()
                    .max_abs_diff(reference.get("A").unwrap()),
                0.0,
                "{ctx}: result differs from sequential reference"
            );
        }
        assert!(
            retransmits > 0,
            "{mode:?}: seed sweep never exercised retransmission"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any seeded soup of recoverable faults under a retry budget keeps
    /// the distributed result bit-identical to the sequential reference,
    /// and fresh-delivery accounting stays intact (every first
    /// transmission is received exactly once).
    #[test]
    fn recoverable_fault_soup_matches_sequential(
        seed in any::<u64>(),
        p_drop in prob(15),
        p_dup in prob(15),
        p_reorder in prob(15),
        p_delay in prob(10),
        mode_ix in 0usize..2,
    ) {
        let all = modes();
        let mode = all[mode_ix % all.len()];
        let (plan, cl, dm, env0, reference) = fixture();
        let fp = FaultPlan::seeded(seed)
            .with_drop(p_drop)
            .with_duplicate(p_dup)
            .with_reorder(p_reorder)
            .with_delay(p_delay);
        let (res, arrays) =
            run_faulty(&plan, &cl, &env0, &dm, mode, fp, RetryPolicy::fast());
        let report = match res {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::fail(format!("{mode:?}: {e}"))),
        };
        let total = report.total();
        // reliability machinery never changes *which* values arrive
        prop_assert_eq!(total.msgs_received, total.msgs_sent);
        prop_assert_eq!(
            arrays["A"].gather().max_abs_diff(reference.get("A").unwrap()),
            0.0,
            "{:?}: result differs from sequential reference", mode
        );
    }

    /// An injected node crash — possibly amid link noise — surfaces as
    /// `NodePanicked` naming the crashed node, within a bounded time,
    /// with the destination array left untouched.
    #[test]
    fn crash_fault_is_typed_and_bounded(
        seed in any::<u64>(),
        node in 0i64..PMAX,
        after in 0u64..5,
        p_drop in prob(10),
        mode_ix in 0usize..2,
    ) {
        let all = modes();
        let mode = all[mode_ix % all.len()];
        let (plan, cl, dm, env0, _) = fixture();
        let fp = FaultPlan::seeded(seed)
            .with_drop(p_drop)
            .with_crash(node, after);
        let t0 = Instant::now();
        let (res, arrays) =
            run_faulty(&plan, &cl, &env0, &dm, mode, fp, RetryPolicy::fast());
        let elapsed = t0.elapsed();
        prop_assert!(elapsed < Duration::from_secs(30), "took {:?}", elapsed);
        match res {
            Err(MachineError::NodePanicked { node: n }) => prop_assert_eq!(n, node),
            other => {
                return Err(TestCaseError::fail(format!(
                    "expected NodePanicked, got {other:?}"
                )))
            }
        }
        // failed runs must not leave partial writes behind
        prop_assert_eq!(
            arrays["A"].gather().max_abs_diff(env0.get("A").unwrap()),
            0.0,
            "destination array mutated by a failed run"
        );
    }

    /// A link that drops everything from one node exhausts the retry
    /// budget and surfaces as `Unrecoverable` naming that peer — within
    /// a bounded time, never a hang.
    #[test]
    fn exhausted_retry_budget_is_typed_and_bounded(
        seed in any::<u64>(),
        victim in 0i64..PMAX,
        mode_ix in 0usize..2,
    ) {
        let all = modes();
        let mode = all[mode_ix % all.len()];
        let (plan, cl, dm, env0, _) = fixture();
        let fp = FaultPlan::seeded(seed).with_drop(1.0).with_from_only(victim);
        let t0 = Instant::now();
        let (res, arrays) =
            run_faulty(&plan, &cl, &env0, &dm, mode, fp, RetryPolicy::fast());
        let elapsed = t0.elapsed();
        prop_assert!(elapsed < Duration::from_secs(30), "took {:?}", elapsed);
        match res {
            Err(MachineError::Unrecoverable { peer, retries, .. }) => {
                prop_assert_eq!(peer, victim);
                prop_assert!(retries > 0, "budget must have been spent");
            }
            other => {
                return Err(TestCaseError::fail(format!(
                    "expected Unrecoverable, got {other:?}"
                )))
            }
        }
        prop_assert_eq!(
            arrays["A"].gather().max_abs_diff(env0.get("A").unwrap()),
            0.0,
            "destination array mutated by a failed run"
        );
    }

    /// Redistribution between arbitrary layout pairs survives a seeded
    /// fault soup with every element intact.
    #[test]
    fn redistribution_survives_fault_soup(
        seed in any::<u64>(),
        p_drop in prob(15),
        p_dup in prob(15),
        p_reorder in prob(15),
        from_kind in 0u8..3,
        to_kind in 0u8..3,
    ) {
        let e = Bounds::range(0, N - 1);
        let mk = |kind: u8| match kind {
            0 => Decomp1::block(PMAX, e),
            1 => Decomp1::scatter(PMAX, e),
            _ => Decomp1::block_scatter(3, PMAX, e),
        };
        let (from, to) = (mk(from_kind), mk(to_kind));
        let original = Array::from_fn(e, |i| (i.scalar() * 31 % 89) as f64 + 0.25);
        let src = DistArray::scatter_from(&original, from.clone());
        let plan = RedistPlan::build(&from, &to);
        let opts = DistOptions {
            recv_timeout: Duration::from_secs(10),
            faults: Some(
                FaultPlan::seeded(seed)
                    .with_drop(p_drop)
                    .with_duplicate(p_dup)
                    .with_reorder(p_reorder),
            ),
            retry: RetryPolicy::fast(),
            ..DistOptions::default()
        };
        let (dst, _report) = match run_redistribution_opts(&plan, &src, opts) {
            Ok(ok) => ok,
            Err(e) => return Err(TestCaseError::fail(format!("redistribution: {e}"))),
        };
        prop_assert_eq!(
            dst.gather().max_abs_diff(&original),
            0.0,
            "redistribution lost or corrupted elements"
        );
    }
}
