//! E6 — **Section 4**: the run-time cost of computing `gcd(a, pmax)` and
//! the Diophantine constant `C(a, pmax)` on every node, which the paper
//! argues is cheap enough to skip host-side precomputation:
//!
//! * step counts for realistic strides `a <= 7` (paper: max 5, mean 2.65);
//! * wall time of `ext_gcd` vs the cost model of broadcasting two
//!   integers from a host (one message per node);
//! * full Theorem 3 schedule construction (congruence solve + clipping).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vcal_bench::{write_report, ReportRow};
use vcal_numth::euclid::{ext_gcd, gcd_steps};
use vcal_numth::solve_congruence;

fn step_statistics() {
    let mut rows = Vec::new();
    for a in 1..=7i64 {
        let mut max_s = 0u32;
        let mut total = 0u64;
        let mut cnt = 0u64;
        for pmax in 2..=4096i64 {
            let (_, s) = gcd_steps(pmax, a);
            max_s = max_s.max(s);
            total += s as u64;
            cnt += 1;
        }
        rows.push(ReportRow::new(
            "gcd_steps",
            format!("a={a}"),
            max_s as f64,
            total as f64 / cnt as f64,
        ));
    }
    eprintln!("\nSection 4 — Euclid step counts over pmax in 2..=4096:");
    eprintln!("{:<8} {:>6} {:>8}", "stride", "max", "mean");
    for r in &rows {
        eprintln!("{:<8} {:>6} {:>8.2}", r.label, r.baseline, r.optimized);
    }
    eprintln!("(paper: for a <= 7, max 5 steps, mean ~2.65)");
    write_report("gcd_steps", &rows);
}

fn bench_gcd(c: &mut Criterion) {
    step_statistics();

    let mut group = c.benchmark_group("gcd/ext_gcd");
    for a in [2i64, 5, 7, 97] {
        group.bench_with_input(BenchmarkId::from_parameter(a), &a, |b, &a| {
            b.iter(|| {
                let mut acc = 0i64;
                for pmax in [4i64, 16, 64, 256, 1024] {
                    let e = ext_gcd(black_box(a), black_box(pmax));
                    acc = acc.wrapping_add(e.x).wrapping_add(e.g);
                }
                black_box(acc)
            })
        });
    }
    group.finish();

    // the full compile-per-node cost of a Theorem 3 schedule: one
    // congruence solve + range clipping per (p, access)
    let mut group = c.benchmark_group("gcd/theorem3_schedule_setup");
    for pmax in [16i64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(pmax), &pmax, |b, &pmax| {
            b.iter(|| {
                let mut acc = 0i64;
                for p in 0..pmax {
                    if let Some(cg) = solve_congruence(black_box(6), p - 1, pmax) {
                        acc = acc
                            .wrapping_add(cg.first_at_or_above(0))
                            .wrapping_add(cg.count_in(0, 1 << 20));
                    }
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_gcd
}
criterion_main!(benches);
