//! E16 — SIMD lane tier at production sizes.
//!
//! Three measurements over the `n ∈ {10⁶, 10⁷, 10⁸}` grid:
//!
//! * **update-loop throughput (the acceptance rows)** — the PR 5
//!   update-phase inner loop exactly as the machines ran it before the
//!   lane tier (per element: slot gather into a stack buffer,
//!   [`FusedShape::apply`], one staged `WriteOp::El`) against the lane
//!   tier's replacement (one [`vcal_spmd::simd`] chunk/AVX2 kernel pass
//!   staging a single `WriteOp::Dense`), for every fused shape.
//!   Acceptance bar: ≥ 2× on `Axpy`/`Stencil` at every size.
//! * **arithmetic-only throughput** — the bare `apply` loop vs the bare
//!   lane kernel, no staging. Rustc autovectorizes the bare scalar loop
//!   too, so at production sizes both sides run at the memory wall and
//!   the ratio approaches 1× — reported to show where the time actually
//!   goes (the El-staging traffic the Dense path deletes, not the flops).
//! * **machine-level step time** — `--simd off` vs `--simd auto` on the
//!   distributed machine: a warm [`DistSession`] Jacobi loop at
//!   `n = 10⁶` over a `pmax ∈ {1, 2, 4}` grid (this host has one core,
//!   so pmax > 1 measures time-sliced node threads, not parallel
//!   speedup — the interesting delta is scalar vs SIMD at fixed pmax),
//!   cold single-node `run_distributed` runs at `10⁷` with overlap on
//!   and off, and warm single-node steps at `10⁷`/`10⁸` where the whole
//!   array is one interior run.
//!
//! Every configuration is verified bit-identical between the scalar and
//! SIMD runs before its timing is reported.
//!
//! Results land in `target/vcal-reports/BENCH_kernel_simd.json`, in
//! `BENCH_kernel_simd.json` at the repo root, and EXPERIMENTS.md E16.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;
use vcal_bench::{stencil_clause, write_report, ReportRow};
use vcal_core::func::Fn1;
use vcal_core::{Array, ArrayRef, Bounds, Clause, Env, Expr, Guard, IndexSet, Ordering};
use vcal_decomp::Decomp1;
use vcal_machine::{run_distributed, DistArray, DistOptions, DistSession, SimdPolicy};
use vcal_spmd::{simd, DecompMap, FusedShape, SpmdPlan};

const SIZES: &[usize] = &[1_000_000, 10_000_000, 100_000_000];

/// Hand-timed repetitions per size: enough passes at 10⁶ to dominate
/// timer noise, a single pass at 10⁸ where one sweep is already long.
fn reps_for(n: usize) -> usize {
    (20_000_000 / n).clamp(1, 20)
}

fn per_second(elems: u64, secs: f64) -> f64 {
    elems as f64 / secs
}

/// Operand data with mixed signs and magnitudes (no NaN: the micro rows
/// compare bit patterns of whole output arrays).
fn ramp(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (i % 31) as f64 * 0.375 - 5.0 + (i % 7) as f64 * 1e-3)
        .collect()
}

/// Staged write mirroring the machine's `WriteOp`: the scalar update
/// loop emits one `El` per element, the lane tier one `Dense` per run.
enum StagedWrite {
    El { off: usize, v: f64 },
    Dense { base: usize, values: Vec<f64> },
}

/// The PR 5 update-phase inner loop, faithfully: per element, gather
/// the slot values into a stack buffer, `FusedShape::apply`, and stage
/// one `El` write — exactly what `exec_one_run` did before the lane
/// tier (minus guards and stats, which both paths share).
fn scalar_update_loop(shape: &FusedShape, srcs: &[&[f64]], writes: &mut Vec<StagedWrite>) {
    writes.clear();
    let n = srcs[0].len();
    match srcs {
        [s0] => {
            for i in 0..n {
                let v = shape.apply(&[s0[i]]).expect("fused arity");
                writes.push(StagedWrite::El { off: i, v });
            }
        }
        [s0, s1] => {
            for i in 0..n {
                let v = shape.apply(&[s0[i], s1[i]]).expect("fused arity");
                writes.push(StagedWrite::El { off: i, v });
            }
        }
        [s0, s1, s2] => {
            for i in 0..n {
                let v = shape.apply(&[s0[i], s1[i], s2[i]]).expect("fused arity");
                writes.push(StagedWrite::El { off: i, v });
            }
        }
        _ => unreachable!("fused shapes read 1..=3 slots"),
    }
}

/// The lane tier's replacement: one SIMD kernel pass into a dense
/// buffer, staged as a single `Dense` write (allocation included — the
/// machine pays it too).
fn simd_update_loop(
    policy: SimdPolicy,
    shape: &FusedShape,
    srcs: &[&[f64]],
    writes: &mut Vec<StagedWrite>,
) {
    writes.clear();
    let mut values = vec![0.0f64; srcs[0].len()];
    simd_fused(policy, shape, srcs, &mut values);
    writes.push(StagedWrite::Dense { base: 0, values });
}

/// Collapse staged writes back to an output array, as the host commit
/// does — used to verify the two staging paths produce identical bits.
fn commit(writes: &[StagedWrite], out: &mut [f64]) {
    for w in writes {
        match w {
            StagedWrite::El { off, v } => out[*off] = *v,
            StagedWrite::Dense { base, values } => {
                out[*base..*base + values.len()].copy_from_slice(values)
            }
        }
    }
}

/// The bare scalar fused loop: one `FusedShape::apply` per element, no
/// staging — rustc autovectorizes this too, so it is *not* the PR 5
/// machine baseline, just the arithmetic floor.
fn scalar_fused(shape: &FusedShape, srcs: &[&[f64]], out: &mut [f64]) {
    match srcs {
        [s0] => {
            for (o, v) in out.iter_mut().zip(s0.iter()) {
                *o = shape.apply(&[*v]).expect("fused arity");
            }
        }
        [s0, s1] => {
            for (i, o) in out.iter_mut().enumerate() {
                *o = shape.apply(&[s0[i], s1[i]]).expect("fused arity");
            }
        }
        [s0, s1, s2] => {
            for (i, o) in out.iter_mut().enumerate() {
                *o = shape.apply(&[s0[i], s1[i], s2[i]]).expect("fused arity");
            }
        }
        _ => unreachable!("fused shapes read 1..=3 slots"),
    }
}

/// The SIMD lane tier on the same inputs.
fn simd_fused(policy: SimdPolicy, shape: &FusedShape, srcs: &[&[f64]], out: &mut [f64]) {
    match shape {
        FusedShape::Copy { .. } => simd::copy(policy, srcs[0], out),
        FusedShape::Axpy { a, b, .. } => simd::axpy(policy, *a, *b, srcs[0], out),
        FusedShape::Stencil {
            slots,
            left_assoc,
            scale,
            offset,
        } => match slots.len() {
            2 => simd::stencil2(policy, *scale, *offset, srcs[0], srcs[1], out),
            _ => simd::stencil3(
                policy,
                *left_assoc,
                *scale,
                *offset,
                srcs[0],
                srcs[1],
                srcs[2],
                out,
            ),
        },
        FusedShape::Generic => unreachable!("micro rows only bench fused shapes"),
    }
}

/// Time `f` over `reps` passes (one untimed warmup pass first).
fn timed(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

/// The fused shapes of the micro grid, with their operand counts.
fn micro_shapes() -> Vec<(&'static str, FusedShape, usize)> {
    vec![
        ("copy", FusedShape::Copy { slot: 0 }, 1),
        (
            "axpy",
            FusedShape::Axpy {
                a: Some(1.5),
                slot: 0,
                b: Some(-0.25),
            },
            1,
        ),
        (
            "stencil2",
            FusedShape::Stencil {
                slots: vec![0, 1],
                left_assoc: true,
                scale: Some(0.5),
                offset: None,
            },
            2,
        ),
        (
            "stencil3",
            FusedShape::Stencil {
                slots: vec![0, 1, 2],
                left_assoc: true,
                scale: Some(1.0 / 3.0),
                offset: Some(0.125),
            },
            3,
        ),
    ]
}

// ---------------------------------------------------------------------
// machine level: the Jacobi workload at production sizes
// ---------------------------------------------------------------------

fn back_clause(n: i64) -> Clause {
    Clause {
        iter: IndexSet::range(1, n - 2),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1("U", Fn1::identity()),
        rhs: Expr::Ref(ArrayRef::d1("V", Fn1::identity())),
    }
}

fn jacobi_env(n: i64) -> Env {
    let mut env = Env::new();
    env.insert(
        "U",
        Array::from_fn(Bounds::range(0, n - 1), |i| {
            (i.scalar() % 17) as f64 * 0.25 - 2.0
        }),
    );
    env.insert("V", Array::zeros(Bounds::range(0, n - 1)));
    env
}

fn jacobi_decomps(n: i64, pmax: i64) -> DecompMap {
    let mut dm = DecompMap::new();
    dm.insert("U".into(), Decomp1::block(pmax, Bounds::range(0, n - 1)));
    dm.insert("V".into(), Decomp1::block(pmax, Bounds::range(0, n - 1)));
    dm
}

fn dist_arrays(env: &Env, dm: &DecompMap) -> BTreeMap<String, DistArray> {
    let mut arrays = BTreeMap::new();
    for name in ["U", "V"] {
        arrays.insert(
            name.to_string(),
            DistArray::scatter_from(env.get(name).unwrap(), dm[name].clone()),
        );
    }
    arrays
}

/// One cold Jacobi timestep (sweep + write-back) through
/// `run_distributed`; returns the gathered `U` bit pattern for the
/// scalar-vs-SIMD identity check.
fn cold_step(n: i64, env: &Env, dm: &DecompMap, opts: DistOptions) -> (f64, Vec<u64>) {
    let sweep = stencil_clause(n);
    let back = back_clause(n);
    let sweep_plan = SpmdPlan::build(&sweep, dm).unwrap();
    let back_plan = SpmdPlan::build(&back, dm).unwrap();
    let mut arrays = dist_arrays(env, dm);
    let t0 = Instant::now();
    run_distributed(&sweep_plan, &sweep, &mut arrays, opts).unwrap();
    run_distributed(&back_plan, &back, &mut arrays, opts).unwrap();
    let secs = t0.elapsed().as_secs_f64();
    let bits = arrays["U"]
        .gather()
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    (secs, bits)
}

/// Warm per-step seconds through a primed `DistSession`, plus the final
/// `U` bit pattern.
fn warm_steps(
    n: i64,
    env: &Env,
    dm: &DecompMap,
    opts: DistOptions,
    steps: usize,
) -> (f64, Vec<u64>) {
    let sweep = stencil_clause(n);
    let back = back_clause(n);
    let mut session = DistSession::new(env, dm.clone())
        .unwrap()
        .with_options(opts);
    session.run(&sweep).unwrap();
    session.run(&back).unwrap();
    let t0 = Instant::now();
    for _ in 0..steps {
        session.run(&sweep).unwrap();
        session.run(&back).unwrap();
    }
    let secs = t0.elapsed().as_secs_f64() / steps as f64;
    let bits = session
        .gather("U")
        .unwrap()
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    (secs, bits)
}

fn opts_with(simd: SimdPolicy, overlap: bool) -> DistOptions {
    DistOptions {
        simd,
        overlap,
        ..DistOptions::default()
    }
}

fn bench_kernel_simd(c: &mut Criterion) {
    let mut rows = Vec::new();

    // ---- criterion group: lane kernels at n = 10⁶ -------------------
    {
        let n = SIZES[0];
        let a = ramp(n);
        let b: Vec<f64> = a.iter().map(|v| v * 0.75 + 0.5).collect();
        let c3: Vec<f64> = a.iter().map(|v| v * -0.25 + 2.0).collect();
        let mut out = vec![0.0f64; n];
        let mut group = c.benchmark_group("simd_kernel");
        group.sample_size(10);
        for (label, shape, n_ops) in micro_shapes() {
            let srcs: Vec<&[f64]> = [&a, &b, &c3].iter().take(n_ops).map(|s| &s[..]).collect();
            group.bench_function(format!("{label}/scalar"), |bch| {
                bch.iter(|| scalar_fused(black_box(&shape), &srcs, &mut out))
            });
            group.bench_function(format!("{label}/simd"), |bch| {
                bch.iter(|| simd_fused(SimdPolicy::auto(), black_box(&shape), &srcs, &mut out))
            });
        }
        group.finish();
    }

    // ---- hand-timed micro grid: every shape × every size ------------
    for &n in SIZES {
        let reps = reps_for(n);
        let a = ramp(n);
        let b: Vec<f64> = a.iter().map(|v| v * 0.75 + 0.5).collect();
        let c3: Vec<f64> = a.iter().map(|v| v * -0.25 + 2.0).collect();
        let mut out_scalar = vec![0.0f64; n];
        let mut out_simd = vec![0.0f64; n];
        let mut writes = Vec::with_capacity(n);
        for (label, shape, n_ops) in micro_shapes() {
            let srcs: Vec<&[f64]> = [&a, &b, &c3].iter().take(n_ops).map(|s| &s[..]).collect();

            // acceptance rows: the PR 5 update loop vs the lane tier,
            // staging included on both sides
            let scalar_staged = timed(reps, || {
                scalar_update_loop(black_box(&shape), &srcs, &mut writes)
            });
            commit(&writes, &mut out_scalar);
            let simd_staged = timed(reps, || {
                simd_update_loop(SimdPolicy::auto(), black_box(&shape), &srcs, &mut writes)
            });
            commit(&writes, &mut out_simd);
            assert!(
                out_scalar
                    .iter()
                    .zip(out_simd.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "{label} n={n}: staged SIMD output must be bit-identical to scalar"
            );
            println!(
                "[update {label}] n={n}: scalar+El {:.0} Melem/s, simd+Dense {:.0} Melem/s ({:.2}x)",
                per_second(n as u64, scalar_staged) / 1e6,
                per_second(n as u64, simd_staged) / 1e6,
                scalar_staged / simd_staged
            );
            rows.push(ReportRow::new(
                "BENCH_kernel_simd",
                format!("{label} update-loop per-element seconds (scalar apply + El staging -> simd + Dense), n={n}"),
                scalar_staged / n as f64,
                simd_staged / n as f64,
            ));

            // arithmetic-only rows: both sides autovectorize; the ratio
            // shows the memory wall, not the tier's win
            let scalar = timed(reps, || {
                scalar_fused(black_box(&shape), &srcs, &mut out_scalar)
            });
            let vector = timed(reps, || {
                simd_fused(SimdPolicy::auto(), black_box(&shape), &srcs, &mut out_simd)
            });
            assert!(
                out_scalar
                    .iter()
                    .zip(out_simd.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "{label} n={n}: SIMD output must be bit-identical to scalar"
            );
            println!(
                "[arith {label}] n={n}: scalar {:.0} Melem/s, simd {:.0} Melem/s ({:.2}x)",
                per_second(n as u64, scalar) / 1e6,
                per_second(n as u64, vector) / 1e6,
                scalar / vector
            );
            rows.push(ReportRow::new(
                "BENCH_kernel_simd",
                format!("{label} arithmetic-only per-element seconds (scalar apply -> simd lanes), n={n}"),
                scalar / n as f64,
                vector / n as f64,
            ));
        }
    }

    // ---- machine level: warm Jacobi at 10⁶ over the pmax grid -------
    {
        let n = SIZES[0] as i64;
        let env = jacobi_env(n);
        let steps = 5;
        for pmax in [1i64, 2, 4] {
            let dm = jacobi_decomps(n, pmax);
            let (scalar, scalar_bits) =
                warm_steps(n, &env, &dm, opts_with(SimdPolicy::off(), true), steps);
            let (vector, vector_bits) =
                warm_steps(n, &env, &dm, opts_with(SimdPolicy::auto(), true), steps);
            assert_eq!(
                scalar_bits, vector_bits,
                "pmax={pmax}: SIMD machine run must be bit-identical to scalar"
            );
            println!(
                "[machine warm] n={n} pmax={pmax}: scalar {:.1} ms/step, simd {:.1} ms/step ({:.2}x)",
                scalar * 1e3,
                vector * 1e3,
                scalar / vector
            );
            rows.push(ReportRow::new(
                "BENCH_kernel_simd",
                format!(
                    "jacobi warm per-step seconds (simd off -> auto), n={n} pmax={pmax} overlap=on"
                ),
                scalar,
                vector,
            ));
        }
        // overlap off at the widest pmax: the lane tier composes with
        // the strict visit-order schedule too
        let dm = jacobi_decomps(n, 4);
        let (scalar, sb) = warm_steps(n, &env, &dm, opts_with(SimdPolicy::off(), false), steps);
        let (vector, vb) = warm_steps(n, &env, &dm, opts_with(SimdPolicy::auto(), false), steps);
        assert_eq!(sb, vb, "overlap=off: SIMD must stay bit-identical");
        rows.push(ReportRow::new(
            "BENCH_kernel_simd",
            format!("jacobi warm per-step seconds (simd off -> auto), n={n} pmax=4 overlap=off"),
            scalar,
            vector,
        ));
    }

    // ---- machine level: cold single-node runs at 10⁷ ----------------
    {
        let n = SIZES[1] as i64;
        let env = jacobi_env(n);
        let dm = jacobi_decomps(n, 1);
        for overlap in [true, false] {
            let (scalar, scalar_bits) =
                cold_step(n, &env, &dm, opts_with(SimdPolicy::off(), overlap));
            let (vector, vector_bits) =
                cold_step(n, &env, &dm, opts_with(SimdPolicy::auto(), overlap));
            assert_eq!(
                scalar_bits, vector_bits,
                "n={n} overlap={overlap}: SIMD machine run must be bit-identical to scalar"
            );
            println!(
                "[machine cold] n={n} pmax=1 overlap={overlap}: scalar {:.2} s, simd {:.2} s ({:.2}x)",
                scalar,
                vector,
                scalar / vector
            );
            rows.push(ReportRow::new(
                "BENCH_kernel_simd",
                format!(
                    "jacobi cold step seconds (simd off -> auto), n={n} pmax=1 overlap={}",
                    if overlap { "on" } else { "off" }
                ),
                scalar,
                vector,
            ));
        }
    }

    // ---- machine level: warm single-node steps at 10⁷ and 10⁸ -------
    // (warm isolates the update phase the tier rewrites: plan build and
    // node spawn are paid once in the priming step, not re-measured)
    for (&n, steps) in SIZES[1..].iter().zip([3usize, 1]) {
        let n = n as i64;
        let env = jacobi_env(n);
        let dm = jacobi_decomps(n, 1);
        let (scalar, scalar_bits) =
            warm_steps(n, &env, &dm, opts_with(SimdPolicy::off(), true), steps);
        let (vector, vector_bits) =
            warm_steps(n, &env, &dm, opts_with(SimdPolicy::auto(), true), steps);
        assert_eq!(
            scalar_bits, vector_bits,
            "n={n}: warm SIMD machine run must be bit-identical to scalar"
        );
        println!(
            "[machine warm] n={n} pmax=1: scalar {:.2} s/step, simd {:.2} s/step ({:.2}x)",
            scalar,
            vector,
            scalar / vector
        );
        rows.push(ReportRow::new(
            "BENCH_kernel_simd",
            format!("jacobi warm per-step seconds (simd off -> auto), n={n} pmax=1 overlap=on"),
            scalar,
            vector,
        ));
    }

    write_report("BENCH_kernel_simd", &rows);
    // the acceptance grid also lives at the repo root, next to
    // EXPERIMENTS.md, so E16's numbers are traceable without a build
    let local = std::path::Path::new("target")
        .join("vcal-reports")
        .join("BENCH_kernel_simd.json");
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_kernel_simd.json");
    if let Err(e) = std::fs::copy(&local, &root) {
        eprintln!("warning: could not copy report to repo root: {e}");
    }
}

criterion_group!(benches, bench_kernel_simd);
criterion_main!(benches);
