//! E5 — **Section 3.3**: piecewise-monotonic access functions (rotate /
//! shuffle views). Breakpoint splitting turns `f(i) = (i+s) mod z` into
//! two (or more) de-modded affine pieces, each optimized by its own
//! Table I row; the naive alternative tests every index. We time both on
//! the paper's rotate example scaled up, under block and scatter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vcal_bench::{write_report, ReportRow};
use vcal_core::func::Fn1;
use vcal_core::Bounds;
use vcal_decomp::Decomp1;
use vcal_spmd::{naive_schedule, optimize, OptKind};

fn bench_piecewise(c: &mut Criterion) {
    let n: i64 = 1 << 16;
    let pmax = 16i64;
    let shift = n / 3;
    let f = Fn1::rotate(shift, n); // (i + n/3) mod n
    let mut rows = Vec::new();

    for (dname, dec) in [
        ("block", Decomp1::block(pmax, Bounds::range(0, n - 1))),
        ("scatter", Decomp1::scatter(pmax, Bounds::range(0, n - 1))),
        (
            "bs8",
            Decomp1::block_scatter(8, pmax, Bounds::range(0, n - 1)),
        ),
    ] {
        let p = 2i64;
        let opt = optimize(&f, &dec, 0, n - 1, p);
        assert_eq!(opt.kind, OptKind::PiecewiseSplit, "{dname}");
        let naive = naive_schedule(&f, &dec, 0, n - 1, p);
        assert_eq!(
            opt.schedule.to_sorted_vec(),
            naive.to_sorted_vec(),
            "{dname}"
        );

        let mut group = c.benchmark_group(format!("piecewise/rotate/{dname}"));
        group.bench_function(BenchmarkId::new("naive", dname), |b| {
            b.iter(|| {
                let mut acc = 0i64;
                naive.for_each(|i| acc = acc.wrapping_add(i));
                black_box(acc)
            })
        });
        group.bench_function(BenchmarkId::new("split", dname), |b| {
            b.iter(|| {
                let mut acc = 0i64;
                opt.schedule.for_each(|i| acc = acc.wrapping_add(i));
                black_box(acc)
            })
        });
        group.finish();

        rows.push(ReportRow::new(
            "piecewise",
            format!("rotate/{dname}"),
            naive.work_estimate() as f64,
            opt.schedule.work_estimate() as f64,
        ));
    }

    eprintln!("\nSection 3.3 — rotate view (i+{shift}) mod {n} (static work, p=2):");
    eprintln!(
        "{:<24} {:>10} {:>10} {:>8}",
        "case", "naive", "split", "ratio"
    );
    for r in &rows {
        eprintln!(
            "{:<24} {:>10} {:>10} {:>8.1}",
            r.label, r.baseline, r.optimized, r.speedup
        );
    }
    write_report("piecewise", &rows);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_piecewise
}
criterion_main!(benches);
