//! E18 — calibrated decomposition auto-tuning of timestep loops.
//!
//! A stencil loop started on a deliberately misaligned (scatter)
//! layout is handed to [`DistSession::run_program_tuned`]: the tuner
//! profiles the leading steps, fits the §4 cost model's constants from
//! the measured phase timings, prices the Block / Scatter /
//! BlockScatter candidate space from plans alone, and inserts a
//! mid-loop redistribution onto its argmin layout. Measured: warm
//! steady-state seconds per step *after* tuning vs (a) the worst-priced
//! candidate layout and (b) the layout the uncalibrated era-default
//! model would pick, over a `workload ∈ {stencil, stencil+consume}` ×
//! `mode ∈ {element, vectorized}` grid.
//!
//! Acceptance bars:
//! * the tuned steady state beats the worst candidate by ≥ 1.5× on
//!   every configuration;
//! * the tuned steady state is ≥ 1.0× the era-default pick on at least
//!   two configurations (calibration must never lose to the 1991
//!   constants, which usually agree on the argmin — the claim is "no
//!   regression", not "free lunch");
//! * the calibrated model's predicted ranking of top choice vs worst
//!   candidate matches the measured ranking.
//!
//! Every tuned run is verified bit-identical to the iterated
//! sequential reference before its timing is reported. Results land in
//! `target/vcal-reports/BENCH_autotune.json`, in `BENCH_autotune.json`
//! at the repo root, and EXPERIMENTS.md E18.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::time::Instant;
use vcal_bench::{write_report, ReportRow};
use vcal_core::func::Fn1;
use vcal_core::{Array, ArrayRef, Bounds, Clause, Env, Expr, Guard, IndexSet, Ordering};
use vcal_decomp::Decomp1;
use vcal_machine::{
    CalibratedModel, CalibrationSample, CollectingTracer, CommMode, DistOptions, DistSession,
    ProgramStep, ScheduleMode, TuneOptions, NULL_TRACER,
};
use vcal_spmd::{enumerate_candidates, DecompMap, TuneCandidate, TuneSpaceOptions};

const N: i64 = 2048;
const PMAX: i64 = 4;
const TUNE_STEPS: u64 = 64;

fn stencil(src: &str, dst: &str) -> ProgramStep {
    ProgramStep::Clause(Clause {
        iter: IndexSet::range(1, N - 2),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1(dst, Fn1::identity()),
        rhs: Expr::mul(
            Expr::add(
                Expr::Ref(ArrayRef::d1(src, Fn1::shift(-1))),
                Expr::Ref(ArrayRef::d1(src, Fn1::shift(1))),
            ),
            Expr::Lit(0.5),
        ),
    })
}

fn consume(src: &str, dst: &str) -> ProgramStep {
    ProgramStep::Clause(Clause {
        iter: IndexSet::range(1, N - 2),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1(dst, Fn1::identity()),
        rhs: Expr::add(
            Expr::Ref(ArrayRef::d1(src, Fn1::identity())),
            Expr::Lit(1.0),
        ),
    })
}

/// The two workloads: a single Jacobi sweep and a sweep feeding an
/// elementwise consumer.
fn workloads() -> Vec<(&'static str, Vec<ProgramStep>, Vec<&'static str>)> {
    vec![
        ("stencil", vec![stencil("U", "V")], vec!["U", "V"]),
        (
            "stencil+consume",
            vec![stencil("U", "V"), consume("V", "W")],
            vec!["U", "V", "W"],
        ),
    ]
}

fn layout(names: &[&str], dec: impl Fn(Bounds) -> Decomp1) -> DecompMap {
    let ext = Bounds::range(0, N - 1);
    names.iter().map(|n| ((*n).to_string(), dec(ext))).collect()
}

fn initial_env(names: &[&str]) -> Env {
    let mut env = Env::new();
    for (j, name) in names.iter().enumerate() {
        env.insert(
            (*name).to_string(),
            Array::from_fn(Bounds::range(0, N - 1), |i| {
                (i.scalar() * 7 + j as i64) as f64 * 0.25 - 3.0
            }),
        );
    }
    env
}

/// Reproduce the tuner's calibration externally: one cold + one warm
/// traced step on the incumbent layout, sample, fit.
fn calibrate(
    steps: &[ProgramStep],
    dm: &DecompMap,
    env: &Env,
    opts: DistOptions,
) -> CalibratedModel {
    let mut session = DistSession::new(env, dm.clone())
        .unwrap()
        .with_options(opts);
    session
        .run_program(steps, ScheduleMode::Seq, &NULL_TRACER)
        .unwrap();
    let tracer = CollectingTracer::new();
    let report = session
        .run_program(steps, ScheduleMode::Seq, &tracer)
        .unwrap();
    let mut sample = CalibrationSample::of(&Default::default(), &tracer.finish());
    for er in &report.steps {
        let t = er.total();
        sample.iterations += t.iterations;
        sample.packets += t.packets_sent;
        sample.bytes += t.bytes_sent;
        sample.recv_elems += t.msgs_received;
    }
    CalibratedModel::fit(&[sample]).expect("warm profile must calibrate")
}

/// Price every enumerated candidate: program price = sum of per-clause
/// critical paths, exactly the tuner's objective.
fn priced_space(
    steps: &[ProgramStep],
    names: &[&str],
    model: &CalibratedModel,
    mode: CommMode,
) -> Vec<(f64, TuneCandidate)> {
    let clauses: Vec<Clause> = steps
        .iter()
        .map(|s| match s {
            ProgramStep::Clause(c) => c.clone(),
            ProgramStep::Redistribute { .. } => unreachable!("bench programs are clause-only"),
        })
        .collect();
    let extents: BTreeMap<String, Bounds> = names
        .iter()
        .map(|n| ((*n).to_string(), Bounds::range(0, N - 1)))
        .collect();
    let space = enumerate_candidates(&clauses, &extents, PMAX, &TuneSpaceOptions::default())
        .expect("bench candidate space");
    let mut priced: Vec<(f64, TuneCandidate)> = space
        .candidates
        .into_iter()
        .map(|c| {
            let price: f64 = c
                .plans
                .iter()
                .map(|p| model.price_plan(p, mode).total_ns)
                .sum();
            (price, c)
        })
        .collect();
    priced.sort_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then(a.1.fingerprint.cmp(&b.1.fingerprint))
    });
    priced
}

/// Warm steady-state seconds per step for several sessions, timed in
/// interleaved best-of batches so every contender samples the same
/// host-load windows.
fn steady(
    sessions: &mut [&mut DistSession],
    steps: &[ProgramStep],
    timed: usize,
    trials: usize,
) -> Vec<f64> {
    for s in sessions.iter_mut() {
        s.run_program(steps, ScheduleMode::Seq, &NULL_TRACER)
            .unwrap();
    }
    let mut best = vec![f64::INFINITY; sessions.len()];
    for _ in 0..trials {
        for (k, s) in sessions.iter_mut().enumerate() {
            let t0 = Instant::now();
            for _ in 0..timed {
                s.run_program(steps, ScheduleMode::Seq, &NULL_TRACER)
                    .unwrap();
            }
            best[k] = best[k].min(t0.elapsed().as_secs_f64());
        }
    }
    best.into_iter().map(|b| b / timed as f64).collect()
}

fn bench_autotune(_c: &mut Criterion) {
    let (timed, trials) = (12, 10);
    let mut rows = Vec::new();
    let mut default_wins = 0usize;

    for (wname, steps, names) in workloads() {
        for mode in [CommMode::Element, CommMode::Vectorized] {
            let opts = DistOptions {
                mode,
                ..DistOptions::default()
            };
            let env = initial_env(&names);
            let incumbent = layout(&names, |e| Decomp1::scatter(PMAX, e));

            // the tuned run: misaligned start, tuner in the loop
            let mut reference = env.clone();
            for _ in 0..TUNE_STEPS {
                for step in &steps {
                    if let ProgramStep::Clause(c) = step {
                        reference.exec_clause(c);
                    }
                }
            }
            let mut tuned = DistSession::new(&env, incumbent.clone())
                .unwrap()
                .with_options(opts);
            let (_, tune) = tuned
                .run_program_tuned(
                    &steps,
                    TUNE_STEPS,
                    ScheduleMode::Seq,
                    TuneOptions::default(),
                    &NULL_TRACER,
                )
                .unwrap();
            assert!(
                tune.switched,
                "{wname} {mode:?}: a scattered stencil must amortize a switch"
            );
            let got = tuned.gather_all();
            for name in &names {
                assert_eq!(
                    got.get(name)
                        .unwrap()
                        .max_abs_diff(reference.get(name).unwrap()),
                    0.0,
                    "{wname} {mode:?}: tuned run diverged on `{name}`"
                );
            }

            // contenders: worst calibrated candidate, era-default pick
            let model = calibrate(&steps, &incumbent, &env, opts);
            let priced = priced_space(&steps, &names, &model, mode);
            let (best_price, _) = &priced[0];
            let (worst_price, worst_cand) = priced.last().unwrap();
            let default_priced = priced_space(&steps, &names, &CalibratedModel::default(), mode);
            let (_, default_cand) = &default_priced[0];

            let mut worst = DistSession::new(&env, worst_cand.decomps.clone())
                .unwrap()
                .with_options(opts);
            let mut default_pick = DistSession::new(&env, default_cand.decomps.clone())
                .unwrap()
                .with_options(opts);
            let times = steady(
                &mut [&mut tuned, &mut worst, &mut default_pick],
                &steps,
                timed,
                trials,
            );
            let (t_tuned, t_worst, t_default) = (times[0], times[1], times[2]);

            println!(
                "[{wname}] {mode:?}: tuned {:.3} ms/step, worst {:.3} ms/step ({:.2}x), \
                 era-default pick {:.3} ms/step ({:.2}x)",
                t_tuned * 1e3,
                t_worst * 1e3,
                t_worst / t_tuned,
                t_default * 1e3,
                t_default / t_tuned
            );
            assert!(
                t_worst / t_tuned >= 1.5,
                "{wname} {mode:?}: tuned must beat the worst candidate 1.5x, got {:.2}x",
                t_worst / t_tuned
            );
            assert!(
                best_price < worst_price,
                "{wname} {mode:?}: predicted ranking degenerate"
            );
            assert!(
                t_tuned < t_worst,
                "{wname} {mode:?}: predicted top choice must also measure ahead of \
                 the predicted worst"
            );
            if t_default / t_tuned >= 1.0 {
                default_wins += 1;
            }

            rows.push(ReportRow::new(
                "BENCH_autotune",
                format!(
                    "{wname}: warm s/step, worst candidate -> tuned, {mode:?} n={N} pmax={PMAX} \
                     (tuner switched from scatter, {} candidates priced)",
                    tune.candidates_priced
                ),
                t_worst,
                t_tuned,
            ));
            rows.push(ReportRow::new(
                "BENCH_autotune",
                format!(
                    "{wname}: warm s/step, era-default model pick -> calibrated tuned, \
                     {mode:?} n={N} pmax={PMAX}"
                ),
                t_default,
                t_tuned,
            ));
        }
    }
    assert!(
        default_wins >= 2,
        "calibrated tuning must match or beat the era-default pick on at \
         least two workloads, got {default_wins}"
    );

    write_report("BENCH_autotune", &rows);
    // the acceptance grid also lives at the repo root, next to
    // EXPERIMENTS.md, so E18's numbers are traceable without a build
    let local = std::path::Path::new("target")
        .join("vcal-reports")
        .join("BENCH_autotune.json");
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_autotune.json");
    if let Err(e) = std::fs::copy(&local, &root) {
        eprintln!("warning: could not copy report to repo root: {e}");
    }
}

criterion_group!(benches, bench_autotune);
criterion_main!(benches);
