//! E11 — communication vectorization: element-wise vs run-aggregated
//! message traffic on the distributed machine.
//!
//! For each Table I decomposition (block, scatter, block-scatter) and
//! access function (`i+c`, `a·i+c`), measures end-to-end wall clock of
//! both [`CommMode`]s and reports the wire-message reduction the
//! plan-time communication schedules buy (packets vs per-element
//! messages, plus modeled bytes). The architecture-independent quantity
//! is the message-count ratio — on real message-passing hardware each
//! wire message pays a latency `α`, so the ratio bounds the latency
//! saving of vectorized aggregation directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use vcal_bench::{copy_clause, env_ab, write_report, ReportRow};
use vcal_core::func::Fn1;
use vcal_core::{Bounds, Clause, Env};
use vcal_decomp::Decomp1;
use vcal_machine::{run_distributed, CommMode, DistArray, DistOptions};
use vcal_spmd::{DecompMap, SpmdPlan};

const N: i64 = 1024;
const PMAX: i64 = 8;

fn arrays_for(env: &Env, dm: &DecompMap) -> BTreeMap<String, DistArray> {
    let mut arrays = BTreeMap::new();
    for name in ["A", "B"] {
        arrays.insert(
            name.to_string(),
            DistArray::scatter_from(env.get(name).unwrap(), dm[name].clone()),
        );
    }
    arrays
}

fn run_once(plan: &SpmdPlan, clause: &Clause, env: &Env, dm: &DecompMap, mode: CommMode) -> f64 {
    let mut arrays = arrays_for(env, dm);
    let opts = DistOptions {
        mode,
        ..DistOptions::default()
    };
    run_distributed(plan, clause, &mut arrays, opts).unwrap();
    arrays["A"].read_local(0, 0)
}

fn bench_comm_vectorization(c: &mut Criterion) {
    let env0 = env_ab(N, 3 * N + 1);
    let decomps: Vec<(&str, Decomp1, Decomp1)> = vec![
        (
            "block",
            Decomp1::block(PMAX, Bounds::range(0, N - 1)),
            Decomp1::block(PMAX, Bounds::range(0, 3 * N)),
        ),
        (
            "scatter",
            Decomp1::scatter(PMAX, Bounds::range(0, N - 1)),
            Decomp1::scatter(PMAX, Bounds::range(0, 3 * N)),
        ),
        (
            "bs4",
            Decomp1::block_scatter(4, PMAX, Bounds::range(0, N - 1)),
            Decomp1::block_scatter(4, PMAX, Bounds::range(0, 3 * N)),
        ),
    ];
    let fns: Vec<(&str, Fn1)> = vec![("i+c", Fn1::shift(3)), ("a*i+c", Fn1::affine(3, 1))];

    let mut rows = Vec::new();
    for (dname, dec_a, dec_b) in &decomps {
        for (fname, g) in &fns {
            let clause = copy_clause(Fn1::identity(), g.clone(), 0, N - 1);
            let mut dm = DecompMap::new();
            dm.insert("A".into(), dec_a.clone());
            dm.insert("B".into(), dec_b.clone());
            let plan = SpmdPlan::build(&clause, &dm).unwrap();

            // traffic shape (deterministic, measured once)
            let totals = |mode| {
                let mut arrays = arrays_for(&env0, &dm);
                let opts = DistOptions {
                    mode,
                    ..DistOptions::default()
                };
                run_distributed(&plan, &clause, &mut arrays, opts)
                    .unwrap()
                    .total()
            };
            let elem = totals(CommMode::Element);
            let vect = totals(CommMode::Vectorized);
            println!(
                "comm_vectorization {dname}/{fname}: elements={} packets {} -> {} \
                 ({:.1}x), bytes {} -> {}, max packet {} elems",
                elem.msgs_sent,
                elem.packets_sent,
                vect.packets_sent,
                elem.packets_sent as f64 / (vect.packets_sent.max(1)) as f64,
                elem.bytes_sent,
                vect.bytes_sent,
                vect.max_packet_elems,
            );
            rows.push(ReportRow::new(
                "comm_vectorization_packets",
                format!("{dname}/{fname}"),
                elem.packets_sent as f64,
                vect.packets_sent as f64,
            ));

            // wall clock of both modes
            let mut group = c.benchmark_group(format!("comm_vectorization/{dname}/{fname}"));
            group.bench_function(BenchmarkId::from_parameter("element"), |b| {
                b.iter(|| black_box(run_once(&plan, &clause, &env0, &dm, CommMode::Element)))
            });
            group.bench_function(BenchmarkId::from_parameter("vectorized"), |b| {
                b.iter(|| black_box(run_once(&plan, &clause, &env0, &dm, CommMode::Vectorized)))
            });
            group.finish();
        }
    }
    write_report("comm_vectorization", &rows);
}

criterion_group!(benches, bench_comm_vectorization);
criterion_main!(benches);
