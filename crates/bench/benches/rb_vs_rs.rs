//! E8 — **Section 3.2.i**: repeated block vs repeated scatter for a
//! block-scatter decomposition `BS(b)`. The paper claims the repeated
//! scatter form "is more favorable … under the condition
//! `b <= f(imax) / (2*pmax)`". We sweep `b` across that threshold and
//! time both formulations for identity and strided access functions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vcal_bench::{write_report, ReportRow};
use vcal_core::func::Fn1;
use vcal_core::Bounds;
use vcal_decomp::Decomp1;
use vcal_spmd::{repeated_block_kmax, Schedule};

fn both_schedules(
    f: &Fn1,
    b: i64,
    pmax: i64,
    imin: i64,
    imax: i64,
    n: i64,
    p: i64,
) -> (Schedule, Schedule) {
    let dec = Decomp1::block_scatter(b, pmax, Bounds::range(0, n - 1));
    let ext_lo = dec.extent().lo()[0];
    let k_max = repeated_block_kmax(f, imin, imax, b, pmax, p, ext_lo);
    let rb = Schedule::RepeatedBlock {
        f: f.clone(),
        imin,
        imax,
        b,
        pmax,
        p,
        ext_lo,
        k_max,
    };
    let rs = Schedule::RepeatedScatter {
        f: f.clone(),
        imin,
        imax,
        b,
        pmax,
        p,
        ext_lo,
        k_max,
    };
    (rb, rs)
}

fn bench_rb_rs(c: &mut Criterion) {
    let pmax = 16i64;
    let imax: i64 = 1 << 15;
    let mut rows = Vec::new();

    for (fname, f, n) in [
        ("f=i", Fn1::identity(), imax + 1),
        ("f=3i+1", Fn1::affine(3, 1), 3 * imax + 2),
    ] {
        let threshold = (f.eval(imax)) / (2 * pmax);
        for b in [1i64, 8, 64, 512, 4096] {
            let (rb, rs) = both_schedules(&f, b, pmax, 0, imax, n, 1);
            assert_eq!(rb.to_sorted_vec(), rs.to_sorted_vec(), "b={b} {fname}");

            let mut group = c.benchmark_group(format!("rb_vs_rs/{fname}/b{b}"));
            group.bench_function(BenchmarkId::new("repeated_block", b), |bch| {
                bch.iter(|| {
                    let mut acc = 0i64;
                    rb.for_each(|i| acc = acc.wrapping_add(i));
                    black_box(acc)
                })
            });
            group.bench_function(BenchmarkId::new("repeated_scatter", b), |bch| {
                bch.iter(|| {
                    let mut acc = 0i64;
                    rs.for_each(|i| acc = acc.wrapping_add(i));
                    black_box(acc)
                })
            });
            group.finish();

            rows.push(ReportRow::new(
                "rb_vs_rs",
                format!(
                    "{fname} b={b} ({} paper threshold {threshold})",
                    if b <= threshold { "<=" } else { ">" }
                ),
                rb.work_estimate() as f64,
                rs.work_estimate() as f64,
            ));
        }
    }

    eprintln!("\nSection 3.2.i — repeated block vs repeated scatter (static work):");
    eprintln!("{:<44} {:>10} {:>10}", "case", "RB work", "RS work");
    for r in &rows {
        eprintln!("{:<44} {:>10} {:>10}", r.label, r.baseline, r.optimized);
    }
    write_report("rb_vs_rs", &rows);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(15)
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_rb_rs
}
criterion_main!(benches);
