//! E4 — **Section 3.2 claim**: for scatter decompositions with monotone
//! non-linear `f`, enumerating on `k` (probing `f^{-1}(p + k*pmax)`)
//! beats enumerating on `i` (testing `proc(f(i)) = p` for every index)
//! when `df/di < pmax`, "with an improvement of a factor of
//! `pmax / (df/di)`".
//!
//! The workloads are the paper's own examples: `f(i) = i + (i div 4)`
//! (slope <= 2) and `f(i) = i^2` (slope grows past pmax — enumerate-on-k
//! loses its advantage and the optimizer falls back).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vcal_bench::{write_report, ReportRow};
use vcal_core::func::Fn1;
use vcal_core::Bounds;
use vcal_decomp::Decomp1;
use vcal_spmd::{naive_schedule, optimize_with, OptOptions, Schedule};

fn bench_enum(c: &mut Criterion) {
    let imax: i64 = 1 << 15;
    let f = Fn1::i_plus_i_div(4); // df/di <= 2
    let n = f.eval(imax) + 1;
    let mut rows = Vec::new();

    for pmax in [4i64, 16, 64] {
        let dec = Decomp1::scatter(pmax, Bounds::range(0, n - 1));
        let p = 1i64;
        let on_k = optimize_with(
            &f,
            &dec,
            0,
            imax,
            p,
            OptOptions {
                prefer_repeated_scatter: true,
                scatter_enum_k: true,
            },
        );
        assert!(
            matches!(on_k.schedule, Schedule::RepeatedScatter { .. }),
            "expected enumerate-on-k, got {}",
            on_k.schedule.kind_name()
        );
        let on_i = naive_schedule(&f, &dec, 0, imax, p);
        // both must produce the same set
        assert_eq!(on_k.schedule.to_sorted_vec(), on_i.to_sorted_vec());

        let mut group = c.benchmark_group(format!("enum_k_vs_i/pmax{pmax}"));
        group.bench_function(BenchmarkId::new("on_i", pmax), |b| {
            b.iter(|| {
                let mut acc = 0i64;
                on_i.for_each(|i| acc = acc.wrapping_add(i));
                black_box(acc)
            })
        });
        group.bench_function(BenchmarkId::new("on_k", pmax), |b| {
            b.iter(|| {
                let mut acc = 0i64;
                on_k.schedule.for_each(|i| acc = acc.wrapping_add(i));
                black_box(acc)
            })
        });
        group.finish();

        rows.push(ReportRow::new(
            "enum_k_vs_i",
            format!("i+(i div 4), pmax={pmax} (predicted factor {})", pmax / 2),
            on_i.work_estimate() as f64,
            on_k.schedule.work_estimate() as f64,
        ));
    }

    eprintln!("\nSection 3.2 — enumerate-on-k vs enumerate-on-i (static work):");
    eprintln!(
        "{:<48} {:>10} {:>10} {:>8}",
        "case", "on-i", "on-k", "ratio"
    );
    for r in &rows {
        eprintln!(
            "{:<48} {:>10} {:>10} {:>8.1}",
            r.label, r.baseline, r.optimized, r.speedup
        );
    }
    eprintln!("(paper predicts improvement ~ pmax / (df/di), df/di <= 2 here)");
    write_report("enum_k_vs_i", &rows);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_enum
}
criterion_main!(benches);
