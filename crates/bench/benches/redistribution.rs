//! E9 — **Section 5 extension**: dynamic redistribution. Times plan
//! construction and reports the communication volumes for the
//! block ↔ scatter ↔ block-scatter conversions across sizes and
//! processor counts, plus the overlapped-decomposition ghost-exchange
//! volumes as the second Section 5 extension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vcal_bench::{write_report, ReportRow};
use vcal_core::Bounds;
use vcal_decomp::{Decomp1, OverlapDecomp, RedistPlan};

fn bench_redistribution(c: &mut Criterion) {
    let mut rows = Vec::new();

    eprintln!("\nSection 5 — redistribution volumes:");
    eprintln!(
        "{:<28} {:>10} {:>10} {:>8}",
        "conversion", "moved", "messages", "stay"
    );
    for pmax in [4i64, 16] {
        for n in [1i64 << 10, 1 << 14] {
            let e = Bounds::range(0, n - 1);
            let block = Decomp1::block(pmax, e);
            let scatter = Decomp1::scatter(pmax, e);
            let bs = Decomp1::block_scatter(8, pmax, e);
            for (label, from, to) in [
                ("block->scatter", &block, &scatter),
                ("scatter->block", &scatter, &block),
                ("block->bs8", &block, &bs),
            ] {
                let plan = RedistPlan::build(from, to);
                eprintln!(
                    "{:<28} {:>10} {:>10} {:>8}",
                    format!("{label} n={n} p={pmax}"),
                    plan.moved_elements(),
                    plan.message_count(),
                    plan.stationary
                );
                rows.push(ReportRow::new(
                    "redistribution",
                    format!("{label} n={n} p={pmax}"),
                    n as f64,
                    plan.moved_elements() as f64,
                ));
            }
        }
    }

    let mut group = c.benchmark_group("redistribution/plan_build");
    for n in [1i64 << 12, 1 << 16] {
        let e = Bounds::range(0, n - 1);
        let from = Decomp1::block(16, e);
        let to = Decomp1::scatter(16, e);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(RedistPlan::build(&from, &to).message_count()))
        });
    }
    group.finish();

    eprintln!("\noverlap (halo) exchange volumes, n=4096:");
    eprintln!("{:<20} {:>10} {:>10}", "halo", "messages", "elements");
    for h in [1i64, 2, 8] {
        for pmax in [4i64, 16] {
            let ov = OverlapDecomp::new(Decomp1::block(pmax, Bounds::range(0, 4095)), h);
            eprintln!(
                "{:<20} {:>10} {:>10}",
                format!("h={h} p={pmax}"),
                ov.exchange_plan().len(),
                ov.exchange_volume()
            );
            rows.push(ReportRow::new(
                "overlap_exchange",
                format!("h={h} p={pmax}"),
                4096.0,
                ov.exchange_volume() as f64,
            ));
        }
    }
    write_report("redistribution", &rows);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(900))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_redistribution
}
criterion_main!(benches);
