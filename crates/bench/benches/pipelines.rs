//! Extension ablations: DOACROSS pipelining (Section 2.6's remark) and
//! halo sweeps (Section 5's overlapped decompositions) against their
//! baselines.
//!
//! * recurrence `A[i] := A[i-1] + B[i]`: single-node sequential vs the
//!   DOACROSS pipeline over increasing processor counts;
//! * Jacobi sweep: the plain Section 2.10 template (per-element
//!   boundary messages every sweep) vs one ghost exchange + pure local
//!   compute.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use vcal_bench::stencil_clause;
use vcal_core::func::Fn1;
use vcal_core::{Array, ArrayRef, Bounds, Clause, Env, Expr, Guard, IndexSet, Ordering};
use vcal_decomp::{Decomp1, OverlapDecomp};
use vcal_machine::{
    exchange_ghosts, run_distributed, run_doacross, run_halo_sweep, DistArray, DistOptions,
    HaloArray,
};
use vcal_spmd::{DecompMap, SpmdPlan};

fn recurrence(n: i64) -> Clause {
    Clause {
        iter: IndexSet::range(1, n - 1),
        ordering: Ordering::Seq,
        guard: Guard::Always,
        lhs: ArrayRef::d1("A", Fn1::identity()),
        rhs: Expr::add(
            Expr::Ref(ArrayRef::d1("A", Fn1::shift(-1))),
            Expr::Ref(ArrayRef::d1("B", Fn1::identity())),
        ),
    }
}

fn bench_doacross(c: &mut Criterion) {
    let n: i64 = 1 << 13;
    let clause = recurrence(n);
    let mut env = Env::new();
    env.insert("A", Array::zeros(Bounds::range(0, n - 1)));
    env.insert(
        "B",
        Array::from_fn(Bounds::range(0, n - 1), |i| (i.scalar() % 9) as f64),
    );

    let mut group = c.benchmark_group("pipelines/doacross");
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut e = env.clone();
            e.exec_clause(&clause);
            black_box(e.get("A").unwrap().data()[10])
        })
    });
    for pmax in [2i64, 4, 8] {
        let dec = Decomp1::block(pmax, Bounds::range(0, n - 1));
        group.bench_with_input(BenchmarkId::new("pipeline", pmax), &pmax, |b, _| {
            b.iter(|| {
                let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
                for name in ["A", "B"] {
                    arrays.insert(
                        name.into(),
                        DistArray::scatter_from(env.get(name).unwrap(), dec.clone()),
                    );
                }
                let r = run_doacross(&clause, &mut arrays).unwrap();
                black_box(r.total().msgs_sent)
            })
        });
    }
    group.finish();
}

fn bench_halo_vs_template(c: &mut Criterion) {
    let n: i64 = 1 << 12;
    let pmax = 8i64;
    let clause = stencil_clause(n);
    let mut env = Env::new();
    env.insert(
        "U",
        Array::from_fn(Bounds::range(0, n - 1), |i| (i.scalar() % 11) as f64),
    );
    env.insert("V", Array::zeros(Bounds::range(0, n - 1)));

    // baseline: plain distributed template, per-element boundary messages
    let dec = Decomp1::block(pmax, Bounds::range(0, n - 1));
    let mut dm = DecompMap::new();
    dm.insert("U".into(), dec.clone());
    dm.insert("V".into(), dec.clone());
    let plan = SpmdPlan::build(&clause, &dm).unwrap();

    let mut group = c.benchmark_group("pipelines/halo_vs_template");
    group.bench_function("template", |b| {
        b.iter(|| {
            let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
            for a in ["U", "V"] {
                arrays.insert(
                    a.into(),
                    DistArray::scatter_from(env.get(a).unwrap(), dm[a].clone()),
                );
            }
            let r = run_distributed(&plan, &clause, &mut arrays, DistOptions::default()).unwrap();
            black_box(r.total().msgs_sent)
        })
    });
    group.bench_function("halo_sweep", |b| {
        b.iter(|| {
            let ov = OverlapDecomp::new(dec.clone(), 1);
            let mut u = HaloArray::scatter_from(env.get("U").unwrap(), ov.clone());
            let mut v = HaloArray::scatter_from(env.get("V").unwrap(), ov);
            let x = exchange_ghosts(&mut u);
            let mut reads = BTreeMap::new();
            reads.insert("U".to_string(), u);
            let r = run_halo_sweep(&clause, &mut v, &reads).unwrap();
            black_box(x.total().msgs_sent + r.total().iterations)
        })
    });
    group.finish();

    eprintln!(
        "\nhalo ablation (n={n}, pmax={pmax}): template sends {} element messages per \
         sweep; halo exchange sends {} boundary messages.",
        {
            let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
            for a in ["U", "V"] {
                arrays.insert(
                    a.into(),
                    DistArray::scatter_from(env.get(a).unwrap(), dm[a].clone()),
                );
            }
            run_distributed(&plan, &clause, &mut arrays, DistOptions::default())
                .unwrap()
                .total()
                .msgs_sent
        },
        {
            let ov = OverlapDecomp::new(dec.clone(), 1);
            let mut u = HaloArray::scatter_from(env.get("U").unwrap(), ov);
            exchange_ghosts(&mut u).total().msgs_sent
        }
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1200))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_doacross, bench_halo_vs_template
}
criterion_main!(benches);
