//! E15 — fused compute kernels + communication/computation overlap.
//!
//! Two measurements on the Jacobi workload (`V[i] := 0.5*(U[i-1]+U[i+1])`
//! then `U[i] := V[i]`, 1024 elements, 8 nodes — the E14 configuration):
//!
//! * **per-element kernel throughput** — the update-phase inner loop in
//!   isolation: the tree interpreter ([`Env::eval_expr`]: recursion, `Box`
//!   chasing, a `BTreeMap` lookup per array reference) against the
//!   compiled path ([`CompiledKernel`] postfix bytecode and the fused
//!   [`FusedShape::Stencil`] loop reading straight off the local slice).
//!   Acceptance bar: ≥ 3× compiled over interpreted.
//! * **warm steady-state step time, overlap on vs off** — a primed
//!   [`DistSession`] timestep loop with the plan-time interior/boundary
//!   split enabled (interior kernels execute while halo packets are in
//!   flight) vs strict schedule visit order. Also reports the cold→warm
//!   per-step ratio in the same configuration so `BENCH_kernel_overlap.json`
//!   is directly comparable against PR 4's `BENCH_iteration.json`
//!   baseline (warm step time must be no worse).
//!
//! Results land in `target/vcal-reports/BENCH_kernel_overlap.json` and
//! EXPERIMENTS.md E15.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;
use vcal_bench::{stencil_clause, write_report, ReportRow};
use vcal_core::func::Fn1;
use vcal_core::{Array, ArrayRef, Bounds, Clause, Env, Expr, Guard, IndexSet, Ix, Ordering};
use vcal_decomp::Decomp1;
use vcal_machine::{run_distributed, CommMode, DistArray, DistOptions, DistSession};
use vcal_spmd::{CompiledKernel, DecompMap, FusedShape, SpmdPlan};

const N: i64 = 1024;
const PMAX: i64 = 8;
const STEPS: usize = 20;

fn back_clause(n: i64) -> Clause {
    Clause {
        iter: IndexSet::range(1, n - 2),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1("U", Fn1::identity()),
        rhs: Expr::Ref(ArrayRef::d1("V", Fn1::identity())),
    }
}

fn workload() -> (Clause, Clause, Env, DecompMap) {
    let sweep = stencil_clause(N);
    let back = back_clause(N);
    let mut env = Env::new();
    env.insert(
        "U",
        Array::from_fn(Bounds::range(0, N - 1), |i| {
            (i.scalar() % 17) as f64 * 0.25 - 2.0
        }),
    );
    env.insert("V", Array::zeros(Bounds::range(0, N - 1)));
    let mut dm = DecompMap::new();
    dm.insert("U".into(), Decomp1::block(PMAX, Bounds::range(0, N - 1)));
    dm.insert("V".into(), Decomp1::block(PMAX, Bounds::range(0, N - 1)));
    (sweep, back, env, dm)
}

fn dist_arrays(env: &Env, dm: &DecompMap) -> BTreeMap<String, DistArray> {
    let mut arrays = BTreeMap::new();
    for name in ["U", "V"] {
        arrays.insert(
            name.to_string(),
            DistArray::scatter_from(env.get(name).unwrap(), dm[name].clone()),
        );
    }
    arrays
}

// ---------------------------------------------------------------------
// per-element kernel throughput: interpreted vs compiled update loop
// ---------------------------------------------------------------------

/// The tree-interpreter inner loop: exactly what the legacy update phase
/// pays per element — `Env::eval_expr` recursion with a name lookup per
/// array reference.
fn interpreted_sweep(env: &Env, rhs: &Expr, out: &mut [f64]) {
    for i in 1..N - 1 {
        out[(i - 1) as usize] = env.eval_expr(rhs, &Ix::d1(i));
    }
}

/// The compiled bytecode loop: slot values gathered off the local slice,
/// one postfix evaluation per element — no recursion, no map lookups.
fn bytecode_sweep(u: &[f64], kernel: &CompiledKernel, stack: &mut Vec<f64>, out: &mut [f64]) {
    for i in 1..N - 1 {
        let vals = [u[(i - 1) as usize], u[(i + 1) as usize]];
        out[(i - 1) as usize] = kernel.eval(&[i], &vals, stack);
    }
}

/// The fused fast path the machines run for recognized shapes: the
/// stencil arithmetic applied straight off the slice.
fn fused_sweep(u: &[f64], shape: &FusedShape, out: &mut [f64]) {
    for i in 1..N - 1 {
        let vals = [u[(i - 1) as usize], u[(i + 1) as usize]];
        out[(i - 1) as usize] = shape.apply(&vals).expect("fused arity");
    }
}

fn per_second(elems: u64, secs: f64) -> f64 {
    elems as f64 / secs
}

// ---------------------------------------------------------------------
// steady-state step time: overlap on vs off, cold vs warm
// ---------------------------------------------------------------------

fn cold_loop(
    steps: usize,
    sweep: &Clause,
    back: &Clause,
    env: &Env,
    dm: &DecompMap,
    opts: DistOptions,
) -> f64 {
    let mut arrays = dist_arrays(env, dm);
    for _ in 0..steps {
        let plan = SpmdPlan::build(sweep, dm).unwrap();
        run_distributed(&plan, sweep, &mut arrays, opts).unwrap();
        let plan = SpmdPlan::build(back, dm).unwrap();
        run_distributed(&plan, back, &mut arrays, opts).unwrap();
    }
    arrays["U"].read_local(0, 1)
}

fn warm_loop(steps: usize, sweep: &Clause, back: &Clause, session: &mut DistSession) -> f64 {
    for _ in 0..steps {
        session.run(sweep).unwrap();
        session.run(back).unwrap();
    }
    session.gather("U").unwrap().get(&Ix::d1(1))
}

fn primed_session(env: &Env, dm: &DecompMap, opts: DistOptions) -> DistSession {
    let (sweep, back) = (stencil_clause(N), back_clause(N));
    let mut session = DistSession::new(env, dm.clone())
        .unwrap()
        .with_options(opts);
    session.run(&sweep).unwrap();
    session.run(&back).unwrap();
    session
}

/// Hand-timed warm per-step seconds over `reps × STEPS` timesteps.
fn measure_warm(session: &mut DistSession, sweep: &Clause, back: &Clause, reps: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        black_box(warm_loop(STEPS, sweep, back, session));
    }
    t0.elapsed().as_secs_f64() / (reps * STEPS) as f64
}

fn bench_kernel_overlap(c: &mut Criterion) {
    let (sweep, back, env, dm) = workload();
    let mut rows = Vec::new();

    // ---- kernel throughput ------------------------------------------
    let rhs = sweep.rhs.clone();
    let reads = [
        ("U".to_string(), Fn1::shift(-1)),
        ("U".to_string(), Fn1::shift(1)),
    ];
    let kernel = CompiledKernel::compile(&rhs, reads.len(), |r: &ArrayRef| {
        let g = r.map.as_fn1()?;
        reads.iter().position(|(a, h)| *a == r.array && h == g)
    })
    .expect("stencil compiles");
    assert!(
        matches!(kernel.fused, FusedShape::Stencil { .. }),
        "Jacobi must hit the fused stencil path"
    );
    let u: Vec<f64> = env.get("U").unwrap().data().to_vec();
    let mut out = vec![0.0f64; (N - 2) as usize];
    let mut stack = Vec::with_capacity(kernel.stack_capacity());

    let mut group = c.benchmark_group("kernel");
    group.bench_function("interpreted", |b| {
        b.iter(|| interpreted_sweep(black_box(&env), &rhs, &mut out))
    });
    group.bench_function("bytecode", |b| {
        b.iter(|| bytecode_sweep(black_box(&u), &kernel, &mut stack, &mut out))
    });
    group.bench_function("fused", |b| {
        b.iter(|| fused_sweep(black_box(&u), &kernel.fused, &mut out))
    });
    group.finish();

    // hand-timed per-element throughput for the JSON report
    let reps = 2_000u64;
    let elems = reps * (N - 2) as u64;
    let t0 = Instant::now();
    for _ in 0..reps {
        interpreted_sweep(black_box(&env), &rhs, &mut out);
    }
    let interp = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    for _ in 0..reps {
        bytecode_sweep(black_box(&u), &kernel, &mut stack, &mut out);
    }
    let bytec = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    for _ in 0..reps {
        fused_sweep(black_box(&u), &kernel.fused, &mut out);
    }
    let fused = t0.elapsed().as_secs_f64();
    black_box(&out);
    println!(
        "[kernel] per-element: interpreted {:.1} Melem/s, bytecode {:.1} Melem/s ({:.2}x), fused {:.1} Melem/s ({:.2}x)",
        per_second(elems, interp) / 1e6,
        per_second(elems, bytec) / 1e6,
        interp / bytec,
        per_second(elems, fused) / 1e6,
        interp / fused,
    );
    rows.push(ReportRow::new(
        "BENCH_kernel_overlap",
        format!("jacobi per-element seconds (interpreted -> compiled bytecode), n={N}"),
        interp / elems as f64,
        bytec / elems as f64,
    ));
    rows.push(ReportRow::new(
        "BENCH_kernel_overlap",
        format!("jacobi per-element seconds (interpreted -> fused stencil), n={N}"),
        interp / elems as f64,
        fused / elems as f64,
    ));

    // ---- steady-state step time: overlap on vs off ------------------
    let mut group = c.benchmark_group("overlap");
    for mode in [CommMode::Element, CommMode::Vectorized] {
        let label = match mode {
            CommMode::Element => "element",
            CommMode::Vectorized => "vectorized",
        };
        for overlap in [false, true] {
            let opts = DistOptions {
                mode,
                overlap,
                ..DistOptions::default()
            };
            group.bench_with_input(
                BenchmarkId::new(if overlap { "warm-on" } else { "warm-off" }, label),
                &opts,
                |b, &o| {
                    let mut session = primed_session(&env, &dm, o);
                    b.iter(|| black_box(warm_loop(STEPS, &sweep, &back, &mut session)))
                },
            );
        }

        // hand-timed rows: overlap off -> on, and cold -> warm (E14 shape)
        let reps = 5;
        let opts_off = DistOptions {
            mode,
            overlap: false,
            ..DistOptions::default()
        };
        let opts_on = DistOptions {
            mode,
            overlap: true,
            ..DistOptions::default()
        };
        let mut s_off = primed_session(&env, &dm, opts_off);
        let off_per_step = measure_warm(&mut s_off, &sweep, &back, reps);
        drop(s_off);
        let mut s_on = primed_session(&env, &dm, opts_on);
        let on_per_step = measure_warm(&mut s_on, &sweep, &back, reps);
        drop(s_on);
        let t0 = Instant::now();
        for _ in 0..reps {
            black_box(cold_loop(STEPS, &sweep, &back, &env, &dm, opts_on));
        }
        let cold_per_step = t0.elapsed().as_secs_f64() / (reps * STEPS) as f64;
        println!(
            "[{label}] per-timestep: cold {:.1} µs, warm overlap-off {:.1} µs, warm overlap-on {:.1} µs ({:.2}x off->on)",
            cold_per_step * 1e6,
            off_per_step * 1e6,
            on_per_step * 1e6,
            off_per_step / on_per_step
        );
        rows.push(ReportRow::new(
            "BENCH_kernel_overlap",
            format!("{label}: warm per-timestep seconds (overlap off -> on), n={N} pmax={PMAX}"),
            off_per_step,
            on_per_step,
        ));
        rows.push(ReportRow::new(
            "BENCH_kernel_overlap",
            format!("{label}: per-timestep seconds (cold -> warm), n={N} pmax={PMAX}"),
            cold_per_step,
            on_per_step,
        ));
    }
    group.finish();
    write_report("BENCH_kernel_overlap", &rows);
}

criterion_group!(benches, bench_kernel_overlap);
criterion_main!(benches);
