//! Modeled speedup curves — the classic evaluation figure of the paper's
//! era, regenerated from exact event counts priced by the analytic
//! performance model (`vcal_machine::PerfModel`): closed-form vs naive
//! plans on shared memory, and block vs scatter stencils on a
//! message-passing hypercube.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use vcal_bench::{copy_clause, decomps_ab, stencil_clause, write_report, ReportRow};
use vcal_core::func::Fn1;
use vcal_core::{Array, Bounds, Env};
use vcal_decomp::Decomp1;
use vcal_machine::{run_distributed, DistArray, DistOptions, PerfModel};
use vcal_spmd::{DecompMap, SpmdPlan};

fn speedup_tables(c: &mut Criterion) {
    let model = PerfModel::default();
    let mut rows = Vec::new();

    // ---- shared memory: naive vs closed form ----------------------------
    let n: i64 = 1 << 16;
    let clause = copy_clause(Fn1::identity(), Fn1::identity(), 0, n - 1);
    eprintln!("\nmodeled shared-memory speedup, copy of n = {n}:");
    eprintln!("{:>6} {:>14} {:>14}", "pmax", "closed-form", "naive-guard");
    for pmax in [1i64, 2, 4, 8, 16, 32, 64] {
        let dm = decomps_ab(
            Decomp1::block(pmax, Bounds::range(0, n - 1)),
            Decomp1::block(pmax, Bounds::range(0, n - 1)),
        );
        let s_opt = model.speedup_of_plan(&SpmdPlan::build(&clause, &dm).unwrap());
        let s_naive = model.speedup_of_plan(&SpmdPlan::build_naive(&clause, &dm).unwrap());
        eprintln!("{pmax:>6} {s_opt:>14.2} {s_naive:>14.2}");
        rows.push(ReportRow::new(
            "speedup_shared",
            format!("pmax={pmax}"),
            s_naive,
            s_opt,
        ));
    }
    eprintln!("(naive saturates near t_iter/t_test = 4; closed form tracks pmax)");

    // ---- distributed: block vs scatter stencil on a hypercube -----------
    let n: i64 = 1 << 12;
    let clause = stencil_clause(n);
    let mut env = Env::new();
    env.insert(
        "U",
        Array::from_fn(Bounds::range(0, n - 1), |i| i.scalar() as f64),
    );
    env.insert("V", Array::zeros(Bounds::range(0, n - 1)));
    eprintln!("\nmodeled distributed speedup, stencil of n = {n} (hypercube):");
    eprintln!("{:>6} {:>10} {:>10}", "pmax", "block", "scatter");
    for pmax in [2i64, 4, 8, 16] {
        let mut line = format!("{pmax:>6}");
        for dec in [
            Decomp1::block(pmax, Bounds::range(0, n - 1)),
            Decomp1::scatter(pmax, Bounds::range(0, n - 1)),
        ] {
            let mut dm = DecompMap::new();
            dm.insert("U".into(), dec.clone());
            dm.insert("V".into(), dec.clone());
            let plan = SpmdPlan::build(&clause, &dm).unwrap();
            let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
            for a in ["U", "V"] {
                arrays.insert(
                    a.into(),
                    DistArray::scatter_from(env.get(a).unwrap(), dm[a].clone()),
                );
            }
            let report =
                run_distributed(&plan, &clause, &mut arrays, DistOptions::default()).unwrap();
            let s = model.speedup_of_report(&report, (n - 2) as u64);
            line.push_str(&format!(" {s:>10.2}"));
        }
        eprintln!("{line}");
    }
    eprintln!("(scatter's per-element messages price it below 1: slower than sequential)");
    write_report("speedup", &rows);

    // keep Criterion busy with something tiny so the target registers
    c.bench_function("speedup/model_eval", |b| {
        let dm = decomps_ab(
            Decomp1::block(8, Bounds::range(0, (1 << 16) - 1)),
            Decomp1::block(8, Bounds::range(0, (1 << 16) - 1)),
        );
        let clause = copy_clause(Fn1::identity(), Fn1::identity(), 0, (1 << 16) - 1);
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        b.iter(|| black_box(PerfModel::default().speedup_of_plan(&plan)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(600))
        .warm_up_time(std::time::Duration::from_millis(150));
    targets = speedup_tables
}
criterion_main!(benches);
