//! E19 — resident service throughput: shared caches + persistent pool
//! vs per-request cold sessions.
//!
//! One `ServeHandle` per mode serves 8 concurrent client threads (two
//! tenants × two programs, block layouts). The *warm* service runs the
//! shared plan/DAG/tune cache hierarchy over one persistent worker
//! pool; the *cold* service (`ServeConfig::cold`) gives every request a
//! private session — empty caches, own pool — which is exactly what a
//! per-request `vcalc run` invocation pays. Both modes answer the same
//! requests; every response is verified bit-identical (`f64::to_bits`)
//! against the sequential oracle before its timing counts.
//!
//! Acceptance bars:
//! * with the pool as real worker OS processes over UDS, warm
//!   throughput ≥ 3× cold at 8 concurrent clients;
//! * steady-state warm requests never miss the plan cache, and hits
//!   never cross tenants (each tenant pays its own cold builds);
//! * every cold request rebuilds all of its plans (`plan_hits == 0`).
//!
//! The in-process pool configuration is reported alongside as the
//! lower-bound contrast (thread spawn + plan build is all a cold
//! in-proc request pays). Results land in
//! `target/vcal-reports/BENCH_serve.json` and `BENCH_serve.json` at the
//! repo root, and EXPERIMENTS.md E19.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::sync::Barrier;
use std::thread;
use std::time::{Duration, Instant};
use vcal_bench::{write_report, ReportRow};
use vcal_core::func::Fn1;
use vcal_core::{Array, ArrayRef, Bounds, Clause, Env, Expr, Guard, IndexSet, Ix, Ordering};
use vcal_decomp::Decomp1;
use vcal_machine::{
    DistOptions, ProgramStep, ServeClient, ServeConfig, ServeHandle, ServeRequest, ServiceStats,
    TransportKind,
};
use vcal_spmd::DecompMap;

const N: i64 = 256;
const PMAX: i64 = 4;
const CLIENTS: usize = 8;
const REQS_PER_TRIAL: usize = 6;
const TRIALS: usize = 4;

fn par(lhs: ArrayRef, iter: IndexSet, rhs: Expr) -> ProgramStep {
    ProgramStep::Clause(Clause {
        iter,
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs,
        rhs,
    })
}

/// Two distinct two-clause programs (stencil+copy over `U`/`T`,
/// axpy+couple over `V`/`W`), mirroring the serve stress suite.
fn program(prog_ix: usize) -> (Vec<ProgramStep>, Vec<&'static str>) {
    if prog_ix == 0 {
        let sweep = par(
            ArrayRef::d1("U", Fn1::identity()),
            IndexSet::range(1, N - 2),
            Expr::mul(
                Expr::add(
                    Expr::Ref(ArrayRef::d1("U", Fn1::shift(-1))),
                    Expr::Ref(ArrayRef::d1("U", Fn1::shift(1))),
                ),
                Expr::Lit(0.5),
            ),
        );
        let copy = par(
            ArrayRef::d1("T", Fn1::identity()),
            IndexSet::range(0, N - 1),
            Expr::mul(
                Expr::Ref(ArrayRef::d1("U", Fn1::identity())),
                Expr::Lit(2.0),
            ),
        );
        (vec![sweep, copy], vec!["U", "T"])
    } else {
        let axpy = par(
            ArrayRef::d1("V", Fn1::identity()),
            IndexSet::range(0, N - 1),
            Expr::add(
                Expr::Ref(ArrayRef::d1("V", Fn1::identity())),
                Expr::mul(
                    Expr::Ref(ArrayRef::d1("W", Fn1::identity())),
                    Expr::Lit(0.5),
                ),
            ),
        );
        let couple = par(
            ArrayRef::d1("W", Fn1::identity()),
            IndexSet::range(0, N - 1),
            Expr::add(
                Expr::mul(
                    Expr::Ref(ArrayRef::d1("W", Fn1::identity())),
                    Expr::Lit(2.0),
                ),
                Expr::Ref(ArrayRef::d1("V", Fn1::identity())),
            ),
        );
        (vec![axpy, couple], vec!["V", "W"])
    }
}

struct Shape {
    req: ServeRequest,
    want: BTreeMap<String, Vec<f64>>,
}

/// Build the request and its sequential oracle for one program.
fn shape(prog_ix: usize) -> Shape {
    let (steps, names) = program(prog_ix);
    let extent = Bounds::range(0, N - 1);
    let mut decomps = DecompMap::new();
    let mut globals = BTreeMap::new();
    let mut env = Env::new();
    for (k, name) in names.iter().enumerate() {
        decomps.insert((*name).to_string(), Decomp1::block(PMAX, extent));
        let salt = prog_ix as i64 * 7 + k as i64 * 3 + 1;
        let vals: Vec<f64> = (0..N)
            .map(|i| ((i * 13 + salt) % 31) as f64 - 15.0)
            .collect();
        env.insert(
            (*name).to_string(),
            Array::from_fn(extent, |i| vals[i.scalar() as usize]),
        );
        globals.insert((*name).to_string(), vals);
    }
    for step in &steps {
        if let ProgramStep::Clause(c) = step {
            env.exec_clause(c);
        }
    }
    let want = names
        .iter()
        .map(|name| {
            let a = env.get(name).unwrap();
            (
                (*name).to_string(),
                (0..N).map(|i| a.get(&Ix::d1(i))).collect(),
            )
        })
        .collect();
    let mut req = ServeRequest::new(steps, decomps, globals, 1);
    req.deadline = Some(Duration::from_secs(120));
    Shape { req, want }
}

fn verify(got: &BTreeMap<String, Vec<f64>>, want: &BTreeMap<String, Vec<f64>>, who: &str) {
    for (name, w) in want {
        let g = &got[name];
        for (i, (a, b)) in g.iter().zip(w).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{who}: `{name}`[{i}] differs from the sequential oracle"
            );
        }
    }
}

/// Drive both services with `CLIENTS` threads in interleaved trials
/// (cold batch, then warm batch, per trial — same host-load windows)
/// and return (best cold batch seconds, best warm batch seconds,
/// warm-up stats, timed warm stats, timed cold stats).
#[allow(clippy::type_complexity)]
fn drive(
    cold_addr: &str,
    warm_addr: &str,
) -> (
    f64,
    f64,
    Vec<ServiceStats>,
    Vec<ServiceStats>,
    Vec<ServiceStats>,
) {
    // workers + the timing thread
    let barrier = Barrier::new(CLIENTS + 1);
    thread::scope(|scope| {
        let joins: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let tenant = format!("tenant-{}", t % 2);
                    let sh = shape((t / 2) % 2);
                    let mut cold = ServeClient::connect(cold_addr, &tenant).expect("cold connect");
                    let mut warm = ServeClient::connect(warm_addr, &tenant).expect("warm connect");
                    // warm-up: outside the timed region, warms the
                    // shared tiers (and proves both services correct)
                    let mut warmup = Vec::new();
                    for c in [&mut cold, &mut warm] {
                        let r = c.request(&sh.req).expect("warm-up request");
                        verify(&r.globals, &sh.want, &format!("client {t} warm-up"));
                        warmup.push(r.service);
                    }
                    let mut cold_stats = Vec::new();
                    let mut warm_stats = Vec::new();
                    for _ in 0..TRIALS {
                        for is_warm in [false, true] {
                            barrier.wait(); // batch start
                            for r in 0..REQS_PER_TRIAL {
                                let c = if is_warm { &mut warm } else { &mut cold };
                                let resp = c.request(&sh.req).expect("timed request");
                                verify(&resp.globals, &sh.want, &format!("client {t} request {r}"));
                                if is_warm {
                                    warm_stats.push(resp.service);
                                } else {
                                    cold_stats.push(resp.service);
                                }
                            }
                            barrier.wait(); // batch end
                        }
                    }
                    (warmup, warm_stats, cold_stats)
                })
            })
            .collect();

        // the timing thread brackets each batch between the barriers
        let (mut best_cold, mut best_warm) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..TRIALS {
            for is_warm in [false, true] {
                barrier.wait();
                let t0 = Instant::now();
                barrier.wait();
                let secs = t0.elapsed().as_secs_f64();
                if is_warm {
                    best_warm = best_warm.min(secs);
                } else {
                    best_cold = best_cold.min(secs);
                }
            }
        }
        let (mut warmup, mut warm_stats, mut cold_stats) = (Vec::new(), Vec::new(), Vec::new());
        for j in joins {
            let (wu, ws, cs) = j.join().expect("client thread");
            warmup.extend(wu);
            warm_stats.extend(ws);
            cold_stats.extend(cs);
        }
        (best_cold, best_warm, warmup, warm_stats, cold_stats)
    })
}

fn bench_serve(_c: &mut Criterion) {
    std::env::set_var("VCAL_WORKER_BIN", env!("CARGO_BIN_EXE_vcal-bench-worker"));
    let mut rows = Vec::new();

    for (pool_name, pool) in [
        ("inproc", TransportKind::InProc),
        ("uds", TransportKind::Uds),
    ] {
        let mk = |cold: bool| ServeConfig {
            concurrency: CLIENTS,
            opts: DistOptions {
                transport: pool,
                ..ServeConfig::default().opts
            },
            cold,
            ..ServeConfig::default()
        };
        let cold_svc = ServeHandle::start(mk(true)).expect("cold service");
        let warm_svc = ServeHandle::start(mk(false)).expect("warm service");

        let (cold_secs, warm_secs, warmup, warm_stats, cold_stats) =
            drive(cold_svc.addr(), warm_svc.addr());

        let n_req = (CLIENTS * REQS_PER_TRIAL) as f64;
        let speedup = cold_secs / warm_secs;
        println!(
            "[pool={pool_name}] {CLIENTS} clients x {REQS_PER_TRIAL} req: cold {:.2} ms/req, \
             warm {:.2} ms/req ({speedup:.2}x)",
            cold_secs / n_req * 1e3,
            warm_secs / n_req * 1e3,
        );

        // steady-state warm requests never rebuild; cold always does
        assert!(
            warm_stats.iter().all(|s| s.plan_misses == 0),
            "pool={pool_name}: a steady-state warm request missed the plan cache"
        );
        assert!(
            cold_stats
                .iter()
                .all(|s| s.plan_hits == 0 && s.plan_misses == 2),
            "pool={pool_name}: a cold request must rebuild exactly its two plans"
        );
        // isolation: the warm-up round pays one build per (tenant,
        // clause) — hits can only have come from the owning tenant
        let warm_svc_misses: u64 = warmup
            .iter()
            .skip(1)
            .step_by(2) // warm-service entries interleave cold/warm per client
            .map(|s| s.plan_misses)
            .sum();
        assert!(
            warm_svc_misses >= 8,
            "pool={pool_name}: 2 tenants x 2 programs x 2 clauses must each build \
             their own plans, got {warm_svc_misses} warm-up misses"
        );

        if pool == TransportKind::Uds {
            assert!(
                speedup >= 3.0,
                "E19 bar: warm shared service must be >= 3x per-request cold \
                 sessions over a process pool, got {speedup:.2}x"
            );
        }
        rows.push(ReportRow::new(
            "BENCH_serve",
            format!(
                "{CLIENTS} concurrent clients, 2 tenants x 2 programs, pool={pool_name}: \
                 s/request, cold per-request sessions -> warm shared service \
                 (n={N} pmax={PMAX}, {} timed requests/batch)",
                CLIENTS * REQS_PER_TRIAL
            ),
            cold_secs / n_req,
            warm_secs / n_req,
        ));

        cold_svc.stop();
        warm_svc.stop();
    }

    write_report("BENCH_serve", &rows);
    // the acceptance numbers also live at the repo root, next to
    // EXPERIMENTS.md, so E19 is traceable without a build
    let local = std::path::Path::new("target")
        .join("vcal-reports")
        .join("BENCH_serve.json");
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serve.json");
    if let Err(e) = std::fs::copy(&local, &root) {
        eprintln!("warning: could not copy report to repo root: {e}");
    }
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
