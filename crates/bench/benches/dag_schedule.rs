//! E17 — program-level DAG scheduling of multi-clause programs.
//!
//! `k` *independent* Jacobi-style clauses (each sweeping its own
//! `U_j`/`V_j` pair) form a program whose dependence DAG is one wave of
//! width `k`. The strict-sequential schedule dispatches the clauses one
//! at a time — `k` pool round-trips per timestep, each paying its own
//! endpoint reset, scatter/commit cycle and end-of-run barrier. The DAG
//! schedule dispatches the whole wave at once: one reset, one
//! disassemble/commit/reassemble transaction, and every worker posts
//! all clauses' boundary sends before any clause's update phase blocks
//! on a receive.
//!
//! Measured: warm steady-state seconds per timestep (sessions primed
//! before timing, so plans and the DAG are cached) for
//! `ScheduleMode::Seq` vs `ScheduleMode::Dag` over a `k ∈ {4, 8}` ×
//! `mode ∈ {element, vectorized}` grid. Every configuration is verified
//! bit-identical between the two schedules before its timing is
//! reported. Acceptance bar: DAG ≥ 1.3× over sequential at `k ≥ 4`.
//!
//! A dependent-chain control (`k` clauses in one RAW chain, DAG
//! degenerates to one clause per wave) is reported alongside — the DAG
//! scheduler must not tax programs it cannot widen.
//!
//! Results land in `target/vcal-reports/BENCH_dag_schedule.json`, in
//! `BENCH_dag_schedule.json` at the repo root, and EXPERIMENTS.md E17.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;
use vcal_bench::{write_report, ReportRow};
use vcal_core::func::Fn1;
use vcal_core::{Array, ArrayRef, Bounds, Clause, Env, Expr, Guard, IndexSet, Ordering};
use vcal_decomp::Decomp1;
use vcal_machine::{CommMode, DistOptions, DistSession, ProgramStep, ScheduleMode, NULL_TRACER};
use vcal_spmd::DecompMap;

const N: i64 = 1024;
const PMAX: i64 = 4;

fn jacobi(src: &str, dst: &str, n: i64) -> ProgramStep {
    ProgramStep::Clause(Clause {
        iter: IndexSet::range(1, n - 2),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1(dst, Fn1::identity()),
        rhs: Expr::mul(
            Expr::add(
                Expr::Ref(ArrayRef::d1(src, Fn1::shift(-1))),
                Expr::Ref(ArrayRef::d1(src, Fn1::shift(1))),
            ),
            Expr::Lit(0.5),
        ),
    })
}

/// `k` independent sweeps: clause `j` reads `U<j>`, writes `V<j>` —
/// one DAG wave of width `k`.
fn independent_program(k: usize) -> (Vec<ProgramStep>, DecompMap, Env) {
    let mut steps = Vec::new();
    let mut dm = DecompMap::new();
    let mut env = Env::new();
    for j in 0..k {
        let (u, v) = (format!("U{j}"), format!("V{j}"));
        steps.push(jacobi(&u, &v, N));
        for name in [&u, &v] {
            dm.insert(name.clone(), Decomp1::block(PMAX, Bounds::range(0, N - 1)));
            env.insert(
                name.clone(),
                Array::from_fn(Bounds::range(0, N - 1), |i| {
                    (i.scalar() * 7 + j as i64) as f64 * 0.25 - 3.0
                }),
            );
        }
    }
    (steps, dm, env)
}

/// `k` chained sweeps: clause `j` reads clause `j-1`'s output — a pure
/// RAW chain, DAG width 1 (the control case).
fn chained_program(k: usize) -> (Vec<ProgramStep>, DecompMap, Env) {
    let mut steps = Vec::new();
    let mut dm = DecompMap::new();
    let mut env = Env::new();
    for j in 0..=k {
        let name = format!("W{j}");
        dm.insert(name.clone(), Decomp1::block(PMAX, Bounds::range(0, N - 1)));
        env.insert(
            name.clone(),
            Array::from_fn(Bounds::range(0, N - 1), |i| {
                (i.scalar() % 19) as f64 * 0.5 - 4.0
            }),
        );
    }
    for j in 0..k {
        steps.push(jacobi(&format!("W{j}"), &format!("W{}", j + 1), N));
    }
    (steps, dm, env)
}

fn state_bits(session: &mut DistSession) -> Vec<u64> {
    let state = session.gather_all();
    let mut bits = Vec::new();
    for name in state.names() {
        if let Some(a) = state.get(name) {
            bits.extend(a.data().iter().map(|v| v.to_bits()));
        }
    }
    bits
}

/// Warm steady-state seconds per timestep for both schedules, plus the
/// final state bits of each.
///
/// The two schedules are timed in *interleaved* batches (seq batch,
/// dag batch, repeat) and each takes the best of its `trials` batches:
/// the schedules differ only in fixed dispatch overhead, and on a
/// shared host interleaving makes both sides sample the same load
/// windows while the per-side *minimum* is the estimator least
/// polluted by scheduler noise.
#[allow(clippy::type_complexity)]
fn warm_pair(
    steps: &[ProgramStep],
    dm: &DecompMap,
    env: &Env,
    mode: CommMode,
    timed: usize,
    trials: usize,
) -> ((f64, Vec<u64>), (f64, Vec<u64>)) {
    let opts = DistOptions {
        mode,
        ..DistOptions::default()
    };
    let mut seq_sess = DistSession::new(env, dm.clone())
        .unwrap()
        .with_options(opts);
    let mut dag_sess = DistSession::new(env, dm.clone())
        .unwrap()
        .with_options(opts);
    // prime: caches fill, pool threads spawn
    seq_sess
        .run_program(steps, ScheduleMode::Seq, &NULL_TRACER)
        .unwrap();
    dag_sess
        .run_program(steps, ScheduleMode::Dag, &NULL_TRACER)
        .unwrap();
    let (mut seq_best, mut dag_best) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..trials {
        let t0 = Instant::now();
        for _ in 0..timed {
            seq_sess
                .run_program(steps, ScheduleMode::Seq, &NULL_TRACER)
                .unwrap();
        }
        seq_best = seq_best.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        for _ in 0..timed {
            dag_sess
                .run_program(steps, ScheduleMode::Dag, &NULL_TRACER)
                .unwrap();
        }
        dag_best = dag_best.min(t0.elapsed().as_secs_f64());
    }
    (
        (seq_best / timed as f64, state_bits(&mut seq_sess)),
        (dag_best / timed as f64, state_bits(&mut dag_sess)),
    )
}

fn bench_dag_schedule(_c: &mut Criterion) {
    let (timed, trials) = (30, 20);
    let mut rows = Vec::new();

    for k in [4usize, 8] {
        let (steps, dm, env) = independent_program(k);
        for mode in [CommMode::Element, CommMode::Vectorized] {
            let ((seq, seq_bits), (dag, dag_bits)) =
                warm_pair(&steps, &dm, &env, mode, timed, trials);
            assert_eq!(
                seq_bits, dag_bits,
                "k={k} {mode:?}: DAG schedule must be bit-identical to sequential"
            );
            println!(
                "[independent] k={k} {mode:?}: seq {:.3} ms/step, dag {:.3} ms/step ({:.2}x)",
                seq * 1e3,
                dag * 1e3,
                seq / dag
            );
            rows.push(ReportRow::new(
                "BENCH_dag_schedule",
                format!(
                    "k={k} independent jacobi clauses, warm s/step (seq -> dag), \
                     {mode:?} n={N} pmax={PMAX}"
                ),
                seq,
                dag,
            ));
        }
    }

    // control: a RAW chain the DAG cannot widen — each width-1 wave
    // routes through the plain solo-run path, so the only tax over
    // strict sequential is the per-step DAG signature/cache lookup
    let (steps, dm, env) = chained_program(4);
    let ((seq, seq_bits), (dag, dag_bits)) =
        warm_pair(&steps, &dm, &env, CommMode::Vectorized, timed, trials);
    assert_eq!(seq_bits, dag_bits, "chain: DAG must be bit-identical");
    println!(
        "[raw chain]   k=4 Vectorized: seq {:.3} ms/step, dag {:.3} ms/step ({:.2}x)",
        seq * 1e3,
        dag * 1e3,
        seq / dag
    );
    rows.push(ReportRow::new(
        "BENCH_dag_schedule",
        format!("k=4 RAW-chained clauses (control, width 1), warm s/step (seq -> dag), n={N}"),
        seq,
        dag,
    ));

    write_report("BENCH_dag_schedule", &rows);
    // the acceptance grid also lives at the repo root, next to
    // EXPERIMENTS.md, so E17's numbers are traceable without a build
    let local = std::path::Path::new("target")
        .join("vcal-reports")
        .join("BENCH_dag_schedule.json");
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_dag_schedule.json");
    if let Err(e) = std::fs::copy(&local, &root) {
        eprintln!("warning: could not copy report to repo root: {e}");
    }
}

criterion_group!(benches, bench_dag_schedule);
criterion_main!(benches);
