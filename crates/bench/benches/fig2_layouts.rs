//! E2 — **Figure 2**: regenerates the paper's decomposition diagrams
//! (block-scatter, block, scatter of 15 elements on 4 processors) and
//! times the `proc`/`local` address computations each layout needs — the
//! per-access cost a generated node program pays.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vcal_core::Bounds;
use vcal_decomp::{Decomp1, LayoutMap};

fn print_fig2() {
    eprintln!("\nFigure 2 — data decompositions (n = 15, pmax = 4):\n");
    for dec in [
        Decomp1::block_scatter(2, 4, Bounds::range(0, 14)),
        Decomp1::block(4, Bounds::range(0, 14)),
        Decomp1::scatter(4, Bounds::range(0, 14)),
    ] {
        eprintln!("{}\n", LayoutMap::of(&dec));
    }
}

fn bench_layouts(c: &mut Criterion) {
    print_fig2();
    let n: i64 = 1 << 18;
    let e = Bounds::range(0, n - 1);
    let layouts = vec![
        ("block", Decomp1::block(16, e)),
        ("scatter", Decomp1::scatter(16, e)),
        ("bs8", Decomp1::block_scatter(8, 16, e)),
    ];
    let mut group = c.benchmark_group("fig2/proc_local");
    for (name, dec) in &layouts {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut acc = 0i64;
                for i in (0..n).step_by(17) {
                    acc = acc
                        .wrapping_add(dec.proc_of(i))
                        .wrapping_add(dec.local_of(i));
                }
                black_box(acc)
            })
        });
    }
    group.finish();

    // inverse mapping throughput (gather/scatter address generation)
    let mut group = c.benchmark_group("fig2/global_of");
    for (name, dec) in &layouts {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut acc = 0i64;
                for p in 0..dec.pmax() {
                    let cnt = dec.local_count(p);
                    for l in (0..cnt).step_by(64) {
                        acc = acc.wrapping_add(dec.global_of(p, l));
                    }
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_layouts
}
criterion_main!(benches);
