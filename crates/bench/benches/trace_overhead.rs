//! E13 — observability overhead and perfmodel validation.
//!
//! Two questions about the `vcal-machine::obs` layer:
//!
//! 1. **Is the disabled path free?** The same 1024-element scatter
//!    `a·i+c` distributed run is measured under the [`NullTracer`]
//!    (the default every untraced caller gets) and under a live
//!    [`CollectingTracer`]. The NullTracer path must stay within noise
//!    of the pre-obs machine (< 2% is the PR's acceptance bar); the
//!    collecting path buys the full event log for the reported ratio.
//! 2. **Does the analytical model §4 predict reality?** One traced run
//!    is replay-checked and its per-phase wall-clock totals are printed
//!    next to the [`PerfModel`] prediction — the comparison recorded in
//!    EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use vcal_bench::{copy_clause, env_ab, write_report, ReportRow};
use vcal_core::func::Fn1;
use vcal_core::{Bounds, Clause, Env};
use vcal_decomp::Decomp1;
use vcal_machine::{
    replay_check, run_distributed_traced, CollectingTracer, CommMode, DistArray, DistOptions,
    PerfModel, Tracer, NULL_TRACER,
};
use vcal_spmd::{DecompMap, SpmdPlan};

const N: i64 = 1024;
const PMAX: i64 = 8;

/// The acceptance workload: scatter-decomposed `A[2i+1] := B[3i+2]`.
fn workload() -> (Clause, Env, DecompMap) {
    let clause = copy_clause(Fn1::affine(2, 1), Fn1::affine(3, 2), 0, (N - 2) / 2);
    let env = env_ab(N, 3 * N + 1);
    let mut dm = DecompMap::new();
    dm.insert("A".into(), Decomp1::scatter(PMAX, Bounds::range(0, N - 1)));
    dm.insert("B".into(), Decomp1::scatter(PMAX, Bounds::range(0, 3 * N)));
    (clause, env, dm)
}

fn arrays_for(env: &Env, dm: &DecompMap) -> BTreeMap<String, DistArray> {
    let mut arrays = BTreeMap::new();
    for name in ["A", "B"] {
        arrays.insert(
            name.to_string(),
            DistArray::scatter_from(env.get(name).unwrap(), dm[name].clone()),
        );
    }
    arrays
}

fn run_once(
    plan: &SpmdPlan,
    clause: &Clause,
    env: &Env,
    dm: &DecompMap,
    mode: CommMode,
    tracer: &dyn Tracer,
) -> f64 {
    let mut arrays = arrays_for(env, dm);
    let opts = DistOptions {
        mode,
        ..DistOptions::default()
    };
    run_distributed_traced(plan, clause, &mut arrays, opts, tracer).unwrap();
    arrays["A"].read_local(0, 0)
}

fn bench_trace_overhead(c: &mut Criterion) {
    let (clause, env, dm) = workload();
    let plan = SpmdPlan::build(&clause, &dm).unwrap();
    let mut rows = Vec::new();

    let mut group = c.benchmark_group("trace_overhead");
    for mode in [CommMode::Element, CommMode::Vectorized] {
        let label = match mode {
            CommMode::Element => "element",
            CommMode::Vectorized => "vectorized",
        };
        group.bench_with_input(BenchmarkId::new("null_tracer", label), &mode, |b, &m| {
            b.iter(|| black_box(run_once(&plan, &clause, &env, &dm, m, &NULL_TRACER)))
        });
        group.bench_with_input(
            BenchmarkId::new("collecting_tracer", label),
            &mode,
            |b, &m| {
                b.iter(|| {
                    let tracer = CollectingTracer::new();
                    let v = black_box(run_once(&plan, &clause, &env, &dm, m, &tracer));
                    black_box(tracer.finish());
                    v
                })
            },
        );

        // one traced run per mode: replay-check the log and line the
        // measured phase timings up against the §4 model prediction
        let tracer = CollectingTracer::new();
        let mut arrays = arrays_for(&env, &dm);
        let opts = DistOptions {
            mode,
            ..DistOptions::default()
        };
        let report = run_distributed_traced(&plan, &clause, &mut arrays, opts, &tracer).unwrap();
        let log = tracer.finish();
        let summary = replay_check(&log, &plan, mode, opts.retry).expect("replay must validate");
        let predicted = PerfModel::default().price_report(&report);
        println!(
            "[{label}] replay OK: {} det events, {} elems; perfmodel {:.1} units \
             (bottleneck node {})",
            summary.det_events, summary.send_elems, predicted.total, predicted.bottleneck
        );
        let bottlenecks = log.phase_bottlenecks();
        for (phase, total) in log.phase_totals() {
            println!(
                "[{label}]   {:<12} total {:>10.3?}  bottleneck {:>10.3?}",
                phase.name(),
                total,
                bottlenecks[&phase]
            );
        }
        rows.push(ReportRow::new(
            "trace_overhead",
            format!("{label}: planned send elems (replay-validated)"),
            summary.send_elems as f64,
            summary.recv_elems as f64,
        ));
    }
    group.finish();
    write_report("trace_overhead", &rows);
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
