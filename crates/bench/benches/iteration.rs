//! E14 — steady-state iteration: cold vs warm per-timestep cost.
//!
//! A Jacobi timestep loop (`V[i] := 0.5*(U[i-1]+U[i+1])` then
//! `U[i] := V[i]`, 1024 elements, 8 nodes) is the paper's canonical
//! "pay the enumeration once, replay it every sweep" workload (§4
//! amortization). Two executions of the *same* loop are measured:
//!
//! * **cold** — every timestep rebuilds the SPMD plan and spawns a fresh
//!   set of node threads ([`run_distributed`] per clause call);
//! * **warm** — a [`DistSession`] timestep loop: the plan is cached by
//!   `(clause signature, decomposition fingerprint)` and executed on the
//!   session's persistent worker pool, so steady-state steps pay neither
//!   planning nor thread spawning.
//!
//! The acceptance bar is a ≥ 2× warm-over-cold per-timestep speedup; the
//! measured ratio is written to `BENCH_iteration.json` and recorded in
//! EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;
use vcal_bench::{stencil_clause, write_report, ReportRow};
use vcal_core::func::Fn1;
use vcal_core::{Array, ArrayRef, Bounds, Clause, Env, Expr, Guard, IndexSet, Ordering};
use vcal_decomp::Decomp1;
use vcal_machine::{run_distributed, CommMode, DistArray, DistOptions, DistSession};
use vcal_spmd::{DecompMap, SpmdPlan};

const N: i64 = 1024;
const PMAX: i64 = 8;
const STEPS: usize = 20;

/// `U[i] := V[i]` — copies the sweep result back so the next timestep
/// reads it, closing the Jacobi iteration.
fn back_clause(n: i64) -> Clause {
    Clause {
        iter: IndexSet::range(1, n - 2),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1("U", Fn1::identity()),
        rhs: Expr::Ref(ArrayRef::d1("V", Fn1::identity())),
    }
}

fn workload() -> (Clause, Clause, Env, DecompMap) {
    let sweep = stencil_clause(N);
    let back = back_clause(N);
    let mut env = Env::new();
    env.insert(
        "U",
        Array::from_fn(Bounds::range(0, N - 1), |i| {
            (i.scalar() % 17) as f64 * 0.25 - 2.0
        }),
    );
    env.insert("V", Array::zeros(Bounds::range(0, N - 1)));
    let mut dm = DecompMap::new();
    dm.insert("U".into(), Decomp1::block(PMAX, Bounds::range(0, N - 1)));
    dm.insert("V".into(), Decomp1::block(PMAX, Bounds::range(0, N - 1)));
    (sweep, back, env, dm)
}

fn dist_arrays(env: &Env, dm: &DecompMap) -> BTreeMap<String, DistArray> {
    let mut arrays = BTreeMap::new();
    for name in ["U", "V"] {
        arrays.insert(
            name.to_string(),
            DistArray::scatter_from(env.get(name).unwrap(), dm[name].clone()),
        );
    }
    arrays
}

/// `steps` cold timesteps: replan + fresh thread set per clause call.
fn cold_loop(
    steps: usize,
    sweep: &Clause,
    back: &Clause,
    env: &Env,
    dm: &DecompMap,
    mode: CommMode,
) -> f64 {
    let mut arrays = dist_arrays(env, dm);
    let opts = DistOptions {
        mode,
        ..DistOptions::default()
    };
    for _ in 0..steps {
        let plan = SpmdPlan::build(sweep, dm).unwrap();
        run_distributed(&plan, sweep, &mut arrays, opts).unwrap();
        let plan = SpmdPlan::build(back, dm).unwrap();
        run_distributed(&plan, back, &mut arrays, opts).unwrap();
    }
    arrays["U"].read_local(0, 1)
}

/// `steps` warm timesteps on an already-primed session: plan-cache hits
/// on a persistent pool.
fn warm_loop(steps: usize, sweep: &Clause, back: &Clause, session: &mut DistSession) -> f64 {
    for _ in 0..steps {
        session.run(sweep).unwrap();
        session.run(back).unwrap();
    }
    session.gather("U").unwrap().get(&vcal_core::Ix::d1(1))
}

fn bench_iteration(c: &mut Criterion) {
    let (sweep, back, env, dm) = workload();
    let mut rows = Vec::new();

    let mut group = c.benchmark_group("iteration");
    for mode in [CommMode::Element, CommMode::Vectorized] {
        let label = match mode {
            CommMode::Element => "element",
            CommMode::Vectorized => "vectorized",
        };
        group.bench_with_input(BenchmarkId::new("cold", label), &mode, |b, &m| {
            b.iter(|| black_box(cold_loop(STEPS, &sweep, &back, &env, &dm, m)))
        });
        group.bench_with_input(BenchmarkId::new("warm", label), &mode, |b, &m| {
            let mut session =
                DistSession::new(&env, dm.clone())
                    .unwrap()
                    .with_options(DistOptions {
                        mode: m,
                        ..DistOptions::default()
                    });
            // prime: first run pays the cache miss and pool spawn once
            session.run(&sweep).unwrap();
            session.run(&back).unwrap();
            b.iter(|| black_box(warm_loop(STEPS, &sweep, &back, &mut session)))
        });

        // hand-timed per-timestep numbers for the JSON report (the
        // acceptance ratio): one warm session, generous step counts
        let reps = 5;
        let t0 = Instant::now();
        for _ in 0..reps {
            black_box(cold_loop(STEPS, &sweep, &back, &env, &dm, mode));
        }
        let cold_per_step = t0.elapsed().as_secs_f64() / (reps * STEPS) as f64;

        let mut session = DistSession::new(&env, dm.clone())
            .unwrap()
            .with_options(DistOptions {
                mode,
                ..DistOptions::default()
            });
        session.run(&sweep).unwrap();
        session.run(&back).unwrap();
        let t0 = Instant::now();
        for _ in 0..reps {
            black_box(warm_loop(STEPS, &sweep, &back, &mut session));
        }
        let warm_per_step = t0.elapsed().as_secs_f64() / (reps * STEPS) as f64;

        println!(
            "[{label}] per-timestep: cold {:.1} µs, warm {:.1} µs — {:.2}× speedup",
            cold_per_step * 1e6,
            warm_per_step * 1e6,
            cold_per_step / warm_per_step
        );
        rows.push(ReportRow::new(
            "BENCH_iteration",
            format!("{label}: per-timestep seconds (cold -> warm), n={N} pmax={PMAX}"),
            cold_per_step,
            warm_per_step,
        ));
    }
    group.finish();
    write_report("BENCH_iteration", &rows);
}

criterion_group!(benches, bench_iteration);
criterion_main!(benches);
