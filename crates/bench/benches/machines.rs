//! E7 — **Sections 2.9 / 2.10**: end-to-end execution of generated SPMD
//! programs on the simulated machines.
//!
//! * shared-memory machine: naive-guard plans vs closed-form plans across
//!   processor counts (the paper's core speedup claim, measured end to
//!   end);
//! * write-strategy ablation (DESIGN.md #5): direct disjoint writes vs
//!   gather-then-commit;
//! * distributed machine: communication volume of block vs scatter vs
//!   block-scatter on a stencil (printed, since message counts — not
//!   wall time — are the architecture-independent quantity).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use vcal_bench::{copy_clause, decomps_ab, env_ab, stencil_clause, write_report, ReportRow};
use vcal_core::func::Fn1;
use vcal_core::{Array, Bounds, Env};
use vcal_decomp::Decomp1;
use vcal_machine::{run_distributed, run_shared, DistArray, DistOptions, WriteStrategy};
use vcal_spmd::{CommStats, DecompMap, SpmdPlan};

fn bench_shared(c: &mut Criterion) {
    let n: i64 = 1 << 14;
    let clause = copy_clause(Fn1::identity(), Fn1::identity(), 0, n - 1);
    let env0 = env_ab(n, n);
    let mut rows = Vec::new();

    for pmax in [2i64, 4, 8] {
        let dm = decomps_ab(
            Decomp1::block(pmax, Bounds::range(0, n - 1)),
            Decomp1::scatter(pmax, Bounds::range(0, n - 1)),
        );
        let plan_opt = SpmdPlan::build(&clause, &dm).unwrap();
        let plan_naive = SpmdPlan::build_naive(&clause, &dm).unwrap();

        let mut group = c.benchmark_group(format!("machines/shared/p{pmax}"));
        group.bench_function(BenchmarkId::new("naive", pmax), |b| {
            b.iter(|| {
                let mut env = env0.clone();
                run_shared(&plan_naive, &clause, &mut env, WriteStrategy::Direct).unwrap();
                black_box(env.get("A").unwrap().data()[0])
            })
        });
        group.bench_function(BenchmarkId::new("closed_form", pmax), |b| {
            b.iter(|| {
                let mut env = env0.clone();
                run_shared(&plan_opt, &clause, &mut env, WriteStrategy::Direct).unwrap();
                black_box(env.get("A").unwrap().data()[0])
            })
        });
        group.finish();

        rows.push(ReportRow::new(
            "machines_shared_work",
            format!("pmax={pmax}"),
            plan_naive.total_work() as f64,
            plan_opt.total_work() as f64,
        ));
    }
    write_report("machines_shared_work", &rows);
}

fn bench_write_strategies(c: &mut Criterion) {
    let n: i64 = 1 << 14;
    let clause = copy_clause(Fn1::identity(), Fn1::identity(), 0, n - 1);
    let env0 = env_ab(n, n);
    let dm = decomps_ab(
        Decomp1::block(8, Bounds::range(0, n - 1)),
        Decomp1::block(8, Bounds::range(0, n - 1)),
    );
    let plan = SpmdPlan::build(&clause, &dm).unwrap();
    let mut group = c.benchmark_group("machines/write_strategy");
    for (name, strat) in [
        ("direct", WriteStrategy::Direct),
        ("gather_commit", WriteStrategy::GatherCommit),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut env = env0.clone();
                run_shared(&plan, &clause, &mut env, strat).unwrap();
                black_box(env.get("A").unwrap().data()[0])
            })
        });
    }
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let n: i64 = 1 << 12;
    let pmax = 8i64;
    let clause = stencil_clause(n);
    let mut rows = Vec::new();

    eprintln!("\nSection 2.10 — stencil communication by decomposition (n={n}, pmax={pmax}):");
    eprintln!(
        "{:<10} {:>10} {:>14}",
        "layout", "messages", "local updates"
    );

    let mut group = c.benchmark_group("machines/distributed_stencil");
    for (name, dec) in [
        ("block", Decomp1::block(pmax, Bounds::range(0, n - 1))),
        ("scatter", Decomp1::scatter(pmax, Bounds::range(0, n - 1))),
        (
            "bs16",
            Decomp1::block_scatter(16, pmax, Bounds::range(0, n - 1)),
        ),
    ] {
        let mut dm = DecompMap::new();
        dm.insert("U".into(), dec.clone());
        dm.insert("V".into(), dec.clone());
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let stats = CommStats::of_plan(&plan, &dm);
        eprintln!(
            "{:<10} {:>10} {:>14}",
            name, stats.sends, stats.local_updates
        );
        rows.push(ReportRow::new(
            "distributed_stencil_msgs",
            name.to_string(),
            stats.sends as f64 + stats.local_updates as f64,
            stats.local_updates as f64,
        ));

        let mut env = Env::new();
        env.insert(
            "U",
            Array::from_fn(Bounds::range(0, n - 1), |i| i.scalar() as f64),
        );
        env.insert("V", Array::zeros(Bounds::range(0, n - 1)));

        group.bench_function(name, |b| {
            b.iter(|| {
                let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
                for a in ["U", "V"] {
                    arrays.insert(
                        a.into(),
                        DistArray::scatter_from(env.get(a).unwrap(), dm[a].clone()),
                    );
                }
                let r =
                    run_distributed(&plan, &clause, &mut arrays, DistOptions::default()).unwrap();
                black_box(r.total().msgs_sent)
            })
        });
    }
    group.finish();
    write_report("distributed_stencil", &rows);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1500))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_shared, bench_write_strategies, bench_distributed
}
criterion_main!(benches);
