//! E3 — **Table I**: for every function row and decomposition column,
//! time one processor's iteration over its ownership set, naive
//! (run-time membership tests over the whole loop) vs closed form
//! (the paper's `gen_p(t)`).
//!
//! The paper's claim: naive costs `imax - imin + 1` tests per processor
//! while only `(imax - imin) / pmax` indices are actually processed, so
//! the closed forms should win by roughly a factor `pmax` — growing with
//! the processor count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vcal_bench::{table1_decomps, table1_functions, write_report, ReportRow};
use vcal_spmd::{naive_schedule, optimize, validate};

fn bench_table1(c: &mut Criterion) {
    let n: i64 = 1 << 16;
    let pmax = 16;
    let mut rows = Vec::new();

    for (fname, f, imin, imax) in table1_functions(n) {
        for (dname, dec) in table1_decomps(n, pmax) {
            // correctness gate before timing anything
            for p in [0, pmax / 2, pmax - 1] {
                let opt = optimize(&f, &dec, imin, imax, p);
                validate::check_optimized(&opt, &f, &dec, imin, imax, p)
                    .expect("schedule must be exact before it is timed");
            }

            let p = 1i64; // a representative non-zero processor
            let opt = optimize(&f, &dec, imin, imax, p);
            let naive = naive_schedule(&f, &dec, imin, imax, p);
            let mut group = c.benchmark_group(format!("table1/{fname}/{dname}"));
            group.bench_function(BenchmarkId::new("naive", pmax), |b| {
                b.iter(|| {
                    let mut acc = 0i64;
                    naive.for_each(|i| acc = acc.wrapping_add(i));
                    black_box(acc)
                })
            });
            group.bench_function(BenchmarkId::new(opt.kind.name(), pmax), |b| {
                b.iter(|| {
                    let mut acc = 0i64;
                    opt.schedule.for_each(|i| acc = acc.wrapping_add(i));
                    black_box(acc)
                })
            });
            group.finish();

            rows.push(ReportRow::new(
                "table1",
                format!("{fname}/{dname} via {}", opt.kind.name()),
                naive.work_estimate() as f64,
                opt.schedule.work_estimate() as f64,
            ));
        }
    }

    // static work summary (the paper's complexity argument, exactly)
    eprintln!("\nTable I static work (tests+visits) for p=1, n={n}, pmax={pmax}:");
    eprintln!(
        "{:<40} {:>10} {:>10} {:>8}",
        "cell", "naive", "closed", "ratio"
    );
    for r in &rows {
        eprintln!(
            "{:<40} {:>10} {:>10} {:>8.1}",
            r.label, r.baseline, r.optimized, r.speedup
        );
    }
    write_report("table1", &rows);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_table1
}
criterion_main!(benches);
