//! Worker-process shim for socket-backed benches.
//!
//! [`ProcPool`](vcal_machine) spawns `<bin> worker <addr> <node> <pmax>
//! [hb_ms]` for every node; in the test suites `<bin>` is the `vcalc`
//! driver, but `CARGO_BIN_EXE_vcalc` belongs to the root package and is
//! invisible to `vcal-bench` benches. This shim gives the bench package
//! its own spawnable worker so E19 can run the service's pool as real
//! OS processes (`VCAL_WORKER_BIN=$CARGO_BIN_EXE_vcal-bench-worker`).

use std::time::Duration;

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = || "usage: vcal-bench-worker worker <addr> <node> <pmax> [hb_ms]".to_string();
    if args.first().map(String::as_str) != Some("worker") || !(4..=5).contains(&args.len()) {
        return Err(usage());
    }
    let addr = &args[1];
    let node: i64 = args[2].parse().map_err(|_| usage())?;
    let pmax: usize = args[3].parse().map_err(|_| usage())?;
    let hb = match args.get(4) {
        Some(ms) => Duration::from_millis(ms.parse().map_err(|_| usage())?),
        None => Duration::ZERO,
    };
    if hb.is_zero() {
        vcal_machine::worker_entry(addr, node, pmax)
    } else {
        vcal_machine::worker_entry_with(addr, node, pmax, hb)
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
