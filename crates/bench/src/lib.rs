//! # vcal-bench — shared workload builders for the benchmark harness
//!
//! Each Criterion bench target under `benches/` regenerates one table or
//! figure of the paper (see DESIGN.md §3 for the experiment index). This
//! library holds the common workload constructors so every bench uses
//! identical inputs, plus a tiny report type serialized to JSON so
//! EXPERIMENTS.md numbers can be traced to a run.

#![warn(missing_docs)]

use vcal_core::func::Fn1;
use vcal_core::{Array, ArrayRef, Bounds, Clause, Env, Expr, Guard, IndexSet, Ordering};
use vcal_decomp::Decomp1;
use vcal_spmd::DecompMap;

/// The Table I function rows, as named constructors:
/// `(label, f, imin, imax)` with all accesses inside `[0, n-1]`.
pub fn table1_functions(n: i64) -> Vec<(&'static str, Fn1, i64, i64)> {
    vec![
        ("f=c", Fn1::Const(n / 2), 0, n - 1),
        ("f=i+c", Fn1::shift(3), 0, n - 4),
        ("f=a*i+c (pmax|a)", Fn1::affine(2, 1), 0, (n - 2) / 2),
        ("f=a*i+c (gcd)", Fn1::affine(3, 1), 0, (n - 2) / 3),
        ("f=monotonic", Fn1::i_plus_i_div(4), 0, (n - 1) * 4 / 5),
    ]
}

/// The decomposition columns of Table I for a given extent.
pub fn table1_decomps(n: i64, pmax: i64) -> Vec<(&'static str, Decomp1)> {
    let e = Bounds::range(0, n - 1);
    vec![
        ("block", Decomp1::block(pmax, e)),
        ("scatter", Decomp1::scatter(pmax, e)),
        ("bs4", Decomp1::block_scatter(4, pmax, e)),
    ]
}

/// A simple copy clause `A[f(i)] := B[g(i)] + 0.5` over `[imin, imax]`.
pub fn copy_clause(f: Fn1, g: Fn1, imin: i64, imax: i64) -> Clause {
    Clause {
        iter: IndexSet::range(imin, imax),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1("A", f),
        rhs: Expr::add(Expr::Ref(ArrayRef::d1("B", g)), Expr::Lit(0.5)),
    }
}

/// The 1-D Jacobi stencil clause over the interior of `[0, n-1]`:
/// `V[i] := 0.5 * (U[i-1] + U[i+1])`.
pub fn stencil_clause(n: i64) -> Clause {
    Clause {
        iter: IndexSet::range(1, n - 2),
        ordering: Ordering::Par,
        guard: Guard::Always,
        lhs: ArrayRef::d1("V", Fn1::identity()),
        rhs: Expr::mul(
            Expr::add(
                Expr::Ref(ArrayRef::d1("U", Fn1::shift(-1))),
                Expr::Ref(ArrayRef::d1("U", Fn1::shift(1))),
            ),
            Expr::Lit(0.5),
        ),
    }
}

/// An environment with arrays `A` (zeros, `[0, n-1]`) and `B` (ramp,
/// `[0, m-1]`).
pub fn env_ab(n: i64, m: i64) -> Env {
    let mut env = Env::new();
    env.insert("A", Array::zeros(Bounds::range(0, n - 1)));
    env.insert(
        "B",
        Array::from_fn(Bounds::range(0, m - 1), |i| i.scalar() as f64),
    );
    env
}

/// Decomposition map for the A/B copy clauses.
pub fn decomps_ab(dec_a: Decomp1, dec_b: Decomp1) -> DecompMap {
    let mut dm = DecompMap::new();
    dm.insert("A".into(), dec_a);
    dm.insert("B".into(), dec_b);
    dm
}

/// One measured row of an experiment, for the JSON report.
#[derive(Debug)]
pub struct ReportRow {
    /// Experiment id (e.g. "table1").
    pub experiment: &'static str,
    /// Row label.
    pub label: String,
    /// Work or time of the baseline.
    pub baseline: f64,
    /// Work or time of the optimized version.
    pub optimized: f64,
    /// `baseline / optimized`.
    pub speedup: f64,
}

impl ReportRow {
    /// Build a row computing the speedup.
    pub fn new(experiment: &'static str, label: String, baseline: f64, optimized: f64) -> Self {
        ReportRow {
            experiment,
            label,
            baseline,
            optimized,
            speedup: if optimized > 0.0 {
                baseline / optimized
            } else {
                f64::INFINITY
            },
        }
    }
}

/// Escape a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a float as JSON (infinities and NaN are not representable in
/// JSON numbers; emit them as strings so reports stay parseable).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        format!("\"{v}\"")
    }
}

/// Append rows to `target/vcal-reports/<experiment>.json` (hand-rolled
/// JSON — the offline build has no serde).
pub fn write_report(experiment: &str, rows: &[ReportRow]) {
    let dir = std::path::Path::new("target").join("vcal-reports");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{experiment}.json"));
    let mut json = String::from("[\n");
    for (k, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\n    \"experiment\": \"{}\",\n    \"label\": \"{}\",\n    \
             \"baseline\": {},\n    \"optimized\": {},\n    \"speedup\": {}\n  }}{}\n",
            json_escape(r.experiment),
            json_escape(&r.label),
            json_f64(r.baseline),
            json_f64(r.optimized),
            json_f64(r.speedup),
            if k + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push(']');
    let _ = std::fs::write(&path, json);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_in_bounds_accesses() {
        let n = 512;
        for (label, f, imin, imax) in table1_functions(n) {
            for i in imin..=imax {
                let v = f.eval(i);
                assert!((0..n).contains(&v), "{label}: f({i}) = {v} out of range");
            }
        }
    }

    #[test]
    fn report_rows_compute_speedup() {
        let r = ReportRow::new("x", "y".into(), 10.0, 2.0);
        assert_eq!(r.speedup, 5.0);
    }
}
