//! Number-theory substrate for the V-cal reproduction.
//!
//! The scatter-decomposition optimization of the paper (Theorem 3) reduces
//! the ownership test `proc(f(i)) = p` with `f(i) = a*i + c` to solving the
//! linear Diophantine equation `a*i - pmax*k = p - c`. This crate provides:
//!
//! * an **instrumented extended Euclid** ([`euclid::ext_gcd`]) that reports
//!   the number of division steps, so the cost claims of Section 4 of the
//!   paper (worst case `4.8*log10(N) - 0.32`, average `1.9504*log10(n)`)
//!   can be measured rather than assumed;
//! * a **linear Diophantine solver** ([`diophantine::solve`]) returning the
//!   particular solution and the full solution lattice;
//! * the **congruence solver** ([`diophantine::solve_congruence`]) used to
//!   build the closed-form generator `gen_p(t) = x_p + (pmax/gcd(a,pmax))*t`.
//!
//! Everything here is pure arithmetic on `i64`, with floor-semantics
//! division helpers (`div`/`%` in Rust truncate toward zero, while the
//! paper's `div`/`mod` on possibly-negative indices need floor semantics).

#![warn(missing_docs)]

pub mod crt;
pub mod diophantine;
pub mod euclid;

pub use crt::ResidueClass;
pub use diophantine::{solve, solve_congruence, Congruence, DioSolution};
pub use euclid::{ext_gcd, gcd, ExtGcd};

/// Floor division on `i64`.
#[inline]
pub fn div_floor(a: i64, b: i64) -> i64 {
    debug_assert!(b != 0, "div_floor by zero");
    let q = a / b;
    let r = a % b;
    if (r != 0) && ((r < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division on `i64`.
#[inline]
pub fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b != 0, "div_ceil by zero");
    let q = a / b;
    let r = a % b;
    if (r != 0) && ((r < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// Mathematical modulus: result always in `0..|b|` for `b > 0`.
#[inline]
pub fn mod_floor(a: i64, b: i64) -> i64 {
    debug_assert!(b != 0, "mod_floor by zero");
    let r = a % b;
    if (r != 0) && ((r < 0) != (b < 0)) {
        r + b
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn div_floor_matches_math() {
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_floor(7, -2), -4);
        assert_eq!(div_floor(-7, -2), 3);
        assert_eq!(div_floor(6, 3), 2);
        assert_eq!(div_floor(-6, 3), -2);
    }

    #[test]
    fn div_ceil_matches_math() {
        assert_eq!(div_ceil(7, 2), 4);
        assert_eq!(div_ceil(-7, 2), -3);
        assert_eq!(div_ceil(7, -2), -3);
        assert_eq!(div_ceil(-7, -2), 4);
        assert_eq!(div_ceil(6, 3), 2);
    }

    #[test]
    fn mod_floor_always_nonnegative_for_positive_modulus() {
        for a in -50..50 {
            for b in 1..10 {
                let m = mod_floor(a, b);
                assert!((0..b).contains(&m), "mod_floor({a},{b}) = {m}");
                assert_eq!(div_floor(a, b) * b + m, a);
            }
        }
    }
}
