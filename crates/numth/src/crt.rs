//! Chinese-remainder combination of arithmetic lattices.
//!
//! The closed-form schedules of Theorem 3 are residue classes
//! `x ≡ r (mod m)`. Communication-set algebra (`Reside_p ∩ Modify_q`,
//! `Reside_p \ Modify_p` of the Section 2.10 template) therefore reduces
//! to intersecting residue classes — the Chinese Remainder Theorem in its
//! non-coprime form.

use crate::euclid::ext_gcd;
use crate::mod_floor;

/// A residue class `{ x | x ≡ r (mod m) }`, `m > 0`, `0 <= r < m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResidueClass {
    /// The representative, normalized into `0..m`.
    pub r: i64,
    /// The modulus.
    pub m: i64,
}

impl ResidueClass {
    /// Normalize a representative into the class.
    pub fn new(r: i64, m: i64) -> Self {
        assert!(m > 0, "modulus must be positive");
        ResidueClass {
            r: mod_floor(r, m),
            m,
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, x: i64) -> bool {
        mod_floor(x, self.m) == self.r
    }

    /// Intersect two residue classes (non-coprime CRT).
    ///
    /// Returns `None` when the classes are disjoint
    /// (`gcd(m1, m2)` does not divide `r1 - r2`); otherwise the unique
    /// class modulo `lcm(m1, m2)`.
    pub fn intersect(&self, other: &ResidueClass) -> Option<ResidueClass> {
        let (r1, m1) = (self.r, self.m);
        let (r2, m2) = (other.r, other.m);
        let e = ext_gcd(m1, m2);
        let g = e.g;
        if (r2 - r1) % g != 0 {
            return None;
        }
        let lcm = m1 / g * m2;
        // x = r1 + m1 * t  with  r1 + m1*t ≡ r2 (mod m2)
        //  => t ≡ (r2 - r1)/g * inv(m1/g) (mod m2/g)
        // e.x satisfies m1*e.x + m2*e.y = g, so m1/g * e.x ≡ 1 (mod m2/g).
        let m2g = m2 / g;
        // all multiplications in i128 to avoid overflow for large moduli
        let k = ((r2 - r1) / g).rem_euclid(m2g) as i128;
        let inv = mod_floor(e.x, m2g) as i128;
        let t = (k * inv).rem_euclid(m2g as i128);
        let x = (r1 as i128 + (m1 as i128) * t).rem_euclid(lcm as i128);
        Some(ResidueClass {
            r: x as i64,
            m: lcm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(ResidueClass::new(-1, 5), ResidueClass { r: 4, m: 5 });
        assert_eq!(ResidueClass::new(12, 5), ResidueClass { r: 2, m: 5 });
    }

    #[test]
    fn intersect_matches_brute_force() {
        for m1 in 1..=12i64 {
            for m2 in 1..=12i64 {
                for r1 in 0..m1 {
                    for r2 in 0..m2 {
                        let a = ResidueClass::new(r1, m1);
                        let b = ResidueClass::new(r2, m2);
                        let brute: Vec<i64> = (0..(m1 * m2 * 2))
                            .filter(|&x| a.contains(x) && b.contains(x))
                            .collect();
                        match a.intersect(&b) {
                            Some(c) => {
                                let got: Vec<i64> =
                                    (0..(m1 * m2 * 2)).filter(|&x| c.contains(x)).collect();
                                assert_eq!(got, brute, "{a:?} ∩ {b:?}");
                                assert_eq!(c.m, m1 / vcal_gcd(m1, m2) * m2);
                            }
                            None => {
                                assert!(brute.is_empty(), "{a:?} ∩ {b:?} said disjoint");
                            }
                        }
                    }
                }
            }
        }
    }

    fn vcal_gcd(a: i64, b: i64) -> i64 {
        crate::gcd(a, b)
    }

    #[test]
    fn coprime_classic_example() {
        // x ≡ 2 (mod 3), x ≡ 3 (mod 5) -> x ≡ 8 (mod 15)
        let c = ResidueClass::new(2, 3)
            .intersect(&ResidueClass::new(3, 5))
            .unwrap();
        assert_eq!(c, ResidueClass { r: 8, m: 15 });
    }

    #[test]
    fn disjoint_non_coprime() {
        // x ≡ 0 (mod 4) and x ≡ 1 (mod 2) never meet
        assert!(ResidueClass::new(0, 4)
            .intersect(&ResidueClass::new(1, 2))
            .is_none());
    }

    #[test]
    fn large_moduli_no_overflow() {
        let a = ResidueClass::new(123_456, 1 << 30);
        let b = ResidueClass::new(789, 3 << 20);
        if let Some(c) = a.intersect(&b) {
            assert!(a.contains(c.r));
            assert!(b.contains(c.r));
        }
    }
}
