//! Linear Diophantine equations and congruences.
//!
//! Theorem 3 of the paper turns the scatter-ownership condition
//! `(a*i + c) mod pmax = p` into the equation `a*i - pmax*k = p - c` and
//! enumerates its solution lattice `i = x_p + (pmax / gcd(a, pmax)) * t`.
//! [`solve_congruence`] produces exactly that lattice.

use crate::euclid::ext_gcd;
use crate::{div_ceil, div_floor, mod_floor};

/// Solution of `a*x + b*y = c`: the particular point plus the lattice step.
///
/// The full solution set is `x = x0 + (b/g)*t`, `y = y0 - (a/g)*t` for all
/// integers `t` (with `g = gcd(a, b)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DioSolution {
    /// Particular solution for the first unknown.
    pub x0: i64,
    /// Particular solution for the second unknown.
    pub y0: i64,
    /// gcd of the coefficients.
    pub g: i64,
    /// Lattice period of `x`: `|b / g|`.
    pub x_period: i64,
    /// Lattice period of `y`: `|a / g|`.
    pub y_period: i64,
}

/// Solve `a*x + b*y = c` over the integers.
///
/// Returns `None` if no solution exists (i.e. `gcd(a,b)` does not divide
/// `c`, or `a == b == 0 != c`).
pub fn solve(a: i64, b: i64, c: i64) -> Option<DioSolution> {
    if a == 0 && b == 0 {
        return if c == 0 {
            Some(DioSolution {
                x0: 0,
                y0: 0,
                g: 0,
                x_period: 0,
                y_period: 0,
            })
        } else {
            None
        };
    }
    let e = ext_gcd(a, b);
    if c % e.g != 0 {
        return None;
    }
    let m = c / e.g;
    Some(DioSolution {
        x0: e.x * m,
        y0: e.y * m,
        g: e.g,
        x_period: (b / e.g).abs(),
        y_period: (a / e.g).abs(),
    })
}

/// The solution lattice of a linear congruence `a*x ≡ r (mod m)`, `m > 0`:
/// `x = base + period * t` for all integer `t`, with `base` normalized to
/// `0 <= base < period`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Congruence {
    /// Smallest non-negative solution.
    pub base: i64,
    /// Distance between consecutive solutions: `m / gcd(a, m)`.
    pub period: i64,
    /// `gcd(a, m)` — the number of residues `r` (mod `m`) that are solvable.
    pub g: i64,
}

impl Congruence {
    /// Smallest solution `x >= lo`.
    #[inline]
    pub fn first_at_or_above(&self, lo: i64) -> i64 {
        self.base + self.period * div_ceil(lo - self.base, self.period)
    }

    /// Largest solution `x <= hi`.
    #[inline]
    pub fn last_at_or_below(&self, hi: i64) -> i64 {
        self.base + self.period * div_floor(hi - self.base, self.period)
    }

    /// Number of solutions in the inclusive range `[lo, hi]`.
    pub fn count_in(&self, lo: i64, hi: i64) -> i64 {
        if lo > hi {
            return 0;
        }
        let first = self.first_at_or_above(lo);
        if first > hi {
            0
        } else {
            (hi - first) / self.period + 1
        }
    }

    /// Iterate the solutions within `[lo, hi]` in increasing order.
    pub fn iter_in(&self, lo: i64, hi: i64) -> impl Iterator<Item = i64> {
        let first = self.first_at_or_above(lo.min(hi.wrapping_add(0)));
        let period = self.period;
        let n = self.count_in(lo, hi);
        (0..n).map(move |t| first + period * t)
    }
}

/// Solve `a*x ≡ r (mod m)` with `m > 0`.
///
/// Returns `None` when `gcd(a, m)` does not divide `r` — in the paper's
/// terms: processor `p` with `p - c` not divisible by `gcd(a, pmax)`
/// executes no iterations at all.
pub fn solve_congruence(a: i64, r: i64, m: i64) -> Option<Congruence> {
    assert!(m > 0, "modulus must be positive, got {m}");
    let e = ext_gcd(a, m);
    let g = e.g;
    if g == 0 {
        // a == 0 (mod m==0 impossible here): 0*x ≡ r
        return if mod_floor(r, m) == 0 {
            Some(Congruence {
                base: 0,
                period: 1,
                g: m,
            })
        } else {
            None
        };
    }
    if mod_floor(r, g) != 0 {
        return None;
    }
    let period = m / g;
    // Particular solution: x = e.x * (r / g), reduced mod period.
    // Use i128 to avoid overflow when |e.x| and |r/g| are both large.
    let x0 = (e.x as i128) * ((r / g) as i128);
    let base = x0.rem_euclid(period as i128) as i64;
    Some(Congruence { base, period, g })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gcd;

    #[test]
    fn solve_finds_valid_particular_solutions() {
        for a in -15..=15i64 {
            for b in -15..=15i64 {
                for c in -30..=30i64 {
                    match solve(a, b, c) {
                        Some(s) => {
                            assert_eq!(a * s.x0 + b * s.y0, c, "({a},{b},{c}): {s:?}");
                            if s.g != 0 {
                                // lattice steps stay on the solution set
                                let x1 = s.x0 + s.x_period;
                                let y1 = s.y0
                                    - (a / s.g)
                                        * (s.x_period / (b / s.g).abs().max(1))
                                        * (b / s.g).signum();
                                // simpler check: x_period * a must be divisible by b-step relation;
                                // verify via direct membership when b != 0
                                if b != 0 {
                                    let rem = c - a * x1;
                                    assert_eq!(rem % b, 0, "lattice x step invalid ({a},{b},{c})");
                                }
                                let _ = y1;
                            }
                        }
                        None => {
                            let g = gcd(a, b);
                            if g != 0 {
                                assert_ne!(c % g, 0, "solver said None but solvable ({a},{b},{c})");
                            } else {
                                assert_ne!(c, 0);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn congruence_matches_brute_force() {
        for a in -10..=10i64 {
            for m in 1..=12i64 {
                for r in -5..=15i64 {
                    let brute: Vec<i64> =
                        (0..m).filter(|&x| mod_floor(a * x - r, m) == 0).collect();
                    match solve_congruence(a, r, m) {
                        Some(cg) => {
                            let got: Vec<i64> = cg.iter_in(0, m - 1).collect();
                            assert_eq!(got, brute, "a={a} r={r} m={m} cg={cg:?}");
                        }
                        None => assert!(brute.is_empty(), "a={a} r={r} m={m}"),
                    }
                }
            }
        }
    }

    #[test]
    fn congruence_range_helpers() {
        // 3x ≡ 1 (mod 7)  =>  x ≡ 5 (mod 7)
        let cg = solve_congruence(3, 1, 7).unwrap();
        assert_eq!(cg.base, 5);
        assert_eq!(cg.period, 7);
        assert_eq!(cg.first_at_or_above(6), 12);
        assert_eq!(cg.last_at_or_below(4), -2);
        assert_eq!(cg.count_in(0, 20), 3); // 5, 12, 19
        assert_eq!(cg.iter_in(0, 20).collect::<Vec<_>>(), vec![5, 12, 19]);
        assert_eq!(cg.count_in(10, 5), 0);
    }

    #[test]
    fn paper_theorem3_shape() {
        // f(i) = a*i + c under scatter on pmax processors: processor p owns
        // the lattice a*i ≡ p - c (mod pmax) with period pmax/gcd(a,pmax).
        let (a, c, pmax) = (6, 1, 4); // gcd(6,4)=2
        let mut covered = [0u32; 40];
        for p in 0..pmax {
            if let Some(cg) = solve_congruence(a, p - c, pmax) {
                assert_eq!(cg.period, pmax / 2);
                for i in cg.iter_in(0, 39) {
                    assert_eq!(mod_floor(a * i + c, pmax), p);
                    covered[i as usize] += 1;
                }
            }
        }
        // every iteration i is owned by exactly one processor
        assert!(covered.iter().all(|&n| n == 1));
    }
}
