//! Instrumented (extended) Euclid's algorithm.
//!
//! Section 4 of the paper argues that recomputing `gcd(a, pmax)` and the
//! Diophantine constant `C(a, pmax)` on every node at run time is cheap:
//! the number of division steps never exceeds `4.8*log10(N) - 0.32` and
//! averages `1.9504 * log10(n)` (Knuth, TAOCP vol. 2), and is smaller still
//! because the stride `a` of realistic subscripts is tiny (for `a <= 7` the
//! maximum is 5 steps, the average about 2.65). The step counters here make
//! those claims measurable (`benches/gcd_cost.rs`, `tests/gcd_steps.rs`).

/// Result of the extended Euclidean algorithm.
///
/// Invariant: `a * x + b * y == g` and `g == gcd(a, b) >= 0` (with
/// `gcd(0, 0) == 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtGcd {
    /// Greatest common divisor of the inputs (non-negative).
    pub g: i64,
    /// Bézout coefficient of the first input.
    pub x: i64,
    /// Bézout coefficient of the second input.
    pub y: i64,
    /// Number of division (remainder) steps the algorithm performed.
    pub steps: u32,
}

/// Plain gcd, non-negative result. `gcd(0, 0) == 0`.
#[inline]
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a as i64
}

/// Plain gcd that also reports the number of division steps taken.
#[inline]
pub fn gcd_steps(a: i64, b: i64) -> (i64, u32) {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    let mut steps = 0u32;
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
        steps += 1;
    }
    (a as i64, steps)
}

/// Extended Euclidean algorithm (iterative), instrumented with a step count.
///
/// Returns `ExtGcd { g, x, y, steps }` with `a*x + b*y == g == gcd(a, b)`.
/// Handles negative inputs; `g` is always non-negative.
pub fn ext_gcd(a: i64, b: i64) -> ExtGcd {
    // Work on the absolute values, fixing coefficient signs at the end.
    let (mut r0, mut r1) = (a.abs(), b.abs());
    let (mut x0, mut x1) = (1i64, 0i64);
    let (mut y0, mut y1) = (0i64, 1i64);
    let mut steps = 0u32;
    while r1 != 0 {
        let q = r0 / r1;
        (r0, r1) = (r1, r0 - q * r1);
        (x0, x1) = (x1, x0 - q * x1);
        (y0, y1) = (y1, y0 - q * y1);
        steps += 1;
    }
    let x = if a < 0 { -x0 } else { x0 };
    let y = if b < 0 { -y0 } else { y0 };
    ExtGcd { g: r0, x, y, steps }
}

/// The paper's constant `C(a, pmax)`: a particular solution in `i` of
/// `a*i - pmax*k = gcd(a, pmax)` (Section 3.2, Eq. (5)/(6)).
///
/// With it, the particular solution for any right-hand side
/// `delta_p * gcd(a, pmax)` is simply `x_p = delta_p * C(a, pmax)`.
/// Returns `None` when `a == 0 && pmax == 0` (no gcd).
pub fn c_constant(a: i64, pmax: i64) -> Option<i64> {
    if a == 0 && pmax == 0 {
        return None;
    }
    // a*x + pmax*y = g  =>  a*x - pmax*(-y) = g, so i = x works for the
    // paper's form a*i - pmax*k = g (with k = -y).
    let e = ext_gcd(a, pmax);
    Some(e.x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(18, 12), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(12, -18), 6);
        assert_eq!(gcd(-12, -18), 6);
        assert_eq!(gcd(7, 13), 1);
    }

    #[test]
    fn ext_gcd_bezout_identity_small_exhaustive() {
        for a in -40..=40i64 {
            for b in -40..=40i64 {
                let e = ext_gcd(a, b);
                assert_eq!(e.g, gcd(a, b), "gcd mismatch for ({a},{b})");
                assert_eq!(
                    a * e.x + b * e.y,
                    e.g,
                    "Bézout identity failed for ({a},{b}): {e:?}"
                );
            }
        }
    }

    #[test]
    fn ext_gcd_steps_match_plain_gcd_steps() {
        for a in 1..=200i64 {
            for b in 1..=50i64 {
                let e = ext_gcd(a, b);
                let (_, s) = gcd_steps(a, b);
                assert_eq!(e.steps, s, "step count differs for ({a},{b})");
            }
        }
    }

    #[test]
    fn knuth_worst_case_bound_holds_for_small_strides() {
        // Paper, Section 4: for a <= 7 the maximal number of steps is 5.
        let mut max_steps = 0;
        for a in 1..=7i64 {
            for pmax in 1..=4096i64 {
                // The paper runs gcd(a, pmax) on each node; first step
                // reduces the problem to arguments <= a.
                let (_, s) = gcd_steps(a, pmax);
                max_steps = max_steps.max(s);
            }
        }
        assert!(
            max_steps <= 5,
            "observed {max_steps} steps, paper claims <= 5"
        );
    }

    #[test]
    fn fibonacci_pairs_are_worst_case() {
        // Consecutive Fibonacci numbers maximize step count (Lamé).
        let (mut f0, mut f1) = (1i64, 1i64);
        for _ in 0..40 {
            (f0, f1) = (f1, f0 + f1);
        }
        let (_, s) = gcd_steps(f0, f1);
        let bound = 4.8 * (f1 as f64).log10() - 0.32;
        assert!(
            (s as f64) <= bound + 1.0,
            "steps {s} exceed Knuth bound {bound:.2}"
        );
    }

    #[test]
    fn c_constant_solves_paper_equation() {
        for a in 1..=12i64 {
            for pmax in 1..=32i64 {
                let g = gcd(a, pmax);
                let c = c_constant(a, pmax).unwrap();
                // a * C - pmax * k = g must have an integer k.
                let lhs = a * c - g;
                assert_eq!(lhs.rem_euclid(pmax), 0, "C(a={a},pmax={pmax}) wrong");
            }
        }
    }
}
