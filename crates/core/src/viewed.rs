//! Views applied to *data* (paper Section 2.4: "views on data sets,
//! expressions, and clauses").
//!
//! So far views act on index sets; in reality "a data value of a certain
//! type is related to each index value". A [`ViewedArray`] is a lazy
//! selection of an [`Array`] through a [`View`]: reading result index
//! `j` fetches source index `ip(j)` — gather semantics, composable
//! without copying, materializable when a dense array is needed. This is
//! the Booster-style surface the paper's front-end citations describe:
//! rotations, slices, strides and transposes are views, and view
//! composition (Definition 5) contracts chains of them into a single
//! index function.

use crate::env::Array;
use crate::func::Fn1;
use crate::ix::Ix;
use crate::map::IndexMap;
use crate::set::IndexSet;
use crate::view::View;

/// A lazy, composable selection of an array through a view.
#[derive(Debug, Clone)]
pub struct ViewedArray<'a> {
    source: &'a Array,
    view: View,
    index_set: IndexSet,
}

impl<'a> ViewedArray<'a> {
    /// Apply a view to an array. The result's index set is the view
    /// application `J = (b_K & dp(b_I), (P_I ∘ ip) ∧ P_K)`.
    pub fn new(source: &'a Array, view: View) -> ViewedArray<'a> {
        let index_set = view.apply(&IndexSet::full(source.bounds()));
        ViewedArray {
            source,
            view,
            index_set,
        }
    }

    /// The identity view of an array.
    pub fn of(source: &'a Array) -> ViewedArray<'a> {
        let d = source.bounds().dims();
        ViewedArray::new(source, View::from_map(IndexMap::identity(d)))
    }

    /// 1-D convenience: view through a single index function.
    pub fn through(source: &'a Array, f: Fn1) -> ViewedArray<'a> {
        ViewedArray::new(source, View::from_map(IndexMap::d1(f)))
    }

    /// The result index set.
    pub fn index_set(&self) -> &IndexSet {
        &self.index_set
    }

    /// Read the element at result index `j` (gathers `source[ip(j)]`).
    /// Panics if `j` is not in the result index set.
    pub fn get(&self, j: &Ix) -> f64 {
        assert!(self.index_set.contains(j), "index {j} outside the view");
        self.source.get(&self.view.ip.eval(j))
    }

    /// Compose with a further (outer) view — Definition 5 — without
    /// touching the data: the index functions contract.
    pub fn then(self, outer: View) -> ViewedArray<'a> {
        let composed = outer.compose(&self.view);
        ViewedArray::new(self.source, composed)
    }

    /// 1-D convenience for [`ViewedArray::then`].
    pub fn then_fn(self, f: Fn1) -> ViewedArray<'a> {
        self.then(View::from_map(IndexMap::d1(f)))
    }

    /// Materialize the view into a dense array over the result set's
    /// bounding box (indices outside the predicate read as 0).
    pub fn materialize(&self) -> Array {
        let b = self.index_set.bounds;
        Array::from_fn(b, |j| {
            if self.index_set.contains(j) {
                self.source.get(&self.view.ip.eval(j))
            } else {
                0.0
            }
        })
    }

    /// Number of selectable elements.
    pub fn len(&self) -> u64 {
        self.index_set.count()
    }

    /// Whether the view selects nothing.
    pub fn is_empty(&self) -> bool {
        self.index_set.is_empty()
    }
}

/// Convenience constructors for the classic Booster-style views.
pub mod views {
    use super::*;
    use crate::bounds::Bounds;
    use crate::pred::Pred;
    use crate::view::DpMap;

    /// Rotate a 1-D array by `s` positions over period `z`
    /// (`result[j] = source[(j + s) mod z]`).
    pub fn rotate(s: i64, z: i64) -> View {
        View::from_map(IndexMap::d1(Fn1::rotate(s, z)))
    }

    /// The 1-D slice `lo..=hi` re-based at 0
    /// (`result[j] = source[lo + j]`, `j in 0..=hi-lo`).
    pub fn slice(lo: i64, hi: i64) -> View {
        View {
            k: IndexSet::full(Bounds::range(0, hi - lo)),
            dp: DpMap::PerDim(vec![Fn1::shift(-lo)]),
            ip: IndexMap::d1(Fn1::shift(lo)),
        }
    }

    /// Every `step`-th element starting at `offset`
    /// (`result[j] = source[offset + step*j]`).
    pub fn stride(offset: i64, step: i64, count: i64) -> View {
        assert!(step >= 1);
        View {
            k: IndexSet::full(Bounds::range(0, count - 1)),
            // dp maps source bounds to valid result indices:
            // j valid iff offset + step*j within the source range
            dp: DpMap::PerDim(vec![Fn1::Div {
                inner: Box::new(Fn1::shift(-offset)),
                q: step,
            }]),
            ip: IndexMap::d1(Fn1::affine(step, offset)),
        }
    }

    /// 2-D transpose (`result[i, j] = source[j, i]`).
    pub fn transpose() -> View {
        View::from_map(IndexMap::permutation(2, &[1, 0]))
    }

    /// The even-indexed elements (`result[j] = source[2j]`) — half of a
    /// perfect shuffle.
    pub fn evens(count: i64) -> View {
        stride(0, 2, count)
    }

    /// Keep only indices satisfying `pred` (a filtering view; identity
    /// index function).
    pub fn filtered(pred: Pred, d: usize) -> View {
        View {
            k: IndexSet::new(
                Bounds::new(
                    Ix::new(&vec![i64::MIN / 4; d]),
                    Ix::new(&vec![i64::MAX / 4; d]),
                ),
                pred,
            ),
            dp: DpMap::identity(d),
            ip: IndexMap::identity(d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::views;
    use super::*;
    use crate::bounds::Bounds;
    use crate::pred::{CmpOp, Pred};

    fn ramp(n: i64) -> Array {
        Array::from_fn(Bounds::range(0, n - 1), |i| i.scalar() as f64)
    }

    #[test]
    fn rotate_view_gathers() {
        let a = ramp(20);
        let v = ViewedArray::new(&a, views::rotate(6, 20));
        assert_eq!(v.get(&Ix::d1(0)), 6.0);
        assert_eq!(v.get(&Ix::d1(13)), 19.0);
        assert_eq!(v.get(&Ix::d1(14)), 0.0); // wraps
        let m = v.materialize();
        assert_eq!(m.get(&Ix::d1(19)), 5.0);
    }

    #[test]
    fn slice_rebases() {
        let a = ramp(10);
        let v = ViewedArray::new(&a, views::slice(3, 7));
        assert_eq!(v.len(), 5);
        assert_eq!(v.get(&Ix::d1(0)), 3.0);
        assert_eq!(v.get(&Ix::d1(4)), 7.0);
    }

    #[test]
    fn stride_selects() {
        let a = ramp(10);
        let v = ViewedArray::new(&a, views::stride(1, 3, 3));
        let m = v.materialize();
        assert_eq!(m.data(), &[1.0, 4.0, 7.0]);
    }

    #[test]
    fn composition_contracts() {
        // slice 2..=9 of a rotate-by-3: one composed index function
        let a = ramp(12);
        let v = ViewedArray::new(&a, views::rotate(3, 12)).then(views::slice(2, 9));
        for j in 0..=7 {
            assert_eq!(v.get(&Ix::d1(j)), ((j + 2 + 3) % 12) as f64, "j={j}");
        }
        // and the chain of evens ∘ evens = stride 4
        let e = ViewedArray::new(&a, views::evens(6)).then(views::evens(3));
        assert_eq!(e.materialize().data(), &[0.0, 4.0, 8.0]);
    }

    #[test]
    fn transpose_2d() {
        let a = Array::from_fn(Bounds::range2(0, 2, 0, 3), |i| (i[0] * 10 + i[1]) as f64);
        let t = ViewedArray::new(&a, views::transpose());
        assert_eq!(t.get(&Ix::d2(3, 2)), 23.0);
        assert_eq!(t.get(&Ix::d2(0, 1)), 10.0);
    }

    #[test]
    fn filtered_view() {
        let a = ramp(10);
        let v = ViewedArray::new(
            &a,
            views::filtered(
                Pred::Cmp {
                    dim: 0,
                    f: Fn1::identity(),
                    op: CmpOp::Ge,
                    rhs: 6,
                },
                1,
            ),
        );
        assert_eq!(v.len(), 4);
        assert!(v.index_set().contains(&Ix::d1(7)));
        assert!(!v.index_set().contains(&Ix::d1(5)));
    }

    #[test]
    #[should_panic(expected = "outside the view")]
    fn out_of_view_read_panics() {
        let a = ramp(10);
        let v = ViewedArray::new(&a, views::slice(3, 7));
        let _ = v.get(&Ix::d1(9));
    }

    #[test]
    fn identity_of() {
        let a = ramp(5);
        let v = ViewedArray::of(&a);
        assert_eq!(v.len(), 5);
        assert_eq!(v.materialize().max_abs_diff(&a), 0.0);
        assert!(!v.is_empty());
    }
}
