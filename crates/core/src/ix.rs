//! Multi-dimensional index points.
//!
//! The paper's index sets are finite sets of `d`-tuples over the integers
//! (Definition 1). [`Ix`] is a small inline `d`-tuple (`d <= MAX_DIMS`),
//! `Copy` so that hot enumeration loops never allocate.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Maximum supported dimensionality of an index set.
///
/// The paper's derivations are carried out in one dimension "for reasons of
/// clarity"; real decompositions rarely exceed 3-D data + 1 spare.
pub const MAX_DIMS: usize = 4;

/// A `d`-dimensional integer index point, stored inline.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ix {
    len: u8,
    data: [i64; MAX_DIMS],
}

impl Ix {
    /// Create an index from a slice of coordinates. Panics if
    /// `coords.len() > MAX_DIMS` or is zero.
    #[inline]
    pub fn new(coords: &[i64]) -> Self {
        assert!(
            !coords.is_empty() && coords.len() <= MAX_DIMS,
            "index dimensionality must be 1..={MAX_DIMS}, got {}",
            coords.len()
        );
        let mut data = [0i64; MAX_DIMS];
        data[..coords.len()].copy_from_slice(coords);
        Ix {
            len: coords.len() as u8,
            data,
        }
    }

    /// One-dimensional index.
    #[inline]
    pub fn d1(i: i64) -> Self {
        Ix {
            len: 1,
            data: [i, 0, 0, 0],
        }
    }

    /// Two-dimensional index.
    #[inline]
    pub fn d2(i: i64, j: i64) -> Self {
        Ix {
            len: 2,
            data: [i, j, 0, 0],
        }
    }

    /// Three-dimensional index.
    #[inline]
    pub fn d3(i: i64, j: i64, k: i64) -> Self {
        Ix {
            len: 3,
            data: [i, j, k, 0],
        }
    }

    /// Dimensionality of the index.
    #[inline]
    pub fn dims(&self) -> usize {
        self.len as usize
    }

    /// Coordinates as a slice.
    #[inline]
    pub fn coords(&self) -> &[i64] {
        &self.data[..self.len as usize]
    }

    /// The single coordinate of a 1-D index. Panics in debug if `d != 1`.
    #[inline]
    pub fn scalar(&self) -> i64 {
        debug_assert_eq!(self.len, 1, "scalar() on {}-D index", self.len);
        self.data[0]
    }

    /// Append a coordinate, producing a `d+1`-dimensional index.
    /// Used by decompositions to form `(proc, local)` machine indices.
    #[inline]
    pub fn prepend(&self, head: i64) -> Self {
        assert!(
            (self.len as usize) < MAX_DIMS,
            "index dimensionality overflow"
        );
        let mut data = [0i64; MAX_DIMS];
        data[0] = head;
        data[1..=self.len as usize].copy_from_slice(self.coords());
        Ix {
            len: self.len + 1,
            data,
        }
    }

    /// Drop the first coordinate (inverse of [`Ix::prepend`]).
    #[inline]
    pub fn tail(&self) -> Self {
        assert!(self.len >= 2, "tail() needs dims >= 2");
        let mut data = [0i64; MAX_DIMS];
        data[..(self.len - 1) as usize].copy_from_slice(&self.coords()[1..]);
        Ix {
            len: self.len - 1,
            data,
        }
    }

    /// Element-wise addition. Panics in debug on dimension mismatch.
    #[inline]
    pub fn add(&self, other: &Ix) -> Ix {
        debug_assert_eq!(self.len, other.len);
        let mut out = *self;
        for d in 0..self.dims() {
            out.data[d] += other.data[d];
        }
        out
    }

    /// Map each coordinate through `f`.
    #[inline]
    pub fn map(&self, mut f: impl FnMut(i64) -> i64) -> Ix {
        let mut out = *self;
        for d in 0..self.dims() {
            out.data[d] = f(out.data[d]);
        }
        out
    }
}

impl Index<usize> for Ix {
    type Output = i64;
    #[inline]
    fn index(&self, d: usize) -> &i64 {
        debug_assert!(d < self.dims());
        &self.data[d]
    }
}

impl IndexMut<usize> for Ix {
    #[inline]
    fn index_mut(&mut self, d: usize) -> &mut i64 {
        debug_assert!(d < self.dims());
        &mut self.data[d]
    }
}

impl From<i64> for Ix {
    #[inline]
    fn from(i: i64) -> Self {
        Ix::d1(i)
    }
}

impl From<(i64, i64)> for Ix {
    #[inline]
    fn from((i, j): (i64, i64)) -> Self {
        Ix::d2(i, j)
    }
}

impl From<(i64, i64, i64)> for Ix {
    #[inline]
    fn from((i, j, k): (i64, i64, i64)) -> Self {
        Ix::d3(i, j, k)
    }
}

impl fmt::Debug for Ix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ix{:?}", self.coords())
    }
}

impl fmt::Display for Ix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dims() == 1 {
            write!(f, "{}", self.data[0])
        } else {
            write!(f, "(")?;
            for (n, c) in self.coords().iter().enumerate() {
                if n > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, ")")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let i = Ix::new(&[2, 3]);
        assert_eq!(i.dims(), 2);
        assert_eq!(i[0], 2);
        assert_eq!(i[1], 3);
        assert_eq!(i.coords(), &[2, 3]);
        assert_eq!(Ix::d1(7).scalar(), 7);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn zero_dims_rejected() {
        let _ = Ix::new(&[]);
    }

    #[test]
    fn prepend_and_tail_roundtrip() {
        let i = Ix::d2(4, 5);
        let m = i.prepend(1);
        assert_eq!(m, Ix::d3(1, 4, 5));
        assert_eq!(m.tail(), i);
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Ix::d2(1, 9) < Ix::d2(2, 0));
        assert!(Ix::d2(1, 1) < Ix::d2(1, 2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ix::d1(3).to_string(), "3");
        assert_eq!(Ix::d2(2, 4).to_string(), "(2,4)");
    }

    #[test]
    fn map_and_add() {
        let i = Ix::d2(1, 2);
        assert_eq!(i.map(|x| x * 10), Ix::d2(10, 20));
        assert_eq!(i.add(&Ix::d2(3, 4)), Ix::d2(4, 6));
    }
}
