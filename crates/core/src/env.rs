//! Array environments and the sequential *reference* executor.
//!
//! Every machine in `vcal-machine` (shared-memory threads, simulated
//! distributed nodes) must produce exactly the state this executor
//! produces; the integration tests enforce that equivalence.

use crate::bounds::Bounds;
use crate::clause::{Clause, Expr, Guard, Ordering};
use crate::ix::Ix;
use std::collections::BTreeMap;
use std::fmt;

/// A dense multi-dimensional array of `f64` over an inclusive [`Bounds`]
/// box, stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Array {
    bounds: Bounds,
    data: Vec<f64>,
}

impl Array {
    /// Zero-filled array over `bounds`.
    pub fn zeros(bounds: Bounds) -> Self {
        Array {
            bounds,
            data: vec![0.0; bounds.count() as usize],
        }
    }

    /// Array filled by `f(index)`.
    pub fn from_fn(bounds: Bounds, mut f: impl FnMut(&Ix) -> f64) -> Self {
        let data = bounds.iter().map(|i| f(&i)).collect();
        Array { bounds, data }
    }

    /// 1-D array from a slice, indexed from 0.
    pub fn from_slice(values: &[f64]) -> Self {
        Array {
            bounds: Bounds::range(0, values.len() as i64 - 1),
            data: values.to_vec(),
        }
    }

    /// The index box of the array.
    pub fn bounds(&self) -> Bounds {
        self.bounds
    }

    /// Read the element at `i`. Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: &Ix) -> f64 {
        self.data[self.bounds.linear_offset(i)]
    }

    /// Write the element at `i`. Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, i: &Ix, v: f64) {
        let off = self.bounds.linear_offset(i);
        self.data[off] = v;
    }

    /// Raw data slice (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data slice (row-major).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Largest absolute element-wise difference to another array of the
    /// same bounds.
    pub fn max_abs_diff(&self, other: &Array) -> f64 {
        assert_eq!(
            self.bounds, other.bounds,
            "comparing arrays of different shape"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// A named collection of arrays — the program state the paper's clauses
/// transform.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Env {
    arrays: BTreeMap<String, Array>,
}

impl Env {
    /// Empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Insert (or replace) an array.
    pub fn insert(&mut self, name: impl Into<String>, array: Array) {
        self.arrays.insert(name.into(), array);
    }

    /// Look up an array.
    pub fn get(&self, name: &str) -> Option<&Array> {
        self.arrays.get(name)
    }

    /// Look up an array mutably.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Array> {
        self.arrays.get_mut(name)
    }

    /// Names of all arrays (sorted).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.arrays.keys().map(String::as_str)
    }

    /// Evaluate an element-wise expression at loop index `i`.
    pub fn eval_expr(&self, e: &Expr, i: &Ix) -> f64 {
        match e {
            Expr::Ref(r) => {
                let arr = self
                    .arrays
                    .get(&r.array)
                    .unwrap_or_else(|| panic!("unknown array `{}`", r.array));
                arr.get(&r.map.eval(i))
            }
            Expr::Lit(v) => *v,
            Expr::LoopVar { dim } => i[*dim] as f64,
            Expr::Neg(e) => -self.eval_expr(e, i),
            Expr::Bin(op, a, b) => op.apply(self.eval_expr(a, i), self.eval_expr(b, i)),
        }
    }

    /// Evaluate a data-dependent guard at loop index `i`.
    pub fn eval_guard(&self, g: &Guard, i: &Ix) -> bool {
        match g {
            Guard::Always => true,
            Guard::Cmp { lhs, op, rhs } => {
                let arr = self
                    .arrays
                    .get(&lhs.array)
                    .unwrap_or_else(|| panic!("unknown array `{}`", lhs.array));
                op.holds(arr.get(&lhs.map.eval(i)), *rhs)
            }
        }
    }

    /// Evaluate a reduction sequentially (in lexicographic index order) —
    /// the reference semantics the parallel reductions are compared to.
    pub fn eval_reduction(&self, r: &crate::clause::Reduction) -> f64 {
        let mut acc = r.op.identity();
        for i in r.iter.iter() {
            acc = r.op.apply(acc, self.eval_expr(&r.expr, &i));
        }
        acc
    }

    /// Execute a clause sequentially — the reference semantics.
    ///
    /// * `•` (Seq): iterate the index set in lexicographic order, reading
    ///   the *current* state (exactly the original imperative loop).
    /// * `//` (Par): selections are unordered and declared independent; to
    ///   give them a deterministic meaning even when the written array is
    ///   also read, the written array is snapshotted first (gather
    ///   semantics). For genuinely independent clauses this coincides with
    ///   in-place evaluation.
    pub fn exec_clause(&mut self, clause: &Clause) {
        match clause.ordering {
            Ordering::Seq => {
                let indices: Vec<Ix> = clause.iter.iter().collect();
                for i in indices {
                    if self.eval_guard(&clause.guard, &i) {
                        let v = self.eval_expr(&clause.rhs, &i);
                        let target = clause.lhs.map.eval(&i);
                        self.get_mut(&clause.lhs.array)
                            .unwrap_or_else(|| panic!("unknown array `{}`", clause.lhs.array))
                            .set(&target, v);
                    }
                }
            }
            Ordering::Par => {
                // snapshot-read semantics: all reads see the pre-state
                let pre = self.clone();
                let writes: Vec<(Ix, f64)> = clause
                    .iter
                    .iter()
                    .filter(|i| pre.eval_guard(&clause.guard, i))
                    .map(|i| (clause.lhs.map.eval(&i), pre.eval_expr(&clause.rhs, &i)))
                    .collect();
                let arr = self
                    .get_mut(&clause.lhs.array)
                    .unwrap_or_else(|| panic!("unknown array `{}`", clause.lhs.array));
                for (target, v) in writes {
                    arr.set(&target, v);
                }
            }
        }
    }
}

impl fmt::Display for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, arr) in &self.arrays {
            writeln!(f, "{name}[{}] = {:?}", arr.bounds(), arr.data())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::{ArrayRef, BinOp};
    use crate::func::Fn1;
    use crate::pred::CmpOp;
    use crate::set::IndexSet;

    fn env_ab(n: i64) -> Env {
        let mut env = Env::new();
        env.insert(
            "A",
            Array::from_fn(Bounds::range(0, n - 1), |i| i.scalar() as f64),
        );
        env.insert(
            "B",
            Array::from_fn(Bounds::range(0, n - 1), |i| (10 * i.scalar()) as f64),
        );
        env
    }

    #[test]
    fn array_basics() {
        let mut a = Array::zeros(Bounds::range(0, 4));
        a.set(&Ix::d1(2), 7.5);
        assert_eq!(a.get(&Ix::d1(2)), 7.5);
        assert_eq!(a.get(&Ix::d1(0)), 0.0);
        let b = Array::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(b.bounds(), Bounds::range(0, 2));
        assert_eq!(b.get(&Ix::d1(1)), 2.0);
    }

    #[test]
    fn array_2d_storage() {
        let a = Array::from_fn(Bounds::range2(0, 2, 0, 3), |i| (i[0] * 10 + i[1]) as f64);
        assert_eq!(a.get(&Ix::d2(2, 3)), 23.0);
        assert_eq!(a.get(&Ix::d2(0, 0)), 0.0);
        assert_eq!(a.data().len(), 12);
    }

    #[test]
    fn fig1_guarded_copy() {
        // for i in 1..=4: if A[i] > 2 then A[i] := B[i+1]
        let mut env = env_ab(8);
        let clause = Clause {
            iter: IndexSet::range(1, 4),
            ordering: Ordering::Par,
            guard: Guard::Cmp {
                lhs: ArrayRef::d1("A", Fn1::identity()),
                op: CmpOp::Gt,
                rhs: 2.0,
            },
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("B", Fn1::shift(1))),
        };
        env.exec_clause(&clause);
        let a = env.get("A").unwrap();
        // A was [0,1,2,3,4,...]; only i=3,4 pass the guard (A[i] > 2)
        assert_eq!(a.get(&Ix::d1(1)), 1.0);
        assert_eq!(a.get(&Ix::d1(2)), 2.0);
        assert_eq!(a.get(&Ix::d1(3)), 40.0); // B[4]
        assert_eq!(a.get(&Ix::d1(4)), 50.0); // B[5]
    }

    #[test]
    fn seq_ordering_reads_updated_state() {
        // A[i] := A[i-1] + 1 sequentially: a running increment.
        let mut env = Env::new();
        env.insert("A", Array::from_slice(&[5.0, 0.0, 0.0, 0.0]));
        let clause = Clause {
            iter: IndexSet::range(1, 3),
            ordering: Ordering::Seq,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::add(Expr::Ref(ArrayRef::d1("A", Fn1::shift(-1))), Expr::Lit(1.0)),
        };
        env.exec_clause(&clause);
        assert_eq!(env.get("A").unwrap().data(), &[5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn par_ordering_reads_snapshot() {
        // Same clause with // sees the ORIGINAL A everywhere.
        let mut env = Env::new();
        env.insert("A", Array::from_slice(&[5.0, 0.0, 0.0, 0.0]));
        let clause = Clause {
            iter: IndexSet::range(1, 3),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::add(Expr::Ref(ArrayRef::d1("A", Fn1::shift(-1))), Expr::Lit(1.0)),
        };
        env.exec_clause(&clause);
        assert_eq!(env.get("A").unwrap().data(), &[5.0, 6.0, 1.0, 1.0]);
    }

    #[test]
    fn expr_eval_variants() {
        let env = env_ab(4);
        let i = Ix::d1(2);
        assert_eq!(env.eval_expr(&Expr::Lit(3.5), &i), 3.5);
        assert_eq!(env.eval_expr(&Expr::LoopVar { dim: 0 }, &i), 2.0);
        assert_eq!(
            env.eval_expr(&Expr::Neg(Box::new(Expr::Lit(2.0))), &i),
            -2.0
        );
        let e = Expr::Bin(
            BinOp::Mul,
            Box::new(Expr::Ref(ArrayRef::d1("B", Fn1::identity()))),
            Box::new(Expr::Lit(0.5)),
        );
        assert_eq!(env.eval_expr(&e, &i), 10.0);
    }

    #[test]
    fn max_abs_diff() {
        let a = Array::from_slice(&[1.0, 2.0]);
        let b = Array::from_slice(&[1.5, 1.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown array")]
    fn unknown_array_panics() {
        let env = Env::new();
        env.eval_expr(&Expr::Ref(ArrayRef::d1("X", Fn1::identity())), &Ix::d1(0));
    }
}
