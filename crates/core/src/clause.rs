//! Clauses (paper Section 2.4): state-to-state transformations of the form
//!
//! ```text
//! ∆(i ∈ I) ◊ ( [f(i)](A) := Expr([g(i)](B), ...) )
//! ```
//!
//! with a parameter expression `∆(i ∈ I)` binding the loop index, an
//! ordering operator `◊` (`•` lexicographic-sequential or `//` parallel),
//! an optional *data-dependent* guard (Fig. 1's `A[i] > 0`), one
//! left-hand-side array selection and an element-wise right-hand-side
//! expression over array selections.

use crate::map::IndexMap;
use crate::pred::CmpOp;
use crate::set::IndexSet;
use std::fmt;

/// The ordering operator `◊` of a parameter expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ordering {
    /// `•` — lexicographic sequential ordering.
    Seq,
    /// `//` — no ordering; selections may execute in parallel.
    Par,
}

impl Ordering {
    /// Paper glyph.
    pub fn symbol(self) -> &'static str {
        match self {
            Ordering::Seq => "\u{2022}",
            Ordering::Par => "//",
        }
    }
}

/// A selection `[map(i)](array)` of a named data structure.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayRef {
    /// Array name.
    pub array: String,
    /// Index propagation function from the loop index to the array index.
    pub map: IndexMap,
}

impl ArrayRef {
    /// Build a reference.
    pub fn new(array: impl Into<String>, map: IndexMap) -> Self {
        ArrayRef {
            array: array.into(),
            map,
        }
    }

    /// 1-D convenience.
    pub fn d1(array: impl Into<String>, f: crate::func::Fn1) -> Self {
        ArrayRef {
            array: array.into(),
            map: IndexMap::d1(f),
        }
    }
}

impl fmt::Display for ArrayRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.map, self.array)
    }
}

/// Scalar binary operators available in element-wise expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// minimum
    Min,
    /// maximum
    Max,
}

impl BinOp {
    /// Apply to two values.
    #[inline]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        }
    }

    /// Source symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }
}

/// An element-wise right-hand-side expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// An array selection `[g(i)](B)`.
    Ref(ArrayRef),
    /// A floating-point literal.
    Lit(f64),
    /// The loop index coordinate `i[dim]` as a value (useful for
    /// initializations like `A[i] := i`).
    LoopVar {
        /// Which loop dimension to read.
        dim: usize,
    },
    /// Unary negation.
    Neg(Box<Expr>),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// All array references appearing in the expression.
    pub fn refs(&self) -> Vec<&ArrayRef> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs<'a>(&'a self, out: &mut Vec<&'a ArrayRef>) {
        match self {
            Expr::Ref(r) => out.push(r),
            Expr::Lit(_) | Expr::LoopVar { .. } => {}
            Expr::Neg(e) => e.collect_refs(out),
            Expr::Bin(_, a, b) => {
                a.collect_refs(out);
                b.collect_refs(out);
            }
        }
    }

    /// Convenience: `a + b`.
    #[allow(clippy::should_implement_trait)] // constructor, not an operator on self
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(a), Box::new(b))
    }

    /// Convenience: `a * b`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(a), Box::new(b))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Ref(r) => write!(f, "{r}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::LoopVar { dim } => {
                if *dim == 0 {
                    write!(f, "i")
                } else {
                    write!(f, "i{dim}")
                }
            }
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::Bin(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
        }
    }
}

/// A data-dependent guard: unlike [`crate::pred::Pred`], it reads array
/// *values*, so it can never be folded away at compile time — the paper
/// keeps it as a run-time `if` in the generated node programs (Fig. 1).
#[derive(Debug, Clone, PartialEq)]
pub enum Guard {
    /// No guard.
    Always,
    /// `value(lhs) op rhs` — e.g. `A[i] > 0`.
    Cmp {
        /// Guarded array selection.
        lhs: ArrayRef,
        /// Comparison operator.
        op: CmpOp,
        /// Constant to compare with.
        rhs: f64,
    },
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Guard::Always => write!(f, "true"),
            Guard::Cmp { lhs, op, rhs } => write!(f, "{lhs} {} {rhs}", op.symbol()),
        }
    }
}

/// Reduction operators over multi-dimensional selections — the paper's
/// element-wise operations (`⊕` as "the multi-dimensional equivalent of
/// the scalar +", Section 2.4) folded to a scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Sum.
    Sum,
    /// Product.
    Prod,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl ReduceOp {
    /// The identity element of the reduction.
    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Prod => 1.0,
            ReduceOp::Min => f64::INFINITY,
            ReduceOp::Max => f64::NEG_INFINITY,
        }
    }

    /// Combine two values.
    #[inline]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Prod => a * b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ReduceOp::Sum => "sum",
            ReduceOp::Prod => "prod",
            ReduceOp::Min => "min",
            ReduceOp::Max => "max",
        }
    }
}

/// A reduction `op{ i ∈ iter : expr(i) }` of an element-wise expression
/// over an index set, e.g. a dot product
/// `sum(i ∈ 0:n-1) [i](A) * [i](B)`.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The reduced index set.
    pub iter: IndexSet,
    /// The fold operator.
    pub op: ReduceOp,
    /// The element-wise expression.
    pub expr: Expr,
}

impl fmt::Display for Reduction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(i \u{2208} {}) {}",
            self.op.name(),
            self.iter.bounds,
            self.expr
        )
    }
}

/// A full clause `∆(i ∈ iter) ◊ (guard → lhs := rhs)`.
#[derive(Debug, Clone)]
pub struct Clause {
    /// The parameter-expression index set `I`.
    pub iter: IndexSet,
    /// The ordering operator `◊`.
    pub ordering: Ordering,
    /// Optional data-dependent guard.
    pub guard: Guard,
    /// The assigned selection `[f(i)](A)`.
    pub lhs: ArrayRef,
    /// The element-wise expression over `[g(i)](B), ...`.
    pub rhs: Expr,
}

impl Clause {
    /// All arrays read by the clause (rhs refs plus guard ref).
    pub fn read_refs(&self) -> Vec<&ArrayRef> {
        let mut refs = self.rhs.refs();
        if let Guard::Cmp { lhs, .. } = &self.guard {
            refs.push(lhs);
        }
        refs
    }

    /// Whether the written array is also read (forces snapshot semantics
    /// for the `//` ordering).
    pub fn lhs_is_read(&self) -> bool {
        self.read_refs().iter().any(|r| r.array == self.lhs.array)
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\u{2206}(i \u{2208} {}", self.iter.bounds)?;
        if let Guard::Cmp { lhs, op, rhs } = &self.guard {
            write!(f, " | {lhs} {} {rhs}", op.symbol())?;
        }
        if !self.iter.pred.is_true() {
            write!(f, " | {}", self.iter.pred)?;
        }
        write!(
            f,
            ") {} ({} := {})",
            self.ordering.symbol(),
            self.lhs,
            self.rhs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::Fn1;

    fn fig1_clause() -> Clause {
        // ∆(i ∈ (k+1:n | [i]A>0) // ([i](A) := [f(i)](B))  with f(i)=i+1, k=0, n=9
        Clause {
            iter: IndexSet::range(1, 9),
            ordering: Ordering::Par,
            guard: Guard::Cmp {
                lhs: ArrayRef::d1("A", Fn1::identity()),
                op: CmpOp::Gt,
                rhs: 0.0,
            },
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("B", Fn1::shift(1))),
        }
    }

    #[test]
    fn refs_collection() {
        let c = fig1_clause();
        let reads = c.read_refs();
        assert_eq!(reads.len(), 2); // B ref and guard's A ref
        assert!(c.lhs_is_read()); // the guard reads A
    }

    #[test]
    fn lhs_not_read_without_guard() {
        let mut c = fig1_clause();
        c.guard = Guard::Always;
        assert!(!c.lhs_is_read());
    }

    #[test]
    fn display_resembles_paper() {
        let c = fig1_clause();
        let s = c.to_string();
        assert!(s.contains("\u{2206}(i \u{2208} 1:9"), "got {s}");
        assert!(s.contains("//"), "got {s}");
        assert!(s.contains(":="), "got {s}");
    }

    #[test]
    fn expr_display_and_eval_helpers() {
        let e = Expr::add(
            Expr::Lit(1.0),
            Expr::mul(Expr::Lit(2.0), Expr::LoopVar { dim: 0 }),
        );
        assert_eq!(e.to_string(), "(1 + (2 * i))");
        assert_eq!(BinOp::Min.apply(2.0, 3.0), 2.0);
        assert_eq!(BinOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(BinOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(BinOp::Div.apply(3.0, 2.0), 1.5);
    }
}
