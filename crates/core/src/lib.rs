//! # vcal-core — the V-cal view calculus
//!
//! A from-scratch implementation of the calculus of Paalvast, Sips &
//! van Gemund, *"Automatic Parallel Program Generation and Optimization
//! from Data Decompositions"* (ICPP 1991):
//!
//! * [`ix`] / [`bounds`] — index points and bounded sets (Definition 1);
//! * [`set`] / [`pred`] — index sets `(b, P)` (Definition 2);
//! * [`func`] / [`map`] — symbolic index-propagation functions
//!   (Definition 3) with the structure Section 3's optimizations need:
//!   composition, inverses, monotonicity, breakpoints;
//! * [`view`] — views and view composition (Definitions 4–5);
//! * [`clause`] / [`env`] — executable clauses
//!   `∆(i ∈ I) ◊ [f(i)](A) := Expr([g(i)](B))` and the sequential
//!   reference executor every generated SPMD program must agree with;
//! * [`term`] — the symbolic term language and the paper's rewrite rules
//!   (decomposition substitution, contraction, renaming, interchange) for
//!   deriving and printing the Eq. (1) → Eq. (3) SPMD chain.
//!
//! Data decompositions themselves live in `vcal-decomp`; the Table I
//! optimizer and SPMD code generation in `vcal-spmd`.
#![warn(missing_docs)]

pub mod bounds;
pub mod clause;
pub mod env;
pub mod func;
pub mod ix;
pub mod map;
pub mod pred;
pub mod set;
pub mod term;
pub mod view;
pub mod viewed;

pub use bounds::Bounds;
pub use clause::{ArrayRef, BinOp, Clause, Expr, Guard, Ordering};
pub use env::{Array, Env};
pub use func::{Fn1, Monotonicity};
pub use ix::Ix;
pub use map::{DimFn, IndexMap};
pub use pred::{CmpOp, Pred};
pub use set::IndexSet;
pub use term::Term;
pub use view::{DpMap, View};
pub use viewed::ViewedArray;
