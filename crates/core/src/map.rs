//! Multi-dimensional index-propagation maps.
//!
//! The paper's derivations are one-dimensional; real arrays are not. An
//! [`IndexMap`] applies, per *output* dimension, a symbolic [`Fn1`] to one
//! chosen *input* dimension. This covers everything the paper's view
//! machinery needs — shifts (`A[i-1, j]`), strides, transposes
//! (`A[j, i]`), rotations, and broadcasts of a constant coordinate — while
//! remaining closed under composition, so parameter-expression contraction
//! (Definition 5) stays exact in any dimension.

use crate::func::Fn1;
use crate::ix::Ix;
use std::fmt;

/// One output coordinate of an [`IndexMap`]: `out[d] = f(in[src])`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DimFn {
    /// Which input dimension feeds this output dimension.
    pub src: usize,
    /// The 1-D function applied to that coordinate.
    pub f: Fn1,
}

/// A `d_in -> d_out` index-propagation function built from per-dimension
/// [`Fn1`]s and a source-dimension selection (generalized permutation).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexMap {
    dims: Vec<DimFn>,
    d_in: usize,
}

impl IndexMap {
    /// Build from explicit per-output-dimension specs.
    /// Panics if any `src >= d_in`.
    pub fn new(d_in: usize, dims: Vec<DimFn>) -> Self {
        assert!(!dims.is_empty(), "IndexMap needs at least one output dim");
        for (d, df) in dims.iter().enumerate() {
            assert!(
                df.src < d_in,
                "output dim {d} reads input dim {} but d_in = {d_in}",
                df.src
            );
        }
        IndexMap { dims, d_in }
    }

    /// Identity map on `d` dimensions.
    pub fn identity(d: usize) -> Self {
        IndexMap {
            dims: (0..d)
                .map(|src| DimFn {
                    src,
                    f: Fn1::identity(),
                })
                .collect(),
            d_in: d,
        }
    }

    /// 1-D map from a single [`Fn1`].
    pub fn d1(f: Fn1) -> Self {
        IndexMap {
            dims: vec![DimFn { src: 0, f }],
            d_in: 1,
        }
    }

    /// Per-dimension map: output dim `d` applies `fs[d]` to input dim `d`.
    pub fn per_dim(fs: Vec<Fn1>) -> Self {
        let d = fs.len();
        IndexMap {
            dims: fs
                .into_iter()
                .enumerate()
                .map(|(src, f)| DimFn { src, f })
                .collect(),
            d_in: d,
        }
    }

    /// Pure permutation: output dim `d` copies input dim `perm[d]`
    /// (e.g. `[1, 0]` is a 2-D transpose).
    pub fn permutation(d_in: usize, perm: &[usize]) -> Self {
        IndexMap::new(
            d_in,
            perm.iter()
                .map(|&src| DimFn {
                    src,
                    f: Fn1::identity(),
                })
                .collect(),
        )
    }

    /// Number of input dimensions.
    pub fn d_in(&self) -> usize {
        self.d_in
    }

    /// Number of output dimensions.
    pub fn d_out(&self) -> usize {
        self.dims.len()
    }

    /// Per-output-dimension specs.
    pub fn dims(&self) -> &[DimFn] {
        &self.dims
    }

    /// For a 1-D map, the underlying [`Fn1`].
    pub fn as_fn1(&self) -> Option<&Fn1> {
        if self.d_out() == 1 && self.dims[0].src == 0 {
            Some(&self.dims[0].f)
        } else {
            None
        }
    }

    /// Apply to an index point.
    pub fn eval(&self, i: &Ix) -> Ix {
        debug_assert_eq!(i.dims(), self.d_in, "IndexMap arity mismatch");
        let coords: Vec<i64> = self.dims.iter().map(|df| df.f.eval(i[df.src])).collect();
        Ix::new(&coords)
    }

    /// Composition `(self ∘ inner)(i) = self(inner(i))`. Exact and closed:
    /// output dim `d` of the result reads input dim
    /// `inner.dims[self.dims[d].src].src` through the composed [`Fn1`].
    pub fn compose(&self, inner: &IndexMap) -> IndexMap {
        assert_eq!(
            self.d_in,
            inner.d_out(),
            "compose: outer expects {} dims, inner produces {}",
            self.d_in,
            inner.d_out()
        );
        let dims = self
            .dims
            .iter()
            .map(|outer| {
                let mid = &inner.dims[outer.src];
                DimFn {
                    src: mid.src,
                    f: outer.f.compose(&mid.f),
                }
            })
            .collect();
        IndexMap {
            dims,
            d_in: inner.d_in,
        }
    }

    /// Whether the map is the identity (after simplification).
    pub fn is_identity(&self) -> bool {
        self.d_in == self.d_out()
            && self
                .dims
                .iter()
                .enumerate()
                .all(|(d, df)| df.src == d && df.f.simplify() == Fn1::identity())
    }
}

impl fmt::Display for IndexMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (n, df) in self.dims.iter().enumerate() {
            if n > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", display_fn1(&df.f, &var_name(df.src, self.d_in)))?;
        }
        write!(f, "]")
    }
}

fn var_name(src: usize, d_in: usize) -> String {
    if d_in == 1 {
        "i".to_string()
    } else {
        const NAMES: [&str; 4] = ["i", "j", "k", "l"];
        NAMES
            .get(src)
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("i{src}"))
    }
}

/// Render an [`Fn1`] applied to a named variable, in paper-style notation.
pub fn display_fn1(f: &Fn1, var: &str) -> String {
    match f {
        Fn1::Const(c) => c.to_string(),
        Fn1::Affine { a: 0, c } => c.to_string(),
        Fn1::Affine { a: 1, c: 0 } => var.to_string(),
        Fn1::Affine { a: 1, c } if *c > 0 => format!("{var}+{c}"),
        Fn1::Affine { a: 1, c } => format!("{var}-{}", -c),
        Fn1::Affine { a, c: 0 } => format!("{a}.{var}"),
        Fn1::Affine { a, c } if *c > 0 => format!("{a}.{var}+{c}"),
        Fn1::Affine { a, c } => format!("{a}.{var}-{}", -c),
        Fn1::Mod { inner, z, d: 0 } => format!("({}) mod {z}", display_fn1(inner, var)),
        Fn1::Mod { inner, z, d } => format!("({}) mod {z}+{d}", display_fn1(inner, var)),
        Fn1::Div { inner, q } => format!("({}) div {q}", display_fn1(inner, var)),
        Fn1::Sum(l, r) => format!("{}+{}", display_fn1(l, var), display_fn1(r, var)),
        Fn1::Square(inner) => format!("({})\u{b2}", display_fn1(inner, var)),
        Fn1::Scaled { a, c: 0, inner } => format!("{a}.({})", display_fn1(inner, var)),
        Fn1::Scaled { a, c, inner } => format!("{a}.({})+{c}", display_fn1(inner, var)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_map() {
        let m = IndexMap::identity(2);
        assert!(m.is_identity());
        assert_eq!(m.eval(&Ix::d2(3, 4)), Ix::d2(3, 4));
    }

    #[test]
    fn per_dim_shift() {
        // A[i-1, j+1]
        let m = IndexMap::per_dim(vec![Fn1::shift(-1), Fn1::shift(1)]);
        assert_eq!(m.eval(&Ix::d2(5, 5)), Ix::d2(4, 6));
    }

    #[test]
    fn transpose_permutation() {
        let t = IndexMap::permutation(2, &[1, 0]);
        assert_eq!(t.eval(&Ix::d2(2, 7)), Ix::d2(7, 2));
        // transpose ∘ transpose = identity
        assert!(t.compose(&t).is_identity());
    }

    #[test]
    fn compose_matches_pointwise() {
        let shift = IndexMap::per_dim(vec![Fn1::shift(3), Fn1::affine(2, 0)]);
        let transpose = IndexMap::permutation(2, &[1, 0]);
        let c = shift.compose(&transpose);
        for i in -3..3 {
            for j in -3..3 {
                let x = Ix::d2(i, j);
                assert_eq!(c.eval(&x), shift.eval(&transpose.eval(&x)));
            }
        }
    }

    #[test]
    fn broadcast_from_1d() {
        // out = (i, 5): a column selection map from a 1-D index
        let m = IndexMap::new(
            1,
            vec![
                DimFn {
                    src: 0,
                    f: Fn1::identity(),
                },
                DimFn {
                    src: 0,
                    f: Fn1::Const(5),
                },
            ],
        );
        assert_eq!(m.eval(&Ix::d1(3)), Ix::d2(3, 5));
        assert_eq!(m.d_in(), 1);
        assert_eq!(m.d_out(), 2);
    }

    #[test]
    fn as_fn1_extraction() {
        let m = IndexMap::d1(Fn1::affine(2, 1));
        assert_eq!(m.as_fn1(), Some(&Fn1::affine(2, 1)));
        assert_eq!(IndexMap::identity(2).as_fn1(), None);
    }

    #[test]
    fn display_paper_notation() {
        assert_eq!(IndexMap::d1(Fn1::affine(2, 1)).to_string(), "[2.i+1]");
        assert_eq!(
            IndexMap::d1(Fn1::rotate(6, 20)).to_string(),
            "[(i+6) mod 20]"
        );
        assert_eq!(
            IndexMap::per_dim(vec![Fn1::shift(-1), Fn1::identity()]).to_string(),
            "[i-1, j]"
        );
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics_in_debug() {
        let m = IndexMap::identity(2);
        let _ = m.eval(&Ix::d1(0));
    }
}
