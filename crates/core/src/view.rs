//! Views (paper Definitions 4 and 5).
//!
//! A view `√(K, dp, ip)` relates a source index set `I` to a result index
//! set `J`: `ip` is an integer total function from `J` to `I` (a *gather*
//! map: the element at result index `j` comes from source index `ip(j)`),
//! `dp` is a monotonically increasing transform on bound vectors, and `K`
//! is an index set constraining the result. Applying the view:
//!
//! ```text
//! J = ( b_K & dp(b_I),  (P_I ∘ ip) ∧ P_K )
//! ```
//!
//! Views compose (Definition 5); composition is what the paper calls
//! *contraction* of nested parameter expressions, and it is the rewrite
//! that lets a data decomposition be folded into an algorithm's access
//! functions in closed form.

use crate::bounds::Bounds;
use crate::func::Fn1;
use crate::map::IndexMap;
use crate::pred::Pred;
use crate::set::IndexSet;
use std::fmt;
use std::sync::Arc;

/// The `dp` component of a view: a monotone transform on bound vectors.
#[derive(Clone)]
pub enum DpMap {
    /// Apply one monotonically increasing [`Fn1`] per dimension to both the
    /// lower and the upper bound vector.
    PerDim(Vec<Fn1>),
    /// An arbitrary bounds transform (used e.g. by the general
    /// decomposition view of Section 2.6, which collapses a `(proc, local)`
    /// bound pair into a flat size).
    Custom {
        /// Display label.
        label: String,
        /// The transform.
        f: Arc<dyn Fn(&Bounds) -> Bounds + Send + Sync>,
    },
}

impl DpMap {
    /// Identity on `d` dimensions.
    pub fn identity(d: usize) -> DpMap {
        DpMap::PerDim(vec![Fn1::identity(); d])
    }

    /// Apply to a bounds box.
    pub fn apply(&self, b: &Bounds) -> Bounds {
        match self {
            DpMap::PerDim(fs) => {
                assert_eq!(fs.len(), b.dims(), "DpMap dimension mismatch");
                let lo: Vec<i64> = fs
                    .iter()
                    .enumerate()
                    .map(|(d, f)| f.eval(b.lo()[d]))
                    .collect();
                let hi: Vec<i64> = fs
                    .iter()
                    .enumerate()
                    .map(|(d, f)| f.eval(b.hi()[d]))
                    .collect();
                Bounds::new(crate::ix::Ix::new(&lo), crate::ix::Ix::new(&hi))
            }
            DpMap::Custom { f, .. } => f(b),
        }
    }

    /// Composition `(self ∘ inner)(b) = self(inner(b))`.
    pub fn compose(&self, inner: &DpMap) -> DpMap {
        match (self, inner) {
            (DpMap::PerDim(outer), DpMap::PerDim(inner_fs)) if outer.len() == inner_fs.len() => {
                DpMap::PerDim(
                    outer
                        .iter()
                        .zip(inner_fs)
                        .map(|(o, i)| o.compose(i))
                        .collect(),
                )
            }
            _ => {
                let outer = self.clone();
                let inner = inner.clone();
                DpMap::Custom {
                    label: "composed".into(),
                    f: Arc::new(move |b: &Bounds| outer.apply(&inner.apply(b))),
                }
            }
        }
    }
}

impl fmt::Debug for DpMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpMap::PerDim(fs) => write!(f, "DpMap::PerDim({fs:?})"),
            DpMap::Custom { label, .. } => write!(f, "DpMap::Custom({label})"),
        }
    }
}

/// A view `√(K, dp, ip)` (Definition 4).
#[derive(Debug, Clone)]
pub struct View {
    /// The constraining index set `K`.
    pub k: IndexSet,
    /// The bounds transform `dp`.
    pub dp: DpMap,
    /// The index propagation function `ip : J -> I`.
    pub ip: IndexMap,
}

impl View {
    /// A view that merely remaps indices through `ip` with unconstrained
    /// `K` (the common case for algorithmic access functions). The `dp`
    /// bounds transform is derived from the map's structure: result dim
    /// `d` spans the preimage of source dim `ip.dims()[d].src` under the
    /// per-dim function's monotone endpoints (exact for affine and
    /// permutation maps; conservative otherwise).
    pub fn from_map(ip: IndexMap) -> View {
        let d = ip.d_in();
        let map_for_dp = ip.clone();
        let dp = DpMap::Custom {
            label: "from-map".into(),
            f: Arc::new(move |b: &Bounds| {
                let lo: Vec<i64> = map_for_dp
                    .dims()
                    .iter()
                    .map(|df| preimage_endpoints(&df.f, b.lo()[df.src], b.hi()[df.src]).0)
                    .collect();
                let hi: Vec<i64> = map_for_dp
                    .dims()
                    .iter()
                    .map(|df| preimage_endpoints(&df.f, b.lo()[df.src], b.hi()[df.src]).1)
                    .collect();
                Bounds::new(crate::ix::Ix::new(&lo), crate::ix::Ix::new(&hi))
            }),
        };
        View {
            k: IndexSet::full(Bounds::new(
                crate::ix::Ix::new(&vec![i64::MIN / 4; d]),
                crate::ix::Ix::new(&vec![i64::MAX / 4; d]),
            )),
            dp,
            ip,
        }
    }

    /// 1-D convenience: view with `ip = f`, `dp = dp_f`, and `K = (k_bounds, k_pred)`.
    pub fn d1(k_bounds: Bounds, k_pred: Pred, dp_f: Fn1, ip_f: Fn1) -> View {
        View {
            k: IndexSet::new(k_bounds, k_pred),
            dp: DpMap::PerDim(vec![dp_f]),
            ip: IndexMap::d1(ip_f),
        }
    }

    /// Apply the view to a source index set (Definition 4):
    /// `J = (b_K & dp(b_I), (P_I ∘ ip) ∧ P_K)`.
    pub fn apply(&self, src: &IndexSet) -> IndexSet {
        let bounds = self.k.bounds.intersect(&self.dp.apply(&src.bounds));
        let pred = src.pred.compose_map(&self.ip).and(self.k.pred.clone());
        IndexSet::new(bounds, pred)
    }

    /// View composition (Definition 5): `(self ∘ w)(I) = self(w(I))`, i.e.
    /// `self` is the *outer* view `V`, `w` the *inner* `W`:
    ///
    /// ```text
    /// ip_u = ip_w ∘ ip_v      dp_u = dp_v ∘ dp_w
    /// b_u  = b_Kv & dp_v(b_Kw)
    /// P_u  = (P_Kw ∘ ip_v) ∧ P_Kv
    /// ```
    pub fn compose(&self, w: &View) -> View {
        let ip = w.ip.compose(&self.ip);
        let dp = self.dp.compose(&w.dp);
        let bounds = self.k.bounds.intersect(&self.dp.apply(&w.k.bounds));
        let pred = w.k.pred.compose_map(&self.ip).and(self.k.pred.clone());
        View {
            k: IndexSet::new(bounds, pred),
            dp,
            ip,
        }
    }
}

/// The result-index interval whose image under monotone `f` stays within
/// `[src_lo, src_hi]`. For non-monotone maps (rotates, squares over mixed
/// signs) it falls back to the source interval itself — the Booster
/// convention that a rotate/shuffle view has the shape of its source; the
/// membership predicate still filters exactly within that box.
fn preimage_endpoints(f: &Fn1, src_lo: i64, src_hi: i64) -> (i64, i64) {
    const WIDE: i64 = 1 << 40;
    if f.monotonicity(-WIDE, WIDE).is_monotone() {
        match f.preimage_range(src_lo, src_hi, -WIDE, WIDE) {
            Some((a, b)) => (a, b),
            None => (1, 0), // monotone but empty preimage: empty box
        }
    } else {
        (src_lo, src_hi)
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\u{221a}({}, dp, {})", self.k, self.ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ix::Ix;
    use crate::pred::CmpOp;

    fn ge(rhs: i64) -> Pred {
        Pred::Cmp {
            dim: 0,
            f: Fn1::identity(),
            op: CmpOp::Ge,
            rhs,
        }
    }

    /// The two views of the paper's Example 5.
    fn example5() -> (View, View) {
        let v = View::d1(Bounds::range(0, 1), ge(1), Fn1::shift(-2), Fn1::shift(2));
        let w = View::d1(
            Bounds::range(0, 10),
            ge(4),
            Fn1::Div {
                inner: Box::new(Fn1::identity()),
                q: 2,
            },
            Fn1::affine(2, 0),
        );
        (v, w)
    }

    #[test]
    fn example5_composition_components() {
        let (v, w) = example5();
        let u = v.compose(&w);
        // b_u = (0,1) & (-2, 8) = (0,1)
        assert_eq!(u.k.bounds, Bounds::range(0, 1));
        // ip_u(i) = 2.(i+2) = 2i+4
        assert_eq!(u.ip.as_fn1().unwrap().clone(), Fn1::affine(2, 4));
        // dp_u(i) = (i div 2) - 2
        if let DpMap::PerDim(fs) = &u.dp {
            for i in -20..20 {
                assert_eq!(
                    fs[0].eval(i),
                    (if i >= 0 { i / 2 } else { (i - 1) / 2 }) - 2
                );
            }
        } else {
            panic!("expected PerDim dp");
        }
        // P_u(i) = {i >= 2}: predicate {i>=4} ∘ (i+2) ∧ {i>=1}
        for i in -5..10 {
            assert_eq!(u.k.pred.eval(&Ix::d1(i)), i >= 2, "P_u({i})");
        }
    }

    #[test]
    fn composition_law_application_order() {
        // (V ∘ W)(I) must equal V(W(I)) on both bounds and membership.
        let (v, w) = example5();
        let u = v.compose(&w);
        let i_set = IndexSet::range(0, 30);
        let via_composed = u.apply(&i_set);
        let via_sequential = v.apply(&w.apply(&i_set));
        assert_eq!(via_composed.bounds, via_sequential.bounds);
        for i in -5..40 {
            assert_eq!(
                via_composed.contains(&Ix::d1(i)),
                via_sequential.contains(&Ix::d1(i)),
                "membership mismatch at {i}"
            );
        }
    }

    #[test]
    fn apply_shifts_bounds_and_predicate() {
        // A view selecting [i+1] of a source (0:9): result indices j with
        // ip(j) = j+1 in 0..=9 -> the predicate must reject j=9 via P_I∘ip
        // if dp narrows bounds to -1:8.
        let v = View::d1(
            Bounds::range(-100, 100),
            Pred::True,
            Fn1::shift(-1),
            Fn1::shift(1),
        );
        let j = v.apply(&IndexSet::range(0, 9));
        assert_eq!(j.bounds, Bounds::range(-1, 8));
        assert_eq!(j.count(), 10);
        assert!(j.contains(&Ix::d1(-1))); // ip(-1) = 0 ∈ I
        assert!(!j.contains(&Ix::d1(9)));
    }

    #[test]
    fn from_map_is_neutral_on_predicate() {
        let v = View::from_map(IndexMap::d1(Fn1::identity()));
        let s = IndexSet::range(3, 7);
        let j = v.apply(&s);
        assert_eq!(j.to_vec(), s.to_vec());
    }

    #[test]
    fn compose_associativity_on_application() {
        // (U ∘ V) ∘ W and U ∘ (V ∘ W) agree pointwise on application.
        let u = View::d1(
            Bounds::range(0, 50),
            Pred::True,
            Fn1::identity(),
            Fn1::shift(1),
        );
        let v = View::d1(
            Bounds::range(0, 50),
            ge(2),
            Fn1::identity(),
            Fn1::affine(2, 0),
        );
        let w = View::d1(
            Bounds::range(0, 50),
            Pred::True,
            Fn1::identity(),
            Fn1::shift(3),
        );
        let left = u.compose(&v).compose(&w);
        let right = u.compose(&v.compose(&w));
        let src = IndexSet::range(0, 200);
        let a = left.apply(&src);
        let b = right.apply(&src);
        for i in -10..60 {
            assert_eq!(a.contains(&Ix::d1(i)), b.contains(&Ix::d1(i)), "at {i}");
        }
        assert_eq!(
            left.ip.as_fn1().unwrap().simplify(),
            right.ip.as_fn1().unwrap().simplify()
        );
    }
}
