//! Symbolic index-propagation functions (paper Definition 3 and Section 3).
//!
//! The optimizations of the paper are driven entirely by what is known about
//! the *index propagation function* `f` of a selection `[f(i)](A)`:
//!
//! * `f(i) = c` — Theorem 1;
//! * `f(i) = a*i + c` — Theorem 3 and its corollaries (scatter), plus exact
//!   block ranges;
//! * `f` monotonic — Theorem 2 (repeated block via `f^{-1}` bounds);
//! * `f(i) = g(i) mod z + d` — piecewise monotonic (Section 3.3), split at
//!   breakpoints into de-modded monotonic pieces.
//!
//! [`Fn1`] is a small closed AST covering exactly these classes (and sums /
//! integer division / squaring, so the paper's examples `f(i) = i + (i div 4)`
//! and `f(i) = i^2` are expressible), with evaluation, composition,
//! simplification, monotonicity classification, inverse-bound computation by
//! exact formula or bisection, slope bounds, and breakpoint splitting.

use vcal_numth::{div_floor, mod_floor};

/// A symbolic 1-D integer function of one integer variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Fn1 {
    /// `f(i) = c`
    Const(i64),
    /// `f(i) = a*i + c`
    Affine {
        /// Multiplier.
        a: i64,
        /// Offset.
        c: i64,
    },
    /// `f(i) = inner(i) mod z + d`, the paper's piecewise-monotonic form
    /// (Section 3.3). `z > 0`; `mod` has floor semantics.
    Mod {
        /// The monotonic inner function `g`.
        inner: Box<Fn1>,
        /// The modulus `z`.
        z: i64,
        /// The offset `d`.
        d: i64,
    },
    /// `f(i) = floor(inner(i) / q)`, `q > 0`.
    Div {
        /// The inner function.
        inner: Box<Fn1>,
        /// The (positive) divisor.
        q: i64,
    },
    /// `f(i) = lhs(i) + rhs(i)` — used for e.g. `i + (i div 4)`.
    Sum(Box<Fn1>, Box<Fn1>),
    /// `f(i) = inner(i)^2` (the paper's monotone non-linear example
    /// `f(i) = i^2` is `Square(identity)`; monotonic on a sign-definite
    /// image of the inner function).
    Square(Box<Fn1>),
    /// `f(i) = a * inner(i) + c` — arises from composing an affine outer
    /// function with a non-affine inner one.
    Scaled {
        /// Multiplier applied to the inner value.
        a: i64,
        /// Offset added after scaling.
        c: i64,
        /// The inner function.
        inner: Box<Fn1>,
    },
}

/// Monotonicity classification of an [`Fn1`] over a given domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Monotonicity {
    /// Constant over the domain.
    Constant,
    /// Strictly increasing.
    Increasing,
    /// Strictly decreasing.
    Decreasing,
    /// Non-decreasing but not necessarily strictly (e.g. `i div 4`).
    WeaklyIncreasing,
    /// Non-increasing but not necessarily strictly.
    WeaklyDecreasing,
    /// Piecewise monotonic with computable breakpoints (a `Mod` form).
    Piecewise,
    /// Nothing useful is known structurally.
    Unknown,
}

impl Monotonicity {
    /// Whether the function is (weakly) monotonic in a single direction.
    pub fn is_monotone(self) -> bool {
        self.is_non_decreasing() || self.is_non_increasing()
    }

    /// Whether values never decrease as `i` increases.
    pub fn is_non_decreasing(self) -> bool {
        matches!(
            self,
            Monotonicity::Constant | Monotonicity::Increasing | Monotonicity::WeaklyIncreasing
        )
    }

    /// Whether values never increase as `i` increases.
    pub fn is_non_increasing(self) -> bool {
        matches!(
            self,
            Monotonicity::Constant | Monotonicity::Decreasing | Monotonicity::WeaklyDecreasing
        )
    }
}

/// A monotonic piece of a piecewise-monotonic function: the sub-domain and
/// the "de-modded" function valid on it (Section 3.3: `g(i) - z*k + d`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonotonePiece {
    /// Inclusive lower end of the sub-domain.
    pub lo: i64,
    /// Inclusive upper end of the sub-domain.
    pub hi: i64,
    /// Function equal to the original on `[lo, hi]`, itself breakpoint-free.
    pub f: Fn1,
}

impl Fn1 {
    /// The identity function `f(i) = i`.
    pub fn identity() -> Fn1 {
        Fn1::Affine { a: 1, c: 0 }
    }

    /// `f(i) = i + c`.
    pub fn shift(c: i64) -> Fn1 {
        Fn1::Affine { a: 1, c }
    }

    /// `f(i) = a*i + c`.
    pub fn affine(a: i64, c: i64) -> Fn1 {
        Fn1::Affine { a, c }
    }

    /// `f(i) = (i + s) mod z` — a rotate view (paper's example
    /// `f(i) = (i+6) mod 20`).
    pub fn rotate(s: i64, z: i64) -> Fn1 {
        assert!(z > 0, "rotate modulus must be positive");
        Fn1::Mod {
            inner: Box::new(Fn1::shift(s)),
            z,
            d: 0,
        }
    }

    /// `f(i) = i + (i div q)` — the paper's monotone non-linear example.
    pub fn i_plus_i_div(q: i64) -> Fn1 {
        assert!(q > 0);
        Fn1::Sum(
            Box::new(Fn1::identity()),
            Box::new(Fn1::Div {
                inner: Box::new(Fn1::identity()),
                q,
            }),
        )
    }

    /// `f(i) = i^2`.
    pub fn square() -> Fn1 {
        Fn1::Square(Box::new(Fn1::identity()))
    }

    /// Evaluate at `i`.
    pub fn eval(&self, i: i64) -> i64 {
        match self {
            Fn1::Const(c) => *c,
            Fn1::Affine { a, c } => a * i + c,
            Fn1::Mod { inner, z, d } => mod_floor(inner.eval(i), *z) + d,
            Fn1::Div { inner, q } => div_floor(inner.eval(i), *q),
            Fn1::Sum(l, r) => l.eval(i) + r.eval(i),
            Fn1::Square(inner) => {
                let v = inner.eval(i);
                v * v
            }
            Fn1::Scaled { a, c, inner } => a * inner.eval(i) + c,
        }
    }

    /// Composition `(self ∘ inner)(i) = self(inner(i))`, simplified where
    /// the structure allows — affine ∘ affine stays affine, which is what
    /// keeps parameter-expression *contraction* (paper Definition 5) inside
    /// the classes Table I can optimize.
    pub fn compose(&self, inner: &Fn1) -> Fn1 {
        match (self, inner) {
            (Fn1::Const(c), _) => Fn1::Const(*c),
            (_, Fn1::Const(c)) => Fn1::Const(self.eval(*c)),
            (Fn1::Affine { a: 1, c: 0 }, g) => g.clone(),
            (f, Fn1::Affine { a: 1, c: 0 }) => f.clone(),
            (Fn1::Affine { a, c }, Fn1::Affine { a: a2, c: c2 }) => Fn1::Affine {
                a: a * a2,
                c: a * c2 + c,
            },
            (Fn1::Affine { a, c }, g) => {
                // a*g(i) + c = g(i)*a + c; representable as Sum of scaled?
                // Only a=1 scaling is directly representable; encode
                // a*g + c via Sum chains when a > 0, else keep layered.
                if *a == 1 {
                    Fn1::Sum(Box::new(g.clone()), Box::new(Fn1::Const(*c))).simplify()
                } else {
                    // keep exact semantics with a structural wrapper:
                    // a*g(i)+c as Sum(a copies) would be silly; use
                    // Mod/Div-free fallback: Square is not applicable, so
                    // wrap as ScaledSum via repeated doubling is overkill.
                    // Retain a dedicated node instead.
                    Fn1::Scaled {
                        a: *a,
                        c: *c,
                        inner: Box::new(g.clone()),
                    }
                }
            }
            (Fn1::Mod { inner: g, z, d }, h) => Fn1::Mod {
                inner: Box::new(g.compose(h)),
                z: *z,
                d: *d,
            },
            (Fn1::Div { inner: g, q }, h) => Fn1::Div {
                inner: Box::new(g.compose(h)),
                q: *q,
            },
            (Fn1::Sum(l, r), h) => {
                Fn1::Sum(Box::new(l.compose(h)), Box::new(r.compose(h))).simplify()
            }
            (Fn1::Square(g), h) => Fn1::Square(Box::new(g.compose(h))),
            (Fn1::Scaled { a, c, inner: g }, h) => Fn1::Scaled {
                a: *a,
                c: *c,
                inner: Box::new(g.compose(h)),
            }
            .simplify(),
        }
    }

    /// Structural simplification: constant folding, affine merging,
    /// flattening of sums with constants.
    pub fn simplify(&self) -> Fn1 {
        match self {
            Fn1::Sum(l, r) => {
                let l = l.simplify();
                let r = r.simplify();
                match (&l, &r) {
                    (Fn1::Const(a), Fn1::Const(b)) => Fn1::Const(a + b),
                    (Fn1::Affine { a, c }, Fn1::Const(k)) => Fn1::Affine { a: *a, c: c + k },
                    (Fn1::Const(k), Fn1::Affine { a, c }) => Fn1::Affine { a: *a, c: c + k },
                    (Fn1::Affine { a: a1, c: c1 }, Fn1::Affine { a: a2, c: c2 }) => Fn1::Affine {
                        a: a1 + a2,
                        c: c1 + c2,
                    },
                    _ => Fn1::Sum(Box::new(l), Box::new(r)),
                }
            }
            Fn1::Scaled { a, c, inner } => {
                let inner = inner.simplify();
                match (&inner, *a) {
                    (Fn1::Const(k), _) => Fn1::Const(a * k + c),
                    (Fn1::Affine { a: a2, c: c2 }, _) => Fn1::Affine {
                        a: a * a2,
                        c: a * c2 + c,
                    },
                    (_, 1) => Fn1::Sum(Box::new(inner), Box::new(Fn1::Const(*c))).simplify(),
                    _ => Fn1::Scaled {
                        a: *a,
                        c: *c,
                        inner: Box::new(inner),
                    },
                }
            }
            Fn1::Mod { inner, z, d } => {
                let inner = inner.simplify();
                if let Fn1::Const(c) = inner {
                    Fn1::Const(mod_floor(c, *z) + d)
                } else {
                    Fn1::Mod {
                        inner: Box::new(inner),
                        z: *z,
                        d: *d,
                    }
                }
            }
            Fn1::Div { inner, q } => {
                let inner = inner.simplify();
                match (&inner, *q) {
                    (Fn1::Const(c), q) => Fn1::Const(div_floor(*c, q)),
                    (_, 1) => inner,
                    _ => Fn1::Div {
                        inner: Box::new(inner),
                        q: *q,
                    },
                }
            }
            Fn1::Square(inner) => {
                let inner = inner.simplify();
                if let Fn1::Const(c) = inner {
                    Fn1::Const(c * c)
                } else {
                    Fn1::Square(Box::new(inner))
                }
            }
            Fn1::Affine { a: 0, c } => Fn1::Const(*c),
            other => other.clone(),
        }
    }

    /// Classify monotonicity over the inclusive domain `[lo, hi]`.
    pub fn monotonicity(&self, lo: i64, hi: i64) -> Monotonicity {
        if lo > hi {
            return Monotonicity::Constant; // vacuous
        }
        match self {
            Fn1::Const(_) => Monotonicity::Constant,
            Fn1::Affine { a, .. } => match a.signum() {
                0 => Monotonicity::Constant,
                1 => Monotonicity::Increasing,
                _ => Monotonicity::Decreasing,
            },
            Fn1::Scaled { a, inner, .. } => {
                let m = inner.monotonicity(lo, hi);
                match a.signum() {
                    0 => Monotonicity::Constant,
                    1 => m,
                    _ => flip(m),
                }
            }
            Fn1::Square(inner) => {
                let m = inner.monotonicity(lo, hi);
                if !m.is_monotone() {
                    return Monotonicity::Unknown;
                }
                let (va, vb) = (inner.eval(lo), inner.eval(hi));
                let (vmin, vmax) = (va.min(vb), va.max(vb));
                if lo == hi || vmin == vmax {
                    return if lo == hi {
                        Monotonicity::Constant
                    } else {
                        weaken(m)
                    };
                }
                if vmin >= 0 {
                    // squaring preserves order on non-negatives
                    if m.is_non_decreasing() {
                        strengthen_like(m, Monotonicity::Increasing)
                    } else {
                        strengthen_like(m, Monotonicity::Decreasing)
                    }
                } else if vmax <= 0 {
                    if m.is_non_decreasing() {
                        strengthen_like(m, Monotonicity::Decreasing)
                    } else {
                        strengthen_like(m, Monotonicity::Increasing)
                    }
                } else {
                    Monotonicity::Unknown
                }
            }
            Fn1::Div { inner, .. } => match inner.monotonicity(lo, hi) {
                Monotonicity::Constant => Monotonicity::Constant,
                m if m.is_non_decreasing() => Monotonicity::WeaklyIncreasing,
                m if m.is_non_increasing() => Monotonicity::WeaklyDecreasing,
                _ => Monotonicity::Unknown,
            },
            Fn1::Sum(l, r) => {
                let ml = l.monotonicity(lo, hi);
                let mr = r.monotonicity(lo, hi);
                if ml == Monotonicity::Constant {
                    return mr;
                }
                if mr == Monotonicity::Constant {
                    return ml;
                }
                if ml.is_non_decreasing() && mr.is_non_decreasing() {
                    if ml == Monotonicity::Increasing || mr == Monotonicity::Increasing {
                        Monotonicity::Increasing
                    } else {
                        Monotonicity::WeaklyIncreasing
                    }
                } else if ml.is_non_increasing() && mr.is_non_increasing() {
                    if ml == Monotonicity::Decreasing || mr == Monotonicity::Decreasing {
                        Monotonicity::Decreasing
                    } else {
                        Monotonicity::WeaklyDecreasing
                    }
                } else {
                    Monotonicity::Unknown
                }
            }
            Fn1::Mod { inner, z, .. } => {
                // If no breakpoint falls inside the domain, the mod is a
                // constant shift of `inner` (Section 3.3); otherwise it is
                // piecewise monotonic.
                let m = inner.monotonicity(lo, hi);
                if !m.is_monotone() {
                    return Monotonicity::Unknown;
                }
                let klo = div_floor(inner.eval(lo), *z);
                let khi = div_floor(inner.eval(hi), *z);
                if klo == khi {
                    m
                } else {
                    Monotonicity::Piecewise
                }
            }
        }
    }

    /// Upper bound on `|f(i+1) - f(i)|` over `[lo, hi-1]`, if one is known
    /// structurally. Used for the Section 3.2 decision "enumerate on `k`
    /// rather than `i` when `df/di < pmax`".
    pub fn slope_bound(&self, lo: i64, hi: i64) -> Option<i64> {
        if lo >= hi {
            return Some(0);
        }
        match self {
            Fn1::Const(_) => Some(0),
            Fn1::Affine { a, .. } => Some(a.abs()),
            Fn1::Scaled { a, inner, .. } => Some(a.abs() * inner.slope_bound(lo, hi)?),
            Fn1::Square(inner) => {
                let s = inner.slope_bound(lo, hi)?;
                let vm = inner.eval(lo).abs().max(inner.eval(hi).abs());
                // |g(i+1)^2 - g(i)^2| = |g(i+1)-g(i)| * |g(i+1)+g(i)|
                Some(s * (2 * vm + s))
            }
            Fn1::Div { inner, q } => {
                let s = inner.slope_bound(lo, hi)?;
                Some(s / q + 1)
            }
            Fn1::Sum(l, r) => Some(l.slope_bound(lo, hi)? + r.slope_bound(lo, hi)?),
            Fn1::Mod { inner, z, .. } => {
                // within a piece the slope equals the inner slope; across a
                // breakpoint it can jump by up to z.
                let s = inner.slope_bound(lo, hi)?;
                Some(s.max(*z))
            }
        }
    }

    /// For a non-decreasing `f` on `[lo, hi]`: the least `i` with
    /// `f(i) >= y`, or `None` if `f(hi) < y`. Exact formula for affine,
    /// bisection otherwise (O(log(hi-lo))).
    pub fn inv_ceil(&self, y: i64, lo: i64, hi: i64) -> Option<i64> {
        if lo > hi {
            return None;
        }
        if let Fn1::Affine { a, c } = self {
            if *a > 0 {
                let i = vcal_numth::div_ceil(y - c, *a).max(lo);
                return (i <= hi).then_some(i);
            }
        }
        debug_assert!(
            self.monotonicity(lo, hi).is_non_decreasing(),
            "inv_ceil requires non-decreasing f, got {:?}",
            self.monotonicity(lo, hi)
        );
        if self.eval(hi) < y {
            return None;
        }
        if self.eval(lo) >= y {
            return Some(lo);
        }
        // invariant: f(a) < y <= f(b)
        let (mut a, mut b) = (lo, hi);
        while b - a > 1 {
            let m = a + (b - a) / 2;
            if self.eval(m) >= y {
                b = m;
            } else {
                a = m;
            }
        }
        Some(b)
    }

    /// For a non-decreasing `f` on `[lo, hi]`: the greatest `i` with
    /// `f(i) <= y`, or `None` if `f(lo) > y`.
    pub fn inv_floor(&self, y: i64, lo: i64, hi: i64) -> Option<i64> {
        if lo > hi {
            return None;
        }
        if let Fn1::Affine { a, c } = self {
            if *a > 0 {
                let i = div_floor(y - c, *a).min(hi);
                return (i >= lo).then_some(i);
            }
        }
        debug_assert!(
            self.monotonicity(lo, hi).is_non_decreasing(),
            "inv_floor requires non-decreasing f, got {:?}",
            self.monotonicity(lo, hi)
        );
        if self.eval(lo) > y {
            return None;
        }
        if self.eval(hi) <= y {
            return Some(hi);
        }
        // invariant: f(a) <= y < f(b)
        let (mut a, mut b) = (lo, hi);
        while b - a > 1 {
            let m = a + (b - a) / 2;
            if self.eval(m) <= y {
                a = m;
            } else {
                b = m;
            }
        }
        Some(a)
    }

    /// The contiguous sub-range of the monotone domain `[lo, hi]` whose
    /// image lies in `[y_lo, y_hi]` — the primitive of Theorem 2:
    /// `j_min = max(imin, ceil(f^{-1}(L)))`, `j_max = min(imax, floor(f^{-1}(U)))`,
    /// generalized to either monotone direction ("the theorems are also
    /// valid for monotonic decreasing functions, provided the arguments of
    /// `f^{-1}` are exchanged"). Returns `None` when empty or non-monotone.
    pub fn preimage_range(&self, y_lo: i64, y_hi: i64, lo: i64, hi: i64) -> Option<(i64, i64)> {
        if lo > hi || y_lo > y_hi {
            return None;
        }
        let m = self.monotonicity(lo, hi);
        if m.is_non_decreasing() {
            let a = self.inv_ceil(y_lo, lo, hi)?;
            let b = self.inv_floor(y_hi, lo, hi)?;
            (a <= b).then_some((a, b))
        } else if m.is_non_increasing() {
            // indices with f(i) <= y_hi form a suffix; with f(i) >= y_lo a
            // prefix. Intersect suffix-start .. prefix-end.
            let start = {
                if self.eval(hi) > y_hi {
                    return None;
                }
                if self.eval(lo) <= y_hi {
                    lo
                } else {
                    // f(a) > y_hi >= f(b)
                    let (mut a, mut b) = (lo, hi);
                    while b - a > 1 {
                        let mid = a + (b - a) / 2;
                        if self.eval(mid) <= y_hi {
                            b = mid;
                        } else {
                            a = mid;
                        }
                    }
                    b
                }
            };
            let end = {
                if self.eval(lo) < y_lo {
                    return None;
                }
                if self.eval(hi) >= y_lo {
                    hi
                } else {
                    // f(a) >= y_lo > f(b)
                    let (mut a, mut b) = (lo, hi);
                    while b - a > 1 {
                        let mid = a + (b - a) / 2;
                        if self.eval(mid) >= y_lo {
                            a = mid;
                        } else {
                            b = mid;
                        }
                    }
                    a
                }
            };
            (start <= end).then_some((start, end))
        } else {
            None
        }
    }

    /// Split a `Mod` function into breakpoint-free monotone pieces
    /// (Section 3.3). For non-`Mod` monotone functions returns the single
    /// trivial piece. Returns `None` if the structure is not piecewise
    /// monotonic (inner not monotone).
    pub fn monotone_pieces(&self, lo: i64, hi: i64) -> Option<Vec<MonotonePiece>> {
        if lo > hi {
            return Some(Vec::new());
        }
        match self {
            Fn1::Mod { inner, z, d } => {
                let mi = inner.monotonicity(lo, hi);
                if !mi.is_monotone() {
                    return None;
                }
                let mut pieces = Vec::new();
                let mut cur = lo;
                // On each piece `inner(i) div z` equals a constant k, so
                // f(i) = inner(i) - z*k + d there. The k-value is monotone
                // in i, so each piece is a contiguous run found by
                // bisection on the run predicate.
                while cur <= hi {
                    let k = div_floor(inner.eval(cur), *z);
                    let end = last_with(cur, hi, |i| div_floor(inner.eval(i), *z) == k);
                    let demod =
                        Fn1::Sum(inner.clone(), Box::new(Fn1::Const(-z * k + d))).simplify();
                    pieces.push(MonotonePiece {
                        lo: cur,
                        hi: end,
                        f: demod,
                    });
                    cur = end + 1;
                }
                Some(pieces)
            }
            f => {
                if f.monotonicity(lo, hi).is_monotone() {
                    Some(vec![MonotonePiece {
                        lo,
                        hi,
                        f: f.clone(),
                    }])
                } else {
                    None
                }
            }
        }
    }

    /// Whether `f` is injective on `[lo, hi]` (required for owner-computes
    /// writes to be race-free, and by Section 3.3's rotate views, which
    /// demand `z > g(imax) - g(imin)`).
    pub fn is_injective(&self, lo: i64, hi: i64) -> bool {
        if lo >= hi {
            return true;
        }
        match self.monotonicity(lo, hi) {
            Monotonicity::Increasing | Monotonicity::Decreasing => true,
            Monotonicity::Constant => false,
            Monotonicity::Piecewise => {
                if let Fn1::Mod { inner, z, .. } = self {
                    // paper's condition: injective iff z > g(imax) - g(imin)
                    let (a, b) = (inner.eval(lo), inner.eval(hi));
                    (b - a).abs() < *z
                        && matches!(
                            inner.monotonicity(lo, hi),
                            Monotonicity::Increasing | Monotonicity::Decreasing
                        )
                } else {
                    false
                }
            }
            _ => {
                // brute check for small domains only
                if hi - lo <= 4096 {
                    let mut seen = std::collections::HashSet::new();
                    (lo..=hi).all(|i| seen.insert(self.eval(i)))
                } else {
                    false
                }
            }
        }
    }
}

/// Find the largest `i` in `[lo, hi]` such that `pred` holds for the whole
/// prefix `[lo, i]`, assuming `pred(lo)` holds and the true-region is a
/// prefix. Gallop + bisect, O(log(hi-lo)) predicate evaluations.
fn last_with(lo: i64, hi: i64, pred: impl Fn(i64) -> bool) -> i64 {
    debug_assert!(pred(lo));
    if pred(hi) {
        return hi;
    }
    // invariant: pred(a) && !pred(b)
    let (mut a, mut b) = (lo, hi);
    while b - a > 1 {
        let m = a + (b - a) / 2;
        if pred(m) {
            a = m;
        } else {
            b = m;
        }
    }
    a
}

fn flip(m: Monotonicity) -> Monotonicity {
    match m {
        Monotonicity::Increasing => Monotonicity::Decreasing,
        Monotonicity::Decreasing => Monotonicity::Increasing,
        Monotonicity::WeaklyIncreasing => Monotonicity::WeaklyDecreasing,
        Monotonicity::WeaklyDecreasing => Monotonicity::WeaklyIncreasing,
        other => other,
    }
}

fn weaken(m: Monotonicity) -> Monotonicity {
    match m {
        Monotonicity::Increasing => Monotonicity::WeaklyIncreasing,
        Monotonicity::Decreasing => Monotonicity::WeaklyDecreasing,
        other => other,
    }
}

/// Keep the strict/weak quality of `m` but in the direction of `dir`.
fn strengthen_like(m: Monotonicity, dir: Monotonicity) -> Monotonicity {
    let strict = matches!(m, Monotonicity::Increasing | Monotonicity::Decreasing);
    match (dir, strict) {
        (Monotonicity::Increasing, true) => Monotonicity::Increasing,
        (Monotonicity::Increasing, false) => Monotonicity::WeaklyIncreasing,
        (Monotonicity::Decreasing, true) => Monotonicity::Decreasing,
        (Monotonicity::Decreasing, false) => Monotonicity::WeaklyDecreasing,
        _ => m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_preimage(f: &Fn1, y_lo: i64, y_hi: i64, lo: i64, hi: i64) {
        let brute: Vec<i64> = (lo..=hi)
            .filter(|&i| (y_lo..=y_hi).contains(&f.eval(i)))
            .collect();
        match f.preimage_range(y_lo, y_hi, lo, hi) {
            Some((a, b)) => {
                let got: Vec<i64> = (a..=b).collect();
                assert_eq!(got, brute, "f={f:?} y=[{y_lo},{y_hi}] dom=[{lo},{hi}]");
            }
            None => assert!(
                brute.is_empty(),
                "preimage said empty but brute={brute:?} f={f:?} y=[{y_lo},{y_hi}]"
            ),
        }
    }

    #[test]
    fn eval_basics() {
        assert_eq!(Fn1::Const(5).eval(100), 5);
        assert_eq!(Fn1::affine(3, -1).eval(4), 11);
        assert_eq!(Fn1::rotate(6, 20).eval(18), 4);
        assert_eq!(Fn1::square().eval(-3), 9);
        assert_eq!(Fn1::i_plus_i_div(4).eval(7), 8); // 7 + floor(7/4)
    }

    #[test]
    fn compose_affine_closed() {
        let f = Fn1::affine(2, 3);
        let g = Fn1::affine(5, -1);
        let fg = f.compose(&g);
        assert_eq!(fg, Fn1::affine(10, 1));
        for i in -10..10 {
            assert_eq!(fg.eval(i), f.eval(g.eval(i)));
        }
    }

    #[test]
    fn compose_example5_of_paper() {
        // V: ip_v(i) = i + 2;  W: ip_w(i) = 2*i.  ip_{v∘w} = ip_w ∘ ip_v per
        // Definition 5, i.e. 2*(i+2) = 2i + 4.
        let ipv = Fn1::shift(2);
        let ipw = Fn1::affine(2, 0);
        let composed = ipw.compose(&ipv);
        assert_eq!(composed, Fn1::affine(2, 4));
    }

    #[test]
    fn compose_preserves_semantics_for_mixed_shapes() {
        let shapes = vec![
            Fn1::Const(7),
            Fn1::affine(3, -2),
            Fn1::rotate(6, 20),
            Fn1::i_plus_i_div(4),
            Fn1::square(),
            Fn1::Div {
                inner: Box::new(Fn1::affine(2, 1)),
                q: 3,
            },
        ];
        for f in &shapes {
            for g in &shapes {
                let fg = f.compose(g);
                for i in 0..25 {
                    assert_eq!(fg.eval(i), f.eval(g.eval(i)), "f={f:?} g={g:?} i={i}");
                }
            }
        }
    }

    #[test]
    fn simplify_folds() {
        let s = Fn1::Sum(Box::new(Fn1::affine(2, 1)), Box::new(Fn1::Const(4))).simplify();
        assert_eq!(s, Fn1::affine(2, 5));
        let d = Fn1::Div {
            inner: Box::new(Fn1::Const(9)),
            q: 2,
        }
        .simplify();
        assert_eq!(d, Fn1::Const(4));
        let m = Fn1::Mod {
            inner: Box::new(Fn1::Const(26)),
            z: 20,
            d: 1,
        }
        .simplify();
        assert_eq!(m, Fn1::Const(7));
        let sc = Fn1::Scaled {
            a: 3,
            c: 1,
            inner: Box::new(Fn1::affine(2, 5)),
        }
        .simplify();
        assert_eq!(sc, Fn1::affine(6, 16));
    }

    #[test]
    fn monotonicity_classification() {
        assert_eq!(Fn1::Const(3).monotonicity(0, 9), Monotonicity::Constant);
        assert_eq!(
            Fn1::affine(2, 0).monotonicity(0, 9),
            Monotonicity::Increasing
        );
        assert_eq!(
            Fn1::affine(-1, 5).monotonicity(0, 9),
            Monotonicity::Decreasing
        );
        assert_eq!(Fn1::square().monotonicity(0, 9), Monotonicity::Increasing);
        assert_eq!(Fn1::square().monotonicity(-9, -1), Monotonicity::Decreasing);
        assert_eq!(Fn1::square().monotonicity(-3, 3), Monotonicity::Unknown);
        let div4 = Fn1::Div {
            inner: Box::new(Fn1::identity()),
            q: 4,
        };
        assert_eq!(div4.monotonicity(0, 20), Monotonicity::WeaklyIncreasing);
        assert_eq!(
            Fn1::i_plus_i_div(4).monotonicity(0, 20),
            Monotonicity::Increasing
        );
        assert_eq!(
            Fn1::rotate(6, 20).monotonicity(0, 19),
            Monotonicity::Piecewise
        );
        // rotate with no wrap in the domain stays plain monotone
        assert_eq!(
            Fn1::rotate(6, 20).monotonicity(0, 13),
            Monotonicity::Increasing
        );
    }

    #[test]
    fn inverse_bounds_affine_exact() {
        let f = Fn1::affine(3, 2); // 2,5,8,11,...
        assert_eq!(f.inv_ceil(6, 0, 100), Some(2)); // f(2)=8 >= 6
        assert_eq!(f.inv_floor(6, 0, 100), Some(1)); // f(1)=5 <= 6
        assert_eq!(f.inv_ceil(1000, 0, 10), None);
        assert_eq!(f.inv_floor(1, 0, 10), None);
    }

    #[test]
    fn inverse_bounds_bisection_matches_brute() {
        let funcs = vec![
            Fn1::square(),
            Fn1::i_plus_i_div(4),
            Fn1::Div {
                inner: Box::new(Fn1::affine(3, 1)),
                q: 2,
            },
        ];
        for f in &funcs {
            for y in -5..150 {
                let brute_ceil = (0..=40).find(|&i| f.eval(i) >= y);
                let brute_floor = (0..=40).rev().find(|&i| f.eval(i) <= y);
                assert_eq!(f.inv_ceil(y, 0, 40), brute_ceil, "inv_ceil f={f:?} y={y}");
                assert_eq!(
                    f.inv_floor(y, 0, 40),
                    brute_floor,
                    "inv_floor f={f:?} y={y}"
                );
            }
        }
    }

    #[test]
    fn preimage_ranges_increasing_and_decreasing() {
        check_preimage(&Fn1::affine(2, 1), 5, 15, 0, 20);
        check_preimage(&Fn1::affine(-3, 50), 10, 30, 0, 20);
        check_preimage(&Fn1::square(), 9, 80, 0, 20);
        check_preimage(&Fn1::square(), 9, 80, -20, 0);
        check_preimage(&Fn1::affine(2, 1), 100, 200, 0, 20);
        check_preimage(&Fn1::affine(-1, 0), -5, 5, 0, 20);
        let idiv = Fn1::i_plus_i_div(4);
        for ylo in 0..30 {
            check_preimage(&idiv, ylo, ylo + 7, 0, 40);
        }
        // decreasing non-affine
        let neg_sq = Fn1::Scaled {
            a: -1,
            c: 100,
            inner: Box::new(Fn1::square()),
        };
        for ylo in (0..100).step_by(13) {
            check_preimage(&neg_sq, ylo, ylo + 20, 0, 12);
        }
    }

    #[test]
    fn rotate_pieces_match_paper() {
        // f(i) = (i+6) mod 20 on 0..=19: breakpoint at i=14
        // (inner(14)=20 wraps). Pieces: [0,13] -> i+6, [14,19] -> i-14.
        let f = Fn1::rotate(6, 20);
        let pieces = f.monotone_pieces(0, 19).unwrap();
        assert_eq!(pieces.len(), 2);
        assert_eq!(
            pieces[0],
            MonotonePiece {
                lo: 0,
                hi: 13,
                f: Fn1::affine(1, 6)
            }
        );
        assert_eq!(
            pieces[1],
            MonotonePiece {
                lo: 14,
                hi: 19,
                f: Fn1::affine(1, -14)
            }
        );
        for p in &pieces {
            for i in p.lo..=p.hi {
                assert_eq!(p.f.eval(i), f.eval(i));
            }
        }
    }

    #[test]
    fn pieces_of_plain_monotone_is_trivial() {
        let f = Fn1::affine(2, 0);
        let pieces = f.monotone_pieces(0, 9).unwrap();
        assert_eq!(
            pieces,
            vec![MonotonePiece {
                lo: 0,
                hi: 9,
                f: Fn1::affine(2, 0)
            }]
        );
    }

    #[test]
    fn pieces_multiple_wraps() {
        // (3i) mod 10 on 0..=9 wraps at ceil(10/3)=4 and at 7
        let f = Fn1::Mod {
            inner: Box::new(Fn1::affine(3, 0)),
            z: 10,
            d: 0,
        };
        let pieces = f.monotone_pieces(0, 9).unwrap();
        let mut covered = 0;
        for p in &pieces {
            for i in p.lo..=p.hi {
                assert_eq!(p.f.eval(i), f.eval(i), "piece {p:?} at {i}");
                covered += 1;
            }
            assert!(p.f.monotonicity(p.lo, p.hi).is_monotone());
        }
        assert_eq!(covered, 10);
        assert_eq!(pieces.len(), 3);
    }

    #[test]
    fn pieces_with_decreasing_inner() {
        let f = Fn1::Mod {
            inner: Box::new(Fn1::affine(-3, 25)),
            z: 10,
            d: 0,
        };
        let pieces = f.monotone_pieces(0, 9).unwrap();
        let mut covered = 0;
        for p in &pieces {
            for i in p.lo..=p.hi {
                assert_eq!(p.f.eval(i), f.eval(i), "piece {p:?} at {i}");
                covered += 1;
            }
        }
        assert_eq!(covered, 10);
    }

    #[test]
    fn injectivity() {
        assert!(Fn1::affine(2, 1).is_injective(0, 100));
        assert!(!Fn1::Const(3).is_injective(0, 1));
        // rotate injective iff z > span
        assert!(Fn1::rotate(6, 20).is_injective(0, 19));
        assert!(!Fn1::rotate(6, 20).is_injective(0, 25));
        assert!(Fn1::square().is_injective(0, 50));
        assert!(!Fn1::square().is_injective(-5, 5));
    }

    #[test]
    fn slope_bounds_are_valid() {
        let cases = vec![
            (Fn1::affine(5, 2), 0i64, 100i64),
            (Fn1::square(), 0, 50),
            (Fn1::i_plus_i_div(4), 0, 50),
            (Fn1::rotate(6, 20), 0, 19),
        ];
        for (f, lo, hi) in cases {
            let s = f.slope_bound(lo, hi).unwrap();
            for i in lo..hi {
                assert!(
                    (f.eval(i + 1) - f.eval(i)).abs() <= s,
                    "slope bound {s} violated at {i} for {f:?}"
                );
            }
        }
    }
}
