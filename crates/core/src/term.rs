//! Symbolic V-cal terms and the paper's rewrite rules, at the level the
//! paper presents them (Sections 2.5–2.7).
//!
//! The typed structures in [`crate::clause`] carry the *executable*
//! semantics; [`Term`] carries the *derivational* one: it renders the
//! notation of the paper (`∆(i ∈ (imin:imax | P)) ◊ [f(i)](A) := ...`) and
//! implements the rewrite steps the paper applies to reach SPMD form —
//! decomposition substitution, parameter-expression contraction
//! (Definition 5), the *renaming* rule, and parameter interchange — so an
//! example binary can print the full Eq. (1) → Eq. (2) → Eq. (3) chain.

use std::fmt;

/// Ordering glyph for a parameter expression.
pub use crate::clause::Ordering;

/// A symbolic V-cal term.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A parameter expression `∆(var ∈ range | cond) ◊ body`.
    Param {
        /// Bound variable name.
        var: String,
        /// Range text, e.g. `imin:imax` or `0:pmax-1`.
        range: String,
        /// Optional predicate text, e.g. `procA(f(i))=p`.
        cond: Option<String>,
        /// Ordering operator.
        ord: Ordering,
        /// The body.
        body: Box<Term>,
    },
    /// A selection `[sel](target)`, e.g. `[f(i)](A)` or
    /// `[procA(f(i)), localA(f(i))](A')`.
    Select {
        /// Selector component texts.
        sel: Vec<String>,
        /// The selected term.
        target: Box<Term>,
    },
    /// A named data structure.
    Array(String),
    /// An assignment `lhs := rhs`.
    Assign {
        /// Left-hand side.
        lhs: Box<Term>,
        /// Right-hand side.
        rhs: Box<Term>,
    },
    /// A function application `name(args...)` such as `Expr(...)`.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Term>,
    },
}

impl Term {
    /// `∆(var ∈ range) ◊ body`.
    pub fn param(var: &str, range: &str, ord: Ordering, body: Term) -> Term {
        Term::Param {
            var: var.into(),
            range: range.into(),
            cond: None,
            ord,
            body: Box::new(body),
        }
    }

    /// `∆(var ∈ (range | cond)) ◊ body`.
    pub fn param_cond(var: &str, range: &str, cond: &str, ord: Ordering, body: Term) -> Term {
        Term::Param {
            var: var.into(),
            range: range.into(),
            cond: Some(cond.into()),
            ord,
            body: Box::new(body),
        }
    }

    /// `[sel](target)`.
    pub fn select(sel: &[&str], target: Term) -> Term {
        Term::Select {
            sel: sel.iter().map(|s| s.to_string()).collect(),
            target: Box::new(target),
        }
    }

    /// `lhs := rhs`.
    pub fn assign(lhs: Term, rhs: Term) -> Term {
        Term::Assign {
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Rewrite rule: **decomposition substitution** (Section 2.6).
    /// Replaces every `Array(name)` with
    /// `∆(j ∈ range) ◊ [proc(j), local(j)](name')` — the array becomes a
    /// view on its machine image.
    pub fn substitute_decomposition(&self, name: &str, range: &str) -> Term {
        self.map_arrays(&|a| {
            if a == name {
                Term::param(
                    "j",
                    range,
                    Ordering::Par,
                    Term::Select {
                        sel: vec![format!("proc{a}(j)"), format!("local{a}(j)")],
                        target: Box::new(Term::Array(format!("{a}'"))),
                    },
                )
            } else {
                Term::Array(a.to_string())
            }
        })
    }

    /// Rewrite rule: **contraction** (derived from Definition 5).
    /// `[f(i)](∆(j ∈ R) ◊ [g(j)](T))  ⇒  [g(f(i))](T)`: a selection of a
    /// parameter expression composes the two index propagation functions
    /// by substituting the outer selector for the inner parameter.
    pub fn contract(&self) -> Term {
        match self {
            Term::Select { sel, target } => {
                let target = target.contract();
                if let Term::Param { var, body, .. } = &target {
                    if sel.len() == 1 {
                        if let Term::Select {
                            sel: inner_sel,
                            target: inner_t,
                        } = body.as_ref()
                        {
                            let substituted: Vec<String> = inner_sel
                                .iter()
                                .map(|s| s.replace(var.as_str(), &sel[0]))
                                .collect();
                            return Term::Select {
                                sel: substituted,
                                target: Box::new(inner_t.contract()),
                            };
                        }
                    }
                }
                Term::Select {
                    sel: sel.clone(),
                    target: Box::new(target),
                }
            }
            Term::Param {
                var,
                range,
                cond,
                ord,
                body,
            } => Term::Param {
                var: var.clone(),
                range: range.clone(),
                cond: cond.clone(),
                ord: *ord,
                body: Box::new(body.contract()),
            },
            Term::Assign { lhs, rhs } => Term::Assign {
                lhs: Box::new(lhs.contract()),
                rhs: Box::new(rhs.contract()),
            },
            Term::Call { name, args } => Term::Call {
                name: name.clone(),
                args: args.iter().map(|a| a.contract()).collect(),
            },
            Term::Array(_) => self.clone(),
        }
    }

    /// Rewrite rule: **renaming** (Section 2.6):
    /// `[E(i), ...] ⇒ ∆(e ∈ (emin:emax | E(i) = e)) ◊ [e, ...]`.
    /// Replaces the first selector component matching `expr` in the body
    /// with fresh variable `fresh`, wrapping the term in the new parameter
    /// expression carrying the equality condition.
    pub fn rename(&self, expr: &str, fresh: &str, fresh_range: &str) -> Term {
        let body = self.replace_selector(expr, fresh);
        Term::param_cond(
            fresh,
            fresh_range,
            &format!("{expr} = {fresh}"),
            Ordering::Par,
            body,
        )
    }

    /// Rewrite rule: **interchange** (Section 2.6): for a term
    /// `∆(a ...) ◊ ∆(b ∈ (R | C)) ◊ body`, swap the two parameter
    /// expressions, moving the condition `C` onto the (now inner) `a`
    /// parameter — producing the SPMD form where the processor parameter
    /// is outermost.
    pub fn interchange(&self) -> Option<Term> {
        if let Term::Param {
            var: va,
            range: ra,
            cond: ca,
            ord: oa,
            body,
        } = self
        {
            if let Term::Param {
                var: vb,
                range: rb,
                cond: cb,
                ord: ob,
                body: inner,
            } = body.as_ref()
            {
                return Some(Term::Param {
                    var: vb.clone(),
                    range: rb.clone(),
                    cond: None,
                    ord: *ob,
                    body: Box::new(Term::Param {
                        var: va.clone(),
                        range: ra.clone(),
                        cond: match (ca, cb) {
                            (None, c) => c.clone(),
                            (Some(a), None) => Some(a.clone()),
                            (Some(a), Some(b)) => Some(format!("{a} \u{2227} {b}")),
                        },
                        ord: *oa,
                        body: inner.clone(),
                    }),
                });
            }
        }
        None
    }

    fn map_arrays(&self, f: &impl Fn(&str) -> Term) -> Term {
        match self {
            Term::Array(a) => f(a),
            Term::Param {
                var,
                range,
                cond,
                ord,
                body,
            } => Term::Param {
                var: var.clone(),
                range: range.clone(),
                cond: cond.clone(),
                ord: *ord,
                body: Box::new(body.map_arrays(f)),
            },
            Term::Select { sel, target } => Term::Select {
                sel: sel.clone(),
                target: Box::new(target.map_arrays(f)),
            },
            Term::Assign { lhs, rhs } => Term::Assign {
                lhs: Box::new(lhs.map_arrays(f)),
                rhs: Box::new(rhs.map_arrays(f)),
            },
            Term::Call { name, args } => Term::Call {
                name: name.clone(),
                args: args.iter().map(|a| a.map_arrays(f)).collect(),
            },
        }
    }

    fn replace_selector(&self, expr: &str, fresh: &str) -> Term {
        match self {
            Term::Select { sel, target } => Term::Select {
                sel: sel
                    .iter()
                    .map(|s| {
                        if s == expr {
                            fresh.to_string()
                        } else {
                            s.clone()
                        }
                    })
                    .collect(),
                target: Box::new(target.replace_selector(expr, fresh)),
            },
            Term::Param {
                var,
                range,
                cond,
                ord,
                body,
            } => Term::Param {
                var: var.clone(),
                range: range.clone(),
                cond: cond.clone(),
                ord: *ord,
                body: Box::new(body.replace_selector(expr, fresh)),
            },
            Term::Assign { lhs, rhs } => Term::Assign {
                lhs: Box::new(lhs.replace_selector(expr, fresh)),
                rhs: Box::new(rhs.replace_selector(expr, fresh)),
            },
            Term::Call { name, args } => Term::Call {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| a.replace_selector(expr, fresh))
                    .collect(),
            },
            Term::Array(_) => self.clone(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Param {
                var,
                range,
                cond,
                ord,
                body,
            } => {
                match cond {
                    Some(c) => write!(f, "\u{2206}({var} \u{2208} ({range} | {c}))")?,
                    None => write!(f, "\u{2206}({var} \u{2208} ({range}))")?,
                }
                write!(f, " {} {body}", ord.symbol())
            }
            Term::Select { sel, target } => {
                write!(f, "[{}]({target})", sel.join(", "))
            }
            Term::Array(a) => write!(f, "{a}"),
            Term::Assign { lhs, rhs } => write!(f, "{lhs} := {rhs}"),
            Term::Call { name, args } => {
                write!(f, "{name}(")?;
                for (n, a) in args.iter().enumerate() {
                    if n > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Eq. (1) of the paper: ∆(i ∈ (imin:imax)) ◊ [f(i)]A := Expr([g(i)](B))
    fn eq1() -> Term {
        Term::param(
            "i",
            "imin:imax",
            Ordering::Par,
            Term::assign(
                Term::select(&["f(i)"], Term::Array("A".into())),
                Term::Call {
                    name: "Expr".into(),
                    args: vec![Term::select(&["g(i)"], Term::Array("B".into()))],
                },
            ),
        )
    }

    #[test]
    fn fig1_rendering() {
        let t = Term::param_cond(
            "i",
            "k+1:n",
            "[i]A>0",
            Ordering::Par,
            Term::assign(
                Term::select(&["i"], Term::Array("A".into())),
                Term::select(&["f(i)"], Term::Array("B".into())),
            ),
        );
        assert_eq!(
            t.to_string(),
            "\u{2206}(i \u{2208} (k+1:n | [i]A>0)) // [i](A) := [f(i)](B)"
        );
    }

    #[test]
    fn decomposition_substitution_then_contraction_gives_eq2() {
        // Substitute A -> ∆(j ∈ 0:n-1) ◊ [procA(j), localA(j)](A') and
        // B likewise, then contract: the result must be Eq. (2):
        // [procA(f(i)), localA(f(i))]A' := Expr([procB(g(i)), localB(g(i))]B')
        let t = eq1()
            .substitute_decomposition("A", "0:n-1")
            .substitute_decomposition("B", "0:m-1");
        let c = t.contract();
        let s = c.to_string();
        assert!(
            s.contains("[procA(f(i)), localA(f(i))](A')"),
            "lhs not contracted: {s}"
        );
        assert!(
            s.contains("[procB(g(i)), localB(g(i))](B')"),
            "rhs not contracted: {s}"
        );
        // no nested parameter expression over j remains
        assert!(!s.contains("(j \u{2208}"), "leftover inner param: {s}");
    }

    #[test]
    fn renaming_introduces_processor_parameter() {
        let eq2_body = Term::assign(
            Term::select(&["procA(f(i))", "localA(f(i))"], Term::Array("A'".into())),
            Term::Call {
                name: "Expr".into(),
                args: vec![Term::select(
                    &["procB(g(i))", "localB(g(i))"],
                    Term::Array("B'".into()),
                )],
            },
        );
        let renamed = eq2_body.rename("procA(f(i))", "p", "0:pmax-1");
        let s = renamed.to_string();
        assert!(
            s.starts_with("\u{2206}(p \u{2208} (0:pmax-1 | procA(f(i)) = p))"),
            "{s}"
        );
        assert!(s.contains("[p, localA(f(i))](A')"), "{s}");
    }

    #[test]
    fn interchange_moves_processor_outermost() {
        // ∆(i ∈ I) ◊ ∆(p ∈ (0:pmax-1 | procA(f(i))=p)) ◊ body
        // ⇒ ∆(p ∈ 0:pmax-1) ◊ ∆(i ∈ (I | procA(f(i))=p)) ◊ body  (Eq. 3)
        let body = Term::Array("body".into());
        let t = Term::param(
            "i",
            "imin:imax",
            Ordering::Par,
            Term::param_cond("p", "0:pmax-1", "procA(f(i))=p", Ordering::Par, body),
        );
        let swapped = t.interchange().unwrap();
        let s = swapped.to_string();
        assert_eq!(
            s,
            "\u{2206}(p \u{2208} (0:pmax-1)) // \u{2206}(i \u{2208} (imin:imax | procA(f(i))=p)) // body"
        );
    }

    #[test]
    fn interchange_requires_nested_params() {
        assert!(Term::Array("A".into()).interchange().is_none());
    }

    #[test]
    fn full_chain_eq1_to_eq3() {
        // The complete derivation the paper walks through in Section 2.6.
        let eq2 = eq1()
            .substitute_decomposition("A", "0:n-1")
            .substitute_decomposition("B", "0:m-1")
            .contract();
        // extract the body of the outer ∆(i...) to rename inside it
        if let Term::Param {
            var,
            range,
            cond,
            ord,
            body,
        } = &eq2
        {
            let renamed = body.rename("procA(f(i))", "p", "0:pmax-1");
            let with_i = Term::Param {
                var: var.clone(),
                range: range.clone(),
                cond: cond.clone(),
                ord: *ord,
                body: Box::new(renamed),
            };
            let eq3 = with_i.interchange().unwrap();
            let s = eq3.to_string();
            assert!(s.starts_with("\u{2206}(p \u{2208} (0:pmax-1))"), "{s}");
            assert!(s.contains("(imin:imax | procA(f(i)) = p)"), "{s}");
        } else {
            panic!("eq2 should be a parameter expression");
        }
    }
}
