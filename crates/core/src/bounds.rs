//! Bounded sets (paper Definition 1).
//!
//! A bounded set `N_b` with `b = (l, u)` is the Cartesian product
//! `N_1 x .. x N_d` with `N_i = { n | l_i <= n <= u_i }` — an axis-aligned
//! integer box with **inclusive** bounds, exactly as in the paper. An empty
//! box is represented by any `lo > hi` on some axis and is normalized by
//! [`Bounds::canonical_empty`] when needed.

use crate::ix::Ix;
use std::fmt;

/// An axis-aligned integer box with inclusive bounds — the paper's
/// *bounded set* `N_(l,u)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bounds {
    lo: Ix,
    hi: Ix,
}

impl Bounds {
    /// Create a bounded set from lower and upper bound vectors.
    /// Panics on dimension mismatch.
    #[inline]
    pub fn new(lo: Ix, hi: Ix) -> Self {
        assert_eq!(lo.dims(), hi.dims(), "bound vectors of different dimension");
        Bounds { lo, hi }
    }

    /// 1-D range `lo:hi` (inclusive, paper notation).
    #[inline]
    pub fn range(lo: i64, hi: i64) -> Self {
        Bounds {
            lo: Ix::d1(lo),
            hi: Ix::d1(hi),
        }
    }

    /// 2-D box `(lo0:hi0) x (lo1:hi1)`.
    #[inline]
    pub fn range2(lo0: i64, hi0: i64, lo1: i64, hi1: i64) -> Self {
        Bounds {
            lo: Ix::d2(lo0, lo1),
            hi: Ix::d2(hi0, hi1),
        }
    }

    /// The canonical empty 1-D bounded set `(0 : -1)` used by the paper's
    /// Table I for inactive processors.
    #[inline]
    pub fn empty(dims: usize) -> Self {
        let lo = Ix::new(&vec![0; dims]);
        let hi = Ix::new(&vec![-1; dims]);
        Bounds { lo, hi }
    }

    /// Lower bound vector `l`.
    #[inline]
    pub fn lo(&self) -> Ix {
        self.lo
    }

    /// Upper bound vector `u`.
    #[inline]
    pub fn hi(&self) -> Ix {
        self.hi
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.dims()
    }

    /// Whether the box contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        (0..self.dims()).any(|d| self.lo[d] > self.hi[d])
    }

    /// Number of points in the box (0 if empty). Saturates at `u64::MAX`.
    pub fn count(&self) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let mut n: u64 = 1;
        for d in 0..self.dims() {
            let extent = (self.hi[d] - self.lo[d] + 1) as u64;
            n = n.saturating_mul(extent);
        }
        n
    }

    /// Extent along axis `d` (`hi - lo + 1`, possibly negative -> 0).
    #[inline]
    pub fn extent(&self, d: usize) -> i64 {
        (self.hi[d] - self.lo[d] + 1).max(0)
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: &Ix) -> bool {
        debug_assert_eq!(i.dims(), self.dims());
        (0..self.dims()).all(|d| self.lo[d] <= i[d] && i[d] <= self.hi[d])
    }

    /// The paper's `&` operator: bound vector of the intersection of two
    /// bounded sets (Definition 4).
    pub fn intersect(&self, other: &Bounds) -> Bounds {
        assert_eq!(self.dims(), other.dims(), "intersect: dimension mismatch");
        let lo = Ix::new(
            &(0..self.dims())
                .map(|d| self.lo[d].max(other.lo[d]))
                .collect::<Vec<_>>(),
        );
        let hi = Ix::new(
            &(0..self.dims())
                .map(|d| self.hi[d].min(other.hi[d]))
                .collect::<Vec<_>>(),
        );
        Bounds { lo, hi }
    }

    /// Normalize any empty representation to the canonical `(0 : -1)^d`.
    pub fn canonical_empty(&self) -> Bounds {
        if self.is_empty() {
            Bounds::empty(self.dims())
        } else {
            *self
        }
    }

    /// Translate the whole box by `offset`.
    pub fn translate(&self, offset: &Ix) -> Bounds {
        Bounds {
            lo: self.lo.add(offset),
            hi: self.hi.add(offset),
        }
    }

    /// Iterate all points in lexicographic (row-major) order.
    pub fn iter(&self) -> BoundsIter {
        BoundsIter {
            bounds: *self,
            next: if self.is_empty() { None } else { Some(self.lo) },
        }
    }

    /// Row-major linear offset of `i` within the box (for array storage).
    #[inline]
    pub fn linear_offset(&self, i: &Ix) -> usize {
        debug_assert!(self.contains(i), "index {i} outside bounds {self}");
        let mut off: i64 = 0;
        for d in 0..self.dims() {
            off = off * self.extent(d) + (i[d] - self.lo[d]);
        }
        off as usize
    }

    /// Inverse of [`Bounds::linear_offset`].
    pub fn from_linear_offset(&self, mut off: usize) -> Ix {
        let d = self.dims();
        let mut coords = vec![0i64; d];
        for axis in (0..d).rev() {
            let e = self.extent(axis) as usize;
            coords[axis] = self.lo[axis] + (off % e) as i64;
            off /= e;
        }
        Ix::new(&coords)
    }
}

/// Lexicographic iterator over the points of a [`Bounds`] box.
pub struct BoundsIter {
    bounds: Bounds,
    next: Option<Ix>,
}

impl Iterator for BoundsIter {
    type Item = Ix;

    fn next(&mut self) -> Option<Ix> {
        let cur = self.next?;
        // advance like an odometer, last axis fastest
        let mut nxt = cur;
        let d = self.bounds.dims();
        let mut axis = d;
        loop {
            if axis == 0 {
                self.next = None;
                break;
            }
            axis -= 1;
            if nxt[axis] < self.bounds.hi[axis] {
                nxt[axis] += 1;
                for a in axis + 1..d {
                    nxt[a] = self.bounds.lo[a];
                }
                self.next = Some(nxt);
                break;
            }
        }
        Some(cur)
    }
}

impl fmt::Debug for Bounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bounds({self})")
    }
}

impl fmt::Display for Bounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in 0..self.dims() {
            if d > 0 {
                write!(f, "\u{d7}")?; // ×
            }
            write!(f, "{}:{}", self.lo[d], self.hi[d])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_empty() {
        assert_eq!(Bounds::range(0, 4).count(), 5);
        assert_eq!(Bounds::range(3, 2).count(), 0);
        assert!(Bounds::range(3, 2).is_empty());
        assert_eq!(Bounds::range2(0, 1, 0, 2).count(), 6);
        assert_eq!(Bounds::empty(2).count(), 0);
    }

    #[test]
    fn paper_example_1_containment() {
        // {(2,3),(2,4),(3,3),(3,4)} lies within l=(2,3), u=(3,4) and within
        // l=(1,0), u=(8,7).
        let tight = Bounds::range2(2, 3, 3, 4);
        let loose = Bounds::range2(1, 8, 0, 7);
        for p in [(2, 3), (2, 4), (3, 3), (3, 4)] {
            assert!(tight.contains(&Ix::from(p)));
            assert!(loose.contains(&Ix::from(p)));
        }
        assert_eq!(tight.count(), 4);
    }

    #[test]
    fn intersection_is_paper_amp_operator() {
        let a = Bounds::range(0, 10);
        let b = Bounds::range(-2, 8);
        assert_eq!(a.intersect(&b), Bounds::range(0, 8));
        // Example 5 of the paper: (0,1) & (-2, 8) = (0,1)
        let v = Bounds::range(0, 1);
        assert_eq!(v.intersect(&b), Bounds::range(0, 1));
        // disjoint -> empty
        assert!(Bounds::range(0, 3)
            .intersect(&Bounds::range(5, 9))
            .is_empty());
    }

    #[test]
    fn iteration_is_lexicographic_and_complete() {
        let b = Bounds::range2(0, 1, 0, 2);
        let pts: Vec<Ix> = b.iter().collect();
        assert_eq!(
            pts,
            vec![
                Ix::d2(0, 0),
                Ix::d2(0, 1),
                Ix::d2(0, 2),
                Ix::d2(1, 0),
                Ix::d2(1, 1),
                Ix::d2(1, 2),
            ]
        );
        assert_eq!(Bounds::range(2, 1).iter().count(), 0);
    }

    #[test]
    fn linear_offsets_roundtrip() {
        let b = Bounds::range2(1, 3, -1, 1);
        for (n, p) in b.iter().enumerate() {
            assert_eq!(b.linear_offset(&p), n);
            assert_eq!(b.from_linear_offset(n), p);
        }
    }

    #[test]
    fn translate_moves_box() {
        let b = Bounds::range(0, 4).translate(&Ix::d1(10));
        assert_eq!(b, Bounds::range(10, 14));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Bounds::range(0, 2).to_string(), "0:2");
        assert_eq!(Bounds::range2(0, 2, 0, 2).to_string(), "0:2\u{d7}0:2");
    }
}
