//! Index sets (paper Definition 2): a bounded set refined by a predicate,
//! written `I = (b, P)` as a set comprehension `{ i ∈ N_b | P(i) }`.

use crate::bounds::Bounds;
use crate::ix::Ix;
use crate::pred::Pred;
use std::fmt;

/// An index set `I = (b, P)`.
#[derive(Debug, Clone)]
pub struct IndexSet {
    /// The bounded set `N_b`.
    pub bounds: Bounds,
    /// The refining predicate `P`.
    pub pred: Pred,
}

impl IndexSet {
    /// The full bounded set `(b, true)`.
    pub fn full(bounds: Bounds) -> Self {
        IndexSet {
            bounds,
            pred: Pred::True,
        }
    }

    /// 1-D range `lo:hi` with no predicate.
    pub fn range(lo: i64, hi: i64) -> Self {
        IndexSet::full(Bounds::range(lo, hi))
    }

    /// A bounded set refined by `pred`.
    pub fn new(bounds: Bounds, pred: Pred) -> Self {
        IndexSet { bounds, pred }
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.bounds.dims()
    }

    /// Membership test.
    pub fn contains(&self, i: &Ix) -> bool {
        self.bounds.contains(i) && self.pred.eval(i)
    }

    /// Iterate members in lexicographic order. This is the *naive
    /// enumeration* whose cost the paper's optimizations eliminate: every
    /// point of the bounding box is visited and tested.
    pub fn iter(&self) -> impl Iterator<Item = Ix> + '_ {
        self.bounds.iter().filter(move |i| self.pred.eval(i))
    }

    /// Collect members into a vector (test/diagnostic helper).
    pub fn to_vec(&self) -> Vec<Ix> {
        self.iter().collect()
    }

    /// Number of members (by enumeration unless the predicate is `True`).
    pub fn count(&self) -> u64 {
        if self.pred.is_true() {
            self.bounds.count()
        } else {
            self.iter().count() as u64
        }
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        if self.pred.is_true() {
            self.bounds.is_empty()
        } else {
            self.iter().next().is_none()
        }
    }

    /// Refine with an additional predicate (set intersection with a
    /// comprehension over the same bounds).
    pub fn refine(&self, pred: Pred) -> IndexSet {
        IndexSet {
            bounds: self.bounds,
            pred: self.pred.clone().and(pred),
        }
    }

    /// Intersect with another index set (bounds via the paper's `&`
    /// operator, predicates conjoined).
    pub fn intersect(&self, other: &IndexSet) -> IndexSet {
        IndexSet {
            bounds: self.bounds.intersect(&other.bounds),
            pred: self.pred.clone().and(other.pred.clone()),
        }
    }
}

impl fmt::Display for IndexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pred.is_true() {
            write!(f, "({})", self.bounds)
        } else {
            write!(f, "({} | {})", self.bounds, self.pred)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::Fn1;
    use crate::pred::CmpOp;

    #[test]
    fn paper_example_2() {
        // I = (0:2 x 0:2, i1 < i2) = {(0,1),(0,2),(1,2)}
        let i = IndexSet::new(
            Bounds::range2(0, 2, 0, 2),
            Pred::DimCmp {
                dim_a: 0,
                op: CmpOp::Lt,
                dim_b: 1,
            },
        );
        assert_eq!(i.to_vec(), vec![Ix::d2(0, 1), Ix::d2(0, 2), Ix::d2(1, 2)]);
        assert_eq!(i.count(), 3);
        assert!(i.contains(&Ix::d2(0, 1)));
        assert!(!i.contains(&Ix::d2(1, 1)));
        assert!(!i.contains(&Ix::d2(9, 9)));
    }

    #[test]
    fn full_range() {
        let s = IndexSet::range(2, 5);
        assert_eq!(s.count(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.to_vec(), vec![Ix::d1(2), Ix::d1(3), Ix::d1(4), Ix::d1(5)]);
    }

    #[test]
    fn refine_and_intersect() {
        let s = IndexSet::range(0, 9);
        let evens = s.refine(Pred::Cmp {
            dim: 0,
            f: Fn1::Mod {
                inner: Box::new(Fn1::identity()),
                z: 2,
                d: 0,
            },
            op: CmpOp::Eq,
            rhs: 0,
        });
        assert_eq!(evens.count(), 5);
        let tail = IndexSet::range(6, 20);
        let both = evens.intersect(&tail);
        assert_eq!(both.to_vec(), vec![Ix::d1(6), Ix::d1(8)]);
    }

    #[test]
    fn empty_behaviour() {
        assert!(IndexSet::range(5, 2).is_empty());
        assert_eq!(IndexSet::range(5, 2).count(), 0);
        let never = IndexSet::new(Bounds::range(0, 9), Pred::False);
        assert!(never.is_empty());
        assert_eq!(never.count(), 0);
    }

    #[test]
    fn display() {
        assert_eq!(IndexSet::range(0, 9).to_string(), "(0:9)");
    }
}
