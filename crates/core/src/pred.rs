//! Index predicates (the `P` of Definition 2).
//!
//! These are the *compile-time decidable* predicates over index points that
//! make a bounded set into an index set. Data-dependent guards (such as
//! Fig. 1's `A[i] > 0`) are deliberately **not** representable here — the
//! paper keeps them as run-time conditions inside the generated node
//! programs; they live in [`crate::clause::Guard`] instead.

use crate::func::Fn1;
use crate::ix::Ix;
use crate::map::display_fn1;
use std::fmt;
use std::sync::Arc;

/// Comparison operators for predicates and guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply to an ordered pair.
    #[inline]
    pub fn holds<T: PartialOrd>(self, lhs: T, rhs: T) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// Source form (`==`, `<`, …).
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "\u{2260}",
            CmpOp::Lt => "<",
            CmpOp::Le => "\u{2264}",
            CmpOp::Gt => ">",
            CmpOp::Ge => "\u{2265}",
        }
    }
}

/// A decidable predicate over index points.
#[derive(Clone)]
pub enum Pred {
    /// Always true — the plain bounded set.
    True,
    /// Always false — the empty refinement.
    False,
    /// `f(i[dim]) op rhs`.
    Cmp {
        /// Input dimension the predicate inspects.
        dim: usize,
        /// Function applied to that coordinate.
        f: Fn1,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand constant.
        rhs: i64,
    },
    /// `i[dim_a] op i[dim_b]` — inter-dimension comparison
    /// (paper Example 2: `P((i1,i2)) = i1 <= i2`).
    DimCmp {
        /// Left dimension.
        dim_a: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Right dimension.
        dim_b: usize,
    },
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
    /// Escape hatch for predicates with no structural form (kept opaque to
    /// the optimizer, which will fall back to naive enumeration).
    Opaque {
        /// Display label.
        label: String,
        /// The predicate function.
        f: Arc<dyn Fn(&Ix) -> bool + Send + Sync>,
    },
}

impl Pred {
    /// Evaluate at an index point.
    pub fn eval(&self, i: &Ix) -> bool {
        match self {
            Pred::True => true,
            Pred::False => false,
            Pred::Cmp { dim, f, op, rhs } => op.holds(f.eval(i[*dim]), *rhs),
            Pred::DimCmp { dim_a, op, dim_b } => op.holds(i[*dim_a], i[*dim_b]),
            Pred::And(a, b) => a.eval(i) && b.eval(i),
            Pred::Or(a, b) => a.eval(i) || b.eval(i),
            Pred::Not(a) => !a.eval(i),
            Pred::Opaque { f, .. } => f(i),
        }
    }

    /// Conjunction, short-circuiting trivial cases.
    pub fn and(self, other: Pred) -> Pred {
        match (self, other) {
            (Pred::True, p) | (p, Pred::True) => p,
            (Pred::False, _) | (_, Pred::False) => Pred::False,
            (a, b) => Pred::And(Box::new(a), Box::new(b)),
        }
    }

    /// The paper's `P ∘ ip` — precompose the predicate with an index map,
    /// yielding a predicate on the *parameter* index (Definition 4/5).
    pub fn compose_map(&self, ip: &crate::map::IndexMap) -> Pred {
        match self {
            Pred::True => Pred::True,
            Pred::False => Pred::False,
            Pred::Cmp { dim, f, op, rhs } => {
                let df = &ip.dims()[*dim];
                Pred::Cmp {
                    dim: df.src,
                    f: f.compose(&df.f),
                    op: *op,
                    rhs: *rhs,
                }
            }
            Pred::DimCmp { dim_a, op, dim_b } => {
                let da = &ip.dims()[*dim_a];
                let db = &ip.dims()[*dim_b];
                // i[dim_a] op i[dim_b] becomes fa(j[sa]) op fb(j[sb]); only
                // representable structurally when both are identity — fall
                // back to an opaque closure otherwise.
                if da.f == Fn1::identity() && db.f == Fn1::identity() {
                    Pred::DimCmp {
                        dim_a: da.src,
                        op: *op,
                        dim_b: db.src,
                    }
                } else {
                    let (fa, fb, sa, sb, op) = (da.f.clone(), db.f.clone(), da.src, db.src, *op);
                    Pred::Opaque {
                        label: "dimcmp\u{2218}map".to_string(),
                        f: Arc::new(move |i: &Ix| op.holds(fa.eval(i[sa]), fb.eval(i[sb]))),
                    }
                }
            }
            Pred::And(a, b) => a.compose_map(ip).and(b.compose_map(ip)),
            Pred::Or(a, b) => Pred::Or(Box::new(a.compose_map(ip)), Box::new(b.compose_map(ip))),
            Pred::Not(a) => Pred::Not(Box::new(a.compose_map(ip))),
            Pred::Opaque { label, f } => {
                let ip = ip.clone();
                let f = Arc::clone(f);
                Pred::Opaque {
                    label: format!("{label}\u{2218}map"),
                    f: Arc::new(move |i: &Ix| f(&ip.eval(i))),
                }
            }
        }
    }

    /// Whether the predicate is structurally `True`.
    pub fn is_true(&self) -> bool {
        matches!(self, Pred::True)
    }
}

impl fmt::Debug for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pred({self})")
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => write!(f, "true"),
            Pred::False => write!(f, "false"),
            Pred::Cmp {
                dim,
                f: func,
                op,
                rhs,
            } => {
                let var = if *dim == 0 {
                    "i".to_string()
                } else {
                    format!("i{dim}")
                };
                write!(f, "{} {} {}", display_fn1(func, &var), op.symbol(), rhs)
            }
            Pred::DimCmp { dim_a, op, dim_b } => {
                write!(f, "i{dim_a} {} i{dim_b}", op.symbol())
            }
            Pred::And(a, b) => write!(f, "({a} \u{2227} {b})"),
            Pred::Or(a, b) => write!(f, "({a} \u{2228} {b})"),
            Pred::Not(a) => write!(f, "\u{ac}({a})"),
            Pred::Opaque { label, .. } => write!(f, "<{label}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::IndexMap;

    #[test]
    fn cmp_ops() {
        assert!(CmpOp::Le.holds(2, 2));
        assert!(CmpOp::Lt.holds(1, 2));
        assert!(!CmpOp::Gt.holds(1, 2));
        assert!(CmpOp::Ne.holds(1, 2));
    }

    #[test]
    fn paper_example_2_predicate() {
        // I = (0:2 x 0:2, P) with P((i1,i2)) = i1 <= i2
        // yields {(0,1),(0,2),(1,2)} among off-diagonal... actually the
        // paper lists exactly {(0,1),(0,2),(1,2)} (strict <) — the text
        // writes i1 <= i2 but the set shown is strict; we follow the set.
        let p = Pred::DimCmp {
            dim_a: 0,
            op: CmpOp::Lt,
            dim_b: 1,
        };
        let sel: Vec<Ix> = crate::bounds::Bounds::range2(0, 2, 0, 2)
            .iter()
            .filter(|i| p.eval(i))
            .collect();
        assert_eq!(sel, vec![Ix::d2(0, 1), Ix::d2(0, 2), Ix::d2(1, 2)]);
    }

    #[test]
    fn and_or_not() {
        let ge1 = Pred::Cmp {
            dim: 0,
            f: Fn1::identity(),
            op: CmpOp::Ge,
            rhs: 1,
        };
        let lt3 = Pred::Cmp {
            dim: 0,
            f: Fn1::identity(),
            op: CmpOp::Lt,
            rhs: 3,
        };
        let both = ge1.clone().and(lt3);
        assert!(!both.eval(&Ix::d1(0)));
        assert!(both.eval(&Ix::d1(1)));
        assert!(both.eval(&Ix::d1(2)));
        assert!(!both.eval(&Ix::d1(3)));
        let not = Pred::Not(Box::new(ge1));
        assert!(not.eval(&Ix::d1(0)));
        assert!(!not.eval(&Ix::d1(5)));
    }

    #[test]
    fn and_simplifies_trivial() {
        assert!(Pred::True.and(Pred::True).is_true());
        assert!(matches!(Pred::True.and(Pred::False), Pred::False));
        let p = Pred::Cmp {
            dim: 0,
            f: Fn1::identity(),
            op: CmpOp::Ge,
            rhs: 1,
        };
        assert!(matches!(Pred::True.and(p), Pred::Cmp { .. }));
    }

    #[test]
    fn compose_map_shifts_predicate() {
        // P(i) = i >= 4 composed with ip(i) = i + 2 gives i >= 2
        // (paper Example 5's predicate composition).
        let p = Pred::Cmp {
            dim: 0,
            f: Fn1::identity(),
            op: CmpOp::Ge,
            rhs: 4,
        };
        let ip = IndexMap::d1(Fn1::shift(2));
        let q = p.compose_map(&ip);
        for i in -10..10 {
            assert_eq!(q.eval(&Ix::d1(i)), i + 2 >= 4);
        }
    }

    #[test]
    fn compose_map_on_permutation() {
        let p = Pred::DimCmp {
            dim_a: 0,
            op: CmpOp::Lt,
            dim_b: 1,
        };
        let t = IndexMap::permutation(2, &[1, 0]);
        let q = p.compose_map(&t);
        // q(i0,i1) = p(i1,i0) = i1 < i0
        assert!(q.eval(&Ix::d2(5, 2)));
        assert!(!q.eval(&Ix::d2(2, 5)));
    }

    #[test]
    fn opaque_composition() {
        let p = Pred::Opaque {
            label: "even".into(),
            f: Arc::new(|i: &Ix| i[0] % 2 == 0),
        };
        let ip = IndexMap::d1(Fn1::affine(3, 1));
        let q = p.compose_map(&ip);
        for i in 0..10 {
            assert_eq!(q.eval(&Ix::d1(i)), (3 * i + 1) % 2 == 0);
        }
    }
}
