//! Modify-, Reside-, and All-sets (paper Section 2.8).
//!
//! For a clause `∆(i ∈ (imin:imax)) [f(i)]A := Expr([g(i)](B))` under
//! decompositions of `A` and `B`:
//!
//! ```text
//! Modify_p = { i ∈ (imin:imax) | proc_A(f(i)) = p }   // p computes these
//! Reside_p = { i ∈ (imin:imax) | proc_B(g(i)) = p }   // operands live here
//! All_p    = Modify_p ∪ Reside_p
//! ```
//!
//! These are the *naive* run-time-test sets whose enumeration cost
//! (`imax - imin + 1` tests per processor) the paper's Section 3
//! optimizations eliminate. They double as the brute-force oracle the
//! closed-form schedules are verified against.

use crate::dist::Decomp1;
use vcal_core::func::Fn1;
use vcal_core::pred::{CmpOp, Pred};
use vcal_core::set::IndexSet;
use vcal_core::Bounds;

/// Build the ownership predicate `proc(f(i)) = p` as a structural
/// [`Pred`] over the loop index.
pub fn ownership_pred(decomp: &Decomp1, f: &Fn1, p: i64) -> Pred {
    Pred::Cmp {
        dim: 0,
        f: decomp.proc_fn().compose(f).simplify(),
        op: CmpOp::Eq,
        rhs: p,
    }
}

/// The Modify set of processor `p`: loop indices whose *written* element
/// `A[f(i)]` is owned by `p`.
pub fn modify_set(loop_bounds: Bounds, decomp_a: &Decomp1, f: &Fn1, p: i64) -> IndexSet {
    IndexSet::new(loop_bounds, ownership_pred(decomp_a, f, p))
}

/// The Reside set of processor `p`: loop indices whose *read* element
/// `B[g(i)]` lives in `p`'s memory. For a replicated `B` every index
/// resides everywhere.
pub fn reside_set(loop_bounds: Bounds, decomp_b: &Decomp1, g: &Fn1, p: i64) -> IndexSet {
    if decomp_b.is_replicated() {
        IndexSet::full(loop_bounds)
    } else {
        IndexSet::new(loop_bounds, ownership_pred(decomp_b, g, p))
    }
}

/// The All set: `Modify_p ∪ Reside_p`.
pub fn all_set(
    loop_bounds: Bounds,
    decomp_a: &Decomp1,
    f: &Fn1,
    decomp_b: &Decomp1,
    g: &Fn1,
    p: i64,
) -> IndexSet {
    let m = ownership_pred(decomp_a, f, p);
    let r = if decomp_b.is_replicated() {
        Pred::True
    } else {
        ownership_pred(decomp_b, g, p)
    };
    IndexSet::new(loop_bounds, Pred::Or(Box::new(m), Box::new(r)))
}

/// Communication classification of one loop index for one processor, per
/// the distributed-memory template of Section 2.10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommRole {
    /// `i ∈ Reside_p \ Modify_p`: `p` must send `B[g(i)]` to the owner of
    /// `A[f(i)]`.
    SendOnly,
    /// `i ∈ Modify_p \ Reside_p`: `p` must receive `B[g(i)]` before it can
    /// update `A[f(i)]`.
    ReceiveAndUpdate,
    /// `i ∈ Modify_p ∩ Reside_p`: purely local update.
    LocalUpdate,
    /// `i ∉ All_p`: no action on `p`.
    None,
}

/// Classify index `i` for processor `p` (Section 2.10's three `if` arms).
pub fn comm_role(
    decomp_a: &Decomp1,
    f: &Fn1,
    decomp_b: &Decomp1,
    g: &Fn1,
    i: i64,
    p: i64,
) -> CommRole {
    let modifies = decomp_a.proc_of(f.eval(i)) == p;
    let resides = decomp_b.resides_on(g.eval(i), p);
    match (modifies, resides) {
        (false, true) => CommRole::SendOnly,
        (true, false) => CommRole::ReceiveAndUpdate,
        (true, true) => CommRole::LocalUpdate,
        (false, false) => CommRole::None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::Ix;

    fn setup() -> (Bounds, Decomp1, Decomp1) {
        let loop_bounds = Bounds::range(0, 14);
        let a = Decomp1::block(4, Bounds::range(0, 14));
        let b = Decomp1::scatter(4, Bounds::range(0, 14));
        (loop_bounds, a, b)
    }

    #[test]
    fn modify_sets_partition_the_loop() {
        let (lb, a, _) = setup();
        let f = Fn1::identity();
        let mut owned = vec![0u32; 15];
        for p in 0..4 {
            for i in modify_set(lb, &a, &f, p).iter() {
                owned[i.scalar() as usize] += 1;
            }
        }
        assert!(owned.iter().all(|&c| c == 1), "not a partition: {owned:?}");
    }

    #[test]
    fn modify_with_shifted_access() {
        // A[i+2] under block(4) of 0..=14 (b=4): owner of f(i)=i+2
        let (lb, a, _) = setup();
        let f = Fn1::shift(2);
        let m0: Vec<i64> = modify_set(Bounds::range(0, 12), &a, &f, 0)
            .iter()
            .map(|i| i.scalar())
            .collect();
        // f(i) in 0..=3 -> i in 0..=1 (f(i)=2,3)
        assert_eq!(m0, vec![0, 1]);
        let _ = lb;
    }

    #[test]
    fn reside_replicated_is_everything() {
        let lb = Bounds::range(0, 9);
        let b = Decomp1::replicated(4, Bounds::range(0, 9));
        for p in 0..4 {
            assert_eq!(reside_set(lb, &b, &Fn1::identity(), p).count(), 10);
        }
    }

    #[test]
    fn all_is_union() {
        let (lb, a, b) = setup();
        let f = Fn1::identity();
        let g = Fn1::identity();
        for p in 0..4 {
            let m = modify_set(lb, &a, &f, p);
            let r = reside_set(lb, &b, &g, p);
            let all = all_set(lb, &a, &f, &b, &g, p);
            for i in 0..15 {
                let ix = Ix::d1(i);
                assert_eq!(
                    all.contains(&ix),
                    m.contains(&ix) || r.contains(&ix),
                    "p={p} i={i}"
                );
            }
        }
    }

    #[test]
    fn comm_roles_cover_and_are_consistent() {
        let (_, a, b) = setup();
        let f = Fn1::identity();
        let g = Fn1::identity();
        for i in 0..15 {
            let mut send_count = 0;
            let mut recv_count = 0;
            let mut local_count = 0;
            for p in 0..4 {
                match comm_role(&a, &f, &b, &g, i, p) {
                    CommRole::SendOnly => send_count += 1,
                    CommRole::ReceiveAndUpdate => recv_count += 1,
                    CommRole::LocalUpdate => local_count += 1,
                    CommRole::None => {}
                }
            }
            // exactly one processor modifies each i
            assert_eq!(recv_count + local_count, 1, "i={i}");
            // a receive is matched by exactly one send
            assert_eq!(send_count, recv_count, "i={i}");
        }
    }

    #[test]
    fn same_decomposition_needs_no_communication() {
        // A and B block-decomposed identically, f = g = identity:
        // everything is a LocalUpdate.
        let a = Decomp1::block(4, Bounds::range(0, 14));
        for i in 0..15 {
            for p in 0..4 {
                let role = comm_role(&a, &Fn1::identity(), &a, &Fn1::identity(), i, p);
                assert!(
                    matches!(role, CommRole::LocalUpdate | CommRole::None),
                    "unexpected comm at i={i} p={p}: {role:?}"
                );
            }
        }
    }
}
