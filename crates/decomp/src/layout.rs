//! Layout maps — the executable regeneration of the paper's Figure 2.
//!
//! A [`LayoutMap`] tabulates `proc(i)` and `local(i)` for every global
//! index and renders the same processor-assignment diagrams the paper
//! draws for block, scatter, and block/scatter decompositions.

use crate::dist::Decomp1;
use std::fmt;

/// A fully tabulated decomposition layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutMap {
    /// The decomposition this layout tabulates.
    pub decomp: Decomp1,
    /// `procs[i - lo]` = owning processor of global index `i`.
    pub procs: Vec<i64>,
    /// `locals[i - lo]` = local offset of global index `i` on its owner.
    pub locals: Vec<i64>,
}

impl LayoutMap {
    /// Tabulate a decomposition.
    pub fn of(decomp: &Decomp1) -> LayoutMap {
        let lo = decomp.extent().lo()[0];
        let hi = decomp.extent().hi()[0];
        let procs = (lo..=hi).map(|i| decomp.proc_of(i)).collect();
        let locals = (lo..=hi).map(|i| decomp.local_of(i)).collect();
        LayoutMap {
            decomp: decomp.clone(),
            procs,
            locals,
        }
    }

    /// The contiguous runs of equal ownership: `(proc, global_lo, global_hi)`.
    pub fn runs(&self) -> Vec<(i64, i64, i64)> {
        let lo = self.decomp.extent().lo()[0];
        let mut runs = Vec::new();
        for (off, &p) in self.procs.iter().enumerate() {
            let i = lo + off as i64;
            match runs.last_mut() {
                Some((rp, _, rhi)) if *rp == p && *rhi == i - 1 => *rhi = i,
                _ => runs.push((p, i, i)),
            }
        }
        runs
    }
}

impl fmt::Display for LayoutMap {
    /// Renders in the style of the paper's Fig. 2:
    ///
    /// ```text
    /// BS(2) of (0:14) on 4 procs
    /// proc:  0  0  1  1  2  2  3  3  0  0  1  1  2  2  3
    /// i:     0  1  2  3  4  5  6  7  8  9 10 11 12 13 14
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.decomp)?;
        write!(f, "proc: ")?;
        for p in &self.procs {
            write!(f, "{p:>3}")?;
        }
        writeln!(f)?;
        write!(f, "i:    ")?;
        let lo = self.decomp.extent().lo()[0];
        for off in 0..self.procs.len() {
            write!(f, "{:>3}", lo + off as i64)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::Bounds;

    #[test]
    fn fig2_runs() {
        let e = Bounds::range(0, 14);
        // (a) BS(2)
        let bs = LayoutMap::of(&Decomp1::block_scatter(2, 4, e));
        assert_eq!(
            bs.runs(),
            vec![
                (0, 0, 1),
                (1, 2, 3),
                (2, 4, 5),
                (3, 6, 7),
                (0, 8, 9),
                (1, 10, 11),
                (2, 12, 13),
                (3, 14, 14),
            ]
        );
        // (b) block
        let bl = LayoutMap::of(&Decomp1::block(4, e));
        assert_eq!(
            bl.runs(),
            vec![(0, 0, 3), (1, 4, 7), (2, 8, 11), (3, 12, 14)]
        );
        // (c) scatter: 15 singleton runs
        let sc = LayoutMap::of(&Decomp1::scatter(4, e));
        assert_eq!(sc.runs().len(), 15);
        assert_eq!(sc.runs()[0], (0, 0, 0));
        assert_eq!(sc.runs()[1], (1, 1, 1));
    }

    #[test]
    fn display_contains_proc_row() {
        let m = LayoutMap::of(&Decomp1::scatter(4, Bounds::range(0, 7)));
        let s = m.to_string();
        assert!(s.contains("proc:   0  1  2  3  0  1  2  3"), "{s}");
    }
}
