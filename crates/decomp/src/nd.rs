//! Multi-dimensional decompositions over processor grids.
//!
//! The paper restricts its derivations to one dimension "for reasons of
//! clarity"; the natural d-dimensional generalization (the one HPF later
//! standardized) decomposes each axis independently onto one axis of a
//! processor grid. A [`DecompNd`] is a per-axis vector of [`Decomp1`]s; an
//! undistributed axis is simply an axis decomposed on a grid dimension of
//! size 1.

use crate::dist::Decomp1;
use vcal_core::{Bounds, Ix};

/// A d-dimensional decomposition: axis `k` of the data is distributed by
/// `axes[k]` over dimension `k` of the processor grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecompNd {
    axes: Vec<Decomp1>,
}

impl DecompNd {
    /// Build from per-axis decompositions. The flat processor id is
    /// row-major over the implied grid `axes[0].pmax() x axes[1].pmax() x ...`.
    pub fn new(axes: Vec<Decomp1>) -> Self {
        assert!(!axes.is_empty() && axes.len() <= vcal_core::ix::MAX_DIMS);
        DecompNd { axes }
    }

    /// Dimensionality of the data.
    pub fn dims(&self) -> usize {
        self.axes.len()
    }

    /// Per-axis decompositions.
    pub fn axes(&self) -> &[Decomp1] {
        &self.axes
    }

    /// Total number of processors (grid volume).
    pub fn pmax(&self) -> i64 {
        self.axes.iter().map(|a| a.pmax()).product()
    }

    /// The global data extent.
    pub fn extent(&self) -> Bounds {
        let lo: Vec<i64> = self.axes.iter().map(|a| a.extent().lo()[0]).collect();
        let hi: Vec<i64> = self.axes.iter().map(|a| a.extent().hi()[0]).collect();
        Bounds::new(Ix::new(&lo), Ix::new(&hi))
    }

    /// Grid coordinates of flat processor id `p` (row-major).
    pub fn grid_coords(&self, p: i64) -> Vec<i64> {
        let mut coords = vec![0; self.dims()];
        let mut rest = p;
        for k in (0..self.dims()).rev() {
            let extent = self.axes[k].pmax();
            coords[k] = rest % extent;
            rest /= extent;
        }
        coords
    }

    /// Flat processor id from grid coordinates.
    pub fn flat_proc(&self, coords: &[i64]) -> i64 {
        assert_eq!(coords.len(), self.dims());
        let mut p = 0;
        for (k, &c) in coords.iter().enumerate() {
            debug_assert!((0..self.axes[k].pmax()).contains(&c));
            p = p * self.axes[k].pmax() + c;
        }
        p
    }

    /// Owning (flat) processor of global index `i`.
    pub fn proc_of(&self, i: &Ix) -> i64 {
        debug_assert_eq!(i.dims(), self.dims());
        let coords: Vec<i64> = (0..self.dims())
            .map(|k| self.axes[k].proc_of(i[k]))
            .collect();
        self.flat_proc(&coords)
    }

    /// Local index of global index `i` on its owner.
    pub fn local_of(&self, i: &Ix) -> Ix {
        debug_assert_eq!(i.dims(), self.dims());
        let coords: Vec<i64> = (0..self.dims())
            .map(|k| self.axes[k].local_of(i[k]))
            .collect();
        Ix::new(&coords)
    }

    /// Global index stored at `(p, local)`.
    pub fn global_of(&self, p: i64, local: &Ix) -> Ix {
        let g = self.grid_coords(p);
        let coords: Vec<i64> = (0..self.dims())
            .map(|k| self.axes[k].global_of(g[k], local[k]))
            .collect();
        Ix::new(&coords)
    }

    /// The local index box of processor `p` (zero-based per axis, sized by
    /// the per-axis local counts).
    pub fn local_bounds(&self, p: i64) -> Bounds {
        let g = self.grid_coords(p);
        let lo = vec![0i64; self.dims()];
        let hi: Vec<i64> = (0..self.dims())
            .map(|k| self.axes[k].local_count(g[k]) - 1)
            .collect();
        Bounds::new(Ix::new(&lo), Ix::new(&hi))
    }

    /// Iterate all global indices owned by `p` in lexicographic order.
    pub fn owned_globals(&self, p: i64) -> impl Iterator<Item = Ix> + '_ {
        let lb = self.local_bounds(p);
        lb.iter().map(move |l| self.global_of(p, &l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_2x2() -> DecompNd {
        // 8x6 matrix, rows block over 2 procs, cols scatter over 2 procs
        DecompNd::new(vec![
            Decomp1::block(2, Bounds::range(0, 7)),
            Decomp1::scatter(2, Bounds::range(0, 5)),
        ])
    }

    #[test]
    fn grid_roundtrip() {
        let d = grid_2x2();
        assert_eq!(d.pmax(), 4);
        for p in 0..4 {
            let c = d.grid_coords(p);
            assert_eq!(d.flat_proc(&c), p);
        }
    }

    #[test]
    fn ownership_partitions_matrix() {
        let d = grid_2x2();
        let mut count = std::collections::HashMap::new();
        for i in d.extent().iter() {
            let p = d.proc_of(&i);
            *count.entry(p).or_insert(0) += 1;
            // roundtrip
            assert_eq!(d.global_of(p, &d.local_of(&i)), i);
        }
        // 8*6 = 48 elements over 4 procs, rows split 4/4, cols 3/3
        assert_eq!(count.values().sum::<i32>(), 48);
        for p in 0..4 {
            assert_eq!(count[&p], 12, "p={p}");
        }
    }

    #[test]
    fn owned_globals_cover() {
        let d = grid_2x2();
        let mut seen = std::collections::HashSet::new();
        for p in 0..4 {
            let lb = d.local_bounds(p);
            assert_eq!(lb.count(), 12);
            for g in d.owned_globals(p) {
                assert_eq!(d.proc_of(&g), p);
                assert!(seen.insert(g));
            }
        }
        assert_eq!(seen.len(), 48);
    }

    #[test]
    fn undistributed_axis_via_unit_grid() {
        // rows block over 3 procs, columns not distributed
        let d = DecompNd::new(vec![
            Decomp1::block(3, Bounds::range(0, 8)),
            Decomp1::block(1, Bounds::range(0, 4)),
        ]);
        assert_eq!(d.pmax(), 3);
        assert_eq!(d.proc_of(&Ix::d2(0, 4)), 0);
        assert_eq!(d.proc_of(&Ix::d2(8, 0)), 2);
        assert_eq!(d.local_bounds(0), Bounds::range2(0, 2, 0, 4));
    }
}
