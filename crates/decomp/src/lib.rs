//! # vcal-decomp — data decompositions for V-cal
//!
//! The decomposition substrate of the reproduction (paper Sections 2.6,
//! 2.8 and Figure 2):
//!
//! * [`dist`] — 1-D block / scatter / block-scatter / replicated
//!   decompositions with `proc`, `local`, and their exact inverses, plus
//!   symbolic [`vcal_core::Fn1`] forms that feed the ownership predicate
//!   `proc(f(i)) = p` to the `vcal-spmd` optimizer;
//! * [`nd`] — per-axis d-dimensional decompositions on processor grids;
//! * [`sets`] — the Modify/Reside/All set algebra of Section 2.8 and the
//!   send/receive/local classification of the Section 2.10 template;
//! * [`layout`] — tabulated layout maps regenerating Figure 2;
//! * [`redistribute`] — dynamic redistribution plans (Section 5 future
//!   work, implemented as an extension);
//! * [`overlap`] — overlapped (halo) block decompositions with ghost
//!   exchange schedules (same).
#![warn(missing_docs)]

pub mod dist;
pub mod layout;
pub mod nd;
pub mod overlap;
pub mod redistribute;
pub mod sets;

pub use dist::{Decomp1, Distribution};
pub use layout::LayoutMap;
pub use nd::DecompNd;
pub use overlap::{GhostMsg, OverlapDecomp};
pub use redistribute::{RedistPlan, Transfer};
pub use sets::{all_set, comm_role, modify_set, ownership_pred, reside_set, CommRole};
