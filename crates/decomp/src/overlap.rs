//! Overlapped (halo / ghost-cell) decompositions — the second of the
//! paper's Section 5 "further research" items ("dynamic- and overlapped
//! decompositions").
//!
//! An [`OverlapDecomp`] extends a block decomposition with `h` ghost cells
//! on each side of every processor's owned range. For stencil accesses
//! `B[i±s]` with `s <= h`, every read becomes local after one ghost
//! exchange per sweep, turning the per-iteration communication of the
//! Section 2.10 template into a single boundary exchange.

use crate::dist::{Decomp1, Distribution};

/// A block decomposition widened by `h` ghost cells per side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlapDecomp {
    base: Decomp1,
    halo: i64,
}

/// One ghost-exchange message: `src` sends the globals
/// `[global_lo, global_hi]` (which it owns) to `dst`, which stores them in
/// its ghost region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GhostMsg {
    /// Owner and sender of the boundary elements.
    pub src: i64,
    /// Receiver holding them as ghosts.
    pub dst: i64,
    /// First global index sent.
    pub global_lo: i64,
    /// Last global index sent.
    pub global_hi: i64,
}

impl OverlapDecomp {
    /// Widen a block decomposition by `h >= 0` ghost cells per side.
    /// Panics if `base` is not a block decomposition.
    pub fn new(base: Decomp1, halo: i64) -> Self {
        assert!(
            matches!(base.dist(), Distribution::Block { .. }),
            "overlap decompositions are defined for block layouts"
        );
        assert!(halo >= 0);
        OverlapDecomp { base, halo }
    }

    /// The underlying block decomposition.
    pub fn base(&self) -> &Decomp1 {
        &self.base
    }

    /// Ghost width per side.
    pub fn halo(&self) -> i64 {
        self.halo
    }

    /// The *owned* global range of processor `p` (no ghosts), or `None`
    /// if `p` owns nothing.
    pub fn owned_range(&self, p: i64) -> Option<(i64, i64)> {
        let cnt = self.base.local_count(p);
        if cnt == 0 {
            return None;
        }
        let lo = self.base.global_of(p, 0);
        Some((lo, lo + cnt - 1))
    }

    /// The *stored* global range of `p`: owned range extended by the halo,
    /// clipped to the extent.
    pub fn stored_range(&self, p: i64) -> Option<(i64, i64)> {
        let (lo, hi) = self.owned_range(p)?;
        let e = self.base.extent();
        Some((
            (lo - self.halo).max(e.lo()[0]),
            (hi + self.halo).min(e.hi()[0]),
        ))
    }

    /// Whether `p` can read global `i` without communication (owned or
    /// ghost).
    pub fn readable_locally(&self, i: i64, p: i64) -> bool {
        match self.stored_range(p) {
            Some((lo, hi)) => (lo..=hi).contains(&i),
            None => false,
        }
    }

    /// Local offset of global `i` in `p`'s storage (ghost-inclusive,
    /// starting at 0 for the lowest stored global). Panics if not stored.
    pub fn local_of(&self, i: i64, p: i64) -> i64 {
        let (lo, hi) = self.stored_range(p).expect("processor stores nothing");
        assert!((lo..=hi).contains(&i), "global {i} not stored on {p}");
        i - lo
    }

    /// Storage size (owned + ghosts) of processor `p`.
    pub fn storage_count(&self, p: i64) -> i64 {
        match self.stored_range(p) {
            Some((lo, hi)) => hi - lo + 1,
            None => 0,
        }
    }

    /// The complete ghost-exchange schedule for one sweep: every processor
    /// sends its boundary elements to neighbours whose halo covers them.
    pub fn exchange_plan(&self) -> Vec<GhostMsg> {
        let pmax = self.base.pmax();
        let mut msgs = Vec::new();
        for dst in 0..pmax {
            let Some((olo, ohi)) = self.owned_range(dst) else {
                continue;
            };
            let Some((slo, shi)) = self.stored_range(dst) else {
                continue;
            };
            // left ghosts [slo, olo-1] and right ghosts [ohi+1, shi]
            for (glo, ghi) in [(slo, olo - 1), (ohi + 1, shi)] {
                if glo > ghi {
                    continue;
                }
                // group the ghost range by owner (a halo can span blocks)
                let mut i = glo;
                while i <= ghi {
                    let src = self.base.proc_of(i);
                    let src_cnt = self.base.local_count(src);
                    let src_hi = self.base.global_of(src, src_cnt - 1);
                    let run_hi = src_hi.min(ghi);
                    msgs.push(GhostMsg {
                        src,
                        dst,
                        global_lo: i,
                        global_hi: run_hi,
                    });
                    i = run_hi + 1;
                }
            }
        }
        msgs
    }

    /// Total elements exchanged per sweep.
    pub fn exchange_volume(&self) -> i64 {
        self.exchange_plan()
            .iter()
            .map(|m| m.global_hi - m.global_lo + 1)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::Bounds;

    fn overlap(n: i64, pmax: i64, h: i64) -> OverlapDecomp {
        OverlapDecomp::new(Decomp1::block(pmax, Bounds::range(0, n - 1)), h)
    }

    #[test]
    fn stored_ranges_extend_owned() {
        let d = overlap(16, 4, 1); // blocks of 4
        assert_eq!(d.owned_range(1), Some((4, 7)));
        assert_eq!(d.stored_range(1), Some((3, 8)));
        // edges clip to the extent
        assert_eq!(d.stored_range(0), Some((0, 4)));
        assert_eq!(d.stored_range(3), Some((11, 15)));
    }

    #[test]
    fn stencil_reads_become_local() {
        let d = overlap(16, 4, 1);
        // every owner can read i-1 and i+1 of its owned range locally
        for p in 0..4 {
            let (lo, hi) = d.owned_range(p).unwrap();
            for i in lo..=hi {
                for s in [-1i64, 0, 1] {
                    let j = i + s;
                    if (0..16).contains(&j) {
                        assert!(d.readable_locally(j, p), "p={p} j={j}");
                    }
                }
            }
        }
        // but not two away
        assert!(!d.readable_locally(9, 0));
    }

    #[test]
    fn exchange_plan_is_neighbor_only_for_small_halo() {
        let d = overlap(16, 4, 1);
        let plan = d.exchange_plan();
        // interior procs receive 2 msgs, edges 1: total 6 messages of 1 elem
        assert_eq!(plan.len(), 6);
        assert_eq!(d.exchange_volume(), 6);
        for m in &plan {
            assert_eq!((m.src - m.dst).abs(), 1, "non-neighbor msg {m:?}");
            assert_eq!(m.global_lo, m.global_hi);
            // the source really owns what it sends
            assert_eq!(d.base().proc_of(m.global_lo), m.src);
        }
    }

    #[test]
    fn wide_halo_spans_multiple_owners() {
        let d = overlap(16, 4, 6); // halo wider than one block of 4
        let plan = d.exchange_plan();
        // p0's right halo covers globals 4..=9, owned by p1 (4..=7) and p2 (8..=9)
        let p0_right: Vec<_> = plan
            .iter()
            .filter(|m| m.dst == 0 && m.global_lo > 3)
            .collect();
        assert_eq!(p0_right.len(), 2);
        assert_eq!(p0_right[0].src, 1);
        assert_eq!(p0_right[1].src, 2);
        // every ghost cell of every processor is covered exactly once
        for p in 0..4 {
            let (olo, ohi) = d.owned_range(p).unwrap();
            let (slo, shi) = d.stored_range(p).unwrap();
            for g in slo..=shi {
                if (olo..=ohi).contains(&g) {
                    continue;
                }
                let covers: Vec<_> = plan
                    .iter()
                    .filter(|m| m.dst == p && (m.global_lo..=m.global_hi).contains(&g))
                    .collect();
                assert_eq!(covers.len(), 1, "ghost {g} of p{p} covered {covers:?}");
            }
        }
    }

    #[test]
    fn zero_halo_means_no_exchange() {
        let d = overlap(16, 4, 0);
        assert!(d.exchange_plan().is_empty());
        assert_eq!(d.storage_count(0), 4);
    }

    #[test]
    #[should_panic(expected = "block layouts")]
    fn scatter_base_rejected() {
        let _ = OverlapDecomp::new(Decomp1::scatter(4, Bounds::range(0, 15)), 1);
    }
}
