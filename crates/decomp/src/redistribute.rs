//! Dynamic redistribution (the paper's Section 5 "further research":
//! dynamic decompositions, i.e. a redistribution of the data at run time).
//!
//! A [`RedistPlan`] is the complete message schedule converting an array
//! laid out by decomposition `from` into layout `to`: for every global
//! index owned by `p` under `from` and by `q ≠ p` under `to`, the element
//! must travel `p → q`. Adjacent globals travelling between the same pair
//! are coalesced into runs, which is what makes block ↔ scatter
//! redistribution cost measurable rather than hand-waved.

use crate::dist::Decomp1;
use std::collections::BTreeMap;

/// One coalesced transfer: `count` elements, the `k`-th being global index
/// `global_start + k*global_stride`, moving from `src`'s local memory
/// (starting at `src_local_start`) to `dst`'s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transfer {
    /// Source processor.
    pub src: i64,
    /// Destination processor.
    pub dst: i64,
    /// First global index of the run.
    pub global_start: i64,
    /// Stride between consecutive globals of the run.
    pub global_stride: i64,
    /// Number of elements.
    pub count: i64,
}

/// A complete redistribution schedule between two decompositions of the
/// same extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedistPlan {
    /// Source decomposition.
    pub from: Decomp1,
    /// Destination decomposition.
    pub to: Decomp1,
    /// All transfers with `src != dst`, sorted by `(src, dst, global_start)`.
    pub transfers: Vec<Transfer>,
    /// Number of elements that stay on their processor.
    pub stationary: i64,
}

impl RedistPlan {
    /// Build the plan between two decompositions of the same extent.
    /// Panics if the extents differ.
    pub fn build(from: &Decomp1, to: &Decomp1) -> RedistPlan {
        assert_eq!(
            from.extent(),
            to.extent(),
            "redistribution requires identical extents"
        );
        assert!(
            !from.is_replicated() && !to.is_replicated(),
            "redistribution between replicated layouts is a broadcast, not a plan"
        );
        let lo = from.extent().lo()[0];
        let hi = from.extent().hi()[0];
        let mut stationary = 0i64;
        // group moving elements by (src, dst), coalescing constant-stride runs
        let mut by_pair: BTreeMap<(i64, i64), Vec<Transfer>> = BTreeMap::new();
        for i in lo..=hi {
            let src = from.proc_of(i);
            let dst = to.proc_of(i);
            if src == dst {
                stationary += 1;
                continue;
            }
            let runs = by_pair.entry((src, dst)).or_default();
            match runs.last_mut() {
                Some(t)
                    if (t.count == 1 && i > t.global_start)
                        || (t.count > 1 && i == t.global_start + t.global_stride * t.count) =>
                {
                    if t.count == 1 {
                        t.global_stride = i - t.global_start;
                        t.count = 2;
                    } else {
                        t.count += 1;
                    }
                }
                _ => runs.push(Transfer {
                    src,
                    dst,
                    global_start: i,
                    global_stride: 1,
                    count: 1,
                }),
            }
        }
        let transfers = by_pair.into_values().flatten().collect();
        RedistPlan {
            from: from.clone(),
            to: to.clone(),
            transfers,
            stationary,
        }
    }

    /// Total number of elements moved between processors.
    pub fn moved_elements(&self) -> i64 {
        self.transfers.iter().map(|t| t.count).sum()
    }

    /// Number of point-to-point messages, assuming each coalesced run is
    /// one message.
    pub fn message_count(&self) -> usize {
        self.transfers.len()
    }

    /// Number of distinct communicating processor pairs.
    pub fn pair_count(&self) -> usize {
        let mut pairs: Vec<(i64, i64)> = self.transfers.iter().map(|t| (t.src, t.dst)).collect();
        pairs.dedup();
        pairs.sort_unstable();
        pairs.dedup();
        pairs.len()
    }

    /// Iterate the `(global, src, dst)` element moves of the plan.
    pub fn element_moves(&self) -> impl Iterator<Item = (i64, i64, i64)> + '_ {
        self.transfers.iter().flat_map(|t| {
            (0..t.count).map(move |k| (t.global_start + k * t.global_stride, t.src, t.dst))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::Bounds;

    #[test]
    fn identity_redistribution_moves_nothing() {
        let d = Decomp1::block(4, Bounds::range(0, 15));
        let plan = RedistPlan::build(&d, &d);
        assert_eq!(plan.moved_elements(), 0);
        assert_eq!(plan.stationary, 16);
        assert_eq!(plan.message_count(), 0);
    }

    #[test]
    fn block_to_scatter_plan_is_exact() {
        let n = 16;
        let from = Decomp1::block(4, Bounds::range(0, n - 1));
        let to = Decomp1::scatter(4, Bounds::range(0, n - 1));
        let plan = RedistPlan::build(&from, &to);
        // every element's (src,dst) must match the decompositions
        let mut moved = 0;
        for (g, src, dst) in plan.element_moves() {
            assert_eq!(from.proc_of(g), src);
            assert_eq!(to.proc_of(g), dst);
            assert_ne!(src, dst);
            moved += 1;
        }
        assert_eq!(moved + plan.stationary, n);
        // block(4)->scatter(4) on 16: element stays iff
        // i div 4 == i mod 4 -> i in {0,5,10,15}
        assert_eq!(plan.stationary, 4);
        assert_eq!(plan.moved_elements(), 12);
    }

    #[test]
    fn coalescing_produces_strided_runs() {
        // block -> scatter: the elements of one source block going to one
        // destination are contiguous-to-strided; from scatter -> block the
        // sources are strided. Either way each (src,dst) pair should
        // coalesce into a single run here.
        let n = 16;
        let from = Decomp1::scatter(4, Bounds::range(0, n - 1));
        let to = Decomp1::block(4, Bounds::range(0, n - 1));
        let plan = RedistPlan::build(&from, &to);
        // 4x4 pairs minus the 4 diagonal-ish stationaries -> 12 pairs,
        // each one run of 1 element... n=16: each (src,dst) pair has
        // exactly one element. With larger n runs coalesce:
        let from_big = Decomp1::scatter(4, Bounds::range(0, 63));
        let to_big = Decomp1::block(4, Bounds::range(0, 63));
        let plan_big = RedistPlan::build(&from_big, &to_big);
        assert_eq!(plan_big.moved_elements(), 48);
        // scatter->block: for a fixed (src,dst), globals are
        // {i : i mod 4 = src, i div 16 = dst} = 4 elements stride 4 -> 1 run
        assert_eq!(plan_big.message_count(), 12, "{:#?}", plan_big.transfers);
        for t in &plan_big.transfers {
            assert_eq!(t.count, 4);
            assert_eq!(t.global_stride, 4);
        }
        let _ = plan;
    }

    #[test]
    fn bs_to_bs_different_blocksize() {
        let from = Decomp1::block_scatter(2, 4, Bounds::range(0, 31));
        let to = Decomp1::block_scatter(4, 4, Bounds::range(0, 31));
        let plan = RedistPlan::build(&from, &to);
        for (g, src, dst) in plan.element_moves() {
            assert_eq!(from.proc_of(g), src);
            assert_eq!(to.proc_of(g), dst);
        }
        let total: i64 = plan.moved_elements() + plan.stationary;
        assert_eq!(total, 32);
        assert!(plan.pair_count() > 0);
    }

    #[test]
    #[should_panic(expected = "identical extents")]
    fn extent_mismatch_rejected() {
        let a = Decomp1::block(4, Bounds::range(0, 15));
        let b = Decomp1::block(4, Bounds::range(0, 16));
        let _ = RedistPlan::build(&a, &b);
    }
}
