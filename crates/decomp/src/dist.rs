//! One-dimensional data decompositions (paper Section 2.6 and Figure 2).
//!
//! A decomposition is a view from a global index space onto a
//! `(processor, local)` machine image. The paper's family is
//! **block-scatter** `BS(b)`: split the data into blocks of `b` consecutive
//! elements and deal the blocks to processors round-robin:
//!
//! ```text
//! proc(i)  = (i div b) mod pmax
//! local(i) = b * (i div (b * pmax)) + i mod b
//! ```
//!
//! `Scatter` is `BS(1)`; `Block` is `BS(ceil(n / pmax))` (every processor
//! gets exactly one block). `Replicated` gives every processor a full
//! copy (a read-only decomposition: it has no single owner).

use vcal_core::func::Fn1;
use vcal_core::Bounds;
use vcal_numth::{div_ceil, div_floor, mod_floor};

/// The distribution family of a 1-D decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Contiguous blocks of size `b`, processor `p` owning
    /// `[p*b, (p+1)*b)` (Fig. 2b).
    Block {
        /// Block size.
        b: i64,
    },
    /// Round-robin single elements: `proc(i) = i mod pmax` (Fig. 2c).
    Scatter,
    /// Blocks of size `b` dealt round-robin (Fig. 2a).
    BlockScatter {
        /// Block size.
        b: i64,
    },
    /// Every processor holds the whole array (read-only decomposition).
    Replicated,
}

impl Distribution {
    /// Short display name matching the paper's terminology.
    pub fn name(&self) -> String {
        match self {
            Distribution::Block { b } => format!("Block({b})"),
            Distribution::Scatter => "Scatter".to_string(),
            Distribution::BlockScatter { b } => format!("BS({b})"),
            Distribution::Replicated => "Replicated".to_string(),
        }
    }
}

/// A 1-D decomposition of a global index range over `pmax` processors.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Decomp1 {
    dist: Distribution,
    pmax: i64,
    extent: Bounds,
}

impl Decomp1 {
    /// Create a decomposition of `extent` (a 1-D bounds box) over `pmax`
    /// processors. Panics on invalid parameters.
    pub fn new(dist: Distribution, pmax: i64, extent: Bounds) -> Self {
        assert!(pmax >= 1, "need at least one processor");
        assert_eq!(extent.dims(), 1, "Decomp1 needs a 1-D extent");
        match dist {
            Distribution::Block { b } | Distribution::BlockScatter { b } => {
                assert!(b >= 1, "block size must be >= 1");
                if let Distribution::Block { b } = dist {
                    // a block decomposition must cover the extent
                    assert!(
                        b * pmax >= extent.count() as i64,
                        "Block({b}) on {pmax} processors cannot hold {} elements",
                        extent.count()
                    );
                }
            }
            Distribution::Scatter | Distribution::Replicated => {}
        }
        Decomp1 { dist, pmax, extent }
    }

    /// Block decomposition with the canonical block size
    /// `b = ceil(n / pmax)` (the paper's `pmax.b = f(imax)` case).
    pub fn block(pmax: i64, extent: Bounds) -> Self {
        let n = extent.count() as i64;
        let b = div_ceil(n.max(1), pmax);
        Decomp1::new(Distribution::Block { b }, pmax, extent)
    }

    /// Scatter (cyclic) decomposition.
    pub fn scatter(pmax: i64, extent: Bounds) -> Self {
        Decomp1::new(Distribution::Scatter, pmax, extent)
    }

    /// Block-scatter (block-cyclic) decomposition with block size `b`.
    pub fn block_scatter(b: i64, pmax: i64, extent: Bounds) -> Self {
        Decomp1::new(Distribution::BlockScatter { b }, pmax, extent)
    }

    /// Replicated decomposition.
    pub fn replicated(pmax: i64, extent: Bounds) -> Self {
        Decomp1::new(Distribution::Replicated, pmax, extent)
    }

    /// The distribution family.
    pub fn dist(&self) -> Distribution {
        self.dist
    }

    /// Number of processors.
    pub fn pmax(&self) -> i64 {
        self.pmax
    }

    /// The decomposed global index range.
    pub fn extent(&self) -> Bounds {
        self.extent
    }

    /// Number of elements.
    pub fn len(&self) -> i64 {
        self.extent.count() as i64
    }

    /// Whether the extent is empty.
    pub fn is_empty(&self) -> bool {
        self.extent.is_empty()
    }

    /// Whether every processor holds every element.
    pub fn is_replicated(&self) -> bool {
        matches!(self.dist, Distribution::Replicated)
    }

    #[inline]
    fn zero_based(&self, i: i64) -> i64 {
        i - self.extent.lo()[0]
    }

    /// Owning processor of global index `i` (the paper's `proc(i)`).
    /// For `Replicated` the canonical owner is processor 0.
    #[inline]
    pub fn proc_of(&self, i: i64) -> i64 {
        debug_assert!(
            self.extent.contains(&vcal_core::Ix::d1(i)),
            "index {i} outside extent"
        );
        let x = self.zero_based(i);
        match self.dist {
            Distribution::Block { b } => div_floor(x, b),
            Distribution::Scatter => mod_floor(x, self.pmax),
            Distribution::BlockScatter { b } => mod_floor(div_floor(x, b), self.pmax),
            Distribution::Replicated => 0,
        }
    }

    /// Local memory offset of global index `i` on its owner (the paper's
    /// `local(i)`).
    #[inline]
    pub fn local_of(&self, i: i64) -> i64 {
        debug_assert!(
            self.extent.contains(&vcal_core::Ix::d1(i)),
            "index {i} outside extent"
        );
        let x = self.zero_based(i);
        match self.dist {
            Distribution::Block { b } => mod_floor(x, b),
            Distribution::Scatter => div_floor(x, self.pmax),
            Distribution::BlockScatter { b } => b * div_floor(x, b * self.pmax) + mod_floor(x, b),
            Distribution::Replicated => x,
        }
    }

    /// Inverse mapping: the global index stored at `(p, local)`.
    /// Returns values that may fall outside the extent for out-of-range
    /// locals; callers should check with [`Bounds::contains`].
    #[inline]
    pub fn global_of(&self, p: i64, local: i64) -> i64 {
        debug_assert!((0..self.pmax).contains(&p), "processor {p} out of range");
        let lo = self.extent.lo()[0];
        lo + match self.dist {
            Distribution::Block { b } => p * b + local,
            Distribution::Scatter => local * self.pmax + p,
            Distribution::BlockScatter { b } => {
                div_floor(local, b) * b * self.pmax + p * b + mod_floor(local, b)
            }
            Distribution::Replicated => local,
        }
    }

    /// Whether processor `p` holds global index `i` in its local memory.
    #[inline]
    pub fn resides_on(&self, i: i64, p: i64) -> bool {
        if self.is_replicated() {
            return true;
        }
        self.proc_of(i) == p
    }

    /// Number of elements in processor `p`'s local memory.
    pub fn local_count(&self, p: i64) -> i64 {
        debug_assert!((0..self.pmax).contains(&p));
        let n = self.len();
        if n == 0 {
            return 0;
        }
        match self.dist {
            Distribution::Block { b } => (n - p * b).clamp(0, b),
            Distribution::Scatter => {
                if p < n {
                    (n - 1 - p) / self.pmax + 1
                } else {
                    0
                }
            }
            Distribution::BlockScatter { b } => {
                let cycle = b * self.pmax;
                let full = div_floor(n, cycle);
                let rem = mod_floor(n, cycle);
                full * b + (rem - p * b).clamp(0, b)
            }
            Distribution::Replicated => n,
        }
    }

    /// Size of the largest local memory over all processors (the per-node
    /// allocation size of the machine image `A'`).
    pub fn max_local_count(&self) -> i64 {
        (0..self.pmax)
            .map(|p| self.local_count(p))
            .max()
            .unwrap_or(0)
    }

    /// Iterate the global indices owned by `p`, in increasing order.
    pub fn owned_globals(&self, p: i64) -> impl Iterator<Item = i64> + '_ {
        let count = self.local_count(p);
        (0..count).map(move |l| self.global_of(p, l))
    }

    /// The symbolic `proc` function as an [`Fn1`] over global indices —
    /// this is what feeds the ownership predicate `proc(f(i)) = p` into
    /// the Table I classifier.
    pub fn proc_fn(&self) -> Fn1 {
        let lo = self.extent.lo()[0];
        let x = Fn1::shift(-lo);
        match self.dist {
            Distribution::Block { b } => Fn1::Div {
                inner: Box::new(x),
                q: b,
            },
            Distribution::Scatter => Fn1::Mod {
                inner: Box::new(x),
                z: self.pmax,
                d: 0,
            },
            Distribution::BlockScatter { b } => Fn1::Mod {
                inner: Box::new(Fn1::Div {
                    inner: Box::new(x),
                    q: b,
                }),
                z: self.pmax,
                d: 0,
            },
            Distribution::Replicated => Fn1::Const(0),
        }
        .simplify()
    }

    /// The symbolic `local` function as an [`Fn1`] over global indices.
    pub fn local_fn(&self) -> Fn1 {
        let lo = self.extent.lo()[0];
        let x = || Box::new(Fn1::shift(-lo));
        match self.dist {
            Distribution::Block { b } => Fn1::Mod {
                inner: x(),
                z: b,
                d: 0,
            },
            Distribution::Scatter => Fn1::Div {
                inner: x(),
                q: self.pmax,
            },
            Distribution::BlockScatter { b } => Fn1::Sum(
                Box::new(Fn1::Scaled {
                    a: b,
                    c: 0,
                    inner: Box::new(Fn1::Div {
                        inner: x(),
                        q: b * self.pmax,
                    }),
                }),
                Box::new(Fn1::Mod {
                    inner: x(),
                    z: b,
                    d: 0,
                }),
            ),
            Distribution::Replicated => Fn1::shift(-lo),
        }
        .simplify()
    }
}

impl std::fmt::Display for Decomp1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} of ({}) on {} procs",
            self.dist.name(),
            self.extent,
            self.pmax
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_decomps(n: i64, pmax: i64) -> Vec<Decomp1> {
        let e = Bounds::range(0, n - 1);
        let mut v = vec![
            Decomp1::block(pmax, e),
            Decomp1::scatter(pmax, e),
            Decomp1::replicated(pmax, e),
        ];
        for b in [1, 2, 3, 5] {
            v.push(Decomp1::block_scatter(b, pmax, e));
        }
        v
    }

    #[test]
    fn fig2a_block_scatter() {
        // Fig 2a: BS(2), n = 15, pmax = 4:
        // i:    0 1 2 3 4 5 6 7 8 9 10 11 12 13 14
        // proc: 0 0 1 1 2 2 3 3 0 0  1  1  2  2  3
        let d = Decomp1::block_scatter(2, 4, Bounds::range(0, 14));
        let procs: Vec<i64> = (0..15).map(|i| d.proc_of(i)).collect();
        assert_eq!(procs, vec![0, 0, 1, 1, 2, 2, 3, 3, 0, 0, 1, 1, 2, 2, 3]);
        // locals within p0: i=0,1,8,9 -> 0,1,2,3
        assert_eq!([0, 1, 8, 9].map(|i| d.local_of(i)), [0, 1, 2, 3]);
    }

    #[test]
    fn fig2b_block() {
        // Fig 2b: block, n = 15, pmax = 4, b = ceil(15/4) = 4:
        // proc: 0 0 0 0 1 1 1 1 2 2 2 2 3 3 3
        let d = Decomp1::block(4, Bounds::range(0, 14));
        assert_eq!(d.dist(), Distribution::Block { b: 4 });
        let procs: Vec<i64> = (0..15).map(|i| d.proc_of(i)).collect();
        assert_eq!(procs, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3]);
        assert_eq!(d.local_count(3), 3);
        assert_eq!(d.local_count(0), 4);
    }

    #[test]
    fn fig2c_scatter() {
        // Fig 2c: scatter, n = 15, pmax = 4:
        // proc: 0 1 2 3 0 1 2 3 0 1 2 3 0 1 2
        let d = Decomp1::scatter(4, Bounds::range(0, 14));
        let procs: Vec<i64> = (0..15).map(|i| d.proc_of(i)).collect();
        assert_eq!(procs, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2]);
        assert_eq!(d.local_count(0), 4);
        assert_eq!(d.local_count(3), 3);
    }

    #[test]
    fn scatter_is_bs1() {
        let s = Decomp1::scatter(4, Bounds::range(0, 20));
        let bs1 = Decomp1::block_scatter(1, 4, Bounds::range(0, 20));
        for i in 0..=20 {
            assert_eq!(s.proc_of(i), bs1.proc_of(i));
            assert_eq!(s.local_of(i), bs1.local_of(i));
        }
    }

    #[test]
    fn global_of_inverts_proc_local() {
        for d in all_decomps(23, 4) {
            if d.is_replicated() {
                continue;
            }
            for i in 0..23 {
                let (p, l) = (d.proc_of(i), d.local_of(i));
                assert_eq!(d.global_of(p, l), i, "roundtrip failed for {d} at {i}");
            }
        }
    }

    #[test]
    fn local_counts_sum_to_n() {
        for n in [1, 2, 7, 16, 23, 64, 101] {
            for pmax in [1, 2, 3, 4, 7, 16] {
                for d in all_decomps(n, pmax) {
                    if d.is_replicated() {
                        continue;
                    }
                    let total: i64 = (0..pmax).map(|p| d.local_count(p)).sum();
                    assert_eq!(total, n, "counts wrong for {d}");
                    // and match brute force
                    for p in 0..pmax {
                        let brute = (0..n).filter(|&i| d.proc_of(i) == p).count() as i64;
                        assert_eq!(d.local_count(p), brute, "{d} p={p}");
                    }
                }
            }
        }
    }

    #[test]
    fn owned_globals_match_brute_force() {
        for d in all_decomps(23, 4) {
            if d.is_replicated() {
                continue;
            }
            for p in 0..4 {
                let got: Vec<i64> = d.owned_globals(p).collect();
                let brute: Vec<i64> = (0..23).filter(|&i| d.proc_of(i) == p).collect();
                assert_eq!(got, brute, "{d} p={p}");
            }
        }
    }

    #[test]
    fn symbolic_fns_agree_with_methods() {
        for d in all_decomps(23, 4) {
            let pf = d.proc_fn();
            let lf = d.local_fn();
            for i in 0..23 {
                if !d.is_replicated() {
                    assert_eq!(pf.eval(i), d.proc_of(i), "{d} proc_fn at {i}");
                }
                assert_eq!(lf.eval(i), d.local_of(i), "{d} local_fn at {i}");
            }
        }
    }

    #[test]
    fn nonzero_based_extent() {
        let d = Decomp1::block_scatter(2, 3, Bounds::range(10, 27));
        for i in 10..=27 {
            let (p, l) = (d.proc_of(i), d.local_of(i));
            assert!((0..3).contains(&p));
            assert_eq!(d.global_of(p, l), i);
            assert_eq!(d.proc_fn().eval(i), p);
            assert_eq!(d.local_fn().eval(i), l);
        }
    }

    #[test]
    fn replicated_semantics() {
        let d = Decomp1::replicated(4, Bounds::range(0, 9));
        assert!(d.is_replicated());
        for i in 0..10 {
            for p in 0..4 {
                assert!(d.resides_on(i, p));
            }
        }
        assert_eq!(d.local_count(2), 10);
        assert_eq!(d.max_local_count(), 10);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn undersized_block_rejected() {
        let _ = Decomp1::new(Distribution::Block { b: 2 }, 4, Bounds::range(0, 14));
    }
}
