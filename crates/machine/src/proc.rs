//! Real-process workers: the host side ([`ProcPool`]) and the worker
//! side ([`worker_entry`]) of the Uds/Tcp transport backends.
//!
//! Every node of the distributed machine becomes an OS process running
//! `<worker-bin> worker <addr> <node> <pmax>` — the binary named by the
//! `VCAL_WORKER_BIN` environment variable, or the host's own executable
//! when unset (the `vcalc` driver implements the subcommand). Workers
//! dial the host's [`Router`] (or a [`ChaosProxy`] in front of it),
//! complete the version handshake, and park waiting for jobs.
//!
//! Serialization is *generative*: a [`JobMsg`] carries the clause, the
//! decompositions, the options, and the node's local memories — never a
//! plan. The worker rebuilds the `SpmdPlan` with the same deterministic
//! planner the host runs (and caches it by clause signature +
//! decomposition fingerprint, so a timestep loop replans exactly once
//! per worker). Sender packing order therefore equals receiver
//! expectation by construction, on every backend.
//!
//! Supervision (graceful degradation on peer death):
//!
//! * the host pairs every router event with `Child::try_wait` — a
//!   severed connection from a live process is reconnectable chaos; an
//!   exited process is a dead node;
//! * a dead node is reported as a typed [`MachineError::Transport`],
//!   its peers are released by synthesizing its `Done` frame
//!   ([`Router::broadcast_done`]), and its pre-run local memories (kept
//!   host-side) restore the arrays through the usual all-or-nothing
//!   commit — arrays are untouched by a failed run;
//! * the pool itself survives: dead workers are respawned lazily at the
//!   next run, so the same session completes once the fault is gone.

use crate::codec::{Ctrl, JobMsg, ResultMsg};
use crate::darray::DistArray;
use crate::distributed::{disassemble, finalize_run, DistOptions, NodeOutcome, Wire};
use crate::error::MachineError;
use crate::executor::{
    prepare_run, reset_scratch, warm_phases, BufInner, BufTracer, PhaseSpan, PreparedPlan, Scratch,
};
use crate::net::{ChaosProxy, Router, RouterEvent, SockLink};
use crate::obs::{trace_plan, EventKind, Phase, Tracer};
use crate::stats::{ExecReport, NodeStats};
use crate::transport::{Endpoint, ProtoTimeouts, TransportKind};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vcal_core::Clause;
use vcal_spmd::{clause_signature, decomp_fingerprint, SpmdPlan};

/// One node's outcome plus the trace events and per-phase timings its
/// worker buffered during the run.
type Collected = (
    NodeOutcome,
    Vec<(i64, EventKind)>,
    Vec<(i64, Phase, Duration)>,
);

/// Resolve the worker executable: `VCAL_WORKER_BIN`, else this very
/// binary (which must implement the `worker` subcommand — `vcalc`
/// does).
fn worker_bin() -> Result<std::path::PathBuf, MachineError> {
    if let Some(b) = std::env::var_os("VCAL_WORKER_BIN") {
        return Ok(std::path::PathBuf::from(b));
    }
    std::env::current_exe().map_err(|e| MachineError::Transport {
        node: -1,
        detail: format!("cannot resolve worker binary: {e}"),
    })
}

/// A persistent pool of worker OS processes behind a [`Router`]
/// (optionally fronted by a [`ChaosProxy`]). The process analog of
/// [`crate::DistExecutor`]: spawn once, park between runs, purge under
/// a Ready/Go barrier when the previous run may have left frames on
/// the wire.
pub(crate) struct ProcPool {
    kind: TransportKind,
    chaos: Option<crate::net::ChaosPlan>,
    /// Protocol timeouts (spawn deadline, run grace, resend interval,
    /// worker heartbeat) — service-level configuration, part of the
    /// pool's cache identity so tightening them rebuilds the pool.
    timeouts: ProtoTimeouts,
    pmax: usize,
    router: Router,
    /// Keeps the proxy's accept loop alive for reconnects.
    _proxy: Option<ChaosProxy>,
    /// The address workers dial (the proxy's when chaos is on).
    dial_addr: String,
    children: Vec<Option<Child>>,
    /// The previous run may have left frames on the wire (it failed,
    /// injected faults, or ran under chaos): the next run must purge
    /// under the barrier.
    dirty: bool,
    /// Monotonic run counter; each run's [`JobMsg::run_id`]. Lets the
    /// host re-send a Job whose delivery is unconfirmed (the control
    /// plane is only reliable within one connection — a chaos sever can
    /// eat a queued Job or Go) while workers dedupe by id.
    run_seq: u64,
}

impl std::fmt::Debug for ProcPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcPool")
            .field("kind", &self.kind.name())
            .field("pmax", &self.pmax)
            .field("chaos", &self.chaos.is_some())
            .finish_non_exhaustive()
    }
}

impl ProcPool {
    /// Bind the router, optionally interpose the chaos proxy, spawn
    /// `pmax` worker processes, and wait for every handshake.
    pub fn new(
        kind: TransportKind,
        pmax: usize,
        chaos: Option<crate::net::ChaosPlan>,
        timeouts: ProtoTimeouts,
    ) -> Result<ProcPool, MachineError> {
        let router = Router::bind(kind, pmax)?;
        let (proxy, dial_addr) = match chaos {
            Some(plan) => {
                let proxy = ChaosProxy::spawn(kind, &router.addr, plan).map_err(|e| {
                    MachineError::Transport {
                        node: -1,
                        detail: format!("chaos proxy bind failed: {e}"),
                    }
                })?;
                let addr = proxy.addr.clone();
                (Some(proxy), addr)
            }
            None => (None, router.addr.clone()),
        };
        let mut pool = ProcPool {
            kind,
            chaos,
            timeouts,
            pmax,
            router,
            _proxy: proxy,
            dial_addr,
            children: (0..pmax).map(|_| None).collect(),
            dirty: false,
            run_seq: 0,
        };
        let all: Vec<usize> = (0..pmax).collect();
        for &p in &all {
            pool.spawn_worker(p)?;
        }
        pool.await_hellos(&all)?;
        Ok(pool)
    }

    /// Backend this pool runs on.
    pub fn kind(&self) -> TransportKind {
        self.kind
    }

    /// Chaos plan the pool was built with (part of its cache identity).
    pub fn chaos(&self) -> Option<crate::net::ChaosPlan> {
        self.chaos
    }

    /// Protocol timeouts the pool was built with (part of its cache
    /// identity — the worker heartbeat rides the spawn command line).
    pub fn timeouts(&self) -> ProtoTimeouts {
        self.timeouts
    }

    /// Number of worker processes.
    pub fn pmax(&self) -> usize {
        self.pmax
    }

    /// OS process ids of the live workers, in node order (test hook for
    /// killing a specific worker mid-run).
    pub fn pids(&self) -> Vec<u32> {
        self.children
            .iter()
            .filter_map(|c| c.as_ref().map(Child::id))
            .collect()
    }

    fn spawn_worker(&mut self, p: usize) -> Result<(), MachineError> {
        let child = Command::new(worker_bin()?)
            .arg("worker")
            .arg(&self.dial_addr)
            .arg(p.to_string())
            .arg(self.pmax.to_string())
            .arg(self.timeouts.heartbeat_ivl.as_millis().to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()
            .map_err(|e| MachineError::Transport {
                node: p as i64,
                detail: format!("cannot spawn worker process: {e}"),
            })?;
        self.children[p] = Some(child);
        Ok(())
    }

    /// Wait until every listed node has completed the handshake,
    /// surfacing early worker deaths as typed errors.
    fn await_hellos(&mut self, nodes: &[usize]) -> Result<(), MachineError> {
        let mut waiting: Vec<usize> = nodes.to_vec();
        let deadline = Instant::now() + self.timeouts.spawn_deadline;
        while !waiting.is_empty() {
            if let Some(RouterEvent::Hello { node }) =
                self.router.recv_event(Duration::from_millis(100))
            {
                waiting.retain(|&w| w as i64 != node);
                continue;
            }
            for &p in &waiting {
                if let Some(status) = self.reap_if_dead(p) {
                    return Err(MachineError::Transport {
                        node: p as i64,
                        detail: format!("worker process exited during startup ({status})"),
                    });
                }
            }
            if Instant::now() > deadline {
                return Err(MachineError::Transport {
                    node: waiting[0] as i64,
                    detail: "worker process never completed the handshake".to_string(),
                });
            }
        }
        Ok(())
    }

    /// `Some(status)` if node `p`'s process has exited (reaping it).
    fn reap_if_dead(&mut self, p: usize) -> Option<String> {
        let child = self.children[p].as_mut()?;
        match child.try_wait() {
            Ok(Some(status)) => {
                self.children[p] = None;
                Some(status.to_string())
            }
            Ok(None) => None,
            Err(e) => {
                self.children[p] = None;
                Some(format!("unwaitable: {e}"))
            }
        }
    }

    /// Kill and reap node `p`'s process (hung-worker supervision).
    fn kill_worker(&mut self, p: usize) {
        if let Some(mut child) = self.children[p].take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.router.disconnect(p as i64);
    }

    /// Execute `prepared` once on the worker processes. Same contract
    /// as [`crate::DistExecutor::run`]: bit-identical results and
    /// statistics to the in-process machine, typed errors, and the
    /// all-or-nothing commit that leaves arrays untouched on failure —
    /// including when a worker process dies mid-run.
    pub fn run(
        &mut self,
        prepared: &Arc<PreparedPlan>,
        clause: &Clause,
        arrays: &mut BTreeMap<String, DistArray>,
        opts: DistOptions,
        tracer: &dyn Tracer,
    ) -> Result<ExecReport, MachineError> {
        let pmax = self.pmax;
        if prepared.plan.pmax.max(0) as usize != pmax {
            return Err(MachineError::PlanMismatch(format!(
                "prepared plan spans {} processors, pool has {pmax}",
                prepared.plan.pmax
            )));
        }
        for name in &prepared.referenced {
            let da = arrays
                .get(name)
                .ok_or_else(|| MachineError::UnknownArray(name.clone()))?;
            if da.decomp() != &prepared.decomps[name] {
                return Err(MachineError::PlanMismatch(format!(
                    "array `{name}` was redistributed since the plan was prepared"
                )));
            }
        }

        // lazy respawn: replace workers that died since the last run
        let mut respawned = Vec::new();
        for p in 0..pmax {
            if self.reap_if_dead(p).is_some() || self.children[p].is_none() {
                self.router.disconnect(p as i64);
                self.spawn_worker(p)?;
                respawned.push(p);
                self.dirty = true; // peers may hold frames for the old incarnation
            }
        }
        if !respawned.is_empty() {
            self.await_hellos(&respawned)?;
        }

        trace_plan(tracer, &prepared.plan);
        let per_node = disassemble(arrays, &prepared.referenced, prepared.plan.pmax)?;
        let trace_on = tracer.enabled();
        let handshake = self.dirty;

        // keep each node's pre-run memories host-side: a worker that
        // dies without replying restores state from this copy
        let mut pre_run: Vec<Option<BTreeMap<String, Vec<f64>>>> =
            per_node.iter().map(|m| Some(m.clone())).collect();

        // `running[p]`: the worker still owes us a protocol step
        let mut running = vec![true; pmax];
        let mut outcomes: Vec<Option<Collected>> = (0..pmax).map(|_| None).collect();
        let fail = |pool: &mut ProcPool,
                    running: &mut Vec<bool>,
                    outcomes: &mut Vec<Option<Collected>>,
                    pre_run: &mut Vec<Option<BTreeMap<String, Vec<f64>>>>,
                    p: usize,
                    detail: String| {
            pool.kill_worker(p);
            pool.router.broadcast_done(p as i64); // release waiting peers
            running[p] = false;
            outcomes[p] = Some((
                (
                    p as i64,
                    pre_run[p].take().unwrap_or_default(),
                    Vec::new(),
                    NodeStats::default(),
                    vec![0u64; pmax],
                    Err(MachineError::Transport {
                        node: p as i64,
                        detail,
                    }),
                ),
                Vec::new(),
                Vec::new(),
            ));
        };

        // --- dispatch --------------------------------------------------
        // Delivery stays unconfirmed until the node answers (Ready under
        // a barrier, its Result otherwise), so keep every Job around for
        // re-sends; workers dedupe by `run_id` and a completed run is
        // re-answered from the worker's cache, never re-executed. A
        // failed send here is deferred, not fatal: the worker reconnects
        // and the re-send timer retries.
        self.run_seq += 1;
        let run_id = self.run_seq;
        let jobs: Vec<JobMsg> = per_node
            .into_iter()
            .map(|locals| JobMsg {
                run_id,
                clause: clause.clone(),
                decomps: prepared.decomps.clone(),
                recv_timeout: opts.recv_timeout,
                faults: opts.faults,
                mode: opts.mode,
                retry: opts.retry,
                overlap: opts.overlap,
                simd: opts.simd,
                trace_on,
                handshake,
                locals,
            })
            .collect();
        let mut job_sent = vec![Instant::now(); pmax];
        for (p, job) in jobs.iter().enumerate() {
            let _ = self
                .router
                .send_ctrl(p as i64, &Ctrl::Job(Box::new(job.clone())));
        }

        // --- barrier (only after a dirty run): all purge before any send
        if handshake {
            let deadline = Instant::now() + self.timeouts.spawn_deadline;
            let mut ready = vec![false; pmax];
            while (0..pmax).any(|p| running[p] && !ready[p]) {
                match self.router.recv_event(Duration::from_millis(100)) {
                    Some(RouterEvent::Ctrl {
                        node,
                        ctrl: Ctrl::Ready(id),
                    }) if id == run_id => ready[node as usize] = true,
                    Some(RouterEvent::Eof { .. }) | Some(_) | None => {}
                }
                for p in 0..pmax {
                    if !running[p] || ready[p] {
                        continue;
                    }
                    if let Some(status) = self.reap_if_dead(p) {
                        fail(
                            self,
                            &mut running,
                            &mut outcomes,
                            &mut pre_run,
                            p,
                            format!("worker process exited at the purge barrier ({status})"),
                        );
                    } else if job_sent[p].elapsed() > self.timeouts.resend_ivl {
                        job_sent[p] = Instant::now();
                        let _ = self
                            .router
                            .send_ctrl(p as i64, &Ctrl::Job(Box::new(jobs[p].clone())));
                    }
                }
                if Instant::now() > deadline {
                    for p in 0..pmax {
                        if running[p] && !ready[p] {
                            fail(
                                self,
                                &mut running,
                                &mut outcomes,
                                &mut pre_run,
                                p,
                                "worker never reached the purge barrier".to_string(),
                            );
                        }
                    }
                }
            }
            for (p, live) in running.iter().enumerate() {
                if *live {
                    // Go delivery is unconfirmed too: a worker that loses
                    // it answers a re-sent Job with a fresh Ready, and
                    // the collect loop below re-issues Go.
                    let _ = self.router.send_ctrl(p as i64, &Ctrl::Go);
                }
            }
        }

        // --- collect ----------------------------------------------------
        // Workers bound their own waits (recv_timeout, retry deadline),
        // so the host deadline is a backstop against dead/hung processes
        // the event loop below didn't already catch.
        let retry_budget = opts.retry.deadline.unwrap_or(Duration::ZERO);
        let deadline =
            Instant::now() + opts.recv_timeout * 4 + retry_budget + self.timeouts.run_grace;
        while (0..pmax).any(|p| running[p]) {
            match self.router.recv_event(Duration::from_millis(50)) {
                Some(RouterEvent::Ctrl {
                    node,
                    ctrl: Ctrl::Result(r),
                }) if r.run_id == run_id => {
                    let p = node as usize;
                    if running[p] {
                        running[p] = false;
                        let ResultMsg {
                            run_id: _,
                            p: wp,
                            locals,
                            writes,
                            stats,
                            sent_to,
                            res,
                            events,
                            timings,
                        } = *r;
                        outcomes[p] =
                            Some(((wp, locals, writes, stats, sent_to, res), events, timings));
                    }
                }
                Some(RouterEvent::Ctrl {
                    node,
                    ctrl: Ctrl::Ready(id),
                }) if id == run_id => {
                    // the worker answered a re-sent Job after the barrier
                    // closed: its Go was lost to a sever — repeat it
                    let _ = self.router.send_ctrl(node, &Ctrl::Go);
                }
                Some(RouterEvent::Eof { node }) => {
                    // EOF alone is not death: a chaos-severed worker
                    // reconnects. Only an exited process is dead.
                    let p = node as usize;
                    if running[p] {
                        if let Some(status) = self.reap_if_dead(p) {
                            fail(
                                self,
                                &mut running,
                                &mut outcomes,
                                &mut pre_run,
                                p,
                                format!("worker process died mid-run ({status})"),
                            );
                        }
                    }
                }
                Some(_) | None => {}
            }
            for p in 0..pmax {
                if !running[p] {
                    continue;
                }
                if let Some(status) = self.reap_if_dead(p) {
                    fail(
                        self,
                        &mut running,
                        &mut outcomes,
                        &mut pre_run,
                        p,
                        format!("worker process died mid-run ({status})"),
                    );
                } else if Instant::now() > deadline {
                    // unconditional backstop: heartbeats prove the
                    // process is alive, not that the run can finish
                    fail(
                        self,
                        &mut running,
                        &mut outcomes,
                        &mut pre_run,
                        p,
                        "worker made no progress before the run deadline".to_string(),
                    );
                } else if job_sent[p].elapsed() > self.timeouts.resend_ivl {
                    job_sent[p] = Instant::now();
                    let _ = self
                        .router
                        .send_ctrl(p as i64, &Ctrl::Job(Box::new(jobs[p].clone())));
                }
            }
        }

        let mut results: Vec<NodeOutcome> = Vec::with_capacity(pmax);
        let mut buffered = Vec::new();
        for (p, slot) in outcomes.into_iter().enumerate() {
            match slot {
                Some((outcome, events, timings)) => {
                    results.push(outcome);
                    buffered.push((events, timings));
                }
                None => results.push((
                    p as i64,
                    BTreeMap::new(),
                    Vec::new(),
                    NodeStats::default(),
                    vec![0u64; pmax],
                    Err(MachineError::Transport {
                        node: p as i64,
                        detail: "no result collected".to_string(),
                    }),
                )),
            }
        }
        self.dirty =
            opts.faults.is_some() || self.chaos.is_some() || results.iter().any(|r| r.5.is_err());
        if trace_on {
            for (events, timings) in buffered {
                for (n, k) in events {
                    tracer.record(n, k);
                }
                for (n, ph, d) in timings {
                    tracer.timing(n, ph, d);
                }
            }
        }
        finalize_run(
            &prepared.plan.lhs_array,
            &prepared.referenced,
            &prepared.decomps,
            results,
            arrays,
            tracer,
        )
    }
}

impl Drop for ProcPool {
    fn drop(&mut self) {
        for p in 0..self.pmax {
            let _ = self.router.send_ctrl(p as i64, &Ctrl::Shutdown);
        }
        let deadline = Instant::now() + Duration::from_millis(500);
        for p in 0..self.pmax {
            loop {
                if self.reap_if_dead(p).is_some() || self.children[p].is_none() {
                    break;
                }
                if Instant::now() > deadline {
                    self.kill_worker(p);
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// One-shot dispatch for the cold path
/// ([`crate::run_distributed_traced`] with a socket backend): build the
/// pool, run once, tear it down. Sessions keep a persistent pool
/// instead.
pub(crate) fn run_one_shot(
    plan: &SpmdPlan,
    clause: &Clause,
    arrays: &mut BTreeMap<String, DistArray>,
    opts: DistOptions,
    tracer: &dyn Tracer,
) -> Result<ExecReport, MachineError> {
    let node0 = plan
        .nodes
        .first()
        .ok_or_else(|| MachineError::PlanMismatch("plan has no nodes".into()))?;
    let mut decomps = BTreeMap::new();
    let mut names = vec![plan.lhs_array.clone()];
    for rp in &node0.resides {
        if !names.contains(&rp.array) {
            names.push(rp.array.clone());
        }
    }
    for name in &names {
        let da = arrays
            .get(name)
            .ok_or_else(|| MachineError::UnknownArray(name.clone()))?;
        decomps.insert(name.clone(), da.decomp().clone());
    }
    let prepared = Arc::new(prepare_run(plan.clone(), clause, &decomps)?);
    let mut pool = ProcPool::new(
        opts.transport,
        plan.pmax.max(0) as usize,
        opts.chaos,
        opts.timeouts,
    )?;
    pool.run(&prepared, clause, arrays, opts, tracer)
}

// ---------------------------------------------------------------------
// worker side
// ---------------------------------------------------------------------

/// The body of a worker process (the `vcalc worker <addr> <node>
/// <pmax>` subcommand): connect, handshake, then serve jobs until the
/// host shuts the link down. Returns an error string suitable for
/// stderr + nonzero exit. Uses the default heartbeat interval; pools
/// spawn workers through [`worker_entry_with`] to install the
/// service-level one.
pub fn worker_entry(addr: &str, node: i64, pmax: usize) -> Result<(), String> {
    worker_entry_with(addr, node, pmax, ProtoTimeouts::default().heartbeat_ivl)
}

/// [`worker_entry`] with an explicit idle-heartbeat interval (the
/// optional fourth `worker` subcommand argument, in milliseconds) — how
/// the host's [`ProtoTimeouts::heartbeat_ivl`] reaches the worker
/// process without a wire-format change.
pub fn worker_entry_with(
    addr: &str,
    node: i64,
    pmax: usize,
    heartbeat_ivl: Duration,
) -> Result<(), String> {
    let mut link = SockLink::connect(addr, node, pmax)
        .map_err(|e| format!("worker {node}: cannot join session: {e}"))?;
    link.set_heartbeat_ivl(heartbeat_ivl);
    let mut cache: Vec<(u64, u64, Arc<PreparedPlan>)> = Vec::new();
    // last completed run, kept for idempotent re-dispatch: a duplicate
    // Job (the host never saw our result, or re-sent before it landed)
    // is answered from this cache, never re-executed
    let mut last_done: Option<ResultMsg> = None;
    let mut scratch = Scratch::default();
    loop {
        match link.recv_ctrl(true) {
            None => return Ok(()), // host gone past the reconnect budget
            Some(Ctrl::Shutdown) => return Ok(()),
            Some(Ctrl::Job(job)) => {
                if let Some(done) = last_done.as_ref().filter(|r| r.run_id == job.run_id) {
                    let done = done.clone();
                    if ship(&mut link, done).is_none() {
                        return Ok(());
                    }
                } else {
                    match serve_job(&mut link, node, pmax, *job, &mut cache, &mut scratch)? {
                        Some(done) => last_done = Some(done),
                        None => return Ok(()),
                    }
                }
            }
            Some(_) => {} // stray Ready/Go/Result: not ours to answer
        }
    }
}

/// Serve one job; the shipped result is handed back so the caller can
/// cache it for duplicate dispatches. `Ok(None)` means the host went
/// away mid-protocol and the worker should exit cleanly.
fn serve_job(
    link: &mut SockLink,
    p: i64,
    pmax: usize,
    job: JobMsg,
    cache: &mut Vec<(u64, u64, Arc<PreparedPlan>)>,
    scratch: &mut Scratch,
) -> Result<Option<ResultMsg>, String> {
    use crate::transport::Transport;

    // --- barrier first (the host waits for Ready before Go, whatever
    // the job's fate): purge frames a previous dirty run left behind
    if job.handshake {
        {
            let mut l: &mut SockLink = link;
            Transport::<Wire>::purge(&mut l);
        }
        if link.send_ctrl(&Ctrl::Ready(job.run_id)).is_err() {
            return Ok(None);
        }
        loop {
            match link.recv_ctrl(false) {
                Some(Ctrl::Go) => break,
                Some(Ctrl::Job(j)) if j.run_id == job.run_id => {
                    // the host re-sent the Job: our Ready was lost to a
                    // sever — answer again and keep waiting for Go
                    if link.send_ctrl(&Ctrl::Ready(job.run_id)).is_err() {
                        return Ok(None);
                    }
                }
                Some(Ctrl::Shutdown) | None => return Ok(None),
                Some(_) => {}
            }
        }
    }

    // --- plan: rebuild generatively, cached by (signature, fingerprint)
    let sig = clause_signature(&job.clause);
    let fp = decomp_fingerprint(&job.decomps, job.decomps.keys().map(String::as_str));
    let prepared = match cache.iter().find(|e| e.0 == sig && e.1 == fp) {
        Some(e) => Ok(Arc::clone(&e.2)),
        None => SpmdPlan::build(&job.clause, &job.decomps)
            .map_err(|e| MachineError::PlanMismatch(e.to_string()))
            .and_then(|plan| prepare_run(plan, &job.clause, &job.decomps))
            .map(|prep| {
                let prep = Arc::new(prep);
                cache.retain(|e| e.0 != sig);
                cache.push((sig, fp, Arc::clone(&prep)));
                prep
            }),
    };
    let prepared = match prepared {
        Ok(p) => p,
        Err(e) => {
            // a planning failure is a typed result, not a dead worker;
            // ship the untouched locals back so the host restores state
            return Ok(ship(
                link,
                ResultMsg {
                    run_id: job.run_id,
                    p,
                    locals: job.locals,
                    writes: Vec::new(),
                    stats: NodeStats::default(),
                    sent_to: vec![0u64; pmax],
                    res: Err(e),
                    events: Vec::new(),
                    timings: Vec::new(),
                },
            ));
        }
    };
    if prepared.plan.pmax.max(0) as usize != pmax || prepared.plan.nodes.len() != pmax {
        return Ok(ship(
            link,
            ResultMsg {
                run_id: job.run_id,
                p,
                locals: job.locals,
                writes: Vec::new(),
                stats: NodeStats::default(),
                sent_to: vec![0u64; pmax],
                res: Err(MachineError::PlanMismatch(format!(
                    "job plan spans {} processors, session has {pmax}",
                    prepared.plan.pmax
                ))),
                events: Vec::new(),
                timings: Vec::new(),
            },
        ));
    }

    // --- run: same warm phases as a pooled thread, over the socket
    let buf = BufTracer::new();
    buf.set_enabled(job.trace_on);
    let opts = DistOptions {
        recv_timeout: job.recv_timeout,
        faults: job.faults,
        mode: job.mode,
        retry: job.retry,
        overlap: job.overlap,
        simd: job.simd,
        transport: TransportKind::InProc, // the link IS the transport here
        chaos: None,
        timeouts: ProtoTimeouts::default(),
    };
    reset_scratch(scratch, &prepared, p);
    let mut locals = job.locals;
    let mut stats = NodeStats::default();
    let mut sent_to = vec![0u64; pmax];
    let res = {
        let mut ep: Endpoint<Wire> = Endpoint::new(p, Box::new(&mut *link), job.faults, &buf);
        let phases = catch_unwind(AssertUnwindSafe(|| {
            warm_phases(
                p,
                &mut locals,
                &prepared,
                &opts,
                &mut ep,
                scratch,
                None,
                &mut stats,
                &mut sent_to,
                &buf,
                PhaseSpan::Full,
            )
        }));
        match phases {
            Ok(r) => {
                ep.announce_done();
                if job.trace_on {
                    buf.record(p, EventKind::PhaseStart(Phase::Drain));
                    let t0 = Instant::now();
                    ep.drain(opts.recv_timeout, &mut stats);
                    buf.timing(p, Phase::Drain, t0.elapsed());
                    buf.record(p, EventKind::PhaseEnd(Phase::Drain));
                } else {
                    ep.drain(opts.recv_timeout, &mut stats);
                }
                r
            }
            Err(_) => {
                ep.announce_done();
                Err(MachineError::NodePanicked { node: p })
            }
        }
    }; // endpoint drops; the link is ours again for the control plane
    if res.is_err() {
        scratch.writes.clear();
    }
    let BufInner { events, timings } = buf.take();
    link.heartbeat(); // prove liveness before the (possibly large) result
    Ok(ship(
        link,
        ResultMsg {
            run_id: job.run_id,
            p,
            locals,
            writes: std::mem::take(&mut scratch.writes),
            stats,
            sent_to,
            res,
            events,
            timings,
        },
    ))
}

/// Ship a result on the control plane, handing it back for the caller's
/// duplicate-dispatch cache. `None` means the send failed past the
/// reconnect budget — the host is gone and the worker should exit.
fn ship(link: &mut SockLink, result: ResultMsg) -> Option<ResultMsg> {
    let ctrl = Ctrl::Result(Box::new(result));
    let ok = link.send_ctrl(&ctrl).is_ok();
    let Ctrl::Result(result) = ctrl else {
        unreachable!("constructed as Result above")
    };
    ok.then_some(*result)
}
