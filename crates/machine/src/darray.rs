//! Distributed arrays: the machine image `A'` of Section 2.6 — per-node
//! local memories indexed by the decomposition's `local` function.

use vcal_core::{Array, Ix};
use vcal_decomp::Decomp1;

/// A 1-D array physically split into per-processor local memories
/// according to a [`Decomp1`]. Replicated decompositions give every node
/// a full copy.
#[derive(Debug, Clone, PartialEq)]
pub struct DistArray {
    decomp: Decomp1,
    parts: Vec<Vec<f64>>,
}

impl DistArray {
    /// Zero-filled distributed array.
    pub fn zeros(decomp: Decomp1) -> Self {
        let parts = (0..decomp.pmax())
            .map(|p| vec![0.0; decomp.local_count(p) as usize])
            .collect();
        DistArray { decomp, parts }
    }

    /// Scatter a global array into its distributed image.
    /// Panics if the bounds do not match the decomposition extent.
    pub fn scatter_from(global: &Array, decomp: Decomp1) -> Self {
        assert_eq!(
            global.bounds(),
            decomp.extent(),
            "array bounds must equal the decomposed extent"
        );
        let mut d = DistArray::zeros(decomp);
        for p in 0..d.decomp.pmax() {
            if d.decomp.is_replicated() {
                for (l, v) in global.data().iter().enumerate() {
                    d.parts[p as usize][l] = *v;
                }
            } else {
                for l in 0..d.decomp.local_count(p) {
                    let g = d.decomp.global_of(p, l);
                    d.parts[p as usize][l as usize] = global.get(&Ix::d1(g));
                }
            }
        }
        d
    }

    /// Gather the distributed image back into a global array.
    pub fn gather(&self) -> Array {
        let mut out = Array::zeros(self.decomp.extent());
        if self.decomp.is_replicated() {
            for (l, v) in self.parts[0].iter().enumerate() {
                let g = self.decomp.extent().lo()[0] + l as i64;
                out.set(&Ix::d1(g), *v);
            }
            return out;
        }
        for p in 0..self.decomp.pmax() {
            for l in 0..self.decomp.local_count(p) {
                let g = self.decomp.global_of(p, l);
                out.set(&Ix::d1(g), self.parts[p as usize][l as usize]);
            }
        }
        out
    }

    /// The decomposition.
    pub fn decomp(&self) -> &Decomp1 {
        &self.decomp
    }

    /// Read the value of global index `g` from node `p`'s memory.
    /// Panics (in debug) if `g` does not reside on `p`.
    #[inline]
    pub fn read_local(&self, p: i64, g: i64) -> f64 {
        debug_assert!(self.decomp.resides_on(g, p), "global {g} not on node {p}");
        let l = self.decomp.local_of(g) as usize;
        self.parts[p as usize][l]
    }

    /// Split into per-node local memories (consumes the array; the
    /// executor hands each `Vec` to its node thread and reassembles).
    pub fn into_parts(self) -> (Decomp1, Vec<Vec<f64>>) {
        (self.decomp, self.parts)
    }

    /// Reassemble from parts (inverse of [`DistArray::into_parts`]).
    pub fn from_parts(decomp: Decomp1, parts: Vec<Vec<f64>>) -> Self {
        assert_eq!(parts.len() as i64, decomp.pmax());
        for p in 0..decomp.pmax() {
            assert_eq!(parts[p as usize].len() as i64, decomp.local_count(p));
        }
        DistArray { decomp, parts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::Bounds;

    #[test]
    fn scatter_gather_roundtrip_all_layouts() {
        let global = Array::from_fn(Bounds::range(0, 22), |i| i.scalar() as f64 * 1.5);
        for dec in [
            Decomp1::block(4, Bounds::range(0, 22)),
            Decomp1::scatter(4, Bounds::range(0, 22)),
            Decomp1::block_scatter(3, 4, Bounds::range(0, 22)),
            Decomp1::replicated(4, Bounds::range(0, 22)),
        ] {
            let d = DistArray::scatter_from(&global, dec.clone());
            let back = d.gather();
            assert_eq!(
                back.max_abs_diff(&global),
                0.0,
                "roundtrip failed for {dec}"
            );
        }
    }

    #[test]
    fn read_local_matches_global() {
        let global = Array::from_fn(Bounds::range(0, 15), |i| (i.scalar() * 10) as f64);
        let dec = Decomp1::block_scatter(2, 4, Bounds::range(0, 15));
        let d = DistArray::scatter_from(&global, dec.clone());
        for g in 0..16 {
            let p = dec.proc_of(g);
            assert_eq!(d.read_local(p, g), (g * 10) as f64);
        }
    }

    #[test]
    fn parts_roundtrip() {
        let dec = Decomp1::scatter(3, Bounds::range(0, 10));
        let d = DistArray::zeros(dec.clone());
        let (dec2, parts) = d.clone().into_parts();
        let d2 = DistArray::from_parts(dec2, parts);
        assert_eq!(d, d2);
    }

    #[test]
    fn replicated_copies_everywhere() {
        let global = Array::from_slice(&[1.0, 2.0, 3.0]);
        let dec = Decomp1::replicated(3, Bounds::range(0, 2));
        let d = DistArray::scatter_from(&global, dec);
        for p in 0..3 {
            for g in 0..3 {
                assert_eq!(d.read_local(p, g), (g + 1) as f64);
            }
        }
    }
}
