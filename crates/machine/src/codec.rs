//! Wire codec for the multi-process transport backends.
//!
//! Everything a worker process needs to run one node — the clause, the
//! decompositions, the execution options, its local memories — plus
//! everything it ships back (writes, statistics, buffered trace events,
//! its typed error state) is serialized here as flat little-endian
//! records. The encoding is deliberately *generative*: workers receive
//! the clause and decompositions and rebuild the `SpmdPlan` locally via
//! the same deterministic planner the host runs, so plans are never on
//! the wire and the two sides agree by construction (the PR 1 invariant
//! that sender packing order equals receiver expectation).
//!
//! The codec is versioned through the handshake
//! ([`WIRE_VERSION`], checked in `net::hello`); within a version the
//! byte layout is stable. Integrity is the frame layer's job (an
//! FNV-1a CRC per frame, `net::write_frame`) — decoders here only need
//! to be *safe* on malformed input (every read is bounds-checked and
//! returns a typed [`CodecError`]), not to detect corruption.
//!
//! [`Pred::Opaque`] — a closure — is the one non-serializable corner of
//! the clause language; encoding it fails with a typed error that the
//! dispatcher surfaces as [`MachineError::PlanMismatch`] before any
//! process is spawned.

use crate::distributed::{CommMode, Msg, Wire, WriteOp};
use crate::error::MachineError;
use crate::obs::{EventKind, Phase};
use crate::stats::NodeStats;
use crate::transport::{CrashFault, FaultPlan, Frame, Packet, RetryPolicy};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;
use vcal_core::func::Fn1;
use vcal_core::map::{DimFn, IndexMap};
use vcal_core::pred::Pred;
use vcal_core::set::IndexSet;
use vcal_core::{ArrayRef, BinOp, Bounds, Clause, CmpOp, Expr, Guard, Ix, Ordering};
use vcal_decomp::{Decomp1, Distribution};
use vcal_spmd::{SimdMode, SimdPolicy};

/// Version stamped into the handshake; bumped on any layout change.
pub(crate) const WIRE_VERSION: u32 = 1;

/// A typed decode (or non-serializable-encode) failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn bad(what: &str) -> CodecError {
    CodecError(format!("malformed {what}"))
}

type R<T> = Result<T, CodecError>;

// ---------------------------------------------------------------------
// primitive encoder / decoder
// ---------------------------------------------------------------------

/// Append-only little-endian encoder.
#[derive(Default)]
pub(crate) struct Enc {
    pub buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Self {
        Enc::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn us(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn b(&mut self, v: bool) {
        self.u8(v as u8);
    }

    pub fn dur(&mut self, d: Duration) {
        self.u64(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn str(&mut self, s: &str) {
        self.us(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn f64s(&mut self, vs: &[f64]) {
        self.us(vs.len());
        for v in vs {
            self.f64(*v);
        }
    }
}

/// Bounds-checked little-endian cursor.
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> R<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| bad("length"))?;
        if end > self.buf.len() {
            return Err(CodecError(format!(
                "truncated record: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> R<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> R<u32> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    pub fn u64(&mut self) -> R<u64> {
        let s = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(s);
        Ok(u64::from_le_bytes(a))
    }

    pub fn i64(&mut self) -> R<i64> {
        Ok(self.u64()? as i64)
    }

    pub fn f64(&mut self) -> R<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn us(&mut self) -> R<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| bad("usize"))
    }

    /// A length prefix about to drive an allocation: reject lengths the
    /// remaining buffer cannot possibly satisfy (at one byte per item)
    /// so corrupt input cannot request absurd reservations.
    pub fn len(&mut self) -> R<usize> {
        let n = self.us()?;
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(bad("length prefix exceeds record"));
        }
        Ok(n)
    }

    pub fn b(&mut self) -> R<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(bad("bool")),
        }
    }

    pub fn dur(&mut self) -> R<Duration> {
        Ok(Duration::from_nanos(self.u64()?))
    }

    pub fn str(&mut self) -> R<String> {
        let n = self.len()?;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| bad("utf-8 string"))
    }

    pub fn f64s(&mut self) -> R<Vec<f64>> {
        let n = self.us()?;
        if n.checked_mul(8)
            .is_none_or(|bytes| bytes > self.buf.len().saturating_sub(self.pos))
        {
            return Err(bad("f64 vector length"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    pub fn finish(self) -> R<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError(format!(
                "{} trailing bytes after record",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------
// vcal-core types
// ---------------------------------------------------------------------

fn enc_fn1(e: &mut Enc, f: &Fn1) {
    match f {
        Fn1::Const(c) => {
            e.u8(0);
            e.i64(*c);
        }
        Fn1::Affine { a, c } => {
            e.u8(1);
            e.i64(*a);
            e.i64(*c);
        }
        Fn1::Mod { inner, z, d } => {
            e.u8(2);
            enc_fn1(e, inner);
            e.i64(*z);
            e.i64(*d);
        }
        Fn1::Div { inner, q } => {
            e.u8(3);
            enc_fn1(e, inner);
            e.i64(*q);
        }
        Fn1::Sum(a, b) => {
            e.u8(4);
            enc_fn1(e, a);
            enc_fn1(e, b);
        }
        Fn1::Square(inner) => {
            e.u8(5);
            enc_fn1(e, inner);
        }
        Fn1::Scaled { a, c, inner } => {
            e.u8(6);
            e.i64(*a);
            e.i64(*c);
            enc_fn1(e, inner);
        }
    }
}

fn dec_fn1(d: &mut Dec) -> R<Fn1> {
    Ok(match d.u8()? {
        0 => Fn1::Const(d.i64()?),
        1 => Fn1::Affine {
            a: d.i64()?,
            c: d.i64()?,
        },
        2 => Fn1::Mod {
            inner: Box::new(dec_fn1(d)?),
            z: d.i64()?,
            d: d.i64()?,
        },
        3 => Fn1::Div {
            inner: Box::new(dec_fn1(d)?),
            q: d.i64()?,
        },
        4 => Fn1::Sum(Box::new(dec_fn1(d)?), Box::new(dec_fn1(d)?)),
        5 => Fn1::Square(Box::new(dec_fn1(d)?)),
        6 => Fn1::Scaled {
            a: d.i64()?,
            c: d.i64()?,
            inner: Box::new(dec_fn1(d)?),
        },
        _ => return Err(bad("Fn1 tag")),
    })
}

fn enc_map(e: &mut Enc, m: &IndexMap) {
    e.us(m.d_in());
    e.us(m.dims().len());
    for df in m.dims() {
        e.us(df.src);
        enc_fn1(e, &df.f);
    }
}

fn dec_map(d: &mut Dec) -> R<IndexMap> {
    let d_in = d.us()?;
    let n = d.len()?;
    let mut dims = Vec::with_capacity(n);
    for _ in 0..n {
        let src = d.us()?;
        let f = dec_fn1(d)?;
        if src >= d_in.max(1) {
            return Err(bad("IndexMap source dimension"));
        }
        dims.push(DimFn { src, f });
    }
    Ok(IndexMap::new(d_in, dims))
}

fn enc_aref(e: &mut Enc, r: &ArrayRef) {
    e.str(&r.array);
    enc_map(e, &r.map);
}

fn dec_aref(d: &mut Dec) -> R<ArrayRef> {
    Ok(ArrayRef {
        array: d.str()?,
        map: dec_map(d)?,
    })
}

fn enc_ix(e: &mut Enc, i: &Ix) {
    e.us(i.dims());
    for d in 0..i.dims() {
        e.i64(i[d]);
    }
}

fn dec_ix(d: &mut Dec) -> R<Ix> {
    let n = d.len()?;
    if n == 0 || n > 8 {
        return Err(bad("Ix dimension count"));
    }
    let mut coords = Vec::with_capacity(n);
    for _ in 0..n {
        coords.push(d.i64()?);
    }
    Ok(Ix::new(&coords))
}

fn enc_bounds(e: &mut Enc, b: &Bounds) {
    enc_ix(e, &b.lo());
    enc_ix(e, &b.hi());
}

fn dec_bounds(d: &mut Dec) -> R<Bounds> {
    let lo = dec_ix(d)?;
    let hi = dec_ix(d)?;
    if lo.dims() != hi.dims() {
        return Err(bad("Bounds dimension mismatch"));
    }
    Ok(Bounds::new(lo, hi))
}

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn dec_cmp(d: &mut Dec) -> R<CmpOp> {
    Ok(match d.u8()? {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        _ => return Err(bad("CmpOp tag")),
    })
}

fn enc_pred(e: &mut Enc, p: &Pred) -> R<()> {
    match p {
        Pred::True => e.u8(0),
        Pred::False => e.u8(1),
        Pred::Cmp { dim, f, op, rhs } => {
            e.u8(2);
            e.us(*dim);
            enc_fn1(e, f);
            e.u8(cmp_tag(*op));
            e.i64(*rhs);
        }
        Pred::DimCmp { dim_a, op, dim_b } => {
            e.u8(3);
            e.us(*dim_a);
            e.u8(cmp_tag(*op));
            e.us(*dim_b);
        }
        Pred::And(a, b) => {
            e.u8(4);
            enc_pred(e, a)?;
            enc_pred(e, b)?;
        }
        Pred::Or(a, b) => {
            e.u8(5);
            enc_pred(e, a)?;
            enc_pred(e, b)?;
        }
        Pred::Not(a) => {
            e.u8(6);
            enc_pred(e, a)?;
        }
        Pred::Opaque { label, .. } => {
            return Err(CodecError(format!(
                "predicate `{label}` is an opaque closure — not serializable for \
                 process backends (use a structural Pred, or the in-process transport)"
            )));
        }
    }
    Ok(())
}

fn dec_pred(d: &mut Dec) -> R<Pred> {
    Ok(match d.u8()? {
        0 => Pred::True,
        1 => Pred::False,
        2 => Pred::Cmp {
            dim: d.us()?,
            f: dec_fn1(d)?,
            op: dec_cmp(d)?,
            rhs: d.i64()?,
        },
        3 => Pred::DimCmp {
            dim_a: d.us()?,
            op: dec_cmp(d)?,
            dim_b: d.us()?,
        },
        4 => Pred::And(Box::new(dec_pred(d)?), Box::new(dec_pred(d)?)),
        5 => Pred::Or(Box::new(dec_pred(d)?), Box::new(dec_pred(d)?)),
        6 => Pred::Not(Box::new(dec_pred(d)?)),
        _ => return Err(bad("Pred tag")),
    })
}

fn bin_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Min => 4,
        BinOp::Max => 5,
    }
}

fn dec_bin(d: &mut Dec) -> R<BinOp> {
    Ok(match d.u8()? {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Min,
        5 => BinOp::Max,
        _ => return Err(bad("BinOp tag")),
    })
}

fn enc_expr(e: &mut Enc, x: &Expr) {
    match x {
        Expr::Ref(r) => {
            e.u8(0);
            enc_aref(e, r);
        }
        Expr::Lit(v) => {
            e.u8(1);
            e.f64(*v);
        }
        Expr::LoopVar { dim } => {
            e.u8(2);
            e.us(*dim);
        }
        Expr::Neg(inner) => {
            e.u8(3);
            enc_expr(e, inner);
        }
        Expr::Bin(op, a, b) => {
            e.u8(4);
            e.u8(bin_tag(*op));
            enc_expr(e, a);
            enc_expr(e, b);
        }
    }
}

fn dec_expr(d: &mut Dec) -> R<Expr> {
    Ok(match d.u8()? {
        0 => Expr::Ref(dec_aref(d)?),
        1 => Expr::Lit(d.f64()?),
        2 => Expr::LoopVar { dim: d.us()? },
        3 => Expr::Neg(Box::new(dec_expr(d)?)),
        4 => Expr::Bin(dec_bin(d)?, Box::new(dec_expr(d)?), Box::new(dec_expr(d)?)),
        _ => return Err(bad("Expr tag")),
    })
}

fn enc_guard(e: &mut Enc, g: &Guard) {
    match g {
        Guard::Always => e.u8(0),
        Guard::Cmp { lhs, op, rhs } => {
            e.u8(1);
            enc_aref(e, lhs);
            e.u8(cmp_tag(*op));
            e.f64(*rhs);
        }
    }
}

fn dec_guard(d: &mut Dec) -> R<Guard> {
    Ok(match d.u8()? {
        0 => Guard::Always,
        1 => Guard::Cmp {
            lhs: dec_aref(d)?,
            op: dec_cmp(d)?,
            rhs: d.f64()?,
        },
        _ => return Err(bad("Guard tag")),
    })
}

pub(crate) fn enc_clause(e: &mut Enc, c: &Clause) -> R<()> {
    enc_bounds(e, &c.iter.bounds);
    enc_pred(e, &c.iter.pred)?;
    e.u8(match c.ordering {
        Ordering::Seq => 0,
        Ordering::Par => 1,
    });
    enc_guard(e, &c.guard);
    enc_aref(e, &c.lhs);
    enc_expr(e, &c.rhs);
    Ok(())
}

pub(crate) fn dec_clause(d: &mut Dec) -> R<Clause> {
    let bounds = dec_bounds(d)?;
    let pred = dec_pred(d)?;
    let ordering = match d.u8()? {
        0 => Ordering::Seq,
        1 => Ordering::Par,
        _ => return Err(bad("Ordering tag")),
    };
    Ok(Clause {
        iter: IndexSet { bounds, pred },
        ordering,
        guard: dec_guard(d)?,
        lhs: dec_aref(d)?,
        rhs: dec_expr(d)?,
    })
}

// ---------------------------------------------------------------------
// decompositions
// ---------------------------------------------------------------------

fn enc_decomp(e: &mut Enc, dc: &Decomp1) {
    match dc.dist() {
        Distribution::Block { b } => {
            e.u8(0);
            e.i64(b);
        }
        Distribution::Scatter => e.u8(1),
        Distribution::BlockScatter { b } => {
            e.u8(2);
            e.i64(b);
        }
        Distribution::Replicated => e.u8(3),
    }
    e.i64(dc.pmax());
    enc_bounds(e, &dc.extent());
}

fn dec_decomp(d: &mut Dec) -> R<Decomp1> {
    let dist = match d.u8()? {
        0 => Distribution::Block { b: d.i64()? },
        1 => Distribution::Scatter,
        2 => Distribution::BlockScatter { b: d.i64()? },
        3 => Distribution::Replicated,
        _ => return Err(bad("Distribution tag")),
    };
    let pmax = d.i64()?;
    if !(1..=4096).contains(&pmax) {
        return Err(bad("Decomp1 processor count"));
    }
    let extent = dec_bounds(d)?;
    if extent.lo().dims() != 1 {
        return Err(bad("Decomp1 extent dimensionality"));
    }
    Ok(Decomp1::new(dist, pmax, extent))
}

fn enc_decomps(e: &mut Enc, ds: &BTreeMap<String, Decomp1>) {
    e.us(ds.len());
    for (name, dc) in ds {
        e.str(name);
        enc_decomp(e, dc);
    }
}

fn dec_decomps(d: &mut Dec) -> R<BTreeMap<String, Decomp1>> {
    let n = d.len()?;
    let mut out = BTreeMap::new();
    for _ in 0..n {
        let name = d.str()?;
        out.insert(name, dec_decomp(d)?);
    }
    Ok(out)
}

fn enc_locals(e: &mut Enc, ls: &BTreeMap<String, Vec<f64>>) {
    e.us(ls.len());
    for (name, vs) in ls {
        e.str(name);
        e.f64s(vs);
    }
}

fn dec_locals(d: &mut Dec) -> R<BTreeMap<String, Vec<f64>>> {
    let n = d.len()?;
    let mut out = BTreeMap::new();
    for _ in 0..n {
        let name = d.str()?;
        out.insert(name, d.f64s()?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// execution options
// ---------------------------------------------------------------------

fn enc_faults(e: &mut Enc, f: &FaultPlan) {
    e.u64(f.seed);
    e.f64(f.drop);
    e.f64(f.duplicate);
    e.f64(f.reorder);
    e.f64(f.corrupt);
    e.f64(f.delay);
    match f.from_only {
        None => e.u8(0),
        Some(p) => {
            e.u8(1);
            e.i64(p);
        }
    }
    match f.drop_exact {
        None => e.u8(0),
        Some((p, n)) => {
            e.u8(1);
            e.i64(p);
            e.u64(n);
        }
    }
    match f.crash {
        None => e.u8(0),
        Some(CrashFault {
            node,
            after_packets,
        }) => {
            e.u8(1);
            e.i64(node);
            e.u64(after_packets);
        }
    }
}

fn dec_faults(d: &mut Dec) -> R<FaultPlan> {
    let mut f = FaultPlan::seeded(0);
    f.seed = d.u64()?;
    f.drop = d.f64()?;
    f.duplicate = d.f64()?;
    f.reorder = d.f64()?;
    f.corrupt = d.f64()?;
    f.delay = d.f64()?;
    f.from_only = match d.u8()? {
        0 => None,
        1 => Some(d.i64()?),
        _ => return Err(bad("FaultPlan from_only tag")),
    };
    f.drop_exact = match d.u8()? {
        0 => None,
        1 => Some((d.i64()?, d.u64()?)),
        _ => return Err(bad("FaultPlan drop_exact tag")),
    };
    f.crash = match d.u8()? {
        0 => None,
        1 => Some(CrashFault {
            node: d.i64()?,
            after_packets: d.u64()?,
        }),
        _ => return Err(bad("FaultPlan crash tag")),
    };
    Ok(f)
}

fn enc_retry(e: &mut Enc, r: &RetryPolicy) {
    e.u32(r.max_retries);
    e.dur(r.nack_timeout);
    e.dur(r.backoff_cap);
    match r.deadline {
        None => e.u8(0),
        Some(dl) => {
            e.u8(1);
            e.dur(dl);
        }
    }
    e.u32(r.jitter_pct);
}

fn dec_retry(d: &mut Dec) -> R<RetryPolicy> {
    Ok(RetryPolicy {
        max_retries: d.u32()?,
        nack_timeout: d.dur()?,
        backoff_cap: d.dur()?,
        deadline: match d.u8()? {
            0 => None,
            1 => Some(d.dur()?),
            _ => return Err(bad("RetryPolicy deadline tag")),
        },
        jitter_pct: d.u32()?,
    })
}

fn enc_simd(e: &mut Enc, s: &SimdPolicy) {
    e.u8(match s.mode {
        SimdMode::Auto => 0,
        SimdMode::On => 1,
        SimdMode::Off => 2,
    });
    e.us(s.lanes);
}

fn dec_simd(d: &mut Dec) -> R<SimdPolicy> {
    Ok(SimdPolicy {
        mode: match d.u8()? {
            0 => SimdMode::Auto,
            1 => SimdMode::On,
            2 => SimdMode::Off,
            _ => return Err(bad("SimdMode tag")),
        },
        lanes: d.us()?,
    })
}

// ---------------------------------------------------------------------
// data-plane frames
// ---------------------------------------------------------------------

fn enc_wire(e: &mut Enc, w: &Wire) {
    match w {
        Wire::Elem(m) => {
            e.u8(0);
            e.us(m.slot);
            e.i64(m.i);
            e.f64(m.value);
        }
        Wire::Pack { run_ord, values } => {
            e.u8(1);
            e.us(*run_ord);
            e.f64s(values);
        }
    }
}

fn dec_wire(d: &mut Dec) -> R<Wire> {
    Ok(match d.u8()? {
        0 => Wire::Elem(Msg {
            slot: d.us()?,
            i: d.i64()?,
            value: d.f64()?,
        }),
        1 => Wire::Pack {
            run_ord: d.us()?,
            values: d.f64s()?,
        },
        _ => return Err(bad("Wire tag")),
    })
}

pub(crate) fn enc_frame(e: &mut Enc, f: &Frame<Wire>) {
    match f {
        Frame::Data(p) => {
            e.u8(0);
            e.i64(p.src);
            e.u64(p.seq);
            e.u64(p.check);
            enc_wire(e, &p.payload);
        }
        Frame::Ack { from, next_needed } => {
            e.u8(1);
            e.i64(*from);
            e.u64(*next_needed);
        }
        Frame::Nack { from, next_needed } => {
            e.u8(2);
            e.i64(*from);
            e.u64(*next_needed);
        }
        Frame::Done { from } => {
            e.u8(3);
            e.i64(*from);
        }
    }
}

pub(crate) fn dec_frame(d: &mut Dec) -> R<Frame<Wire>> {
    Ok(match d.u8()? {
        0 => Frame::Data(Packet {
            src: d.i64()?,
            seq: d.u64()?,
            check: d.u64()?,
            payload: dec_wire(d)?,
        }),
        1 => Frame::Ack {
            from: d.i64()?,
            next_needed: d.u64()?,
        },
        2 => Frame::Nack {
            from: d.i64()?,
            next_needed: d.u64()?,
        },
        3 => Frame::Done { from: d.i64()? },
        _ => return Err(bad("Frame tag")),
    })
}

/// A `Frame::Done { from }` record, encodable without knowing the data
/// payload type — the router synthesizes these on behalf of a dead
/// worker so surviving peers stop waiting on it.
pub(crate) fn enc_done_frame(from: i64) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(3);
    e.i64(from);
    e.buf
}

// ---------------------------------------------------------------------
// results: writes, stats, trace events, errors
// ---------------------------------------------------------------------

fn enc_write(e: &mut Enc, w: &WriteOp) {
    match w {
        WriteOp::El(off, v) => {
            e.u8(0);
            e.us(*off);
            e.f64(*v);
        }
        WriteOp::Dense { base, values } => {
            e.u8(1);
            e.us(*base);
            e.f64s(values);
        }
    }
}

fn dec_write(d: &mut Dec) -> R<WriteOp> {
    Ok(match d.u8()? {
        0 => WriteOp::El(d.us()?, d.f64()?),
        1 => WriteOp::Dense {
            base: d.us()?,
            values: d.f64s()?,
        },
        _ => return Err(bad("WriteOp tag")),
    })
}

fn enc_stats(e: &mut Enc, s: &NodeStats) {
    for v in [
        s.iterations,
        s.guard_tests,
        s.data_guards,
        s.msgs_sent,
        s.msgs_received,
        s.local_reads,
        s.packets_sent,
        s.bytes_sent,
        s.max_packet_elems,
        s.retransmits,
        s.dups_dropped,
        s.corrupt_detected,
        s.acks_sent,
        s.nacks_sent,
        s.simd_runs,
        s.simd_fallback_runs,
        s.simd_lane_elems,
        s.simd_tail_elems,
        s.simd_lanes,
    ] {
        e.u64(v);
    }
}

fn dec_stats(d: &mut Dec) -> R<NodeStats> {
    let mut s = NodeStats::default();
    for f in [
        &mut s.iterations,
        &mut s.guard_tests,
        &mut s.data_guards,
        &mut s.msgs_sent,
        &mut s.msgs_received,
        &mut s.local_reads,
        &mut s.packets_sent,
        &mut s.bytes_sent,
        &mut s.max_packet_elems,
        &mut s.retransmits,
        &mut s.dups_dropped,
        &mut s.corrupt_detected,
        &mut s.acks_sent,
        &mut s.nacks_sent,
        &mut s.simd_runs,
        &mut s.simd_fallback_runs,
        &mut s.simd_lane_elems,
        &mut s.simd_tail_elems,
        &mut s.simd_lanes,
    ] {
        *f = d.u64()?;
    }
    Ok(s)
}

fn phase_tag(p: Phase) -> u8 {
    match p {
        Phase::Plan => 0,
        Phase::Send => 1,
        Phase::Update => 2,
        Phase::Drain => 3,
        Phase::Commit => 4,
        Phase::Redistribute => 5,
        Phase::Halo => 6,
    }
}

fn dec_phase(d: &mut Dec) -> R<Phase> {
    Ok(match d.u8()? {
        0 => Phase::Plan,
        1 => Phase::Send,
        2 => Phase::Update,
        3 => Phase::Drain,
        4 => Phase::Commit,
        5 => Phase::Redistribute,
        6 => Phase::Halo,
        _ => return Err(bad("Phase tag")),
    })
}

/// Map a dispatch-kind string decoded off the wire back onto the static
/// [`vcal_spmd::OptKind::name`] table. Unknown names (a newer peer)
/// fall back to leaking one interned copy — bounded by the number of
/// distinct names a peer can produce, and only reachable on the host's
/// result-ingest path.
fn intern_kind(s: String) -> &'static str {
    const KNOWN: &[&str] = &[
        "empty-loop",
        "theorem-1-constant",
        "replicated-owner",
        "block-affine-range",
        "block-monotonic-range",
        "theorem-3-corollary-1",
        "theorem-3-corollary-2",
        "theorem-3-diophantine",
        "scatter-enumerate-on-k",
        "theorem-2-repeated-block",
        "repeated-scatter",
        "piecewise-split",
        "naive-guard",
    ];
    for k in KNOWN {
        if *k == s {
            return k;
        }
    }
    Box::leak(s.into_boxed_str())
}

fn enc_event(e: &mut Enc, ev: &EventKind) {
    match ev {
        EventKind::PhaseStart(p) => {
            e.u8(0);
            e.u8(phase_tag(*p));
        }
        EventKind::PhaseEnd(p) => {
            e.u8(1);
            e.u8(phase_tag(*p));
        }
        EventKind::ModifyDispatch { kind, closed_form } => {
            e.u8(2);
            e.str(kind);
            e.b(*closed_form);
        }
        EventKind::ResideDispatch {
            slot,
            array,
            kind,
            closed_form,
        } => {
            e.u8(3);
            e.us(*slot);
            e.str(array);
            e.str(kind);
            e.b(*closed_form);
        }
        EventKind::PackSend {
            dst,
            run,
            elems,
            bytes,
        } => {
            e.u8(4);
            e.i64(*dst);
            e.us(*run);
            e.u64(*elems);
            e.u64(*bytes);
        }
        EventKind::ElemSend { dst, slot, i } => {
            e.u8(5);
            e.i64(*dst);
            e.us(*slot);
            e.i64(*i);
        }
        EventKind::RecvValue { src, slot, i } => {
            e.u8(6);
            e.i64(*src);
            e.us(*slot);
            e.i64(*i);
        }
        EventKind::InteriorRun { run, elems } => {
            e.u8(7);
            e.us(*run);
            e.u64(*elems);
        }
        EventKind::BoundaryRun { run, elems, recvs } => {
            e.u8(8);
            e.us(*run);
            e.u64(*elems);
            e.u64(*recvs);
        }
        EventKind::SimdCensus {
            vector_runs,
            fallback_runs,
            lane_elems,
            tail_elems,
        } => {
            e.u8(9);
            e.u64(*vector_runs);
            e.u64(*fallback_runs);
            e.u64(*lane_elems);
            e.u64(*tail_elems);
        }
        EventKind::HaloMsg { dst, elems } => {
            e.u8(10);
            e.i64(*dst);
            e.u64(*elems);
        }
        EventKind::RedistSend { dst, elems } => {
            e.u8(11);
            e.i64(*dst);
            e.u64(*elems);
        }
        EventKind::RedistRecv { src, elems } => {
            e.u8(12);
            e.i64(*src);
            e.u64(*elems);
        }
        EventKind::Retransmit { dst } => {
            e.u8(13);
            e.i64(*dst);
        }
        EventKind::Ack { dst } => {
            e.u8(14);
            e.i64(*dst);
        }
        EventKind::Nack { peer } => {
            e.u8(15);
            e.i64(*peer);
        }
        EventKind::DupDropped { src } => {
            e.u8(16);
            e.i64(*src);
        }
        EventKind::CorruptDetected { src } => {
            e.u8(17);
            e.i64(*src);
        }
        EventKind::Backoff { peer } => {
            e.u8(18);
            e.i64(*peer);
        }
        EventKind::DagReady { step } => {
            e.u8(19);
            e.us(*step);
        }
        EventKind::ClauseBegin { step } => {
            e.u8(20);
            e.us(*step);
        }
        EventKind::ClauseEnd { step } => {
            e.u8(21);
            e.us(*step);
        }
    }
}

fn dec_event(d: &mut Dec) -> R<EventKind> {
    Ok(match d.u8()? {
        0 => EventKind::PhaseStart(dec_phase(d)?),
        1 => EventKind::PhaseEnd(dec_phase(d)?),
        2 => EventKind::ModifyDispatch {
            kind: intern_kind(d.str()?),
            closed_form: d.b()?,
        },
        3 => EventKind::ResideDispatch {
            slot: d.us()?,
            array: d.str()?,
            kind: intern_kind(d.str()?),
            closed_form: d.b()?,
        },
        4 => EventKind::PackSend {
            dst: d.i64()?,
            run: d.us()?,
            elems: d.u64()?,
            bytes: d.u64()?,
        },
        5 => EventKind::ElemSend {
            dst: d.i64()?,
            slot: d.us()?,
            i: d.i64()?,
        },
        6 => EventKind::RecvValue {
            src: d.i64()?,
            slot: d.us()?,
            i: d.i64()?,
        },
        7 => EventKind::InteriorRun {
            run: d.us()?,
            elems: d.u64()?,
        },
        8 => EventKind::BoundaryRun {
            run: d.us()?,
            elems: d.u64()?,
            recvs: d.u64()?,
        },
        9 => EventKind::SimdCensus {
            vector_runs: d.u64()?,
            fallback_runs: d.u64()?,
            lane_elems: d.u64()?,
            tail_elems: d.u64()?,
        },
        10 => EventKind::HaloMsg {
            dst: d.i64()?,
            elems: d.u64()?,
        },
        11 => EventKind::RedistSend {
            dst: d.i64()?,
            elems: d.u64()?,
        },
        12 => EventKind::RedistRecv {
            src: d.i64()?,
            elems: d.u64()?,
        },
        13 => EventKind::Retransmit { dst: d.i64()? },
        14 => EventKind::Ack { dst: d.i64()? },
        15 => EventKind::Nack { peer: d.i64()? },
        16 => EventKind::DupDropped { src: d.i64()? },
        17 => EventKind::CorruptDetected { src: d.i64()? },
        18 => EventKind::Backoff { peer: d.i64()? },
        19 => EventKind::DagReady { step: d.us()? },
        20 => EventKind::ClauseBegin { step: d.us()? },
        21 => EventKind::ClauseEnd { step: d.us()? },
        _ => return Err(bad("EventKind tag")),
    })
}

fn enc_err(e: &mut Enc, err: &MachineError) {
    match err {
        MachineError::SequentialClause => e.u8(0),
        MachineError::UnknownArray(a) => {
            e.u8(1);
            e.str(a);
        }
        MachineError::MissingMessage { node, array, index } => {
            e.u8(2);
            e.i64(*node);
            e.str(array);
            e.i64(*index);
        }
        MachineError::MissingPacket {
            node,
            peer,
            slot,
            run,
        } => {
            e.u8(3);
            e.i64(*node);
            e.i64(*peer);
            e.us(*slot);
            e.us(*run);
        }
        MachineError::Unrecoverable {
            node,
            peer,
            retries,
        } => {
            e.u8(4);
            e.i64(*node);
            e.i64(*peer);
            e.u32(*retries);
        }
        MachineError::NodePanicked { node } => {
            e.u8(5);
            e.i64(*node);
        }
        MachineError::PeerDisconnected { node, peer } => {
            e.u8(6);
            e.i64(*node);
            e.i64(*peer);
        }
        MachineError::PlanMismatch(m) => {
            e.u8(7);
            e.str(m);
        }
        MachineError::Transport { node, detail } => {
            e.u8(8);
            e.i64(*node);
            e.str(detail);
        }
    }
}

fn dec_err(d: &mut Dec) -> R<MachineError> {
    Ok(match d.u8()? {
        0 => MachineError::SequentialClause,
        1 => MachineError::UnknownArray(d.str()?),
        2 => MachineError::MissingMessage {
            node: d.i64()?,
            array: d.str()?,
            index: d.i64()?,
        },
        3 => MachineError::MissingPacket {
            node: d.i64()?,
            peer: d.i64()?,
            slot: d.us()?,
            run: d.us()?,
        },
        4 => MachineError::Unrecoverable {
            node: d.i64()?,
            peer: d.i64()?,
            retries: d.u32()?,
        },
        5 => MachineError::NodePanicked { node: d.i64()? },
        6 => MachineError::PeerDisconnected {
            node: d.i64()?,
            peer: d.i64()?,
        },
        7 => MachineError::PlanMismatch(d.str()?),
        8 => MachineError::Transport {
            node: d.i64()?,
            detail: d.str()?,
        },
        _ => return Err(bad("MachineError tag")),
    })
}

// ---------------------------------------------------------------------
// control plane: Job / Ready / Go / Result
// ---------------------------------------------------------------------

/// Everything a worker needs to run one node of one clause. The worker
/// rebuilds the `SpmdPlan` (and its compiled schedule) from the clause
/// and decompositions via the deterministic planner, so the host and
/// every worker agree on packing order by construction.
#[derive(Debug, Clone)]
pub(crate) struct JobMsg {
    /// Monotonic per-pool run ordinal. Job dispatch is *idempotent*: the
    /// host may re-send the same job while the run is open (chaos can
    /// eat a control frame in a severed connection's buffers), and the
    /// worker answers a duplicate of a finished run by re-shipping the
    /// cached result instead of re-executing.
    pub run_id: u64,
    pub clause: Clause,
    pub decomps: BTreeMap<String, Decomp1>,
    pub recv_timeout: Duration,
    pub faults: Option<FaultPlan>,
    pub mode: CommMode,
    pub retry: RetryPolicy,
    pub overlap: bool,
    pub simd: SimdPolicy,
    pub trace_on: bool,
    /// Purge + Ready/Go barrier before the run (mirrors the in-process
    /// pool's dirty handshake).
    pub handshake: bool,
    /// The node's local array parts, in decomposition layout.
    pub locals: BTreeMap<String, Vec<f64>>,
}

/// What a worker ships back after a run (the process-backend mirror of
/// the executor's `Reply`).
#[derive(Debug, Clone)]
pub(crate) struct ResultMsg {
    /// Echo of [`JobMsg::run_id`] — the host drops results from stale
    /// runs (a re-shipped duplicate answering a retransmitted job).
    pub run_id: u64,
    pub p: i64,
    pub locals: BTreeMap<String, Vec<f64>>,
    pub writes: Vec<WriteOp>,
    pub stats: NodeStats,
    pub sent_to: Vec<u64>,
    pub res: Result<(), MachineError>,
    pub events: Vec<(i64, EventKind)>,
    pub timings: Vec<(i64, Phase, Duration)>,
}

/// A control-plane message (reliable by the stream transport itself;
/// never touched by `FaultPlan` or the chaos proxy).
#[derive(Debug, Clone)]
pub(crate) enum Ctrl {
    Job(Box<JobMsg>),
    /// Barrier acknowledgment: the worker purged and holds the job with
    /// this run ordinal. Doubles as job-delivery confirmation, so the
    /// host knows a retransmit is unnecessary.
    Ready(u64),
    Go,
    Result(Box<ResultMsg>),
    /// Host-initiated graceful worker shutdown (pool teardown).
    Shutdown,
}

pub(crate) fn enc_ctrl(c: &Ctrl) -> R<Vec<u8>> {
    let mut e = Enc::new();
    match c {
        Ctrl::Job(j) => {
            e.u8(0);
            e.u64(j.run_id);
            enc_clause(&mut e, &j.clause)?;
            enc_decomps(&mut e, &j.decomps);
            e.dur(j.recv_timeout);
            match &j.faults {
                None => e.u8(0),
                Some(f) => {
                    e.u8(1);
                    enc_faults(&mut e, f);
                }
            }
            e.u8(match j.mode {
                CommMode::Element => 0,
                CommMode::Vectorized => 1,
            });
            enc_retry(&mut e, &j.retry);
            e.b(j.overlap);
            enc_simd(&mut e, &j.simd);
            e.b(j.trace_on);
            e.b(j.handshake);
            enc_locals(&mut e, &j.locals);
        }
        Ctrl::Ready(run_id) => {
            e.u8(1);
            e.u64(*run_id);
        }
        Ctrl::Go => e.u8(2),
        Ctrl::Shutdown => e.u8(4),
        Ctrl::Result(r) => {
            e.u8(3);
            e.u64(r.run_id);
            e.i64(r.p);
            enc_locals(&mut e, &r.locals);
            e.us(r.writes.len());
            for w in &r.writes {
                enc_write(&mut e, w);
            }
            enc_stats(&mut e, &r.stats);
            e.us(r.sent_to.len());
            for v in &r.sent_to {
                e.u64(*v);
            }
            match &r.res {
                Ok(()) => e.u8(0),
                Err(err) => {
                    e.u8(1);
                    enc_err(&mut e, err);
                }
            }
            e.us(r.events.len());
            for (n, ev) in &r.events {
                e.i64(*n);
                enc_event(&mut e, ev);
            }
            e.us(r.timings.len());
            for (n, ph, dt) in &r.timings {
                e.i64(*n);
                e.u8(phase_tag(*ph));
                e.dur(*dt);
            }
        }
    }
    Ok(e.buf)
}

pub(crate) fn dec_ctrl(buf: &[u8]) -> R<Ctrl> {
    let mut d = Dec::new(buf);
    let c = match d.u8()? {
        0 => {
            let run_id = d.u64()?;
            let clause = dec_clause(&mut d)?;
            let decomps = dec_decomps(&mut d)?;
            let recv_timeout = d.dur()?;
            let faults = match d.u8()? {
                0 => None,
                1 => Some(dec_faults(&mut d)?),
                _ => return Err(bad("JobMsg faults tag")),
            };
            let mode = match d.u8()? {
                0 => CommMode::Element,
                1 => CommMode::Vectorized,
                _ => return Err(bad("CommMode tag")),
            };
            let retry = dec_retry(&mut d)?;
            let overlap = d.b()?;
            let simd = dec_simd(&mut d)?;
            let trace_on = d.b()?;
            let handshake = d.b()?;
            let locals = dec_locals(&mut d)?;
            Ctrl::Job(Box::new(JobMsg {
                run_id,
                clause,
                decomps,
                recv_timeout,
                faults,
                mode,
                retry,
                overlap,
                simd,
                trace_on,
                handshake,
                locals,
            }))
        }
        1 => Ctrl::Ready(d.u64()?),
        2 => Ctrl::Go,
        4 => Ctrl::Shutdown,
        3 => {
            let run_id = d.u64()?;
            let p = d.i64()?;
            let locals = dec_locals(&mut d)?;
            let nw = d.len()?;
            let mut writes = Vec::with_capacity(nw);
            for _ in 0..nw {
                writes.push(dec_write(&mut d)?);
            }
            let stats = dec_stats(&mut d)?;
            let ns = d.len()?;
            let mut sent_to = Vec::with_capacity(ns);
            for _ in 0..ns {
                sent_to.push(d.u64()?);
            }
            let res = match d.u8()? {
                0 => Ok(()),
                1 => Err(dec_err(&mut d)?),
                _ => return Err(bad("ResultMsg outcome tag")),
            };
            let ne = d.len()?;
            let mut events = Vec::with_capacity(ne);
            for _ in 0..ne {
                let n = d.i64()?;
                events.push((n, dec_event(&mut d)?));
            }
            let nt = d.len()?;
            let mut timings = Vec::with_capacity(nt);
            for _ in 0..nt {
                let n = d.i64()?;
                let ph = dec_phase(&mut d)?;
                let dt = d.dur()?;
                timings.push((n, ph, dt));
            }
            Ctrl::Result(Box::new(ResultMsg {
                run_id,
                p,
                locals,
                writes,
                stats,
                sent_to,
                res,
                events,
                timings,
            }))
        }
        _ => return Err(bad("Ctrl tag")),
    };
    d.finish()?;
    Ok(c)
}

// ---------------------------------------------------------------------
// serve protocol: session hello, program requests, responses
// ---------------------------------------------------------------------

/// One client request to a resident `vcalc serve` service: a whole
/// program (clauses and explicit redistributions), the decompositions,
/// and the initial global array images. Like the worker protocol, the
/// encoding is generative — plans, DAGs, and tuning decisions are all
/// rebuilt server-side from this, where the shared caches can amortize
/// them across every session that sends the same shapes.
#[derive(Debug, Clone)]
pub(crate) struct ReqMsg {
    /// Client-chosen request ordinal, echoed on the response.
    pub req_id: u64,
    /// Timestep-loop iterations of the whole program.
    pub n_steps: u64,
    /// Schedule for the program ([`crate::session::ScheduleMode`]).
    pub schedule: crate::session::ScheduleMode,
    /// Run through [`crate::session::DistSession::run_program_tuned`].
    pub autotune: bool,
    /// Tuner candidate budget (autotune only).
    pub tune_budget: usize,
    /// Tuner profile steps (autotune only).
    pub profile_steps: u64,
    /// Tuner retune period; 0 = tune once (autotune only).
    pub retune_every: u64,
    /// Per-request deadline in milliseconds; 0 = the service default.
    pub deadline_ms: u64,
    /// The program.
    pub steps: Vec<vcal_spmd::ProgramStep>,
    /// Decomposition per array.
    pub decomps: BTreeMap<String, Decomp1>,
    /// Initial global image per array, flattened over the 1-D extent.
    pub globals: BTreeMap<String, Vec<f64>>,
}

/// A successful serve response: final global images plus what the
/// service's shared caches and admission queue did for this request.
#[derive(Debug, Clone)]
pub(crate) struct RespOk {
    /// Final global image per array, flattened over the 1-D extent.
    pub globals: BTreeMap<String, Vec<f64>>,
    /// Service-level counters for this request.
    pub service: crate::stats::ServiceStats,
}

/// One serve response, success or typed failure.
#[derive(Debug, Clone)]
pub(crate) struct RespMsg {
    /// Echo of [`ReqMsg::req_id`].
    pub req_id: u64,
    /// The outcome.
    pub res: Result<RespOk, MachineError>,
}

/// Encode the serve-session hello: wire version + tenant name.
pub(crate) fn enc_shello(tenant: &str) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(WIRE_VERSION);
    e.str(tenant);
    e.buf
}

/// Decode the serve-session hello.
pub(crate) fn dec_shello(buf: &[u8]) -> R<(u32, String)> {
    let mut d = Dec::new(buf);
    let version = d.u32()?;
    let tenant = d.str()?;
    d.finish()?;
    Ok((version, tenant))
}

fn enc_step(e: &mut Enc, s: &vcal_spmd::ProgramStep) -> R<()> {
    match s {
        vcal_spmd::ProgramStep::Clause(c) => {
            e.u8(0);
            enc_clause(e, c)?;
        }
        vcal_spmd::ProgramStep::Redistribute { array, to } => {
            e.u8(1);
            e.str(array);
            enc_decomp(e, to);
        }
    }
    Ok(())
}

fn dec_step(d: &mut Dec) -> R<vcal_spmd::ProgramStep> {
    Ok(match d.u8()? {
        0 => vcal_spmd::ProgramStep::Clause(dec_clause(d)?),
        1 => vcal_spmd::ProgramStep::Redistribute {
            array: d.str()?,
            to: dec_decomp(d)?,
        },
        _ => return Err(bad("ProgramStep tag")),
    })
}

pub(crate) fn enc_req(r: &ReqMsg) -> R<Vec<u8>> {
    let mut e = Enc::new();
    e.u64(r.req_id);
    e.u64(r.n_steps);
    e.u8(match r.schedule {
        crate::session::ScheduleMode::Seq => 0,
        crate::session::ScheduleMode::Dag => 1,
    });
    e.b(r.autotune);
    e.us(r.tune_budget);
    e.u64(r.profile_steps);
    e.u64(r.retune_every);
    e.u64(r.deadline_ms);
    e.us(r.steps.len());
    for s in &r.steps {
        enc_step(&mut e, s)?;
    }
    enc_decomps(&mut e, &r.decomps);
    enc_locals(&mut e, &r.globals);
    Ok(e.buf)
}

pub(crate) fn dec_req(buf: &[u8]) -> R<ReqMsg> {
    let mut d = Dec::new(buf);
    let req_id = d.u64()?;
    let n_steps = d.u64()?;
    let schedule = match d.u8()? {
        0 => crate::session::ScheduleMode::Seq,
        1 => crate::session::ScheduleMode::Dag,
        _ => return Err(bad("ScheduleMode tag")),
    };
    let autotune = d.b()?;
    let tune_budget = d.us()?;
    let profile_steps = d.u64()?;
    let retune_every = d.u64()?;
    let deadline_ms = d.u64()?;
    let n = d.len()?;
    let mut steps = Vec::with_capacity(n);
    for _ in 0..n {
        steps.push(dec_step(&mut d)?);
    }
    let decomps = dec_decomps(&mut d)?;
    let globals = dec_locals(&mut d)?;
    d.finish()?;
    Ok(ReqMsg {
        req_id,
        n_steps,
        schedule,
        autotune,
        tune_budget,
        profile_steps,
        retune_every,
        deadline_ms,
        steps,
        decomps,
        globals,
    })
}

fn enc_service(e: &mut Enc, s: &crate::stats::ServiceStats) {
    for v in [
        s.queue_wait_ns,
        s.sessions_served,
        s.plan_hits,
        s.plan_misses,
        s.dag_hits,
        s.dag_misses,
        s.tune_hits,
        s.tune_misses,
        s.evictions,
    ] {
        e.u64(v);
    }
}

fn dec_service(d: &mut Dec) -> R<crate::stats::ServiceStats> {
    let mut s = crate::stats::ServiceStats::default();
    for f in [
        &mut s.queue_wait_ns,
        &mut s.sessions_served,
        &mut s.plan_hits,
        &mut s.plan_misses,
        &mut s.dag_hits,
        &mut s.dag_misses,
        &mut s.tune_hits,
        &mut s.tune_misses,
        &mut s.evictions,
    ] {
        *f = d.u64()?;
    }
    Ok(s)
}

pub(crate) fn enc_resp(r: &RespMsg) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(r.req_id);
    match &r.res {
        Ok(ok) => {
            e.u8(0);
            enc_locals(&mut e, &ok.globals);
            enc_service(&mut e, &ok.service);
        }
        Err(err) => {
            e.u8(1);
            enc_err(&mut e, err);
        }
    }
    e.buf
}

pub(crate) fn dec_resp(buf: &[u8]) -> R<RespMsg> {
    let mut d = Dec::new(buf);
    let req_id = d.u64()?;
    let res = match d.u8()? {
        0 => {
            let globals = dec_locals(&mut d)?;
            let service = dec_service(&mut d)?;
            Ok(RespOk { globals, service })
        }
        1 => Err(dec_err(&mut d)?),
        _ => return Err(bad("RespMsg outcome tag")),
    };
    d.finish()?;
    Ok(RespMsg { req_id, res })
}

pub(crate) fn enc_frame_bytes(f: &Frame<Wire>) -> Vec<u8> {
    let mut e = Enc::new();
    enc_frame(&mut e, f);
    e.buf
}

pub(crate) fn dec_frame_bytes(buf: &[u8]) -> R<Frame<Wire>> {
    let mut d = Dec::new(buf);
    let f = dec_frame(&mut d)?;
    d.finish()?;
    Ok(f)
}

// ---------------------------------------------------------------------

/// A representative clause exercising most codec paths — shared by the
/// codec and net test suites.
#[cfg(test)]
pub(crate) fn sample_clause() -> Clause {
    use vcal_core::func::Fn1;
    // ∆(i ∈ 0:99 | i mod 2 = 0) // (A[i] > 0 → [2i+1](A) := [i](B) * -[i+(i div 4)](C) + 3.5)
    Clause {
        iter: IndexSet {
            bounds: Bounds::range(0, 99),
            pred: Pred::Cmp {
                dim: 0,
                f: Fn1::Mod {
                    inner: Box::new(Fn1::Affine { a: 1, c: 0 }),
                    z: 2,
                    d: 0,
                },
                op: CmpOp::Eq,
                rhs: 0,
            },
        },
        ordering: Ordering::Par,
        guard: Guard::Cmp {
            lhs: ArrayRef::d1("A", Fn1::Affine { a: 1, c: 0 }),
            op: CmpOp::Gt,
            rhs: 0.0,
        },
        lhs: ArrayRef::d1("A", Fn1::Affine { a: 2, c: 1 }),
        rhs: Expr::add(
            Expr::mul(
                Expr::Ref(ArrayRef::d1("B", Fn1::Affine { a: 1, c: 0 })),
                Expr::Neg(Box::new(Expr::Ref(ArrayRef::d1(
                    "C",
                    Fn1::Sum(
                        Box::new(Fn1::Affine { a: 1, c: 0 }),
                        Box::new(Fn1::Div {
                            inner: Box::new(Fn1::Affine { a: 1, c: 0 }),
                            q: 4,
                        }),
                    ),
                )))),
            ),
            Expr::Lit(3.5),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use super::sample_clause;

    #[test]
    fn clause_roundtrips() {
        let c = sample_clause();
        let mut e = Enc::new();
        enc_clause(&mut e, &c).expect("encodes");
        let mut d = Dec::new(&e.buf);
        let c2 = dec_clause(&mut d).expect("decodes");
        d.finish().expect("fully consumed");
        assert_eq!(format!("{c}"), format!("{c2}"));
        assert_eq!(c.lhs, c2.lhs);
        assert_eq!(c.rhs, c2.rhs);
        assert_eq!(c.guard, c2.guard);
    }

    #[test]
    fn opaque_pred_is_rejected_with_label() {
        let mut e = Enc::new();
        let p = Pred::Opaque {
            label: "mystery".into(),
            f: Arc::new(|_| true),
        };
        let err = enc_pred(&mut e, &p).expect_err("opaque must not encode");
        assert!(err.0.contains("mystery"), "names the predicate: {err}");
    }

    #[test]
    fn ctrl_job_roundtrips() {
        let mut decomps = BTreeMap::new();
        decomps.insert(
            "A".to_string(),
            Decomp1::new(Distribution::Scatter, 4, Bounds::range(0, 199)),
        );
        decomps.insert(
            "B".to_string(),
            Decomp1::new(Distribution::Block { b: 50 }, 4, Bounds::range(0, 199)),
        );
        let mut locals = BTreeMap::new();
        locals.insert("A".to_string(), vec![1.0, -2.5, f64::NAN]);
        let job = JobMsg {
            run_id: 7,
            clause: sample_clause(),
            decomps,
            recv_timeout: Duration::from_millis(250),
            faults: Some(
                FaultPlan::seeded(7)
                    .with_drop(0.1)
                    .with_corrupt(0.05)
                    .with_crash(2, 3),
            ),
            mode: CommMode::Vectorized,
            retry: RetryPolicy::fast().with_deadline(Duration::from_secs(2)),
            overlap: true,
            simd: SimdPolicy::default(),
            trace_on: true,
            handshake: false,
            locals,
        };
        let bytes = enc_ctrl(&Ctrl::Job(Box::new(job.clone()))).expect("encodes");
        let Ctrl::Job(j2) = dec_ctrl(&bytes).expect("decodes") else {
            panic!("wrong Ctrl arm");
        };
        assert_eq!(j2.decomps, job.decomps);
        assert_eq!(j2.recv_timeout, job.recv_timeout);
        assert_eq!(j2.faults, job.faults);
        assert_eq!(j2.retry, job.retry);
        assert_eq!(j2.locals["A"][1], -2.5);
        assert!(j2.locals["A"][2].is_nan(), "NaN survives bit-exactly");
        assert_eq!(format!("{}", j2.clause), format!("{}", job.clause));
    }

    #[test]
    fn ctrl_result_roundtrips_with_errors_and_events() {
        let errs = vec![
            MachineError::SequentialClause,
            MachineError::UnknownArray("Z".into()),
            MachineError::MissingMessage {
                node: 1,
                array: "B".into(),
                index: 9,
            },
            MachineError::MissingPacket {
                node: 1,
                peer: 2,
                slot: 0,
                run: 3,
            },
            MachineError::Unrecoverable {
                node: 0,
                peer: 3,
                retries: 8,
            },
            MachineError::NodePanicked { node: 2 },
            MachineError::PeerDisconnected { node: 1, peer: 0 },
            MachineError::PlanMismatch("x".into()),
            MachineError::Transport {
                node: -1,
                detail: "wire version 1 != 2".into(),
            },
        ];
        for err in errs {
            let stats = NodeStats {
                msgs_sent: 3,
                simd_lanes: 8,
                ..NodeStats::default()
            };
            let r = ResultMsg {
                run_id: 3,
                p: 2,
                locals: BTreeMap::new(),
                writes: vec![
                    WriteOp::El(4, 2.25),
                    WriteOp::Dense {
                        base: 8,
                        values: vec![1.0, 2.0],
                    },
                ],
                stats,
                sent_to: vec![0, 7, 0, 1],
                res: Err(err.clone()),
                events: vec![
                    (2, EventKind::PhaseStart(Phase::Send)),
                    (
                        2,
                        EventKind::PackSend {
                            dst: 0,
                            run: 1,
                            elems: 16,
                            bytes: 144,
                        },
                    ),
                    (
                        2,
                        EventKind::ModifyDispatch {
                            kind: "theorem-3-corollary-1",
                            closed_form: true,
                        },
                    ),
                    (2, EventKind::Nack { peer: 0 }),
                ],
                timings: vec![(2, Phase::Update, Duration::from_micros(1234))],
            };
            let bytes = enc_ctrl(&Ctrl::Result(Box::new(r))).expect("encodes");
            let Ctrl::Result(r2) = dec_ctrl(&bytes).expect("decodes") else {
                panic!("wrong Ctrl arm");
            };
            assert_eq!(r2.p, 2);
            assert_eq!(r2.sent_to, vec![0, 7, 0, 1]);
            assert_eq!(r2.stats.msgs_sent, 3);
            assert_eq!(r2.stats.simd_lanes, 8);
            assert_eq!(
                format!("{}", r2.res.expect_err("error arm")),
                format!("{err}")
            );
            assert_eq!(r2.events.len(), 4);
            let EventKind::ModifyDispatch { kind, .. } = r2.events[2].1 else {
                panic!("dispatch event lost");
            };
            assert_eq!(kind, "theorem-3-corollary-1");
            assert_eq!(
                r2.timings,
                vec![(2, Phase::Update, Duration::from_micros(1234))]
            );
        }
    }

    #[test]
    fn frames_roundtrip_and_done_is_t_independent() {
        let frames = vec![
            Frame::Data(Packet {
                src: 1,
                seq: 42,
                check: 0xdead_beef,
                payload: Wire::Pack {
                    run_ord: 2,
                    values: vec![0.5, -0.5],
                },
            }),
            Frame::Data(Packet {
                src: 0,
                seq: 0,
                check: 9,
                payload: Wire::Elem(Msg {
                    slot: 1,
                    i: -3,
                    value: 7.0,
                }),
            }),
            Frame::Ack {
                from: 2,
                next_needed: 5,
            },
            Frame::Nack {
                from: 3,
                next_needed: 1,
            },
            Frame::Done { from: 1 },
        ];
        for f in &frames {
            let bytes = enc_frame_bytes(f);
            let f2 = dec_frame_bytes(&bytes).expect("decodes");
            assert_eq!(format!("{f:?}"), format!("{f2:?}"));
        }
        assert_eq!(
            enc_done_frame(1),
            enc_frame_bytes(&Frame::Done { from: 1 }),
            "router-synthesized Done must be byte-identical to a real one"
        );
    }

    #[test]
    fn serve_records_roundtrip() {
        let mut decomps = BTreeMap::new();
        decomps.insert(
            "A".to_string(),
            Decomp1::new(Distribution::Block { b: 25 }, 4, Bounds::range(0, 99)),
        );
        let mut globals = BTreeMap::new();
        globals.insert("A".to_string(), vec![1.5, -2.0, f64::NAN]);
        let req = ReqMsg {
            req_id: 11,
            n_steps: 6,
            schedule: crate::session::ScheduleMode::Dag,
            autotune: true,
            tune_budget: 16,
            profile_steps: 2,
            retune_every: 3,
            deadline_ms: 500,
            steps: vec![
                vcal_spmd::ProgramStep::Clause(sample_clause()),
                vcal_spmd::ProgramStep::Redistribute {
                    array: "A".into(),
                    to: Decomp1::new(Distribution::Scatter, 4, Bounds::range(0, 99)),
                },
            ],
            decomps,
            globals: globals.clone(),
        };
        let bytes = enc_req(&req).expect("encodes");
        let r2 = dec_req(&bytes).expect("decodes");
        assert_eq!(r2.req_id, 11);
        assert_eq!(r2.schedule, crate::session::ScheduleMode::Dag);
        assert_eq!(r2.retune_every, 3);
        assert_eq!(r2.decomps, req.decomps);
        assert_eq!(r2.steps.len(), 2);
        assert!(r2.globals["A"][2].is_nan(), "NaN survives bit-exactly");

        let (v, tenant) = dec_shello(&enc_shello("acme")).expect("hello roundtrips");
        assert_eq!((v, tenant.as_str()), (WIRE_VERSION, "acme"));

        let ok = RespMsg {
            req_id: 11,
            res: Ok(RespOk {
                globals,
                service: crate::stats::ServiceStats {
                    queue_wait_ns: 77,
                    sessions_served: 3,
                    plan_hits: 2,
                    plan_misses: 1,
                    dag_hits: 1,
                    dag_misses: 0,
                    tune_hits: 4,
                    tune_misses: 12,
                    evictions: 1,
                },
            }),
        };
        let r3 = dec_resp(&enc_resp(&ok)).expect("ok response roundtrips");
        assert_eq!(r3.req_id, 11);
        let got = r3.res.expect("ok arm");
        assert_eq!(got.service.plan_hits, 2);
        assert_eq!(got.service.queue_wait_ns, 77);
        assert!(got.globals["A"][2].is_nan());

        let bad_resp = RespMsg {
            req_id: 12,
            res: Err(MachineError::Transport {
                node: -1,
                detail: "admission: queue full".into(),
            }),
        };
        let r4 = dec_resp(&enc_resp(&bad_resp)).expect("error response roundtrips");
        let err = r4.res.expect_err("error arm");
        assert!(format!("{err}").contains("admission: queue full"));
    }

    #[test]
    fn truncated_and_garbage_input_fail_typed() {
        let bytes = enc_ctrl(&Ctrl::Ready(9)).expect("encodes");
        assert!(dec_ctrl(&bytes[..0]).is_err(), "empty input");
        let mut long = bytes.clone();
        long.push(0);
        assert!(dec_ctrl(&long).is_err(), "trailing bytes");
        assert!(dec_ctrl(&[250]).is_err(), "unknown tag");
        // a length prefix far beyond the record must not allocate
        let mut e = Enc::new();
        e.u8(3); // Ctrl::Result
        e.i64(0);
        e.u64(u64::MAX); // locals count
        assert!(dec_ctrl(&e.buf).is_err(), "absurd length prefix");
    }
}
