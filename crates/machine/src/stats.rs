//! Execution statistics collected by the simulated machines.

use std::ops::AddAssign;

/// Per-node counters for one clause execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Iterations the node actually executed (schedule visits).
    pub iterations: u64,
    /// Run-time ownership tests evaluated (naive schedules only).
    pub guard_tests: u64,
    /// Data-dependent guard evaluations.
    pub data_guards: u64,
    /// Elements sent to other nodes (payload values, independent of how
    /// they are batched onto the wire).
    pub msgs_sent: u64,
    /// Elements received from other nodes.
    pub msgs_received: u64,
    /// Values taken directly from local memory.
    pub local_reads: u64,
    /// Channel messages actually put on the wire: equals `msgs_sent` in
    /// element mode, the number of coalesced runs in vectorized mode.
    pub packets_sent: u64,
    /// Modeled wire bytes sent: 8 bytes per payload element plus a
    /// fixed per-message header (see the distributed machine docs).
    pub bytes_sent: u64,
    /// Largest element count carried by a single wire message.
    pub max_packet_elems: u64,
    /// Packets this node re-sent in answer to NACKs (reliability
    /// traffic; not counted in `packets_sent`/`bytes_sent`).
    pub retransmits: u64,
    /// Duplicate packets suppressed by receive-side sequence tracking.
    pub dups_dropped: u64,
    /// Packets discarded for a checksum mismatch (treated as losses).
    pub corrupt_detected: u64,
    /// Cumulative acknowledgements sent for accepted packets.
    pub acks_sent: u64,
    /// Retransmit requests sent while waiting on an owed value.
    pub nacks_sent: u64,
    /// Update-phase runs executed through the SIMD lane tier.
    pub simd_runs: u64,
    /// Update-phase runs executed element-at-a-time (boundary, strided,
    /// guarded, generic shape, or SIMD off).
    pub simd_fallback_runs: u64,
    /// Elements processed in full SIMD lane chunks.
    pub simd_lane_elems: u64,
    /// Remainder elements handled by scalar tail loops of vectorized
    /// runs.
    pub simd_tail_elems: u64,
    /// Widest lane width (f64 elements) used by any vectorized run.
    pub simd_lanes: u64,
}

impl NodeStats {
    /// `true` when no reliability machinery fired: no retransmits, no
    /// duplicates suppressed, no corruption detected, no NACKs sent.
    /// Every fault-free run must satisfy this (see
    /// `tests/stats_invariants.rs`).
    pub fn reliability_quiet(&self) -> bool {
        self.retransmits == 0
            && self.dups_dropped == 0
            && self.corrupt_detected == 0
            && self.nacks_sent == 0
    }
}

impl AddAssign for NodeStats {
    fn add_assign(&mut self, o: NodeStats) {
        self.iterations += o.iterations;
        self.guard_tests += o.guard_tests;
        self.data_guards += o.data_guards;
        self.msgs_sent += o.msgs_sent;
        self.msgs_received += o.msgs_received;
        self.local_reads += o.local_reads;
        self.packets_sent += o.packets_sent;
        self.bytes_sent += o.bytes_sent;
        self.max_packet_elems = self.max_packet_elems.max(o.max_packet_elems);
        self.retransmits += o.retransmits;
        self.dups_dropped += o.dups_dropped;
        self.corrupt_detected += o.corrupt_detected;
        self.acks_sent += o.acks_sent;
        self.nacks_sent += o.nacks_sent;
        self.simd_runs += o.simd_runs;
        self.simd_fallback_runs += o.simd_fallback_runs;
        self.simd_lane_elems += o.simd_lane_elems;
        self.simd_tail_elems += o.simd_tail_elems;
        self.simd_lanes = self.simd_lanes.max(o.simd_lanes);
    }
}

/// Whole-machine execution report.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    /// Per-node statistics, indexed by processor id.
    pub nodes: Vec<NodeStats>,
    /// Barriers executed (shared-memory machine).
    pub barriers: u64,
    /// Traffic matrix `traffic[src][dst]` = messages sent (distributed
    /// machine only; empty otherwise). Price it with
    /// [`crate::topology::price_traffic`].
    pub traffic: Vec<Vec<u64>>,
    /// Runs served by the session plan cache (warm path). Zero for
    /// direct machine calls, which do not consult a cache.
    pub cache_hits: u64,
    /// Runs that had to build and prepare a fresh plan before executing.
    pub cache_misses: u64,
    /// Plan-cache entries evicted by budget pressure while this run
    /// inserted its plan (LRU retirement, not fingerprint invalidation).
    pub evictions: u64,
}

impl ExecReport {
    /// Sum of all node counters.
    pub fn total(&self) -> NodeStats {
        let mut t = NodeStats::default();
        for n in &self.nodes {
            t += *n;
        }
        t
    }

    /// Largest per-node iteration count — the critical-path work under
    /// perfect overlap.
    pub fn max_node_iterations(&self) -> u64 {
        self.nodes.iter().map(|n| n.iterations).max().unwrap_or(0)
    }

    /// `true` when no node recorded any reliability traffic
    /// (see [`NodeStats::reliability_quiet`]).
    pub fn reliability_quiet(&self) -> bool {
        self.nodes.iter().all(NodeStats::reliability_quiet)
    }

    /// Runtime SIMD census aggregated over all nodes — the executed-side
    /// counterpart of [`vcal_spmd::CompiledSchedule::simd_census`].
    pub fn simd_census(&self) -> vcal_spmd::SimdCensus {
        let t = self.total();
        vcal_spmd::SimdCensus {
            lanes: t.simd_lanes,
            vector_runs: t.simd_runs,
            fallback_runs: t.simd_fallback_runs,
            lane_elems: t.simd_lane_elems,
            tail_elems: t.simd_tail_elems,
        }
    }
}

/// Service-level counters of one `vcalc serve` response: what the
/// resident service's shared cache hierarchy and admission queue did
/// for (and around) one request. Travels on the serve wire protocol
/// and is surfaced by [`crate::serve::ServeClient`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Nanoseconds the request waited in the admission queue before a
    /// concurrency slot opened.
    pub queue_wait_ns: u64,
    /// Requests this service completed so far, this one included.
    pub sessions_served: u64,
    /// Shared plan-cache hits while serving this request.
    pub plan_hits: u64,
    /// Shared plan-cache misses (plans built) while serving this request.
    pub plan_misses: u64,
    /// Shared DAG-cache hits while serving this request.
    pub dag_hits: u64,
    /// Shared DAG-cache misses while serving this request.
    pub dag_misses: u64,
    /// Shared tune-cache hits while serving this request.
    pub tune_hits: u64,
    /// Shared tune-cache misses while serving this request.
    pub tune_misses: u64,
    /// Budget-pressure evictions across all shared tiers during this
    /// request.
    pub evictions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let report = ExecReport {
            nodes: vec![
                NodeStats {
                    iterations: 3,
                    msgs_sent: 1,
                    ..Default::default()
                },
                NodeStats {
                    iterations: 5,
                    msgs_received: 1,
                    ..Default::default()
                },
            ],
            barriers: 1,
            ..Default::default()
        };
        let t = report.total();
        assert_eq!(t.iterations, 8);
        assert_eq!(t.msgs_sent, 1);
        assert_eq!(t.msgs_received, 1);
        assert_eq!(report.max_node_iterations(), 5);
    }
}
