//! Interconnect topology cost models.
//!
//! The paper's era targeted hypercubes (its [Kennedy89] citation is a
//! hypercube conference) and other static networks where a message's
//! cost depends on the hop distance between nodes. The distributed
//! machine records a full traffic matrix; this module prices it under
//! the classic topologies, making decomposition choices comparable not
//! just by message *count* but by network *load*.

/// A static interconnection network over `pmax` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// All pairs one hop apart (crossbar / ideal network).
    Crossbar,
    /// Bidirectional ring: distance is the shorter way around.
    Ring,
    /// 2-D mesh of `rows x cols` (row-major node ids), Manhattan hops.
    Mesh2D {
        /// Grid rows.
        rows: i64,
        /// Grid columns.
        cols: i64,
    },
    /// Binary hypercube (requires `pmax` a power of two): Hamming hops.
    Hypercube,
}

impl Topology {
    /// Hop distance between two nodes. Zero for `src == dst`.
    pub fn hops(&self, pmax: i64, src: i64, dst: i64) -> u64 {
        debug_assert!((0..pmax).contains(&src) && (0..pmax).contains(&dst));
        if src == dst {
            return 0;
        }
        match self {
            Topology::Crossbar => 1,
            Topology::Ring => {
                let d = (src - dst).rem_euclid(pmax);
                d.min(pmax - d) as u64
            }
            Topology::Mesh2D { rows, cols } => {
                assert_eq!(rows * cols, pmax, "mesh shape must cover pmax");
                let (r1, c1) = (src / cols, src % cols);
                let (r2, c2) = (dst / cols, dst % cols);
                ((r1 - r2).abs() + (c1 - c2).abs()) as u64
            }
            Topology::Hypercube => {
                assert!(
                    pmax.count_ones() == 1,
                    "hypercube needs a power-of-two pmax"
                );
                (src ^ dst).count_ones() as u64
            }
        }
    }

    /// Network diameter (max hop distance).
    pub fn diameter(&self, pmax: i64) -> u64 {
        (0..pmax)
            .flat_map(|s| (0..pmax).map(move |d| (s, d)))
            .map(|(s, d)| self.hops(pmax, s, d))
            .max()
            .unwrap_or(0)
    }
}

/// The priced traffic of one execution under a topology.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficCost {
    /// Total messages (off-diagonal entries of the matrix).
    pub messages: u64,
    /// Sum over messages of their hop distance.
    pub total_hops: u64,
    /// The most loaded single source→destination pair, in hop-messages.
    pub max_pair_hops: u64,
}

/// Price a traffic matrix (`traffic[src][dst]` = messages sent) under a
/// topology.
pub fn price_traffic(topology: Topology, traffic: &[Vec<u64>]) -> TrafficCost {
    let pmax = traffic.len() as i64;
    let mut cost = TrafficCost::default();
    for (src, row) in traffic.iter().enumerate() {
        for (dst, &count) in row.iter().enumerate() {
            if src == dst || count == 0 {
                continue;
            }
            let hops = topology.hops(pmax, src as i64, dst as i64) * count;
            cost.messages += count;
            cost.total_hops += hops;
            cost.max_pair_hops = cost.max_pair_hops.max(hops);
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_distances() {
        let t = Topology::Ring;
        assert_eq!(t.hops(8, 0, 1), 1);
        assert_eq!(t.hops(8, 0, 7), 1); // wraps
        assert_eq!(t.hops(8, 0, 4), 4);
        assert_eq!(t.hops(8, 2, 2), 0);
        assert_eq!(t.diameter(8), 4);
    }

    #[test]
    fn mesh_distances() {
        let t = Topology::Mesh2D { rows: 2, cols: 4 };
        assert_eq!(t.hops(8, 0, 3), 3); // (0,0) -> (0,3)
        assert_eq!(t.hops(8, 0, 7), 4); // (0,0) -> (1,3)
        assert_eq!(t.diameter(8), 4);
    }

    #[test]
    fn hypercube_distances() {
        let t = Topology::Hypercube;
        assert_eq!(t.hops(8, 0b000, 0b111), 3);
        assert_eq!(t.hops(8, 0b010, 0b011), 1);
        assert_eq!(t.diameter(8), 3);
        assert_eq!(t.diameter(16), 4);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn hypercube_rejects_odd_sizes() {
        Topology::Hypercube.hops(6, 0, 1);
    }

    #[test]
    fn crossbar_is_flat() {
        assert_eq!(Topology::Crossbar.diameter(16), 1);
    }

    #[test]
    fn pricing_a_matrix() {
        // 4 nodes on a ring; 0 sends 10 msgs to 1, 5 msgs to 2
        let mut traffic = vec![vec![0u64; 4]; 4];
        traffic[0][1] = 10;
        traffic[0][2] = 5;
        let c = price_traffic(Topology::Ring, &traffic);
        assert_eq!(c.messages, 15);
        assert_eq!(c.total_hops, 10 + 10); // 10*1 + 5*2
        assert_eq!(c.max_pair_hops, 10);
        // the same traffic on a crossbar costs 15 hops
        assert_eq!(price_traffic(Topology::Crossbar, &traffic).total_hops, 15);
    }

    #[test]
    fn diagonal_ignored() {
        let mut traffic = vec![vec![0u64; 2]; 2];
        traffic[0][0] = 100;
        let c = price_traffic(Topology::Ring, &traffic);
        assert_eq!(c.messages, 0);
        assert_eq!(c.total_hops, 0);
    }
}
