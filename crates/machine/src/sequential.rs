//! The sequential reference machine — a thin wrapper over
//! [`vcal_core::Env::exec_clause`] that also reports statistics, so the
//! parallel machines have a uniform baseline to be compared against.

use crate::stats::{ExecReport, NodeStats};
use vcal_core::{Clause, Env, Ix};

/// Execute a clause on one processor with no decomposition at all.
pub fn run_sequential(clause: &Clause, env: &mut Env) -> ExecReport {
    let mut stats = NodeStats::default();
    // count work the same way the parallel machines do
    clause.iter.bounds.iter().for_each(|i| {
        if clause.iter.pred.eval(&i) {
            stats.iterations += 1;
            stats.data_guards += 1;
            let _ = Ix::d1(i[0]);
        }
    });
    env.exec_clause(clause);
    ExecReport {
        nodes: vec![stats],
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::func::Fn1;
    use vcal_core::{Array, ArrayRef, Bounds, Expr, Guard, IndexSet, Ordering};

    #[test]
    fn sequential_runs_and_counts() {
        let clause = Clause {
            iter: IndexSet::range(0, 9),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::Lit(2.0),
        };
        let mut env = Env::new();
        env.insert("A", Array::zeros(Bounds::range(0, 9)));
        let report = run_sequential(&clause, &mut env);
        assert_eq!(report.total().iterations, 10);
        assert!(env.get("A").unwrap().data().iter().all(|&v| v == 2.0));
    }
}
