//! Executable overlapped (halo) decompositions — Section 5's second
//! "further research" item, run end to end.
//!
//! A [`HaloArray`] stores, per node, the owned block of a block
//! decomposition *plus* `h` ghost cells per side. One
//! [`exchange_ghosts`] per sweep refreshes the ghosts (the messages of
//! the [`vcal_decomp::OverlapDecomp`] plan); after that, a stencil
//! clause with shifts `|s| <= h` executes with **zero** per-iteration
//! communication — the contrast to the Section 2.10 template that the
//! `machines` bench and `stencil` example measure.

use crate::error::MachineError;
use crate::obs::{EventKind, Phase, Tracer, NULL_TRACER};
use crate::stats::{ExecReport, NodeStats};
use vcal_core::{Array, Clause, Expr, Guard, Ix, Ordering};
use vcal_decomp::OverlapDecomp;

/// A block-decomposed array with per-node ghost regions.
#[derive(Debug, Clone, PartialEq)]
pub struct HaloArray {
    decomp: OverlapDecomp,
    /// `parts[p]` covers the *stored* (ghost-inclusive) range of node `p`.
    parts: Vec<Vec<f64>>,
}

impl HaloArray {
    /// Scatter a global array into halo-extended per-node storage
    /// (ghosts initialized from the global image, i.e. pre-exchanged).
    pub fn scatter_from(global: &Array, decomp: OverlapDecomp) -> HaloArray {
        assert_eq!(global.bounds(), decomp.base().extent());
        let pmax = decomp.base().pmax();
        let parts = (0..pmax)
            .map(|p| match decomp.stored_range(p) {
                Some((lo, hi)) => (lo..=hi).map(|g| global.get(&Ix::d1(g))).collect(),
                None => Vec::new(),
            })
            .collect();
        HaloArray { decomp, parts }
    }

    /// The overlap decomposition.
    pub fn decomp(&self) -> &OverlapDecomp {
        &self.decomp
    }

    /// Gather owned regions back to a global array (ghosts ignored).
    pub fn gather(&self) -> Array {
        let mut out = Array::zeros(self.decomp.base().extent());
        for p in 0..self.decomp.base().pmax() {
            if let Some((olo, ohi)) = self.decomp.owned_range(p) {
                for g in olo..=ohi {
                    out.set(&Ix::d1(g), self.read(p, g));
                }
            }
        }
        out
    }

    /// Read global `g` from node `p`'s storage (owned or ghost).
    #[inline]
    pub fn read(&self, p: i64, g: i64) -> f64 {
        self.parts[p as usize][self.decomp.local_of(g, p) as usize]
    }

    /// Write global `g` into node `p`'s storage. Panics if `p` does not
    /// own `g` (ghosts are written only by [`exchange_ghosts`]).
    #[inline]
    pub fn write_owned(&mut self, p: i64, g: i64, v: f64) {
        let (olo, ohi) = self.decomp.owned_range(p).expect("node owns nothing");
        assert!((olo..=ohi).contains(&g), "node {p} does not own global {g}");
        let off = self.decomp.local_of(g, p) as usize;
        self.parts[p as usize][off] = v;
    }
}

/// Refresh every ghost cell from its owner, following the decomposition's
/// exchange plan. Returns per-node message statistics.
pub fn exchange_ghosts(array: &mut HaloArray) -> ExecReport {
    exchange_ghosts_traced(array, &NULL_TRACER)
}

/// Like [`exchange_ghosts`] but records one [`EventKind::HaloMsg`] per
/// planned boundary message (at the sending node) and the whole
/// exchange's wall-clock as a host-side [`Phase::Halo`] timing.
pub fn exchange_ghosts_traced(array: &mut HaloArray, tracer: &dyn Tracer) -> ExecReport {
    let trace_on = tracer.enabled();
    if trace_on {
        tracer.record(crate::obs::HOST, EventKind::PhaseStart(Phase::Halo));
    }
    let halo_t0 = trace_on.then(std::time::Instant::now);
    let pmax = array.decomp.base().pmax();
    let mut report = ExecReport {
        nodes: vec![NodeStats::default(); pmax as usize],
        traffic: vec![vec![0u64; pmax as usize]; pmax as usize],
        ..Default::default()
    };
    for msg in array.decomp.exchange_plan() {
        // copy owner's values into the receiver's ghost slots
        for g in msg.global_lo..=msg.global_hi {
            let v = array.read(msg.src, g);
            let off = array.decomp.local_of(g, msg.dst) as usize;
            array.parts[msg.dst as usize][off] = v;
        }
        if trace_on {
            tracer.record(
                msg.src,
                EventKind::HaloMsg {
                    dst: msg.dst,
                    elems: (msg.global_hi - msg.global_lo + 1) as u64,
                },
            );
        }
        report.nodes[msg.src as usize].msgs_sent += 1;
        report.nodes[msg.dst as usize].msgs_received += 1;
        report.traffic[msg.src as usize][msg.dst as usize] += 1;
    }
    if let Some(t0) = halo_t0 {
        tracer.timing(crate::obs::HOST, Phase::Halo, t0.elapsed());
        tracer.record(crate::obs::HOST, EventKind::PhaseEnd(Phase::Halo));
    }
    report
}

/// Execute one `//` stencil sweep entirely from local + ghost storage:
/// `lhs[i] := Expr(reads[i ± s])`, all shifts within the halo width.
///
/// `reads` maps array names to their halo images; the written array must
/// have an identity access. Returns an error if any access would leave
/// the stored range (halo too small — the caller should widen it).
pub fn run_halo_sweep(
    clause: &Clause,
    lhs: &mut HaloArray,
    reads: &std::collections::BTreeMap<String, HaloArray>,
) -> Result<ExecReport, MachineError> {
    if clause.ordering != Ordering::Par {
        return Err(MachineError::SequentialClause);
    }
    if clause.iter.dims() != 1 {
        return Err(MachineError::PlanMismatch("halo sweeps are 1-D".into()));
    }
    let id = vcal_core::Fn1::identity();
    if clause.lhs.map.as_fn1() != Some(&id) {
        return Err(MachineError::PlanMismatch(
            "halo sweeps write through the identity".into(),
        ));
    }
    let (imin, imax) = (clause.iter.bounds.lo()[0], clause.iter.bounds.hi()[0]);
    let pmax = lhs.decomp.base().pmax();
    let mut report = ExecReport::default();

    // validate reachability once, then compute
    for r in clause.read_refs() {
        let src = reads
            .get(&r.array)
            .ok_or_else(|| MachineError::UnknownArray(r.array.clone()))?;
        let g = r
            .map
            .as_fn1()
            .ok_or_else(|| MachineError::PlanMismatch("1-D accesses only".into()))?;
        for p in 0..pmax {
            let Some((olo, ohi)) = lhs.decomp.owned_range(p) else {
                continue;
            };
            for i in olo.max(imin)..=ohi.min(imax) {
                if !src.decomp.readable_locally(g.eval(i), p) {
                    return Err(MachineError::PlanMismatch(format!(
                        "{}[{}] is outside node {p}'s halo — widen h",
                        r.array,
                        g.eval(i)
                    )));
                }
            }
        }
    }

    // resolve the guard once so the sweep loop has no fallible lookups
    let hguard = match &clause.guard {
        Guard::Always => None,
        Guard::Cmp { lhs: gref, op, rhs } => {
            let gfn = gref
                .map
                .as_fn1()
                .ok_or_else(|| MachineError::PlanMismatch("1-D accesses only".into()))?
                .clone();
            let src = reads
                .get(&gref.array)
                .ok_or_else(|| MachineError::UnknownArray(gref.array.clone()))?;
            Some((src, gfn, *op, *rhs))
        }
    };

    for p in 0..pmax {
        let mut stats = NodeStats::default();
        let Some((olo, ohi)) = lhs.decomp.owned_range(p) else {
            report.nodes.push(stats);
            continue;
        };
        let mut writes: Vec<(i64, f64)> = Vec::new();
        for i in olo.max(imin)..=ohi.min(imax) {
            stats.iterations += 1;
            let guard_ok = match &hguard {
                None => true,
                Some((src, gfn, op, rhs)) => {
                    stats.local_reads += 1;
                    op.holds(src.read(p, gfn.eval(i)), *rhs)
                }
            };
            if guard_ok {
                let v = eval_halo(&clause.rhs, i, p, reads, &mut stats);
                writes.push((i, v));
            }
        }
        for (g, v) in writes {
            lhs.write_owned(p, g, v);
        }
        report.nodes.push(stats);
    }
    report.barriers = 1;
    Ok(report)
}

fn eval_halo(
    e: &Expr,
    i: i64,
    p: i64,
    reads: &std::collections::BTreeMap<String, HaloArray>,
    stats: &mut NodeStats,
) -> f64 {
    match e {
        Expr::Ref(r) => {
            stats.local_reads += 1;
            reads[&r.array].read(p, r.map.as_fn1().expect("1-D").eval(i))
        }
        Expr::Lit(v) => *v,
        Expr::LoopVar { .. } => i as f64,
        Expr::Neg(inner) => -eval_halo(inner, i, p, reads, stats),
        Expr::Bin(op, a, b) => op.apply(
            eval_halo(a, i, p, reads, stats),
            eval_halo(b, i, p, reads, stats),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use vcal_core::func::Fn1;
    use vcal_core::{ArrayRef, Bounds, Env, IndexSet};
    use vcal_decomp::Decomp1;

    fn stencil(n: i64) -> Clause {
        Clause {
            iter: IndexSet::range(1, n - 2),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("V", Fn1::identity()),
            rhs: Expr::mul(
                Expr::add(
                    Expr::Ref(ArrayRef::d1("U", Fn1::shift(-1))),
                    Expr::Ref(ArrayRef::d1("U", Fn1::shift(1))),
                ),
                Expr::Lit(0.5),
            ),
        }
    }

    fn halo_pair(n: i64, pmax: i64, h: i64, env: &Env) -> (HaloArray, HaloArray) {
        let ov = OverlapDecomp::new(Decomp1::block(pmax, Bounds::range(0, n - 1)), h);
        (
            HaloArray::scatter_from(env.get("U").unwrap(), ov.clone()),
            HaloArray::scatter_from(env.get("V").unwrap(), ov),
        )
    }

    #[test]
    fn halo_sweeps_match_reference() {
        let (n, pmax, sweeps) = (64i64, 4i64, 6);
        let mut env = Env::new();
        env.insert(
            "U",
            Array::from_fn(Bounds::range(0, n - 1), |i| {
                if i.scalar() == 20 {
                    9.0
                } else {
                    0.0
                }
            }),
        );
        env.insert("V", Array::zeros(Bounds::range(0, n - 1)));
        let sweep = stencil(n);
        let back = Clause {
            iter: IndexSet::range(1, n - 2),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("U", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("V", Fn1::identity())),
        };
        let mut reference = env.clone();
        for _ in 0..sweeps {
            reference.exec_clause(&sweep);
            reference.exec_clause(&back);
        }

        let (mut u, mut v) = halo_pair(n, pmax, 1, &env);
        let mut total_msgs = 0;
        for _ in 0..sweeps {
            total_msgs += exchange_ghosts(&mut u).total().msgs_sent;
            let mut reads = BTreeMap::new();
            reads.insert("U".to_string(), u.clone());
            run_halo_sweep(&sweep, &mut v, &reads).unwrap();
            total_msgs += exchange_ghosts(&mut v).total().msgs_sent;
            let mut reads = BTreeMap::new();
            reads.insert("V".to_string(), v.clone());
            run_halo_sweep(&back, &mut u, &reads).unwrap();
        }
        assert_eq!(u.gather().max_abs_diff(reference.get("U").unwrap()), 0.0);
        // 2*(pmax-1) boundary messages per exchange, 2 exchanges per sweep
        assert_eq!(total_msgs, (sweeps * 2 * 2 * (pmax - 1)) as u64);
    }

    #[test]
    fn too_small_halo_detected() {
        let n = 32i64;
        let mut env = Env::new();
        env.insert("U", Array::zeros(Bounds::range(0, n - 1)));
        env.insert("V", Array::zeros(Bounds::range(0, n - 1)));
        // stencil reads i±2 but halo is 1
        let wide = Clause {
            iter: IndexSet::range(2, n - 3),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("V", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("U", Fn1::shift(-2))),
        };
        let (u, mut v) = halo_pair(n, 4, 1, &env);
        let mut reads = BTreeMap::new();
        reads.insert("U".to_string(), u);
        let err = run_halo_sweep(&wide, &mut v, &reads).unwrap_err();
        assert!(matches!(err, MachineError::PlanMismatch(_)), "{err}");
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let n = 40i64;
        let global = Array::from_fn(Bounds::range(0, n - 1), |i| i.scalar() as f64 * 1.5);
        let ov = OverlapDecomp::new(Decomp1::block(4, Bounds::range(0, n - 1)), 2);
        let h = HaloArray::scatter_from(&global, ov);
        assert_eq!(h.gather().max_abs_diff(&global), 0.0);
        // ghost reads see the initial exchange-equivalent values
        assert_eq!(h.read(1, 9), 9.0 * 1.5); // ghost of node 1 (owns 10..19)
    }

    #[test]
    fn guarded_halo_sweep() {
        let n = 48i64;
        let mut env = Env::new();
        env.insert(
            "U",
            Array::from_fn(Bounds::range(0, n - 1), |i| {
                if i.scalar() % 2 == 0 {
                    1.0
                } else {
                    -1.0
                }
            }),
        );
        env.insert("V", Array::zeros(Bounds::range(0, n - 1)));
        let clause = Clause {
            iter: IndexSet::range(1, n - 2),
            ordering: Ordering::Par,
            guard: Guard::Cmp {
                lhs: ArrayRef::d1("U", Fn1::identity()),
                op: vcal_core::CmpOp::Gt,
                rhs: 0.0,
            },
            lhs: ArrayRef::d1("V", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("U", Fn1::shift(1))),
        };
        let mut reference = env.clone();
        reference.exec_clause(&clause);
        let (u, mut v) = halo_pair(n, 4, 1, &env);
        let mut reads = BTreeMap::new();
        reads.insert("U".to_string(), u);
        run_halo_sweep(&clause, &mut v, &reads).unwrap();
        assert_eq!(v.gather().max_abs_diff(reference.get("V").unwrap()), 0.0);
    }
}
