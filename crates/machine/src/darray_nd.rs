//! Multi-dimensional distributed arrays: per-node local boxes of a
//! [`DecompNd`] processor-grid decomposition.

use vcal_core::{Array, Ix};
use vcal_decomp::DecompNd;

/// A d-dimensional array split over a processor grid.
#[derive(Debug, Clone, PartialEq)]
pub struct DistArrayNd {
    decomp: DecompNd,
    /// `parts[p]` stores node `p`'s local box row-major.
    parts: Vec<Vec<f64>>,
}

impl DistArrayNd {
    /// Zero-filled distributed array.
    pub fn zeros(decomp: DecompNd) -> Self {
        let parts = (0..decomp.pmax())
            .map(|p| vec![0.0; decomp.local_bounds(p).count() as usize])
            .collect();
        DistArrayNd { decomp, parts }
    }

    /// Scatter a global array into per-node boxes.
    pub fn scatter_from(global: &Array, decomp: DecompNd) -> Self {
        assert_eq!(global.bounds(), decomp.extent(), "bounds mismatch");
        let mut d = DistArrayNd::zeros(decomp);
        for p in 0..d.decomp.pmax() {
            let lb = d.decomp.local_bounds(p);
            for (off, l) in lb.iter().enumerate() {
                let g = d.decomp.global_of(p, &l);
                d.parts[p as usize][off] = global.get(&g);
            }
        }
        d
    }

    /// Gather back to a global array.
    pub fn gather(&self) -> Array {
        let mut out = Array::zeros(self.decomp.extent());
        for p in 0..self.decomp.pmax() {
            let lb = self.decomp.local_bounds(p);
            for (off, l) in lb.iter().enumerate() {
                let g = self.decomp.global_of(p, &l);
                out.set(&g, self.parts[p as usize][off]);
            }
        }
        out
    }

    /// The decomposition.
    pub fn decomp(&self) -> &DecompNd {
        &self.decomp
    }

    /// Read global `g` from node `p`'s box (must reside there).
    #[inline]
    pub fn read_local(&self, p: i64, g: &Ix) -> f64 {
        debug_assert_eq!(self.decomp.proc_of(g), p, "global {g} not on node {p}");
        let l = self.decomp.local_of(g);
        let off = self.decomp.local_bounds(p).linear_offset(&l);
        self.parts[p as usize][off]
    }

    /// Disassemble into per-node boxes.
    pub fn into_parts(self) -> (DecompNd, Vec<Vec<f64>>) {
        (self.decomp, self.parts)
    }

    /// Reassemble (inverse of [`DistArrayNd::into_parts`]).
    pub fn from_parts(decomp: DecompNd, parts: Vec<Vec<f64>>) -> Self {
        assert_eq!(parts.len() as i64, decomp.pmax());
        for p in 0..decomp.pmax() {
            assert_eq!(
                parts[p as usize].len() as u64,
                decomp.local_bounds(p).count()
            );
        }
        DistArrayNd { decomp, parts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::Bounds;
    use vcal_decomp::Decomp1;

    fn grid() -> DecompNd {
        DecompNd::new(vec![
            Decomp1::block(2, Bounds::range(0, 7)),
            Decomp1::scatter(3, Bounds::range(0, 8)),
        ])
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let global = Array::from_fn(Bounds::range2(0, 7, 0, 8), |i| (i[0] * 100 + i[1]) as f64);
        let d = DistArrayNd::scatter_from(&global, grid());
        assert_eq!(d.gather().max_abs_diff(&global), 0.0);
    }

    #[test]
    fn read_local_matches() {
        let global = Array::from_fn(Bounds::range2(0, 7, 0, 8), |i| (i[0] * 10 + i[1]) as f64);
        let d = DistArrayNd::scatter_from(&global, grid());
        for g in d.decomp().extent().iter() {
            let p = d.decomp().proc_of(&g);
            assert_eq!(d.read_local(p, &g), global.get(&g));
        }
    }

    #[test]
    fn parts_roundtrip() {
        let d = DistArrayNd::zeros(grid());
        let (dec, parts) = d.clone().into_parts();
        assert_eq!(DistArrayNd::from_parts(dec, parts), d);
    }
}
