//! Multi-dimensional shared-memory execution.
//!
//! The d-dimensional generalization of the Section 2.9 template: data is
//! decomposed per axis onto a processor grid ([`DecompNd`]), each virtual
//! processor iterates the Cartesian-product schedule produced by
//! [`vcal_spmd::optimize_nd`] (falling back to brute-force ownership
//! filtering when the access map does not factorize), and writes are
//! gathered and committed after the barrier.

use crate::error::MachineError;
use crate::stats::{ExecReport, NodeStats};
use vcal_core::{Clause, Env, Ix, Ordering};
use vcal_decomp::DecompNd;
use vcal_spmd::optimize_nd;

/// Execute a `//` clause of any dimensionality on a shared-memory machine
/// whose *written* array is decomposed by `dec_lhs` (owner-computes; read
/// arrays need no decomposition on shared memory).
pub fn run_shared_nd(
    clause: &Clause,
    dec_lhs: &DecompNd,
    env: &mut Env,
) -> Result<ExecReport, MachineError> {
    if clause.ordering != Ordering::Par {
        return Err(MachineError::SequentialClause);
    }
    let snapshot = env.clone();
    for r in clause.read_refs() {
        if snapshot.get(&r.array).is_none() {
            return Err(MachineError::UnknownArray(r.array.clone()));
        }
    }
    let lhs = env
        .get_mut(&clause.lhs.array)
        .ok_or_else(|| MachineError::UnknownArray(clause.lhs.array.clone()))?;
    let lhs_bounds = lhs.bounds();
    let pmax = dec_lhs.pmax();

    let mut node_results: Vec<(NodeStats, Vec<(usize, f64)>)> = Vec::new();
    let mut first_err: Option<MachineError> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..pmax)
            .map(|p| {
                let snapshot = &snapshot;
                let dec_lhs = &dec_lhs;
                scope.spawn(move || {
                    let mut stats = NodeStats::default();
                    let mut writes = Vec::new();
                    let mut body = |i: &Ix| {
                        stats.iterations += 1;
                        stats.data_guards += 1;
                        if snapshot.eval_guard(&clause.guard, i) {
                            let v = snapshot.eval_expr(&clause.rhs, i);
                            let target = clause.lhs.map.eval(i);
                            writes.push((lhs_bounds.linear_offset(&target), v));
                        }
                    };
                    match optimize_nd(&clause.lhs.map, dec_lhs, &clause.iter.bounds, p) {
                        Some(sched) => {
                            stats.guard_tests += sched.work_estimate();
                            sched.for_each(&mut body);
                        }
                        None => {
                            // coupled axes: brute-force ownership filter
                            stats.guard_tests += clause.iter.bounds.count();
                            for i in clause.iter.iter() {
                                if dec_lhs.proc_of(&clause.lhs.map.eval(&i)) == p {
                                    body(&i);
                                }
                            }
                        }
                    }
                    (stats, writes)
                })
            })
            .collect();
        for (p, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(result) => node_results.push(result),
                Err(_) => {
                    first_err.get_or_insert(MachineError::NodePanicked { node: p as i64 });
                }
            }
        }
    });
    // Transactional: commit nothing if any node crashed.
    if let Some(e) = first_err {
        return Err(e);
    }

    let data = lhs.data_mut();
    let mut report = ExecReport {
        barriers: 1,
        ..Default::default()
    };
    for (stats, writes) in node_results {
        report.nodes.push(stats);
        for (off, v) in writes {
            data[off] = v;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::func::Fn1;
    use vcal_core::map::{DimFn, IndexMap};
    use vcal_core::{Array, ArrayRef, Bounds, Expr, Guard, IndexSet};
    use vcal_decomp::Decomp1;

    fn jacobi2d(n: i64) -> (Clause, Env) {
        // V[i,j] := 0.25*(U[i-1,j] + U[i+1,j] + U[i,j-1] + U[i,j+1])
        let u = |di: i64, dj: i64| {
            Expr::Ref(ArrayRef::new(
                "U",
                IndexMap::per_dim(vec![Fn1::shift(di), Fn1::shift(dj)]),
            ))
        };
        let clause = Clause {
            iter: IndexSet::full(Bounds::range2(1, n - 2, 1, n - 2)),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::new("V", IndexMap::identity(2)),
            rhs: Expr::mul(
                Expr::add(Expr::add(u(-1, 0), u(1, 0)), Expr::add(u(0, -1), u(0, 1))),
                Expr::Lit(0.25),
            ),
        };
        let mut env = Env::new();
        env.insert(
            "U",
            Array::from_fn(Bounds::range2(0, n - 1, 0, n - 1), |i| {
                (i[0] * 31 + i[1] * 7) as f64 * 0.01
            }),
        );
        env.insert("V", Array::zeros(Bounds::range2(0, n - 1, 0, n - 1)));
        (clause, env)
    }

    #[test]
    fn jacobi2d_matches_reference() {
        let n = 24;
        let (clause, env0) = jacobi2d(n);
        let mut reference = env0.clone();
        reference.exec_clause(&clause);

        let dec = DecompNd::new(vec![
            Decomp1::block(2, Bounds::range(0, n - 1)),
            Decomp1::block_scatter(3, 2, Bounds::range(0, n - 1)),
        ]);
        let mut env = env0.clone();
        let report = run_shared_nd(&clause, &dec, &mut env).unwrap();
        assert_eq!(
            env.get("V")
                .unwrap()
                .max_abs_diff(reference.get("V").unwrap()),
            0.0
        );
        assert_eq!(report.total().iterations, ((n - 2) * (n - 2)) as u64);
        assert_eq!(report.nodes.len(), 4);
    }

    #[test]
    fn transposed_write_matches_reference() {
        // B[j, i] := A[i, j] (write through a transpose map)
        let n = 12;
        let clause = Clause {
            iter: IndexSet::full(Bounds::range2(0, n - 1, 0, n - 1)),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::new("B", IndexMap::permutation(2, &[1, 0])),
            rhs: Expr::Ref(ArrayRef::new("A", IndexMap::identity(2))),
        };
        let mut env = Env::new();
        env.insert(
            "A",
            Array::from_fn(Bounds::range2(0, n - 1, 0, n - 1), |i| {
                (i[0] * 100 + i[1]) as f64
            }),
        );
        env.insert("B", Array::zeros(Bounds::range2(0, n - 1, 0, n - 1)));
        let mut reference = env.clone();
        reference.exec_clause(&clause);

        let dec = DecompNd::new(vec![
            Decomp1::scatter(2, Bounds::range(0, n - 1)),
            Decomp1::block(3, Bounds::range(0, n - 1)),
        ]);
        let mut got = env.clone();
        run_shared_nd(&clause, &dec, &mut got).unwrap();
        assert_eq!(
            got.get("B")
                .unwrap()
                .max_abs_diff(reference.get("B").unwrap()),
            0.0
        );
    }

    #[test]
    fn coupled_axes_fall_back_to_brute_force() {
        // D[i, i] := A[i, j]-ish diagonal write: lhs map duplicates dim 0.
        let n = 8;
        let clause = Clause {
            iter: IndexSet::full(Bounds::range2(0, n - 1, 0, 0)),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::new(
                "D",
                IndexMap::new(
                    2,
                    vec![
                        DimFn {
                            src: 0,
                            f: Fn1::identity(),
                        },
                        DimFn {
                            src: 0,
                            f: Fn1::identity(),
                        },
                    ],
                ),
            ),
            rhs: Expr::Lit(1.0),
        };
        let mut env = Env::new();
        env.insert("D", Array::zeros(Bounds::range2(0, n - 1, 0, n - 1)));
        let mut reference = env.clone();
        reference.exec_clause(&clause);

        let dec = DecompNd::new(vec![
            Decomp1::block(2, Bounds::range(0, n - 1)),
            Decomp1::block(2, Bounds::range(0, n - 1)),
        ]);
        let mut got = env.clone();
        run_shared_nd(&clause, &dec, &mut got).unwrap();
        assert_eq!(
            got.get("D")
                .unwrap()
                .max_abs_diff(reference.get("D").unwrap()),
            0.0
        );
    }
}
