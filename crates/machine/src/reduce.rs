//! Parallel reductions on the simulated machines.
//!
//! A reduction (dot product, norm, max-residual test — the "intermediate
//! tests on data values" the paper names as the source of sequential
//! components) is executed owner-computes: every node folds the
//! iterations whose *driving* elements it owns, then the partials are
//! combined along a binary tree — `ceil(log2 pmax)` message rounds on the
//! distributed machine, matching a hypercube's natural combining pattern.

use crate::darray::DistArray;
use crate::error::MachineError;
use crate::stats::{ExecReport, NodeStats};
use std::collections::BTreeMap;
use vcal_core::clause::{ReduceOp, Reduction};
use vcal_core::{Env, Expr, Ix};
use vcal_decomp::Decomp1;
use vcal_spmd::optimize;

/// Reduce on the shared-memory machine: iterations are partitioned by
/// `iter_decomp` (a decomposition of the *iteration space* itself),
/// every thread folds its share from a snapshot, and the partials are
/// folded on the main thread (the barrier-then-combine of Section 2.9).
pub fn run_reduce_shared(
    red: &Reduction,
    iter_decomp: &Decomp1,
    env: &Env,
) -> Result<(f64, ExecReport), MachineError> {
    if red.iter.dims() != 1 {
        return Err(MachineError::PlanMismatch("reductions are 1-D".into()));
    }
    for r in red.expr.refs() {
        if env.get(&r.array).is_none() {
            return Err(MachineError::UnknownArray(r.array.clone()));
        }
    }
    let (imin, imax) = (red.iter.bounds.lo()[0], red.iter.bounds.hi()[0]);
    let pmax = iter_decomp.pmax();
    let mut partials: Vec<(f64, NodeStats)> = Vec::new();
    let mut first_err: Option<MachineError> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..pmax)
            .map(|p| {
                let env = &env;
                scope.spawn(move || {
                    let mut stats = NodeStats::default();
                    let mut acc = red.op.identity();
                    let opt = optimize(&vcal_core::Fn1::identity(), iter_decomp, imin, imax, p);
                    opt.schedule.for_each(|i| {
                        stats.iterations += 1;
                        acc = red.op.apply(acc, env.eval_expr(&red.expr, &Ix::d1(i)));
                    });
                    (acc, stats)
                })
            })
            .collect();
        for (p, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(partial) => partials.push(partial),
                Err(_) => {
                    first_err.get_or_insert(MachineError::NodePanicked { node: p as i64 });
                }
            }
        }
    });
    if let Some(e) = first_err {
        return Err(e);
    }
    let mut report = ExecReport {
        barriers: 1,
        ..Default::default()
    };
    let mut acc = red.op.identity();
    for (v, stats) in partials {
        acc = red.op.apply(acc, v);
        report.nodes.push(stats);
    }
    Ok((acc, report))
}

/// Reduce on the distributed machine over co-located distributed arrays.
///
/// All arrays referenced by `expr` must share the same decomposition and
/// be accessed through identity maps (the dot-product shape); each node
/// folds its local elements, then the partials combine along a binary
/// tree whose messages are counted (and priced by topology if desired).
pub fn run_reduce_distributed(
    op: ReduceOp,
    expr: &Expr,
    arrays: &BTreeMap<String, DistArray>,
) -> Result<(f64, ExecReport), MachineError> {
    // validate shapes
    let refs = expr.refs();
    if refs.is_empty() {
        return Err(MachineError::PlanMismatch(
            "reduction reads no arrays".into(),
        ));
    }
    let mut dec: Option<&Decomp1> = None;
    for r in &refs {
        let da = arrays
            .get(&r.array)
            .ok_or_else(|| MachineError::UnknownArray(r.array.clone()))?;
        if !r.map.is_identity() {
            return Err(MachineError::PlanMismatch(
                "distributed reductions need identity access maps".into(),
            ));
        }
        match dec {
            None => dec = Some(da.decomp()),
            Some(d) if d == da.decomp() => {}
            _ => {
                return Err(MachineError::PlanMismatch(
                    "all reduced arrays must share one decomposition".into(),
                ))
            }
        }
    }
    let dec = dec
        .ok_or_else(|| MachineError::PlanMismatch("reduction reads no arrays".into()))?
        .clone();
    let pmax = dec.pmax();

    // 1. local fold per node
    let mut partials = vec![op.identity(); pmax as usize];
    let mut report = ExecReport {
        traffic: vec![vec![0u64; pmax as usize]; pmax as usize],
        ..Default::default()
    };
    for p in 0..pmax {
        let mut stats = NodeStats::default();
        let mut acc = op.identity();
        for g in dec.owned_globals(p) {
            stats.iterations += 1;
            stats.local_reads += refs.len() as u64;
            acc = op.apply(acc, eval_local(expr, g, p, arrays));
        }
        partials[p as usize] = acc;
        report.nodes.push(stats);
    }

    // 2. binary combining tree: in round k, node p with p mod 2^(k+1) ==
    //    2^k sends its partial to p - 2^k.
    let mut stride = 1i64;
    while stride < pmax {
        for p in (0..pmax).step_by((2 * stride) as usize) {
            let partner = p + stride;
            if partner < pmax {
                let v = partials[partner as usize];
                partials[p as usize] = op.apply(partials[p as usize], v);
                report.nodes[partner as usize].msgs_sent += 1;
                report.nodes[p as usize].msgs_received += 1;
                report.traffic[partner as usize][p as usize] += 1;
            }
        }
        stride *= 2;
    }
    Ok((partials[0], report))
}

fn eval_local(expr: &Expr, g: i64, p: i64, arrays: &BTreeMap<String, DistArray>) -> f64 {
    match expr {
        Expr::Ref(r) => arrays[&r.array].read_local(p, g),
        Expr::Lit(v) => *v,
        Expr::LoopVar { .. } => g as f64,
        Expr::Neg(e) => -eval_local(e, g, p, arrays),
        Expr::Bin(op, a, b) => op.apply(eval_local(a, g, p, arrays), eval_local(b, g, p, arrays)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::func::Fn1;
    use vcal_core::{Array, ArrayRef, Bounds, IndexSet};

    fn dot_setup(
        n: i64,
        pmax: i64,
        dec: fn(i64, Bounds) -> Decomp1,
    ) -> (Env, Reduction, BTreeMap<String, DistArray>) {
        let mut env = Env::new();
        env.insert(
            "A",
            Array::from_fn(Bounds::range(0, n - 1), |i| (i.scalar() % 7) as f64),
        );
        env.insert(
            "B",
            Array::from_fn(Bounds::range(0, n - 1), |i| 0.5 * i.scalar() as f64),
        );
        let red = Reduction {
            iter: IndexSet::range(0, n - 1),
            op: ReduceOp::Sum,
            expr: Expr::mul(
                Expr::Ref(ArrayRef::d1("A", Fn1::identity())),
                Expr::Ref(ArrayRef::d1("B", Fn1::identity())),
            ),
        };
        let d = dec(pmax, Bounds::range(0, n - 1));
        let mut arrays = BTreeMap::new();
        for name in ["A", "B"] {
            arrays.insert(
                name.to_string(),
                DistArray::scatter_from(env.get(name).unwrap(), d.clone()),
            );
        }
        (env, red, arrays)
    }

    #[test]
    fn shared_dot_product_matches_reference() {
        let n = 1000;
        let (env, red, _) = dot_setup(n, 8, Decomp1::scatter);
        let want = env.eval_reduction(&red);
        for dec in [
            Decomp1::block(8, Bounds::range(0, n - 1)),
            Decomp1::scatter(8, Bounds::range(0, n - 1)),
        ] {
            let (got, report) = run_reduce_shared(&red, &dec, &env).unwrap();
            assert!((got - want).abs() / want.abs() < 1e-12, "{dec}");
            assert_eq!(report.total().iterations, n as u64);
        }
    }

    #[test]
    fn distributed_dot_matches_and_uses_log_rounds() {
        let n = 512;
        for pmax in [1i64, 2, 4, 8, 7] {
            let (env, red, arrays) = dot_setup(n, pmax, Decomp1::scatter);
            let want = env.eval_reduction(&red);
            let (got, report) = run_reduce_distributed(ReduceOp::Sum, &red.expr, &arrays).unwrap();
            assert!(
                (got - want).abs() / want.abs().max(1.0) < 1e-12,
                "pmax={pmax}"
            );
            // a combining tree sends exactly pmax - 1 messages
            assert_eq!(report.total().msgs_sent, (pmax - 1) as u64, "pmax={pmax}");
        }
    }

    #[test]
    fn min_max_prod_ops() {
        let n = 64;
        let (env, mut red, arrays) = dot_setup(n, 4, Decomp1::block);
        for op in [ReduceOp::Min, ReduceOp::Max, ReduceOp::Prod] {
            red.op = op;
            let want = env.eval_reduction(&red);
            let (got, _) = run_reduce_distributed(op, &red.expr, &arrays).unwrap();
            if op == ReduceOp::Prod {
                // products with zeros: compare absolutely
                assert!((got - want).abs() < 1e-9, "{op:?}: {got} vs {want}");
            } else {
                assert_eq!(got, want, "{op:?}");
            }
        }
    }

    #[test]
    fn mismatched_layouts_rejected() {
        let n = 64;
        let (env, red, mut arrays) = dot_setup(n, 4, Decomp1::block);
        arrays.insert(
            "B".into(),
            DistArray::scatter_from(
                env.get("B").unwrap(),
                Decomp1::scatter(4, Bounds::range(0, n - 1)),
            ),
        );
        assert!(matches!(
            run_reduce_distributed(ReduceOp::Sum, &red.expr, &arrays),
            Err(MachineError::PlanMismatch(_))
        ));
    }

    #[test]
    fn non_identity_map_rejected() {
        let n = 64;
        let (_, _, arrays) = dot_setup(n, 4, Decomp1::block);
        let shifted = Expr::Ref(ArrayRef::d1("A", Fn1::shift(1)));
        assert!(matches!(
            run_reduce_distributed(ReduceOp::Sum, &shifted, &arrays),
            Err(MachineError::PlanMismatch(_))
        ));
    }
}
