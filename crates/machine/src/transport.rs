//! Reliable transport layer under the distributed machines.
//!
//! The Section 2.10 template assumes a lossless network: every
//! `Reside_p ∩ Modify_q` element arrives exactly once, so the executors
//! historically treated any lost message as fatal. This module replaces
//! the bare channels with a small reliability protocol so that runs
//! survive realistic transient faults and degrade into *typed errors*
//! (never hangs, never host aborts) when a fault is permanent:
//!
//! * every data payload travels as a [`Packet`]: per-flow **sequence
//!   number** (one flow per ordered `(src, dst)` node pair) plus an
//!   FNV-1a **checksum** over the header and payload;
//! * the receiver keeps per-source cumulative state: duplicates are
//!   suppressed (`dups_dropped`), out-of-order arrivals are tolerated
//!   (accepted into a `seen-ahead` window), and checksum mismatches are
//!   counted (`corrupt_detected`) and treated as losses;
//! * every accepted packet is acknowledged (cumulative [`Frame::Ack`],
//!   `acks_sent`) so the sender can prune its retransmit buffer;
//! * a receiver that is owed a value and does not get it within
//!   [`RetryPolicy::nack_timeout`] sends a [`Frame::Nack`] carrying its
//!   cumulative `next_needed` sequence number; the sender answers by
//!   retransmitting every retained packet from that number on
//!   (go-back-N flavoured, `retransmits`). NACKs back off
//!   exponentially up to [`RetryPolicy::backoff_cap`] and give up after
//!   [`RetryPolicy::max_retries`] attempts;
//! * when a node finishes (or fails) it broadcasts [`Frame::Done`] and
//!   *drains*: it keeps servicing NACKs until every peer has announced
//!   completion (or a timeout cap expires), so late retransmit requests
//!   are still answered. A panicked node announces `Done` — the analog
//!   of a TCP reset — but services nothing further.
//!
//! Control frames (ack/nack/done) are modeled as reliable; the fault
//! plan applies to the data plane only. Retransmissions pass through
//! the drop/corrupt faults again, so a *persistent* fault exhausts the
//! retry budget and surfaces as `MachineError::Unrecoverable`.
//!
//! Faults are injected deterministically by a seed-driven [`FaultPlan`]:
//! each node derives an independent SplitMix64 stream from
//! `seed ⊕ node`, and classifies every outgoing data packet as one of
//! drop / duplicate / reorder / corrupt / delay (or none). Reordered
//! packets are held back one send slot; delayed packets are held until
//! the end of the node's send phase. A [`CrashFault`] panics the node
//! thread mid-send-phase — the supervisor in the machines catches it
//! and reports `MachineError::NodePanicked`.

use crate::obs::{EventKind, Tracer};
use crate::stats::NodeStats;
use std::collections::{BTreeSet, VecDeque};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// A payload type that can travel as a checksummed packet.
pub(crate) trait WirePayload: Clone {
    /// Fold the payload into a 64-bit digest (checksum input).
    fn digest(&self) -> u64;
    /// Flip payload bits (fault injection); must change [`digest`]
    /// whenever the payload carries at least one value.
    ///
    /// [`digest`]: WirePayload::digest
    fn corrupt(&mut self, bits: u64);
}

/// Which carrier moves frames between node endpoints.
///
/// The reliability protocol (sequence numbers, checksums, NACK/go-back-N,
/// fault injection, trace events) is written entirely against
/// [`Endpoint`]; the carrier underneath is pluggable. `InProc` is the
/// historical in-process `mpsc` mesh; `Uds`/`Tcp` run every node as a
/// real OS process exchanging length-prefixed frames over Unix-domain or
/// TCP sockets through a host-side router (see `DESIGN.md` §15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process `mpsc` channels between node threads (default).
    #[default]
    InProc,
    /// Unix-domain sockets between worker OS processes.
    Uds,
    /// Loopback TCP sockets between worker OS processes.
    Tcp,
}

impl TransportKind {
    /// Stable lower-case name (CLI flag value / CI matrix key).
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::InProc => "inproc",
            TransportKind::Uds => "uds",
            TransportKind::Tcp => "tcp",
        }
    }

    /// Parse a CLI flag value.
    pub fn parse(s: &str) -> Option<TransportKind> {
        match s {
            "inproc" => Some(TransportKind::InProc),
            "uds" => Some(TransportKind::Uds),
            "tcp" => Some(TransportKind::Tcp),
            _ => None,
        }
    }
}

/// The carrier abstraction under one node's [`Endpoint`]: physically
/// moves [`Frame`]s between nodes without knowing anything about the
/// reliability protocol above it. A carrier is allowed to be lossy,
/// reordering, or duplicating — the protocol recovers (or degrades into
/// typed errors); a carrier must never *invent* frames.
pub(crate) trait Transport<T> {
    /// Number of nodes on the interconnect (including this one).
    fn peer_count(&self) -> usize;
    /// Best-effort delivery of one frame to `dst`. A carrier failure
    /// (peer gone, socket error) is indistinguishable from a lost
    /// packet; the protocol's NACK path retries or reports.
    fn send(&mut self, dst: usize, frame: Frame<T>);
    /// Wait up to `slice` for one inbound frame; `None` on timeout.
    fn recv(&mut self, slice: Duration) -> Option<Frame<T>>;
    /// Discard every frame already queued toward this endpoint (used
    /// under the steady-state executor's purge barrier after a dirty
    /// run).
    fn purge(&mut self);
}

/// The in-process carrier: an `mpsc` sender per peer plus this node's
/// receiver — exactly the mesh the machines always used, now behind the
/// [`Transport`] seam.
pub(crate) struct ChannelTransport<T> {
    txs: Vec<Sender<Frame<T>>>,
    rx: Receiver<Frame<T>>,
}

impl<T> ChannelTransport<T> {
    pub(crate) fn new(txs: Vec<Sender<Frame<T>>>, rx: Receiver<Frame<T>>) -> ChannelTransport<T> {
        ChannelTransport { txs, rx }
    }
}

impl<T> Transport<T> for ChannelTransport<T> {
    fn peer_count(&self) -> usize {
        self.txs.len()
    }

    fn send(&mut self, dst: usize, frame: Frame<T>) {
        if let Some(tx) = self.txs.get(dst) {
            let _ = tx.send(frame); // a hung-up peer is a lossy wire
        }
    }

    fn recv(&mut self, slice: Duration) -> Option<Frame<T>> {
        match self.rx.recv_timeout(slice) {
            Ok(frame) => Some(frame),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => {
                // all senders gone — sleep out the slice instead of
                // spinning, then let the caller's deadline logic decide
                std::thread::sleep(slice);
                None
            }
        }
    }

    fn purge(&mut self) {
        while self.rx.try_recv().is_ok() {}
    }
}

/// SplitMix64 step — the deterministic stream behind fault draws.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a raw draw to a uniform f64 in `[0, 1)`.
pub(crate) fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// FNV-1a over a word sequence — the packet checksum.
fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Clamp a fault probability into `[0, 1]`; `NaN` maps to `0` (a NaN
/// never compares below the accumulated threshold, so accepting it
/// would silently disable the draw — make that explicit instead).
pub(crate) fn clamp_prob(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

/// Checksum of one packet: header (source, sequence) plus payload digest.
fn packet_digest<T: WirePayload>(src: i64, seq: u64, payload: &T) -> u64 {
    fnv1a([src as u64, seq, payload.digest()])
}

/// A sequence-numbered, checksummed wire packet.
#[derive(Debug, Clone)]
pub(crate) struct Packet<T> {
    /// Sending node.
    pub src: i64,
    /// Position in the `(src, dst)` flow, starting at 0.
    pub seq: u64,
    /// [`packet_digest`] over header + payload, computed at send time.
    pub check: u64,
    /// The machine-level message.
    pub payload: T,
}

/// Everything that travels on a node channel.
#[derive(Debug, Clone)]
pub(crate) enum Frame<T> {
    /// A data packet.
    Data(Packet<T>),
    /// Cumulative acknowledgement: `from` has every packet with
    /// `seq < next_needed` on this flow.
    Ack { from: i64, next_needed: u64 },
    /// Retransmit request: `from` is missing packets from
    /// `next_needed` on; resend everything retained from there.
    Nack { from: i64, next_needed: u64 },
    /// `from` has finished its run (successfully or not) and will
    /// never send another NACK.
    Done { from: i64 },
}

/// A node crash injected at a deterministic point of the send phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashFault {
    /// The node that crashes.
    pub node: i64,
    /// Crash fires at the first wire send once the node has already put
    /// this many data packets on the wire — or at the end of its send
    /// phase if it never sends that many.
    pub after_packets: u64,
}

/// Deterministic, seed-driven fault plan for the data plane.
///
/// Every outgoing data packet of node `p` is classified by `p`'s own
/// SplitMix64 stream (derived from `seed` and `p`, so plans are
/// reproducible and independent of thread scheduling) as dropped,
/// duplicated, reordered, corrupted, delayed, or delivered normally.
/// Rates are per-packet probabilities; their sum should stay ≤ 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-node fault streams.
    pub seed: u64,
    /// Probability a packet is silently dropped.
    pub drop: f64,
    /// Probability a packet is delivered twice.
    pub duplicate: f64,
    /// Probability a packet is swapped with the node's next send.
    pub reorder: f64,
    /// Probability a payload bit is flipped in flight (the checksum
    /// still reflects the original payload, so the receiver detects it).
    pub corrupt: f64,
    /// Probability a packet is held back until the end of the node's
    /// send phase.
    pub delay: f64,
    /// Restrict the random faults to packets sent *by* this node.
    pub from_only: Option<i64>,
    /// Deterministically drop the `n`-th (0-based, first transmissions
    /// only) data packet of one node: `(node, n)`. The compat shim for
    /// the old `FaultInjection { drop_from, drop_nth }`.
    pub drop_exact: Option<(i64, u64)>,
    /// Crash one node mid-run.
    pub crash: Option<CrashFault>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults — combine with the
    /// `with_*` builders.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            from_only: None,
            drop_exact: None,
            crash: None,
        }
    }

    /// Set the per-packet drop probability. Values outside `[0, 1]` are
    /// clamped into the interval; `NaN` is treated as `0` (no faults).
    pub fn with_drop(mut self, p: f64) -> FaultPlan {
        self.drop = clamp_prob(p);
        self
    }

    /// Set the per-packet duplication probability. Values outside
    /// `[0, 1]` are clamped into the interval; `NaN` is treated as `0`.
    pub fn with_duplicate(mut self, p: f64) -> FaultPlan {
        self.duplicate = clamp_prob(p);
        self
    }

    /// Set the per-packet reorder probability. Values outside `[0, 1]`
    /// are clamped into the interval; `NaN` is treated as `0`.
    pub fn with_reorder(mut self, p: f64) -> FaultPlan {
        self.reorder = clamp_prob(p);
        self
    }

    /// Set the per-packet corruption probability. Values outside
    /// `[0, 1]` are clamped into the interval; `NaN` is treated as `0`.
    pub fn with_corrupt(mut self, p: f64) -> FaultPlan {
        self.corrupt = clamp_prob(p);
        self
    }

    /// Set the per-packet delay probability. Values outside `[0, 1]`
    /// are clamped into the interval; `NaN` is treated as `0`.
    pub fn with_delay(mut self, p: f64) -> FaultPlan {
        self.delay = clamp_prob(p);
        self
    }

    /// Restrict the random faults to one sending node.
    pub fn with_from_only(mut self, node: i64) -> FaultPlan {
        self.from_only = Some(node);
        self
    }

    /// Crash `node` once it has put `after_packets` packets on the wire
    /// (or at the end of its send phase, whichever comes first).
    pub fn with_crash(mut self, node: i64, after_packets: u64) -> FaultPlan {
        self.crash = Some(CrashFault {
            node,
            after_packets,
        });
        self
    }

    /// Compat constructor reproducing the old `FaultInjection`
    /// semantics: drop exactly the `nth` (0-based send order) data
    /// packet of `from`, once. With retries enabled this is a transient
    /// fault the transport recovers from; with [`RetryPolicy::none`] it
    /// reproduces the legacy `MissingMessage` / `MissingPacket` error.
    pub fn drop_nth(from: i64, nth: u64) -> FaultPlan {
        let mut p = FaultPlan::seeded(0);
        p.drop_exact = Some((from, nth));
        p
    }
}

/// How hard a receiver tries to recover a missing packet before giving
/// up with `MachineError::Unrecoverable`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum NACKs sent per awaited value. `0` disables recovery and
    /// restores the legacy wait-full-timeout-then-fail behavior.
    pub max_retries: u32,
    /// How long a receiver waits for an owed value before its first
    /// NACK; subsequent NACKs back off exponentially.
    pub nack_timeout: Duration,
    /// Upper bound of the exponential backoff between NACKs.
    pub backoff_cap: Duration,
    /// Total wall-clock budget for one awaited value, *including* every
    /// NACK/backoff cycle. `None` bounds the wait only by the machine's
    /// receive timeout; `Some(d)` caps it at `min(d, recv_timeout)`, so
    /// a stalled flow cannot hang for `max_retries × backoff_cap` when
    /// the caller intended a tighter deadline.
    pub deadline: Option<Duration>,
    /// Deterministic backoff jitter in percent of the interval
    /// (`0..=100`): each backoff wait is scaled by a factor drawn from
    /// `[1 − jitter_pct/100, 1]` using a hash of `(peer, attempt)`, so
    /// same-configuration runs jitter identically on every transport
    /// and peers never synchronize their NACK storms. `0` disables
    /// jitter (the historical behavior).
    pub jitter_pct: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 5,
            nack_timeout: Duration::from_millis(40),
            backoff_cap: Duration::from_millis(320),
            deadline: None,
            jitter_pct: 0,
        }
    }
}

impl RetryPolicy {
    /// Disable recovery entirely: no NACKs are ever sent, so a missing
    /// value is only discovered when the *full* machine receive timeout
    /// ([`recv_timeout`] on the run options) expires, and it then
    /// surfaces as the legacy `MissingMessage`/`MissingPacket` error
    /// instead of `Unrecoverable`. [`RetryPolicy::deadline`] still
    /// applies if set (it can only shorten the wait, never extend it);
    /// [`RetryPolicy::jitter_pct`] is irrelevant because no backoff
    /// cycle ever runs. This reproduces the pre-transport detect-only
    /// semantics — use it when a lost message should fail fast and
    /// loudly rather than be repaired.
    ///
    /// [`recv_timeout`]: crate::DistOptions::recv_timeout
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// A fast policy for tests: short NACK timeout, small cap.
    pub fn fast() -> RetryPolicy {
        RetryPolicy {
            max_retries: 6,
            nack_timeout: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(80),
            ..RetryPolicy::default()
        }
    }

    /// Set the total wall-clock deadline (builder form).
    pub fn with_deadline(mut self, d: Duration) -> RetryPolicy {
        self.deadline = Some(d);
        self
    }

    /// Set the backoff jitter percentage (builder form; clamped to 100).
    pub fn with_jitter(mut self, pct: u32) -> RetryPolicy {
        self.jitter_pct = pct.min(100);
        self
    }
}

/// Service-level protocol timeouts for the socket backends.
///
/// These used to be compile-time constants (`HEARTBEAT_IVL`,
/// `SPAWN_DEADLINE`, `RUN_GRACE`, `RESEND_IVL`), which meant a resident
/// service could not tighten its failure detection without recompiling.
/// They now travel on [`crate::DistOptions`]: the per-run machinery
/// reads them from the options, the worker processes receive the
/// heartbeat interval on their command line, and `vcalc serve` installs
/// [`ProtoTimeouts::service`] to fail fast on wedged workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtoTimeouts {
    /// How often an idle worker emits a heartbeat frame (keeps
    /// chaos-stalled links honest and the router's reader warm).
    pub heartbeat_ivl: Duration,
    /// How long the host waits for every spawned worker's HELLO.
    pub spawn_deadline: Duration,
    /// Slack added on top of the retry budget before the host declares
    /// a run collection dead.
    pub run_grace: Duration,
    /// How long a dispatched job may go unacknowledged before the host
    /// re-sends it (idempotent — workers dedupe by `run_id`).
    pub resend_ivl: Duration,
}

impl Default for ProtoTimeouts {
    fn default() -> Self {
        ProtoTimeouts {
            heartbeat_ivl: Duration::from_millis(200),
            spawn_deadline: Duration::from_secs(10),
            run_grace: Duration::from_secs(30),
            resend_ivl: Duration::from_secs(1),
        }
    }
}

impl ProtoTimeouts {
    /// The tightened profile a resident service uses: a wedged worker
    /// or a lost job is detected in hundreds of milliseconds instead of
    /// tens of seconds, so one bad request cannot head-of-line-block
    /// the admission queue for long.
    pub fn service() -> ProtoTimeouts {
        ProtoTimeouts {
            heartbeat_ivl: Duration::from_millis(100),
            spawn_deadline: Duration::from_secs(5),
            run_grace: Duration::from_secs(5),
            resend_ivl: Duration::from_millis(250),
        }
    }
}

/// Deterministically jitter one backoff interval: scale by a factor in
/// `[1 − pct/100, 1]` derived from a hash of `(peer, attempt)`. Pure —
/// the same `(policy, peer, attempt)` always waits the same time, so
/// seeded runs stay reproducible across transports and schedulers.
pub(crate) fn jittered_backoff(backoff: Duration, pct: u32, peer: i64, attempt: u32) -> Duration {
    if pct == 0 {
        return backoff;
    }
    let u = unit_f64(fnv1a([peer as u64, attempt as u64]));
    let frac = f64::from(pct.min(100)) / 100.0;
    backoff.mul_f64(1.0 - frac * u)
}

/// What a packet classification decided.
enum FaultKind {
    Clean,
    Drop,
    Duplicate,
    Reorder,
    Corrupt,
    Delay,
}

/// Per-node fault stream state.
struct FaultState {
    plan: FaultPlan,
    rng: u64,
    /// First transmissions attempted so far by this node.
    sent: u64,
}

impl FaultState {
    fn new(plan: FaultPlan, p: i64) -> FaultState {
        // decorrelate node streams without losing determinism
        let mut s = plan.seed ^ (p as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let _ = splitmix64(&mut s);
        FaultState {
            plan,
            rng: s,
            sent: 0,
        }
    }

    fn draw(&mut self) -> u64 {
        splitmix64(&mut self.rng)
    }

    /// Classify the next first-transmission packet of node `p`;
    /// panics when the crash fault fires here.
    fn classify(&mut self, p: i64) -> FaultKind {
        if let Some(c) = self.plan.crash {
            if c.node == p && self.sent >= c.after_packets {
                panic!("injected node crash (node {p})");
            }
        }
        let n = self.sent;
        self.sent += 1;
        if self.plan.drop_exact == Some((p, n)) {
            return FaultKind::Drop;
        }
        if self.plan.from_only.is_some_and(|f| f != p) {
            return FaultKind::Clean;
        }
        let u = unit_f64(self.draw());
        let mut acc = self.plan.drop;
        if u < acc {
            return FaultKind::Drop;
        }
        acc += self.plan.duplicate;
        if u < acc {
            return FaultKind::Duplicate;
        }
        acc += self.plan.reorder;
        if u < acc {
            return FaultKind::Reorder;
        }
        acc += self.plan.corrupt;
        if u < acc {
            return FaultKind::Corrupt;
        }
        acc += self.plan.delay;
        if u < acc {
            return FaultKind::Delay;
        }
        FaultKind::Clean
    }

    /// Classify a retransmission: only drop/corrupt apply (so a
    /// persistent fault keeps biting, but retransmits are never
    /// reordered or held back).
    fn classify_retransmit(&mut self, p: i64) -> FaultKind {
        if self.plan.from_only.is_some_and(|f| f != p) {
            return FaultKind::Clean;
        }
        let u = unit_f64(self.draw());
        if u < self.plan.drop {
            FaultKind::Drop
        } else if u < self.plan.drop + self.plan.corrupt {
            FaultKind::Corrupt
        } else {
            FaultKind::Clean
        }
    }

    /// Crash point at the end of the send phase: guarantees a
    /// configured crash fires even if the node sent too few packets to
    /// reach its `after_packets` threshold.
    fn crash_at_phase_end(&self, p: i64) {
        if let Some(c) = self.plan.crash {
            if c.node == p {
                panic!("injected node crash (node {p}, end of send phase)");
            }
        }
    }
}

/// A packet held back by a reorder/delay fault.
struct Stashed<T> {
    dst: usize,
    pkt: Packet<T>,
    /// How many more sends to wait before flushing; `None` = hold
    /// until the end of the send phase.
    countdown: Option<u32>,
}

/// What one serviced frame produced.
pub(crate) enum Step<T> {
    /// A fresh (never-seen, checksum-valid) data payload from `src` —
    /// the machine must stage it. `seq` is the sender-assigned per-flow
    /// sequence number: frames may surface out of order under reorder
    /// faults, so consumers that demultiplex one flow into sub-streams
    /// (e.g. wave jobs) must route by `seq`, never by arrival count.
    Fresh { src: i64, seq: u64, payload: T },
    /// A control frame, duplicate, or corrupt packet — handled
    /// internally.
    Handled,
    /// Nothing arrived within the poll slice.
    TimedOut,
}

/// Why an awaited value could not be produced.
pub(crate) enum AwaitFail {
    /// Recovery disabled (`max_retries == 0`) and the receive timeout
    /// expired — the legacy failure mode.
    Timeout,
    /// The NACK/retransmit budget was exhausted.
    Exhausted {
        /// NACKs sent before giving up.
        retries: u32,
    },
    /// The wire carried something the mode/plan does not account for.
    BadWire(&'static str),
}

/// One node's endpoint of the reliable transport: sender-side flows
/// (sequence numbers + retransmit buffers, one per destination),
/// receiver-side flows (cumulative dedup + reorder windows, one per
/// source), fault injection, and the completion map.
pub(crate) struct Endpoint<'t, T: WirePayload> {
    p: i64,
    link: Box<dyn Transport<T> + Send + 't>,
    next_seq: Vec<u64>,
    retained: Vec<VecDeque<Packet<T>>>,
    recv_next: Vec<u64>,
    recv_ahead: Vec<BTreeSet<u64>>,
    done: Vec<bool>,
    stash: Vec<Stashed<T>>,
    faults: Option<FaultState>,
    tracer: &'t dyn Tracer,
    /// Cached [`Tracer::enabled`] so the per-frame hot path pays one
    /// branch when tracing is off.
    trace_on: bool,
}

impl<'t, T: WirePayload> Endpoint<'t, T> {
    /// Build the endpoint of node `p` over any frame carrier.
    pub(crate) fn new(
        p: i64,
        link: Box<dyn Transport<T> + Send + 't>,
        faults: Option<FaultPlan>,
        tracer: &'t dyn Tracer,
    ) -> Endpoint<'t, T> {
        let n = link.peer_count();
        let mut done = vec![false; n];
        if let Some(d) = done.get_mut(p as usize) {
            *d = true; // a node never waits on itself
        }
        Endpoint {
            p,
            link,
            next_seq: vec![0; n],
            retained: (0..n).map(|_| VecDeque::new()).collect(),
            recv_next: vec![0; n],
            recv_ahead: (0..n).map(|_| BTreeSet::new()).collect(),
            done,
            stash: Vec::new(),
            faults: faults.map(|f| FaultState::new(f, p)),
            trace_on: tracer.enabled(),
            tracer,
        }
    }

    /// Build the endpoint of node `p` over the in-process channel mesh
    /// (the historical constructor shape).
    pub(crate) fn in_proc(
        p: i64,
        txs: Vec<Sender<Frame<T>>>,
        rx: Receiver<Frame<T>>,
        faults: Option<FaultPlan>,
        tracer: &'t dyn Tracer,
    ) -> Endpoint<'t, T>
    where
        T: Send + 'static,
    {
        Endpoint::new(p, Box::new(ChannelTransport::new(txs, rx)), faults, tracer)
    }

    /// Number of nodes on the interconnect (including this one).
    pub(crate) fn peer_count(&self) -> usize {
        self.link.peer_count()
    }

    /// Discard every frame already queued toward this node (steady-state
    /// purge barrier after a dirty run).
    pub(crate) fn purge_link(&mut self) {
        self.link.purge();
    }

    /// Return the endpoint to its just-constructed state for reuse by a
    /// persistent worker: sequence numbers and cumulative-ack windows
    /// restart at zero, retained/stashed packets and completion flags
    /// are discarded, and the fault stream is rebuilt from `faults` so a
    /// warm run reproduces exactly the fault sequence a cold run with
    /// the same plan would see. Nothing is reallocated beyond clearing.
    pub(crate) fn reset(&mut self, faults: Option<FaultPlan>, trace_on: bool) {
        for s in &mut self.next_seq {
            *s = 0;
        }
        for r in &mut self.retained {
            r.clear();
        }
        for r in &mut self.recv_next {
            *r = 0;
        }
        for a in &mut self.recv_ahead {
            a.clear();
        }
        for d in &mut self.done {
            *d = false;
        }
        if let Some(d) = self.done.get_mut(self.p as usize) {
            *d = true;
        }
        self.stash.clear();
        self.faults = faults.map(|f| FaultState::new(f, self.p));
        self.trace_on = trace_on;
    }

    fn transmit(&mut self, dst: usize, pkt: Packet<T>) {
        if dst < self.link.peer_count() {
            self.link.send(dst, Frame::Data(pkt));
        }
    }

    /// Send one payload to `dst` through the fault plan: assign the
    /// flow sequence number, checksum, retain a clean copy for
    /// retransmission, and deliver (or drop / duplicate / corrupt /
    /// hold back) according to the node's fault stream.
    pub(crate) fn send(&mut self, dst: usize, payload: T) {
        let seq = self.next_seq[dst];
        self.next_seq[dst] += 1;
        let check = packet_digest(self.p, seq, &payload);
        let pkt = Packet {
            src: self.p,
            seq,
            check,
            payload,
        };
        self.retained[dst].push_back(pkt.clone());
        let kind = match &mut self.faults {
            None => FaultKind::Clean,
            Some(fs) => fs.classify(self.p),
        };
        let mut stash_current = None;
        match kind {
            FaultKind::Clean => self.transmit(dst, pkt),
            FaultKind::Drop => {}
            FaultKind::Duplicate => {
                self.transmit(dst, pkt.clone());
                self.transmit(dst, pkt);
            }
            FaultKind::Corrupt => {
                let bits = match &mut self.faults {
                    Some(fs) => fs.draw(),
                    None => 0,
                };
                let mut c = pkt;
                c.payload.corrupt(bits); // checksum keeps the clean digest
                self.transmit(dst, c);
            }
            FaultKind::Reorder => {
                stash_current = Some(Stashed {
                    dst,
                    pkt,
                    countdown: Some(1),
                });
            }
            FaultKind::Delay => {
                stash_current = Some(Stashed {
                    dst,
                    pkt,
                    countdown: None,
                });
            }
        }
        // age packets stashed by earlier sends; flush the expired ones
        // *after* this send so a reordered packet really swaps places
        let mut flushed = Vec::new();
        self.stash.retain_mut(|s| match &mut s.countdown {
            Some(c) => {
                *c = c.saturating_sub(1);
                if *c == 0 {
                    flushed.push((s.dst, s.pkt.clone()));
                    false
                } else {
                    true
                }
            }
            None => true,
        });
        for (d, pk) in flushed {
            self.transmit(d, pk);
        }
        if let Some(s) = stash_current {
            self.stash.push(s);
        }
    }

    /// End of the send phase: fire a pending crash fault, then flush
    /// every held-back (delayed/reordered) packet.
    pub(crate) fn end_send_phase(&mut self) {
        if let Some(fs) = &self.faults {
            fs.crash_at_phase_end(self.p);
        }
        let stash = std::mem::take(&mut self.stash);
        for s in stash {
            self.transmit(s.dst, s.pkt);
        }
    }

    fn ack(&mut self, src: usize, stats: &mut NodeStats) {
        if src < self.link.peer_count() {
            let frame = Frame::Ack {
                from: self.p,
                next_needed: self.recv_next[src],
            };
            self.link.send(src, frame);
            stats.acks_sent += 1;
            if self.trace_on {
                self.tracer
                    .record(self.p, EventKind::Ack { dst: src as i64 });
            }
        }
    }

    /// Ask `peer` to retransmit everything this node has not yet seen.
    pub(crate) fn nack(&mut self, peer: i64, stats: &mut NodeStats) {
        let q = peer as usize;
        if q < self.link.peer_count() {
            if let Some(&next) = self.recv_next.get(q) {
                self.link.send(
                    q,
                    Frame::Nack {
                        from: self.p,
                        next_needed: next,
                    },
                );
                stats.nacks_sent += 1;
                if self.trace_on {
                    self.tracer.record(self.p, EventKind::Nack { peer });
                }
            }
        }
    }

    /// Service one frame: stage-worthy data is returned, control
    /// frames (ack pruning, NACK-driven retransmission, completion) are
    /// handled internally.
    fn service(&mut self, frame: Frame<T>, stats: &mut NodeStats) -> Step<T> {
        match frame {
            Frame::Data(pkt) => {
                let src = pkt.src as usize;
                if src >= self.recv_next.len() {
                    return Step::Handled; // stray source id
                }
                if packet_digest(pkt.src, pkt.seq, &pkt.payload) != pkt.check {
                    stats.corrupt_detected += 1;
                    if self.trace_on {
                        self.tracer
                            .record(self.p, EventKind::CorruptDetected { src: pkt.src });
                    }
                    return Step::Handled; // treated as a loss; NACK recovers
                }
                if pkt.seq < self.recv_next[src] || self.recv_ahead[src].contains(&pkt.seq) {
                    stats.dups_dropped += 1;
                    if self.trace_on {
                        self.tracer
                            .record(self.p, EventKind::DupDropped { src: pkt.src });
                    }
                    self.ack(src, stats); // re-ack so the sender prunes
                    return Step::Handled;
                }
                self.recv_ahead[src].insert(pkt.seq);
                while self.recv_ahead[src].remove(&self.recv_next[src]) {
                    self.recv_next[src] += 1;
                }
                self.ack(src, stats);
                Step::Fresh {
                    src: pkt.src,
                    seq: pkt.seq,
                    payload: pkt.payload,
                }
            }
            Frame::Ack { from, next_needed } => {
                if let Some(buf) = self.retained.get_mut(from as usize) {
                    while buf.front().is_some_and(|pk| pk.seq < next_needed) {
                        buf.pop_front();
                    }
                }
                Step::Handled
            }
            Frame::Nack { from, next_needed } => {
                let q = from as usize;
                if q >= self.retained.len() {
                    return Step::Handled;
                }
                let resend: Vec<Packet<T>> = self.retained[q]
                    .iter()
                    .filter(|pk| pk.seq >= next_needed)
                    .cloned()
                    .collect();
                for mut pk in resend {
                    let kind = match &mut self.faults {
                        None => FaultKind::Clean,
                        Some(fs) => fs.classify_retransmit(self.p),
                    };
                    stats.retransmits += 1;
                    if self.trace_on {
                        self.tracer
                            .record(self.p, EventKind::Retransmit { dst: from });
                    }
                    match kind {
                        FaultKind::Drop => {}
                        FaultKind::Corrupt => {
                            let bits = match &mut self.faults {
                                Some(fs) => fs.draw(),
                                None => 0,
                            };
                            pk.payload.corrupt(bits);
                            self.transmit(q, pk);
                        }
                        _ => self.transmit(q, pk),
                    }
                }
                Step::Handled
            }
            Frame::Done { from } => {
                if let Some(d) = self.done.get_mut(from as usize) {
                    *d = true;
                }
                Step::Handled
            }
        }
    }

    /// Wait up to `slice` for one frame and service it.
    pub(crate) fn poll(&mut self, slice: Duration, stats: &mut NodeStats) -> Step<T> {
        match self.link.recv(slice) {
            Some(frame) => self.service(frame, stats),
            None => Step::TimedOut,
        }
    }

    /// Broadcast that this node will never NACK again.
    pub(crate) fn announce_done(&mut self) {
        for q in 0..self.link.peer_count() {
            if q != self.p as usize {
                self.link.send(q, Frame::Done { from: self.p });
            }
        }
    }

    /// Keep servicing retransmit requests until every peer has
    /// announced completion or `cap` expires. Fresh data arriving here
    /// is acknowledged and discarded (stale retransmissions after this
    /// node already finished its update phase).
    pub(crate) fn drain(&mut self, cap: Duration, stats: &mut NodeStats) {
        let deadline = Instant::now() + cap;
        while !self.done.iter().all(|d| *d) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let slice = deadline
                .saturating_duration_since(now)
                .min(Duration::from_millis(25));
            let _ = self.poll(slice, stats);
        }
    }
}

/// Receive until `ready` produces a value, staging every fresh payload
/// via `stage`, NACKing `peer` per the retry policy while waiting.
///
/// `ready` and `stage` both operate on the caller's staging state
/// `ctx` (passed explicitly so the two closures can share it without
/// conflicting borrows). `ready` returning `Some(Err(why))` reports a
/// plan inconsistency discovered on the staged data.
#[allow(clippy::too_many_arguments)]
pub(crate) fn await_until<T: WirePayload, C, R>(
    ep: &mut Endpoint<'_, T>,
    peer: i64,
    recv_timeout: Duration,
    retry: RetryPolicy,
    stats: &mut NodeStats,
    ctx: &mut C,
    mut ready: impl FnMut(&mut C) -> Option<Result<R, &'static str>>,
    mut stage: impl FnMut(&mut C, i64, u64, T) -> Result<(), &'static str>,
) -> Result<R, AwaitFail> {
    if let Some(r) = ready(ctx) {
        return r.map_err(AwaitFail::BadWire);
    }
    let start = Instant::now();
    // the per-flow deadline can only tighten the machine receive
    // timeout, never extend it
    let total = retry.deadline.map_or(recv_timeout, |d| d.min(recv_timeout));
    let deadline = start + total;
    let mut retries = 0u32;
    let mut backoff = retry.nack_timeout;
    let mut next_nack = if retry.max_retries > 0 {
        start + jittered_backoff(backoff, retry.jitter_pct, peer, 0)
    } else {
        deadline
    };
    loop {
        let now = Instant::now();
        if now >= deadline {
            return Err(if retries > 0 {
                AwaitFail::Exhausted { retries }
            } else {
                AwaitFail::Timeout
            });
        }
        if retry.max_retries > 0 && now >= next_nack {
            if retries >= retry.max_retries {
                return Err(AwaitFail::Exhausted { retries });
            }
            ep.nack(peer, stats);
            retries += 1;
            backoff = (backoff * 2).min(retry.backoff_cap);
            next_nack = now + jittered_backoff(backoff, retry.jitter_pct, peer, retries);
            if ep.trace_on {
                ep.tracer.record(ep.p, EventKind::Backoff { peer });
            }
        }
        let slice = next_nack
            .min(deadline)
            .saturating_duration_since(now)
            .max(Duration::from_millis(1));
        match ep.poll(slice, stats) {
            Step::Fresh { src, seq, payload } => {
                stage(ctx, src, seq, payload).map_err(AwaitFail::BadWire)?;
                if let Some(r) = ready(ctx) {
                    return r.map_err(AwaitFail::BadWire);
                }
            }
            Step::Handled | Step::TimedOut => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    impl WirePayload for f64 {
        fn digest(&self) -> u64 {
            self.to_bits()
        }
        fn corrupt(&mut self, bits: u64) {
            *self = f64::from_bits(self.to_bits() ^ (1 << (bits % 52)));
        }
    }

    use crate::obs::NULL_TRACER;

    type Pair = (
        Endpoint<'static, f64>,
        Endpoint<'static, f64>,
        Receiver<Frame<f64>>,
        Receiver<Frame<f64>>,
    );

    /// Two endpoints whose *outbound* frames land on the returned
    /// receivers, so tests can inspect raw wire traffic and feed frames
    /// to `service` by hand. (The endpoints' own inbound links are
    /// sterile channels — these tests drive `service` directly.)
    fn pair() -> Pair {
        let (tx0, rx0) = channel();
        let (tx1, rx1) = channel();
        let txs = vec![tx0, tx1];
        let (_, dead_rx0) = channel();
        let (_, dead_rx1) = channel();
        (
            Endpoint::in_proc(0, txs.clone(), dead_rx0, None, &NULL_TRACER),
            Endpoint::in_proc(1, txs, dead_rx1, None, &NULL_TRACER),
            rx0,
            rx1,
        )
    }

    #[test]
    fn fresh_then_duplicate_suppressed() {
        let (mut a, mut b, _rx0, rx1) = pair();
        let mut sb = NodeStats::default();
        a.send(1, 2.5);
        // deliver the packet twice by servicing the same wire frame
        let f1 = rx1.recv().unwrap();
        let f2 = match &f1 {
            Frame::Data(p) => Frame::Data(p.clone()),
            _ => unreachable!(),
        };
        assert!(matches!(b.service(f1, &mut sb), Step::Fresh { src: 0, .. }));
        assert!(matches!(b.service(f2, &mut sb), Step::Handled));
        assert_eq!(sb.dups_dropped, 1);
        assert_eq!(sb.acks_sent, 2);
    }

    #[test]
    fn corrupt_detected_and_counted() {
        let (mut a, mut b, _rx0, rx1) = pair();
        let mut sb = NodeStats::default();
        a.send(1, 1.0);
        let frame = match rx1.recv().unwrap() {
            Frame::Data(mut p) => {
                p.payload.corrupt(7);
                Frame::Data(p)
            }
            _ => unreachable!(),
        };
        assert!(matches!(b.service(frame, &mut sb), Step::Handled));
        assert_eq!(sb.corrupt_detected, 1);
    }

    #[test]
    fn nack_triggers_retransmission() {
        let (mut a, mut b, rx0, rx1) = pair();
        let mut sa = NodeStats::default();
        let mut sb = NodeStats::default();
        a.send(1, 4.0);
        // pretend the wire lost it: drain the channel without staging
        let _ = rx1.recv().unwrap();
        b.nack(0, &mut sb);
        assert_eq!(sb.nacks_sent, 1);
        // sender services the NACK and retransmits
        let nack = rx0.recv().unwrap();
        assert!(matches!(a.service(nack, &mut sa), Step::Handled));
        assert_eq!(sa.retransmits, 1);
        match rx1.recv().unwrap() {
            Frame::Data(p) => {
                assert_eq!(p.seq, 0);
                assert!(matches!(
                    b.service(Frame::Data(p), &mut sb),
                    Step::Fresh { .. }
                ));
            }
            _ => panic!("expected retransmitted data"),
        }
    }

    #[test]
    fn ack_prunes_retained_buffer() {
        let (mut a, mut b, rx0, rx1) = pair();
        let mut sa = NodeStats::default();
        let mut sb = NodeStats::default();
        a.send(1, 1.0);
        a.send(1, 2.0);
        assert_eq!(a.retained[1].len(), 2);
        for _ in 0..2 {
            let f = rx1.recv().unwrap();
            let _ = b.service(f, &mut sb);
        }
        // service both cumulative acks
        while let Ok(f) = rx0.try_recv() {
            let _ = a.service(f, &mut sa);
        }
        assert!(a.retained[1].is_empty());
    }

    #[test]
    fn seeded_plan_is_deterministic() {
        let plan = FaultPlan::seeded(42).with_drop(0.3).with_duplicate(0.2);
        let mut a = FaultState::new(plan, 3);
        let mut b = FaultState::new(plan, 3);
        for _ in 0..64 {
            let ka = a.classify(3);
            let kb = b.classify(3);
            assert_eq!(std::mem::discriminant(&ka), std::mem::discriminant(&kb));
        }
    }

    #[test]
    fn drop_exact_hits_only_nth() {
        let plan = FaultPlan::drop_nth(0, 1);
        let (tx1, rx1) = channel();
        let (tx0, _rx0) = channel();
        let (_, dead_rx) = channel();
        let mut a: Endpoint<'_, f64> =
            Endpoint::in_proc(0, vec![tx0, tx1], dead_rx, Some(plan), &NULL_TRACER);
        a.send(1, 1.0);
        a.send(1, 2.0); // dropped
        a.send(1, 3.0);
        let mut seqs = Vec::new();
        while let Ok(Frame::Data(p)) = rx1.try_recv() {
            seqs.push(p.seq);
        }
        assert_eq!(seqs, vec![0, 2]);
    }

    #[test]
    fn fault_probabilities_are_clamped() {
        let p = FaultPlan::seeded(1)
            .with_drop(1.7)
            .with_duplicate(-0.3)
            .with_reorder(f64::NAN)
            .with_corrupt(2e9)
            .with_delay(-f64::INFINITY);
        assert_eq!(p.drop, 1.0);
        assert_eq!(p.duplicate, 0.0);
        assert_eq!(p.reorder, 0.0);
        assert_eq!(p.corrupt, 1.0);
        assert_eq!(p.delay, 0.0);
        // an in-range probability is untouched
        assert_eq!(FaultPlan::seeded(1).with_drop(0.25).drop, 0.25);
    }

    #[test]
    fn retry_deadline_caps_total_wait() {
        // nothing ever arrives: with a 40 ms flow deadline the await
        // must give up long before the 10 s machine receive timeout
        let (_, dead_rx) = channel();
        let (tx0, _rx0) = channel();
        let (tx1, _rx1) = channel();
        let mut ep: Endpoint<'_, f64> =
            Endpoint::in_proc(1, vec![tx0, tx1], dead_rx, None, &NULL_TRACER);
        let retry = RetryPolicy {
            max_retries: 100,
            nack_timeout: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(5),
            deadline: Some(Duration::from_millis(40)),
            jitter_pct: 0,
        };
        let mut stats = NodeStats::default();
        let t0 = Instant::now();
        let res: Result<(), AwaitFail> = await_until(
            &mut ep,
            0,
            Duration::from_secs(10),
            retry,
            &mut stats,
            &mut (),
            |_| None,
            |_, _, _, _| Ok(()),
        );
        let waited = t0.elapsed();
        assert!(matches!(res, Err(AwaitFail::Exhausted { .. })));
        assert!(
            waited < Duration::from_secs(2),
            "deadline ignored: waited {waited:?}"
        );
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_bounded() {
        let base = Duration::from_millis(100);
        for attempt in 0..8 {
            let a = jittered_backoff(base, 50, 3, attempt);
            let b = jittered_backoff(base, 50, 3, attempt);
            assert_eq!(a, b, "jitter must be a pure function of (peer, attempt)");
            assert!(a <= base && a >= base / 2, "jitter out of range: {a:?}");
        }
        // pct == 0 is exactly the unjittered interval
        assert_eq!(jittered_backoff(base, 0, 3, 1), base);
    }
}
