//! An analytic performance model for generated SPMD programs.
//!
//! The machines of this crate *count* events exactly (iterations,
//! ownership tests, messages); wall-clock on a modern multicore says
//! little about a 1991 multiprocessor. This model turns the counts into
//! *simulated time* with the classic linear cost parameters of the era:
//!
//! ```text
//! T_node = tests*t_test + iterations*t_iter
//!        + sends*(t_startup + hops*t_hop) + receives*t_recv
//! T      = max over nodes  (+ one barrier per clause on shared memory)
//! ```
//!
//! yielding clean speedup curves — who wins, by what factor, and where
//! decompositions cross over — independent of host noise.

use crate::distributed::CommMode;
use crate::obs::{Phase, TraceLog};
use crate::stats::ExecReport;
use crate::topology::Topology;
use vcal_decomp::RedistPlan;
use vcal_spmd::SpmdPlan;

/// Cost parameters, in abstract time units (1 = one local iteration).
#[derive(Debug, Clone, Copy)]
pub struct PerfModel {
    /// One run-time ownership test (naive schedules).
    pub t_test: f64,
    /// One executed iteration (evaluate + write).
    pub t_iter: f64,
    /// Message startup (software overhead per send).
    pub t_startup: f64,
    /// Per-hop transfer time.
    pub t_hop: f64,
    /// Receive-side software overhead.
    pub t_recv: f64,
    /// The interconnect.
    pub topology: Topology,
}

impl Default for PerfModel {
    /// Message startup two orders of magnitude above an iteration — the
    /// classic distributed-memory ratio of the paper's era.
    fn default() -> Self {
        PerfModel {
            t_test: 0.25,
            t_iter: 1.0,
            t_startup: 100.0,
            t_hop: 5.0,
            t_recv: 20.0,
            topology: Topology::Hypercube,
        }
    }
}

/// The modeled execution time of one clause.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime {
    /// Critical-path (max-node) time.
    pub total: f64,
    /// The slowest node.
    pub bottleneck: i64,
    /// Sum over nodes (the work the machine performs in aggregate).
    pub aggregate: f64,
}

impl PerfModel {
    /// Price a *static plan*: per-node schedule work only (no
    /// communication), the shared-memory cost of Section 2.9.
    pub fn price_plan(&self, plan: &SpmdPlan) -> SimTime {
        let mut total = 0.0f64;
        let mut aggregate = 0.0;
        let mut bottleneck = 0;
        for node in &plan.nodes {
            let visits = node.modify.schedule.count() as f64;
            let tests = node.modify.schedule.work_estimate() as f64 - visits;
            let t = tests * self.t_test + visits * self.t_iter;
            aggregate += t;
            if t > total {
                total = t;
                bottleneck = node.p;
            }
        }
        SimTime {
            total,
            bottleneck,
            aggregate,
        }
    }

    /// Price an *execution report* (distributed machine): iterations,
    /// tests, and the recorded traffic matrix under the model topology.
    pub fn price_report(&self, report: &ExecReport) -> SimTime {
        let pmax = report.nodes.len() as i64;
        let mut total = 0.0f64;
        let mut aggregate = 0.0;
        let mut bottleneck = 0;
        for (p, node) in report.nodes.iter().enumerate() {
            let tests = (node.guard_tests as f64 - node.iterations as f64).max(0.0);
            let mut t = tests * self.t_test
                + node.iterations as f64 * self.t_iter
                + node.msgs_received as f64 * self.t_recv;
            if let Some(row) = report.traffic.get(p) {
                for (dst, &count) in row.iter().enumerate() {
                    if count == 0 || dst == p {
                        continue;
                    }
                    let hops = self.topology.hops(pmax, p as i64, dst as i64) as f64;
                    t += count as f64 * (self.t_startup + hops * self.t_hop);
                }
            } else {
                t += node.msgs_sent as f64 * (self.t_startup + self.t_hop);
            }
            aggregate += t;
            if t > total {
                total = t;
                bottleneck = p as i64;
            }
        }
        SimTime {
            total,
            bottleneck,
            aggregate,
        }
    }

    /// Modeled speedup of a plan against the one-processor time of the
    /// same loop (`n` iterations, no tests, no messages).
    pub fn speedup_of_plan(&self, plan: &SpmdPlan) -> f64 {
        let n = (plan.loop_bounds.1 - plan.loop_bounds.0 + 1).max(0) as f64;
        let seq = n * self.t_iter;
        let par = self.price_plan(plan).total;
        if par > 0.0 {
            seq / par
        } else {
            f64::INFINITY
        }
    }

    /// Modeled speedup of a distributed execution against sequential.
    pub fn speedup_of_report(&self, report: &ExecReport, seq_iterations: u64) -> f64 {
        let seq = seq_iterations as f64 * self.t_iter;
        let par = self.price_report(report).total;
        if par > 0.0 {
            seq / par
        } else {
            f64::INFINITY
        }
    }
}

/// Wire-format constants mirrored from the distributed machine: a
/// 24-byte element message; a 16-byte header plus 8 bytes per element
/// for packed vector messages.
const ELEM_MSG_BYTES: u64 = 24;
const PACK_HEADER_BYTES: u64 = 16;
const ELEM_BYTES: u64 = 8;

/// One calibration observation: the hardware-measurable counters of a
/// profiled (warm) step plus the wall-clock the tracer recorded for it.
/// Aggregated over all nodes — the fit estimates *per-event* averages,
/// which is exactly what plan-time pricing needs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CalibrationSample {
    /// Iterations executed (schedule visits across all nodes).
    pub iterations: u64,
    /// Wire messages put on the transport.
    pub packets: u64,
    /// Modeled wire bytes sent.
    pub bytes: u64,
    /// Payload elements received.
    pub recv_elems: u64,
    /// Measured update-phase wall-clock, summed over nodes (ns).
    pub update_ns: f64,
    /// Measured send-phase wall-clock, summed over nodes (ns).
    pub send_ns: f64,
    /// Measured drain/receive wall-clock, summed over nodes (ns).
    pub drain_ns: f64,
}

impl CalibrationSample {
    /// Extract a sample from one traced execution: counters from the
    /// report, phase wall-clock from the trace's timing side-band.
    pub fn of(report: &ExecReport, log: &TraceLog) -> CalibrationSample {
        let t = report.total();
        let totals = log.phase_totals();
        let ns = |p: Phase| totals.get(&p).map_or(0.0, |d| d.as_nanos() as f64);
        CalibrationSample {
            iterations: t.iterations,
            packets: t.packets_sent,
            bytes: t.bytes_sent,
            recv_elems: t.msgs_received,
            update_ns: ns(Phase::Update),
            send_ns: ns(Phase::Send),
            drain_ns: ns(Phase::Drain),
        }
    }

    /// Merge another sample into this one (accumulate a multi-clause
    /// program step into one observation).
    pub fn absorb(&mut self, o: &CalibrationSample) {
        self.iterations += o.iterations;
        self.packets += o.packets;
        self.bytes += o.bytes;
        self.recv_elems += o.recv_elems;
        self.update_ns += o.update_ns;
        self.send_ns += o.send_ns;
        self.drain_ns += o.drain_ns;
    }
}

/// The modeled wall-clock of one plan under a [`CalibratedModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanPrice {
    /// Critical-path (max-node) nanoseconds.
    pub total_ns: f64,
    /// The slowest node.
    pub bottleneck: i64,
    /// Sum over nodes.
    pub aggregate_ns: f64,
}

/// The §4 performance model with its constants *fit from measured
/// trace timings* instead of the 1991 defaults: nanoseconds per
/// executed iteration, per wire message, per wire byte, and per
/// received element, estimated from one or two profiled warm steps.
///
/// The structural model is unchanged — linear event costs, critical
/// path = max over nodes — only the constants move, so predictions
/// carry the host's actual compute/communication ratio and candidate
/// decompositions can be ranked by predicted wall-clock without
/// executing any of them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibratedModel {
    /// Nanoseconds per executed iteration (evaluate + write).
    pub iter_ns: f64,
    /// Nanoseconds of per-message software overhead (startup).
    pub packet_ns: f64,
    /// Nanoseconds per wire byte (inverse bandwidth).
    pub byte_ns: f64,
    /// Nanoseconds per received payload element.
    pub recv_ns: f64,
    /// How many observations the fit consumed.
    pub samples: usize,
}

impl Default for CalibratedModel {
    /// Uncalibrated fallback: the classic ratios of [`PerfModel`]
    /// expressed in nanoseconds with 1 iteration ≡ 1 ns. Rankings
    /// under this default match the era-model rankings.
    fn default() -> Self {
        let m = PerfModel::default();
        CalibratedModel {
            iter_ns: m.t_iter,
            packet_ns: m.t_startup,
            byte_ns: m.t_hop / ELEM_BYTES as f64,
            recv_ns: m.t_recv,
            samples: 0,
        }
    }
}

impl CalibratedModel {
    /// Fit the model from profiled samples. Per-iteration and
    /// per-received-element costs are direct ratios; the send-phase
    /// pool is attributed to per-message and per-byte terms by a 2×2
    /// least-squares fit when the samples are independent enough to
    /// identify both, and split evenly between the two terms otherwise
    /// (one warm step can never separate startup from bandwidth).
    /// Constants that a degenerate profile leaves unobserved (no
    /// packets, no receives) keep their [`CalibratedModel::default`]
    /// values so pricing still ranks communication-bearing candidates
    /// sensibly. Returns `None` when no sample carries any measured
    /// update time — there is nothing to calibrate from.
    pub fn fit(samples: &[CalibrationSample]) -> Option<CalibratedModel> {
        let mut out = CalibratedModel::default();
        let tot_iters: u64 = samples.iter().map(|s| s.iterations).sum();
        let tot_update: f64 = samples.iter().map(|s| s.update_ns).sum();
        if tot_iters == 0 || tot_update <= 0.0 {
            return None;
        }
        out.iter_ns = tot_update / tot_iters as f64;
        out.samples = samples.len();

        let tot_packets: u64 = samples.iter().map(|s| s.packets).sum();
        let tot_bytes: u64 = samples.iter().map(|s| s.bytes).sum();
        let tot_send: f64 = samples.iter().map(|s| s.send_ns).sum();
        if tot_packets > 0 && tot_send > 0.0 {
            // least squares over send_ns ≈ packets·a + bytes·b
            let (mut spp, mut spb, mut sbb, mut spy, mut sby) = (0.0, 0.0, 0.0, 0.0, 0.0);
            for s in samples {
                let (p, b, y) = (s.packets as f64, s.bytes as f64, s.send_ns);
                spp += p * p;
                spb += p * b;
                sbb += b * b;
                spy += p * y;
                sby += b * y;
            }
            let det = spp * sbb - spb * spb;
            let rel = det / (spp * sbb).max(f64::MIN_POSITIVE);
            let (a, b) = if rel > 1e-6 {
                ((sbb * spy - spb * sby) / det, (spp * sby - spb * spy) / det)
            } else {
                (f64::NAN, f64::NAN)
            };
            if a.is_finite() && b.is_finite() && a >= 0.0 && b >= 0.0 {
                out.packet_ns = a;
                out.byte_ns = b;
            } else {
                // unidentifiable: split the measured pool evenly
                out.packet_ns = 0.5 * tot_send / tot_packets as f64;
                out.byte_ns = if tot_bytes > 0 {
                    0.5 * tot_send / tot_bytes as f64
                } else {
                    0.0
                };
            }
        } else if tot_packets == 0 {
            // communication-free profile: scale the default comm
            // constants to the calibrated iteration cost so the classic
            // startup/iteration ratio is preserved in absolute terms
            let scale = out.iter_ns / PerfModel::default().t_iter;
            out.packet_ns *= scale;
            out.byte_ns *= scale;
            out.recv_ns *= scale;
            return Some(out);
        }
        let tot_recv: u64 = samples.iter().map(|s| s.recv_elems).sum();
        let tot_drain: f64 = samples.iter().map(|s| s.drain_ns).sum();
        if tot_recv > 0 && tot_drain > 0.0 {
            out.recv_ns = tot_drain / tot_recv as f64;
        }
        Some(out)
    }

    /// Per-node wire traffic of a plan under `mode`: `(packets, bytes)`
    /// — the same accounting the machines report in
    /// `packets_sent`/`bytes_sent`.
    fn node_wire(node: &vcal_spmd::NodePlan, mode: CommMode) -> (u64, u64) {
        let elems = node.comm.send_elems();
        match mode {
            CommMode::Element => (elems, elems * ELEM_MSG_BYTES),
            CommMode::Vectorized => {
                let packets = node.comm.send_packets();
                (packets, packets * PACK_HEADER_BYTES + elems * ELEM_BYTES)
            }
        }
    }

    /// Price a plan from its schedules alone — no execution. Per node:
    /// iteration, send (packet + byte), and receive terms; the total is
    /// the critical path (max over nodes), which is what a
    /// barrier-synchronized step actually waits on.
    pub fn price_plan(&self, plan: &SpmdPlan, mode: CommMode) -> PlanPrice {
        let mut total = 0.0f64;
        let mut aggregate = 0.0;
        let mut bottleneck = 0;
        for node in &plan.nodes {
            let visits = node.modify.schedule.count() as f64;
            let tests = (node.modify.schedule.work_estimate() as f64 - visits).max(0.0);
            let (packets, bytes) = Self::node_wire(node, mode);
            let t = visits * self.iter_ns
                + tests * 0.25 * self.iter_ns
                + packets as f64 * self.packet_ns
                + bytes as f64 * self.byte_ns
                + node.comm.recv_elems() as f64 * self.recv_ns;
            aggregate += t;
            if t > total {
                total = t;
                bottleneck = node.p;
            }
        }
        PlanPrice {
            total_ns: total,
            bottleneck,
            aggregate_ns: aggregate,
        }
    }

    /// Price a redistribution: every moved element is one send plus one
    /// receive, batched per ordered processor pair (vectorized wire
    /// accounting — redistribution always ships runs).
    pub fn price_redist(&self, plan: &RedistPlan) -> f64 {
        let packets = plan.message_count() as f64;
        let elems = plan.moved_elements().max(0) as f64;
        packets * self.packet_ns
            + (packets * PACK_HEADER_BYTES as f64 + elems * ELEM_BYTES as f64) * self.byte_ns
            + elems * self.recv_ns
    }

    /// Predict the wall-clock of an already-executed report — used to
    /// close the loop (`model_error` = |predicted − measured| /
    /// measured on a warm step the model did *not* calibrate from).
    pub fn predict_report(&self, report: &ExecReport) -> f64 {
        let mut total = 0.0f64;
        for node in &report.nodes {
            let t = node.iterations as f64 * self.iter_ns
                + node.packets_sent as f64 * self.packet_ns
                + node.bytes_sent as f64 * self.byte_ns
                + node.msgs_received as f64 * self.recv_ns;
            total = total.max(t);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::darray::DistArray;
    use crate::distributed::{run_distributed, DistOptions};
    use std::collections::BTreeMap;
    use vcal_core::func::Fn1;
    use vcal_core::{Array, ArrayRef, Bounds, Clause, Env, Expr, Guard, IndexSet, Ordering};
    use vcal_decomp::Decomp1;
    use vcal_spmd::{DecompMap, SpmdPlan};

    fn copy_clause(n: i64) -> Clause {
        Clause {
            iter: IndexSet::range(0, n - 1),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("B", Fn1::identity())),
        }
    }

    #[test]
    fn closed_form_plan_speedup_approaches_pmax() {
        let n = 1 << 14;
        let clause = copy_clause(n);
        let model = PerfModel::default();
        for pmax in [2i64, 8, 32] {
            let mut dm = DecompMap::new();
            dm.insert("A".into(), Decomp1::block(pmax, Bounds::range(0, n - 1)));
            dm.insert("B".into(), Decomp1::block(pmax, Bounds::range(0, n - 1)));
            let plan = SpmdPlan::build(&clause, &dm).unwrap();
            let s = model.speedup_of_plan(&plan);
            let rel = (s - pmax as f64).abs() / (pmax as f64);
            assert!(rel < 0.05, "pmax={pmax}: modeled speedup {s}");
            // naive plans pay the tests and scale worse
            let naive = SpmdPlan::build_naive(&clause, &dm).unwrap();
            let sn = model.speedup_of_plan(&naive);
            assert!(sn < s, "naive {sn} should trail closed-form {s}");
            // naive speedup saturates around t_iter/t_test regardless of pmax
            assert!(sn <= 1.0 / model.t_test * 1.1, "pmax={pmax}: naive {sn}");
        }
    }

    #[test]
    fn communication_dominates_scatter_stencil() {
        // block vs scatter for a stencil: the model must rank block far
        // ahead once message costs enter.
        let n = 1 << 10;
        let clause = Clause {
            iter: IndexSet::range(1, n - 2),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("V", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("U", Fn1::shift(-1))),
        };
        let mut env = Env::new();
        env.insert(
            "U",
            Array::from_fn(Bounds::range(0, n - 1), |i| i.scalar() as f64),
        );
        env.insert("V", Array::zeros(Bounds::range(0, n - 1)));
        let model = PerfModel::default();
        let mut times = Vec::new();
        for dec in [
            Decomp1::block(8, Bounds::range(0, n - 1)),
            Decomp1::scatter(8, Bounds::range(0, n - 1)),
        ] {
            let mut dm = DecompMap::new();
            dm.insert("U".into(), dec.clone());
            dm.insert("V".into(), dec.clone());
            let plan = SpmdPlan::build(&clause, &dm).unwrap();
            let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
            for a in ["U", "V"] {
                arrays.insert(
                    a.into(),
                    DistArray::scatter_from(env.get(a).unwrap(), dm[a].clone()),
                );
            }
            let report =
                run_distributed(&plan, &clause, &mut arrays, DistOptions::default()).unwrap();
            times.push(model.price_report(&report).total);
        }
        assert!(
            times[0] * 5.0 < times[1],
            "block {} should beat scatter {} by far",
            times[0],
            times[1]
        );
    }

    #[test]
    fn topology_changes_the_price() {
        // same traffic, pricier on a ring than a hypercube
        let mut report = ExecReport {
            nodes: vec![Default::default(); 8],
            traffic: vec![vec![0u64; 8]; 8],
            ..Default::default()
        };
        report.traffic[0][4] = 100;
        let hyper = PerfModel {
            topology: Topology::Hypercube,
            ..Default::default()
        };
        let ring = PerfModel {
            topology: Topology::Ring,
            ..Default::default()
        };
        let crossbar = PerfModel {
            topology: Topology::Crossbar,
            ..Default::default()
        };
        let th = hyper.price_report(&report).total;
        let tr = ring.price_report(&report).total;
        let tc = crossbar.price_report(&report).total;
        // 0 -> 4: one hop on the hypercube (single bit) and the crossbar,
        // four on the ring (antipodal)
        assert_eq!(th, tc);
        assert!(tr > th && th > 0.0);
    }
}
