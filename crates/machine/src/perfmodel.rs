//! An analytic performance model for generated SPMD programs.
//!
//! The machines of this crate *count* events exactly (iterations,
//! ownership tests, messages); wall-clock on a modern multicore says
//! little about a 1991 multiprocessor. This model turns the counts into
//! *simulated time* with the classic linear cost parameters of the era:
//!
//! ```text
//! T_node = tests*t_test + iterations*t_iter
//!        + sends*(t_startup + hops*t_hop) + receives*t_recv
//! T      = max over nodes  (+ one barrier per clause on shared memory)
//! ```
//!
//! yielding clean speedup curves — who wins, by what factor, and where
//! decompositions cross over — independent of host noise.

use crate::stats::ExecReport;
use crate::topology::Topology;
use vcal_spmd::SpmdPlan;

/// Cost parameters, in abstract time units (1 = one local iteration).
#[derive(Debug, Clone, Copy)]
pub struct PerfModel {
    /// One run-time ownership test (naive schedules).
    pub t_test: f64,
    /// One executed iteration (evaluate + write).
    pub t_iter: f64,
    /// Message startup (software overhead per send).
    pub t_startup: f64,
    /// Per-hop transfer time.
    pub t_hop: f64,
    /// Receive-side software overhead.
    pub t_recv: f64,
    /// The interconnect.
    pub topology: Topology,
}

impl Default for PerfModel {
    /// Message startup two orders of magnitude above an iteration — the
    /// classic distributed-memory ratio of the paper's era.
    fn default() -> Self {
        PerfModel {
            t_test: 0.25,
            t_iter: 1.0,
            t_startup: 100.0,
            t_hop: 5.0,
            t_recv: 20.0,
            topology: Topology::Hypercube,
        }
    }
}

/// The modeled execution time of one clause.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime {
    /// Critical-path (max-node) time.
    pub total: f64,
    /// The slowest node.
    pub bottleneck: i64,
    /// Sum over nodes (the work the machine performs in aggregate).
    pub aggregate: f64,
}

impl PerfModel {
    /// Price a *static plan*: per-node schedule work only (no
    /// communication), the shared-memory cost of Section 2.9.
    pub fn price_plan(&self, plan: &SpmdPlan) -> SimTime {
        let mut total = 0.0f64;
        let mut aggregate = 0.0;
        let mut bottleneck = 0;
        for node in &plan.nodes {
            let visits = node.modify.schedule.count() as f64;
            let tests = node.modify.schedule.work_estimate() as f64 - visits;
            let t = tests * self.t_test + visits * self.t_iter;
            aggregate += t;
            if t > total {
                total = t;
                bottleneck = node.p;
            }
        }
        SimTime {
            total,
            bottleneck,
            aggregate,
        }
    }

    /// Price an *execution report* (distributed machine): iterations,
    /// tests, and the recorded traffic matrix under the model topology.
    pub fn price_report(&self, report: &ExecReport) -> SimTime {
        let pmax = report.nodes.len() as i64;
        let mut total = 0.0f64;
        let mut aggregate = 0.0;
        let mut bottleneck = 0;
        for (p, node) in report.nodes.iter().enumerate() {
            let tests = (node.guard_tests as f64 - node.iterations as f64).max(0.0);
            let mut t = tests * self.t_test
                + node.iterations as f64 * self.t_iter
                + node.msgs_received as f64 * self.t_recv;
            if let Some(row) = report.traffic.get(p) {
                for (dst, &count) in row.iter().enumerate() {
                    if count == 0 || dst == p {
                        continue;
                    }
                    let hops = self.topology.hops(pmax, p as i64, dst as i64) as f64;
                    t += count as f64 * (self.t_startup + hops * self.t_hop);
                }
            } else {
                t += node.msgs_sent as f64 * (self.t_startup + self.t_hop);
            }
            aggregate += t;
            if t > total {
                total = t;
                bottleneck = p as i64;
            }
        }
        SimTime {
            total,
            bottleneck,
            aggregate,
        }
    }

    /// Modeled speedup of a plan against the one-processor time of the
    /// same loop (`n` iterations, no tests, no messages).
    pub fn speedup_of_plan(&self, plan: &SpmdPlan) -> f64 {
        let n = (plan.loop_bounds.1 - plan.loop_bounds.0 + 1).max(0) as f64;
        let seq = n * self.t_iter;
        let par = self.price_plan(plan).total;
        if par > 0.0 {
            seq / par
        } else {
            f64::INFINITY
        }
    }

    /// Modeled speedup of a distributed execution against sequential.
    pub fn speedup_of_report(&self, report: &ExecReport, seq_iterations: u64) -> f64 {
        let seq = seq_iterations as f64 * self.t_iter;
        let par = self.price_report(report).total;
        if par > 0.0 {
            seq / par
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::darray::DistArray;
    use crate::distributed::{run_distributed, DistOptions};
    use std::collections::BTreeMap;
    use vcal_core::func::Fn1;
    use vcal_core::{Array, ArrayRef, Bounds, Clause, Env, Expr, Guard, IndexSet, Ordering};
    use vcal_decomp::Decomp1;
    use vcal_spmd::{DecompMap, SpmdPlan};

    fn copy_clause(n: i64) -> Clause {
        Clause {
            iter: IndexSet::range(0, n - 1),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("B", Fn1::identity())),
        }
    }

    #[test]
    fn closed_form_plan_speedup_approaches_pmax() {
        let n = 1 << 14;
        let clause = copy_clause(n);
        let model = PerfModel::default();
        for pmax in [2i64, 8, 32] {
            let mut dm = DecompMap::new();
            dm.insert("A".into(), Decomp1::block(pmax, Bounds::range(0, n - 1)));
            dm.insert("B".into(), Decomp1::block(pmax, Bounds::range(0, n - 1)));
            let plan = SpmdPlan::build(&clause, &dm).unwrap();
            let s = model.speedup_of_plan(&plan);
            let rel = (s - pmax as f64).abs() / (pmax as f64);
            assert!(rel < 0.05, "pmax={pmax}: modeled speedup {s}");
            // naive plans pay the tests and scale worse
            let naive = SpmdPlan::build_naive(&clause, &dm).unwrap();
            let sn = model.speedup_of_plan(&naive);
            assert!(sn < s, "naive {sn} should trail closed-form {s}");
            // naive speedup saturates around t_iter/t_test regardless of pmax
            assert!(sn <= 1.0 / model.t_test * 1.1, "pmax={pmax}: naive {sn}");
        }
    }

    #[test]
    fn communication_dominates_scatter_stencil() {
        // block vs scatter for a stencil: the model must rank block far
        // ahead once message costs enter.
        let n = 1 << 10;
        let clause = Clause {
            iter: IndexSet::range(1, n - 2),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("V", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("U", Fn1::shift(-1))),
        };
        let mut env = Env::new();
        env.insert(
            "U",
            Array::from_fn(Bounds::range(0, n - 1), |i| i.scalar() as f64),
        );
        env.insert("V", Array::zeros(Bounds::range(0, n - 1)));
        let model = PerfModel::default();
        let mut times = Vec::new();
        for dec in [
            Decomp1::block(8, Bounds::range(0, n - 1)),
            Decomp1::scatter(8, Bounds::range(0, n - 1)),
        ] {
            let mut dm = DecompMap::new();
            dm.insert("U".into(), dec.clone());
            dm.insert("V".into(), dec.clone());
            let plan = SpmdPlan::build(&clause, &dm).unwrap();
            let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
            for a in ["U", "V"] {
                arrays.insert(
                    a.into(),
                    DistArray::scatter_from(env.get(a).unwrap(), dm[a].clone()),
                );
            }
            let report =
                run_distributed(&plan, &clause, &mut arrays, DistOptions::default()).unwrap();
            times.push(model.price_report(&report).total);
        }
        assert!(
            times[0] * 5.0 < times[1],
            "block {} should beat scatter {} by far",
            times[0],
            times[1]
        );
    }

    #[test]
    fn topology_changes_the_price() {
        // same traffic, pricier on a ring than a hypercube
        let mut report = ExecReport {
            nodes: vec![Default::default(); 8],
            traffic: vec![vec![0u64; 8]; 8],
            ..Default::default()
        };
        report.traffic[0][4] = 100;
        let hyper = PerfModel {
            topology: Topology::Hypercube,
            ..Default::default()
        };
        let ring = PerfModel {
            topology: Topology::Ring,
            ..Default::default()
        };
        let crossbar = PerfModel {
            topology: Topology::Crossbar,
            ..Default::default()
        };
        let th = hyper.price_report(&report).total;
        let tr = ring.price_report(&report).total;
        let tc = crossbar.price_report(&report).total;
        // 0 -> 4: one hop on the hypercube (single bit) and the crossbar,
        // four on the ring (antipodal)
        assert_eq!(th, tc);
        assert!(tr > th && th > 0.0);
    }
}
