//! Structured observability for the plan → emit → execute pipeline.
//!
//! The machines historically exposed only end-state
//! [`crate::stats::NodeStats`] counters, so a regression anywhere
//! between planning and the final
//! answer was visible only as a final-answer diff. This module adds a
//! zero-dependency span/event layer:
//!
//! * a [`Tracer`] trait with no-op defaults ([`NullTracer`]) — hot paths
//!   pay one branch on a cached boolean when tracing is off;
//! * a [`CollectingTracer`] that records [`Event`]s under **per-node
//!   logical clocks**, split into two classes: *deterministic* events
//!   (program order: phase boundaries, planned sends, consumed
//!   receives, enumeration-dispatch decisions) and *timing-dependent*
//!   events (reliability traffic: acks, nacks, retransmits, backoff),
//!   which depend on thread scheduling and are therefore kept out of
//!   the deterministic stream;
//! * a seed-stable JSONL serialization ([`TraceLog::to_jsonl`]) of the
//!   deterministic stream — logical clocks only, **no wall-time in the
//!   log body** — that is byte-identical across runs of the same plan
//!   and fault seed;
//! * wall-clock *phase timings* recorded separately
//!   ([`Tracer::timing`], [`PhaseTiming`]) so `perfmodel` predictions
//!   can be compared against measured phase costs without polluting
//!   the deterministic log;
//! * a replay checker ([`replay_check`]) that re-validates an
//!   execution's event stream against its [`SpmdPlan`]: phase protocol
//!   per node, every planned send present with the planned size (and,
//!   in vectorized mode, in exact plan order), every receive matched
//!   to a planned incoming element, and reliability traffic within the
//!   [`RetryPolicy`] budget.
//!
//! See DESIGN.md §11 for the span taxonomy and the checker rules.

use crate::distributed::{CommMode, PACK_HEADER_BYTES};
use crate::transport::RetryPolicy;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;
use std::time::Duration;
use vcal_spmd::SpmdPlan;

/// Pseudo-node id used for host-side (planning, commit) events.
pub const HOST: i64 = -1;

/// The spans of one pipeline execution (span taxonomy of DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Host-side plan inspection / dispatch recording.
    Plan,
    /// A node's send phase (`Reside_p ∩ Modify_q` traffic).
    Send,
    /// A node's update phase (`Modify_p` iterations).
    Update,
    /// A node's post-run drain (servicing late retransmit requests).
    Drain,
    /// Host-side transactional write commit.
    Commit,
    /// One node's redistribution run (local copy + send + receive).
    Redistribute,
    /// A whole-array ghost exchange.
    Halo,
}

impl Phase {
    /// Stable lower-case name used in the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Plan => "plan",
            Phase::Send => "send",
            Phase::Update => "update",
            Phase::Drain => "drain",
            Phase::Commit => "commit",
            Phase::Redistribute => "redistribute",
            Phase::Halo => "halo",
        }
    }
}

/// One traced occurrence. Variants are split into a *deterministic*
/// class (reproducible program order — these make up the seed-stable
/// JSONL stream) and a *timing-dependent* class (reliability traffic
/// whose count and order depend on thread scheduling).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    // -------- deterministic (program order) --------------------------
    /// A span opened on this node.
    PhaseStart(Phase),
    /// A span closed on this node.
    PhaseEnd(Phase),
    /// Which Table I row produced this node's Modify schedule.
    ModifyDispatch {
        /// [`vcal_spmd::OptKind::name`] of the schedule.
        kind: &'static str,
        /// Whether the row is closed-form (`false` = naive guard).
        closed_form: bool,
    },
    /// Which Table I row produced one Reside schedule of this node.
    ResideDispatch {
        /// Read-slot index into the node's reside list.
        slot: usize,
        /// The read array's name.
        array: String,
        /// [`vcal_spmd::OptKind::name`] of the schedule.
        kind: &'static str,
        /// Whether the row is closed-form (`false` = naive guard).
        closed_form: bool,
    },
    /// One planned vector packet put on the wire (vectorized mode).
    PackSend {
        /// Destination node.
        dst: i64,
        /// Run ordinal within the `(src, dst)` pair — the packet tag.
        run: usize,
        /// Payload elements carried.
        elems: u64,
        /// Modeled wire bytes (header + payload).
        bytes: u64,
    },
    /// One tagged element message put on the wire (element mode).
    ElemSend {
        /// Destination node.
        dst: i64,
        /// Read-slot index the value belongs to.
        slot: usize,
        /// Loop index the value belongs to.
        i: i64,
    },
    /// One remote operand consumed by the update loop.
    RecvValue {
        /// The owning (sending) node.
        src: i64,
        /// Read-slot index.
        slot: usize,
        /// Loop index.
        i: i64,
    },
    /// One compiled *interior* run completed (all operands owner-local;
    /// executed while boundary packets may still be in flight).
    InteriorRun {
        /// Exec-run ordinal within the node's compiled table.
        run: usize,
        /// Iterations the run covered.
        elems: u64,
    },
    /// One compiled *boundary* run completed (consumed remote operands).
    BoundaryRun {
        /// Exec-run ordinal within the node's compiled table.
        run: usize,
        /// Iterations the run covered.
        elems: u64,
        /// Remote operands the run had to receive before completing.
        recvs: u64,
    },
    /// SIMD census of the node's update phase: how the compiled runs
    /// split between the lane tier and the scalar fallback (recorded
    /// once per update phase, after the last run).
    SimdCensus {
        /// Runs executed through the SIMD lane tier.
        vector_runs: u64,
        /// Runs executed element-at-a-time.
        fallback_runs: u64,
        /// Elements processed in full lane chunks.
        lane_elems: u64,
        /// Remainder elements handled by scalar tail loops.
        tail_elems: u64,
    },
    /// One ghost-exchange message (halo machine), recorded at the owner.
    HaloMsg {
        /// Receiving node.
        dst: i64,
        /// Ghost cells carried.
        elems: u64,
    },
    /// One coalesced redistribution run sent.
    RedistSend {
        /// Destination node.
        dst: i64,
        /// Elements carried.
        elems: u64,
    },
    /// One coalesced redistribution run received and unpacked.
    RedistRecv {
        /// Source node.
        src: i64,
        /// Elements carried.
        elems: u64,
    },
    /// The DAG scheduler resolved a program step's dependencies: every
    /// DAG predecessor has committed and the step may start. Recorded
    /// by the host, once per step per program round, before the step's
    /// `clause_begin`.
    DagReady {
        /// Program-step ordinal.
        step: usize,
    },
    /// A DAG-scheduled program step began executing. Recorded by the
    /// host; [`replay_check_dag`] rejects a begin whose predecessors
    /// have not all ended.
    ClauseBegin {
        /// Program-step ordinal.
        step: usize,
    },
    /// A DAG-scheduled program step's writes were committed.
    ClauseEnd {
        /// Program-step ordinal.
        step: usize,
    },
    // -------- timing-dependent (reliability traffic) -----------------
    /// The node retransmitted one retained packet in answer to a NACK.
    Retransmit {
        /// The requesting node.
        dst: i64,
    },
    /// The node acknowledged an accepted (or duplicate) packet.
    Ack {
        /// The sender being acknowledged.
        dst: i64,
    },
    /// The node asked a peer to retransmit.
    Nack {
        /// The peer owing data.
        peer: i64,
    },
    /// A duplicate packet was suppressed.
    DupDropped {
        /// The duplicate's source.
        src: i64,
    },
    /// A checksum mismatch was detected (packet treated as lost).
    CorruptDetected {
        /// The corrupt packet's source.
        src: i64,
    },
    /// The node entered an exponential-backoff wait after a NACK.
    Backoff {
        /// The peer being waited on.
        peer: i64,
    },
}

impl EventKind {
    /// Whether the event is reproducible program order (part of the
    /// seed-stable JSONL stream) as opposed to scheduling-dependent
    /// reliability traffic.
    pub fn is_deterministic(&self) -> bool {
        !matches!(
            self,
            EventKind::Retransmit { .. }
                | EventKind::Ack { .. }
                | EventKind::Nack { .. }
                | EventKind::DupDropped { .. }
                | EventKind::CorruptDetected { .. }
                | EventKind::Backoff { .. }
        )
    }

    /// Stable snake_case name used in the JSONL schema.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::PhaseStart(_) => "phase_start",
            EventKind::PhaseEnd(_) => "phase_end",
            EventKind::ModifyDispatch { .. } => "modify_dispatch",
            EventKind::ResideDispatch { .. } => "reside_dispatch",
            EventKind::PackSend { .. } => "pack_send",
            EventKind::ElemSend { .. } => "elem_send",
            EventKind::RecvValue { .. } => "recv_value",
            EventKind::InteriorRun { .. } => "interior_run",
            EventKind::BoundaryRun { .. } => "boundary_run",
            EventKind::SimdCensus { .. } => "simd_census",
            EventKind::HaloMsg { .. } => "halo_msg",
            EventKind::RedistSend { .. } => "redist_send",
            EventKind::RedistRecv { .. } => "redist_recv",
            EventKind::DagReady { .. } => "dag_ready",
            EventKind::ClauseBegin { .. } => "clause_begin",
            EventKind::ClauseEnd { .. } => "clause_end",
            EventKind::Retransmit { .. } => "retransmit",
            EventKind::Ack { .. } => "ack",
            EventKind::Nack { .. } => "nack",
            EventKind::DupDropped { .. } => "dup_dropped",
            EventKind::CorruptDetected { .. } => "corrupt_detected",
            EventKind::Backoff { .. } => "backoff",
        }
    }
}

/// One recorded event: node, per-node logical clock, and what happened.
/// Deterministic and timing-dependent events advance *separate* clocks,
/// so interleaved reliability traffic can never perturb the logical
/// timestamps of the deterministic stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Node the event belongs to ([`HOST`] for host-side events).
    pub node: i64,
    /// Per-node logical clock value (per class — see above).
    pub t: u64,
    /// What happened.
    pub kind: EventKind,
}

/// One measured span: wall-clock, kept out of the deterministic log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTiming {
    /// Node the span ran on ([`HOST`] for host-side spans).
    pub node: i64,
    /// Which span.
    pub phase: Phase,
    /// Measured wall-clock nanoseconds.
    pub nanos: u128,
}

/// The observability hooks the machines call. All methods default to
/// no-ops; implementations must be [`Sync`] because one tracer is
/// shared by every node thread of a run.
pub trait Tracer: Sync {
    /// Whether events should be recorded at all. The machines cache
    /// this once per run/phase, so a disabled tracer costs one branch
    /// per would-be event.
    fn enabled(&self) -> bool {
        false
    }

    /// Record one event for `node`.
    fn record(&self, node: i64, kind: EventKind) {
        let _ = (node, kind);
    }

    /// Record one measured span for `node`. Called even for
    /// event-disabled tracers that want timings only — implementations
    /// gate on whatever they collect.
    fn timing(&self, node: i64, phase: Phase, elapsed: Duration) {
        let _ = (node, phase, elapsed);
    }
}

/// The do-nothing tracer: every hook is a no-op and [`Tracer::enabled`]
/// is `false`, so instrumented hot paths stay free.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {}

/// A shared [`NullTracer`] for the untraced entry points.
pub static NULL_TRACER: NullTracer = NullTracer;

#[derive(Default)]
struct Collected {
    events: Vec<Event>,
    det_clock: BTreeMap<i64, u64>,
    aux_clock: BTreeMap<i64, u64>,
    timings: Vec<PhaseTiming>,
}

/// A tracer that collects every event and timing in memory; drain the
/// result with [`CollectingTracer::finish`].
#[derive(Default)]
pub struct CollectingTracer {
    inner: Mutex<Collected>,
}

impl CollectingTracer {
    /// A fresh, empty collector.
    pub fn new() -> CollectingTracer {
        CollectingTracer::default()
    }

    /// Take everything recorded so far, leaving the collector empty.
    pub fn finish(&self) -> TraceLog {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let collected = std::mem::take(&mut *inner);
        let mut events = collected.events;
        // deterministic first, each class sorted by (node, clock);
        // within a node the clock is assignment order, so this is a
        // stable program-order view independent of lock interleaving
        events.sort_by_key(|e| (!e.kind.is_deterministic(), e.node, e.t));
        TraceLog {
            events,
            timings: collected.timings,
        }
    }
}

impl Tracer for CollectingTracer {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, node: i64, kind: EventKind) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let clock = if kind.is_deterministic() {
            &mut inner.det_clock
        } else {
            &mut inner.aux_clock
        };
        let t_ref = clock.entry(node).or_insert(0);
        let t = *t_ref;
        *t_ref += 1;
        inner.events.push(Event { node, t, kind });
    }

    fn timing(&self, node: i64, phase: Phase, elapsed: Duration) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.timings.push(PhaseTiming {
            node,
            phase,
            nanos: elapsed.as_nanos(),
        });
    }
}

/// Everything one traced execution produced.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// All events, deterministic class first, each class ordered by
    /// `(node, t)`.
    pub events: Vec<Event>,
    /// Measured spans, in recording order (wall-clock — never part of
    /// the serialized event log).
    pub timings: Vec<PhaseTiming>,
}

fn jsonl_line(out: &mut String, e: &Event) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "{{\"node\":{},\"t\":{},\"kind\":\"{}\"",
        e.node,
        e.t,
        e.kind.name()
    );
    match &e.kind {
        EventKind::PhaseStart(p) | EventKind::PhaseEnd(p) => {
            let _ = write!(out, ",\"phase\":\"{}\"", p.name());
        }
        EventKind::ModifyDispatch { kind, closed_form } => {
            let _ = write!(out, ",\"opt\":\"{kind}\",\"closed_form\":{closed_form}");
        }
        EventKind::ResideDispatch {
            slot,
            array,
            kind,
            closed_form,
        } => {
            let _ = write!(
                out,
                ",\"slot\":{slot},\"array\":\"{array}\",\"opt\":\"{kind}\",\"closed_form\":{closed_form}"
            );
        }
        EventKind::PackSend {
            dst,
            run,
            elems,
            bytes,
        } => {
            let _ = write!(
                out,
                ",\"dst\":{dst},\"run\":{run},\"elems\":{elems},\"bytes\":{bytes}"
            );
        }
        EventKind::ElemSend { dst, slot, i } => {
            let _ = write!(out, ",\"dst\":{dst},\"slot\":{slot},\"i\":{i}");
        }
        EventKind::RecvValue { src, slot, i } => {
            let _ = write!(out, ",\"src\":{src},\"slot\":{slot},\"i\":{i}");
        }
        EventKind::InteriorRun { run, elems } => {
            let _ = write!(out, ",\"run\":{run},\"elems\":{elems}");
        }
        EventKind::BoundaryRun { run, elems, recvs } => {
            let _ = write!(out, ",\"run\":{run},\"elems\":{elems},\"recvs\":{recvs}");
        }
        EventKind::SimdCensus {
            vector_runs,
            fallback_runs,
            lane_elems,
            tail_elems,
        } => {
            let _ = write!(
                out,
                ",\"vector_runs\":{vector_runs},\"fallback_runs\":{fallback_runs},\"lane_elems\":{lane_elems},\"tail_elems\":{tail_elems}"
            );
        }
        EventKind::HaloMsg { dst, elems } => {
            let _ = write!(out, ",\"dst\":{dst},\"elems\":{elems}");
        }
        EventKind::RedistSend { dst, elems } => {
            let _ = write!(out, ",\"dst\":{dst},\"elems\":{elems}");
        }
        EventKind::RedistRecv { src, elems } => {
            let _ = write!(out, ",\"src\":{src},\"elems\":{elems}");
        }
        EventKind::DagReady { step }
        | EventKind::ClauseBegin { step }
        | EventKind::ClauseEnd { step } => {
            let _ = write!(out, ",\"step\":{step}");
        }
        EventKind::Retransmit { dst } | EventKind::Ack { dst } => {
            let _ = write!(out, ",\"dst\":{dst}");
        }
        EventKind::Nack { peer } | EventKind::Backoff { peer } => {
            let _ = write!(out, ",\"peer\":{peer}");
        }
        EventKind::DupDropped { src } | EventKind::CorruptDetected { src } => {
            let _ = write!(out, ",\"src\":{src}");
        }
    }
    out.push_str("}\n");
}

impl TraceLog {
    /// Iterate the deterministic event stream in `(node, t)` order.
    pub fn deterministic(&self) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(|e| e.kind.is_deterministic())
    }

    /// Serialize the **deterministic** stream as JSONL: one event per
    /// line, `(node, t)` order, logical clocks only. Byte-identical
    /// across two runs of the same plan + mode + fault seed.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.deterministic() {
            jsonl_line(&mut out, e);
        }
        out
    }

    /// Serialize *every* event (reliability traffic appended after the
    /// deterministic stream). Ordering within the timing-dependent
    /// class is per-node program order but globally
    /// scheduling-dependent — use for diagnosis, not for diffing.
    pub fn to_jsonl_full(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            jsonl_line(&mut out, e);
        }
        out
    }

    /// Count enumeration-function dispatches by Table I row name
    /// (modify and reside schedules combined).
    pub fn dispatch_counts(&self) -> BTreeMap<&'static str, u64> {
        let mut out = BTreeMap::new();
        for e in &self.events {
            match &e.kind {
                EventKind::ModifyDispatch { kind, .. } | EventKind::ResideDispatch { kind, .. } => {
                    *out.entry(*kind).or_insert(0) += 1;
                }
                _ => {}
            }
        }
        out
    }

    /// Total measured wall-clock per phase, summed across nodes.
    pub fn phase_totals(&self) -> BTreeMap<Phase, Duration> {
        let mut out: BTreeMap<Phase, Duration> = BTreeMap::new();
        for t in &self.timings {
            let nanos = u64::try_from(t.nanos).unwrap_or(u64::MAX);
            *out.entry(t.phase).or_default() += Duration::from_nanos(nanos);
        }
        out
    }

    /// Largest single measured span per phase — the bottleneck node,
    /// which is what a barrier-synchronized machine actually waits on.
    pub fn phase_bottlenecks(&self) -> BTreeMap<Phase, Duration> {
        let mut out: BTreeMap<Phase, Duration> = BTreeMap::new();
        for t in &self.timings {
            let nanos = u64::try_from(t.nanos).unwrap_or(u64::MAX);
            let d = Duration::from_nanos(nanos);
            let cell = out.entry(t.phase).or_default();
            if d > *cell {
                *cell = d;
            }
        }
        out
    }

    /// Count events of the timing-dependent (reliability) class.
    pub fn reliability_events(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| !e.kind.is_deterministic())
            .count() as u64
    }
}

/// Record the plan's enumeration-function dispatch decisions (which
/// Table I row fired for every Modify/Reside schedule) on `tracer`.
/// Deterministic: iterates the plan in node/slot order on the caller's
/// thread. The machines call this once per traced run; it is public so
/// plan-only tooling can audit dispatch without executing.
pub fn trace_plan(tracer: &dyn Tracer, plan: &SpmdPlan) {
    if !tracer.enabled() {
        return;
    }
    tracer.record(HOST, EventKind::PhaseStart(Phase::Plan));
    for node in &plan.nodes {
        tracer.record(
            node.p,
            EventKind::ModifyDispatch {
                kind: node.modify.kind.name(),
                closed_form: node.modify.kind.is_closed_form(),
            },
        );
        for (slot, rp) in node.resides.iter().enumerate() {
            tracer.record(
                node.p,
                EventKind::ResideDispatch {
                    slot,
                    array: rp.array.clone(),
                    kind: rp.opt.kind.name(),
                    closed_form: rp.opt.kind.is_closed_form(),
                },
            );
        }
    }
    tracer.record(HOST, EventKind::PhaseEnd(Phase::Plan));
}

/// Why a trace failed replay validation against its plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// A node's events violate the phase protocol (send before update,
    /// sends only inside the send span, receives only inside update).
    Phase {
        /// The offending node.
        node: i64,
        /// What was violated.
        why: String,
    },
    /// A node's send events do not match the plan's send runs.
    Send {
        /// The offending node.
        node: i64,
        /// What differed.
        why: String,
    },
    /// A node's consumed receives do not match the plan's recv runs.
    Recv {
        /// The offending node.
        node: i64,
        /// What differed.
        why: String,
    },
    /// Reliability traffic exceeded what the retry policy permits.
    Budget {
        /// The offending node.
        node: i64,
        /// Which budget was blown.
        why: String,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Phase { node, why } => write!(f, "node {node}: phase protocol: {why}"),
            ReplayError::Send { node, why } => write!(f, "node {node}: send mismatch: {why}"),
            ReplayError::Recv { node, why } => write!(f, "node {node}: recv mismatch: {why}"),
            ReplayError::Budget { node, why } => write!(f, "node {node}: budget: {why}"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// What a successful replay validated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Nodes whose streams were checked.
    pub nodes: u64,
    /// Deterministic events examined.
    pub det_events: u64,
    /// Planned send elements matched against the trace.
    pub send_elems: u64,
    /// Planned receive elements matched against the trace.
    pub recv_elems: u64,
    /// Retransmit events accounted against the budget.
    pub retransmits: u64,
    /// NACK events accounted against the budget.
    pub nacks: u64,
}

/// Expand a node's planned send runs, in exact wire order, as
/// `(peer, run_ord, slot, elems, bytes)` per packet.
fn planned_packets(plan: &SpmdPlan, p: usize) -> Vec<(i64, usize, usize, u64, u64)> {
    let mut out = Vec::new();
    for pair in &plan.nodes[p].comm.sends {
        for (run_ord, run) in pair.runs.iter().enumerate() {
            let elems = run.len();
            out.push((
                pair.peer,
                run_ord,
                run.slot,
                elems,
                PACK_HEADER_BYTES + 8 * elems,
            ));
        }
    }
    out
}

/// Expand a node's planned send runs into `(dst, slot, i)` elements.
fn planned_send_elems(plan: &SpmdPlan, p: usize) -> Vec<(i64, usize, i64)> {
    let mut out = Vec::new();
    for pair in &plan.nodes[p].comm.sends {
        for run in &pair.runs {
            run.for_each(|i| out.push((pair.peer, run.slot, i)));
        }
    }
    out.sort_unstable();
    out
}

/// Expand a node's planned recv runs into `(src, slot, i)` elements.
fn planned_recv_elems(plan: &SpmdPlan, p: usize) -> Vec<(i64, usize, i64)> {
    let mut out = Vec::new();
    for pair in &plan.nodes[p].comm.recvs {
        for run in &pair.runs {
            run.for_each(|i| out.push((pair.peer, run.slot, i)));
        }
    }
    out.sort_unstable();
    out
}

/// Re-validate a captured event stream against the plan it executed.
///
/// Checks, per node:
/// 1. **phase protocol** — the send span opens and closes exactly once,
///    strictly before the update span; send events occur only inside
///    the send span and receive events only inside the update span;
///    compiled interior/boundary run completions occur only inside the
///    update span, and a boundary run may not complete before the
///    receives it depends on have been consumed (running count);
/// 2. **sends vs plan** — vectorized packets appear in the plan's exact
///    wire order with the planned run length and modeled byte size
///    (`16 + 8·elems`); element-mode sends (24 modeled bytes each)
///    match the plan's expansion as a multiset;
/// 3. **receives vs plan** — the consumed remote operands equal the
///    plan's incoming expansion exactly (every planned element matched
///    by exactly one receive — "every send matched by a recv");
/// 4. **reliability budget** — NACKs from `d` to `s` never exceed
///    `max_retries` per awaited element; retransmits from `s` to `d`
///    never exceed `nacks(d→s) × packets(s→d)` (a go-back-N resend
///    services one NACK with at most the retained window); zero NACKs
///    when retries are disabled.
pub fn replay_check(
    log: &TraceLog,
    plan: &SpmdPlan,
    mode: CommMode,
    retry: RetryPolicy,
) -> Result<ReplaySummary, ReplayError> {
    let pmax = plan.pmax as usize;
    let mut summary = ReplaySummary {
        nodes: pmax as u64,
        ..ReplaySummary::default()
    };

    // split the deterministic stream per node, preserving (node, t) order
    let mut per_node: Vec<Vec<&EventKind>> = vec![Vec::new(); pmax];
    for e in log.deterministic() {
        summary.det_events += 1;
        if e.node >= 0 && (e.node as usize) < pmax {
            per_node[e.node as usize].push(&e.kind);
        }
    }

    for (p, events) in per_node.iter().enumerate() {
        let node = p as i64;
        // ---- rule 1: phase protocol ---------------------------------
        #[derive(PartialEq, Clone, Copy)]
        enum St {
            BeforeSend,
            InSend,
            BetweenPhases,
            InUpdate,
            AfterUpdate,
        }
        let mut st = St::BeforeSend;
        let mut sends: Vec<(i64, usize, i64)> = Vec::new();
        let mut packets: Vec<(i64, usize, u64, u64)> = Vec::new();
        let mut recvs: Vec<(i64, usize, i64)> = Vec::new();
        // rule 1b bookkeeping: receives consumed so far vs receives the
        // completed boundary runs claim to have depended on
        let mut recv_seen: u64 = 0;
        let mut boundary_recvs: u64 = 0;
        for kind in events {
            match kind {
                EventKind::PhaseStart(Phase::Send) => {
                    if st != St::BeforeSend {
                        return Err(ReplayError::Phase {
                            node,
                            why: "send span opened twice or out of order".into(),
                        });
                    }
                    st = St::InSend;
                }
                EventKind::PhaseEnd(Phase::Send) => {
                    if st != St::InSend {
                        return Err(ReplayError::Phase {
                            node,
                            why: "send span closed while not open".into(),
                        });
                    }
                    st = St::BetweenPhases;
                }
                EventKind::PhaseStart(Phase::Update) => {
                    if st != St::BetweenPhases {
                        return Err(ReplayError::Phase {
                            node,
                            why: "update span must follow the closed send span".into(),
                        });
                    }
                    st = St::InUpdate;
                }
                EventKind::PhaseEnd(Phase::Update) => {
                    if st != St::InUpdate {
                        return Err(ReplayError::Phase {
                            node,
                            why: "update span closed while not open".into(),
                        });
                    }
                    st = St::AfterUpdate;
                }
                EventKind::ElemSend { dst, slot, i } => {
                    if st != St::InSend {
                        return Err(ReplayError::Phase {
                            node,
                            why: format!("element send (i={i}) outside the send span"),
                        });
                    }
                    sends.push((*dst, *slot, *i));
                }
                EventKind::PackSend {
                    dst,
                    run,
                    elems,
                    bytes,
                } => {
                    if st != St::InSend {
                        return Err(ReplayError::Phase {
                            node,
                            why: format!("packet send (dst={dst}) outside the send span"),
                        });
                    }
                    packets.push((*dst, *run, *elems, *bytes));
                }
                EventKind::RecvValue { src, slot, i } => {
                    if st != St::InUpdate {
                        return Err(ReplayError::Phase {
                            node,
                            why: format!("receive (i={i}) outside the update span"),
                        });
                    }
                    recv_seen += 1;
                    recvs.push((*src, *slot, *i));
                }
                EventKind::InteriorRun { run, .. } if st != St::InUpdate => {
                    return Err(ReplayError::Phase {
                        node,
                        why: format!("interior run {run} outside the update span"),
                    });
                }
                EventKind::BoundaryRun {
                    run, recvs: need, ..
                } => {
                    if st != St::InUpdate {
                        return Err(ReplayError::Phase {
                            node,
                            why: format!("boundary run {run} outside the update span"),
                        });
                    }
                    // a boundary run can only complete after consuming
                    // its remote operands: the running receive count
                    // must cover every completed boundary run's claim
                    boundary_recvs += need;
                    if recv_seen < boundary_recvs {
                        return Err(ReplayError::Phase {
                            node,
                            why: format!(
                                "boundary run {run} completed after {recv_seen} receives but the completed boundary runs required {boundary_recvs}"
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
        let ran = st != St::BeforeSend;
        if ran && st != St::AfterUpdate && st != St::BetweenPhases {
            return Err(ReplayError::Phase {
                node,
                why: "a span was left open at end of trace".into(),
            });
        }
        if !ran && (!sends.is_empty() || !packets.is_empty() || !recvs.is_empty()) {
            return Err(ReplayError::Phase {
                node,
                why: "traffic recorded without phase spans".into(),
            });
        }
        if !ran {
            continue; // node absent from the trace (plan-only log)
        }

        // ---- rule 2: sends vs plan ----------------------------------
        match mode {
            CommMode::Vectorized => {
                if !sends.is_empty() {
                    return Err(ReplayError::Send {
                        node,
                        why: "element sends in a vectorized trace".into(),
                    });
                }
                let want = planned_packets(plan, p);
                if packets.len() != want.len() {
                    return Err(ReplayError::Send {
                        node,
                        why: format!("{} packets traced, plan has {}", packets.len(), want.len()),
                    });
                }
                for (got, want) in packets.iter().zip(&want) {
                    let (dst, run, elems, bytes) = *got;
                    let (wdst, wrun, _slot, welems, wbytes) = *want;
                    if dst != wdst || run != wrun {
                        return Err(ReplayError::Send {
                            node,
                            why: format!(
                                "packet order: traced (dst={dst}, run={run}), plan (dst={wdst}, run={wrun})"
                            ),
                        });
                    }
                    if elems != welems || bytes != wbytes {
                        return Err(ReplayError::Send {
                            node,
                            why: format!(
                                "packet (dst={dst}, run={run}): traced {elems} elems / {bytes} B, plan {welems} elems / {wbytes} B"
                            ),
                        });
                    }
                    summary.send_elems += elems;
                }
            }
            CommMode::Element => {
                if !packets.is_empty() {
                    return Err(ReplayError::Send {
                        node,
                        why: "vector packets in an element-mode trace".into(),
                    });
                }
                let want = planned_send_elems(plan, p);
                sends.sort_unstable();
                if sends != want {
                    return Err(ReplayError::Send {
                        node,
                        why: format!(
                            "{} element sends traced, plan expands to {}",
                            sends.len(),
                            want.len()
                        ),
                    });
                }
                summary.send_elems += sends.len() as u64;
            }
        }

        // ---- rule 3: receives vs plan -------------------------------
        let want = planned_recv_elems(plan, p);
        recvs.sort_unstable();
        if recvs != want {
            return Err(ReplayError::Recv {
                node,
                why: format!(
                    "{} receives traced, plan expands to {} incoming elements",
                    recvs.len(),
                    want.len()
                ),
            });
        }
        summary.recv_elems += recvs.len() as u64;
    }

    // ---- rule 4: reliability budget (full stream) -------------------
    // nacks[d][s] = NACKs d sent to s; retransmits[s][d] likewise
    let mut nacks = vec![vec![0u64; pmax]; pmax];
    let mut retransmits = vec![vec![0u64; pmax]; pmax];
    for e in &log.events {
        let from = e.node;
        if from < 0 || from as usize >= pmax {
            continue;
        }
        match &e.kind {
            EventKind::Nack { peer } => {
                summary.nacks += 1;
                if *peer >= 0 && (*peer as usize) < pmax {
                    nacks[from as usize][*peer as usize] += 1;
                }
            }
            EventKind::Retransmit { dst } => {
                summary.retransmits += 1;
                if *dst >= 0 && (*dst as usize) < pmax {
                    retransmits[from as usize][*dst as usize] += 1;
                }
            }
            _ => {}
        }
    }
    for d in 0..pmax {
        for s in 0..pmax {
            if retry.max_retries == 0 && nacks[d][s] > 0 {
                return Err(ReplayError::Budget {
                    node: d as i64,
                    why: format!("{} NACKs to node {s} with retries disabled", nacks[d][s]),
                });
            }
            // a receiver only NACKs while awaiting a planned value: at
            // most max_retries per awaited element
            let awaited: u64 = plan.nodes[d]
                .comm
                .recvs
                .iter()
                .filter(|pc| pc.peer as usize == s)
                .map(|pc| pc.elems())
                .sum();
            let nack_cap = u64::from(retry.max_retries) * awaited;
            if nacks[d][s] > nack_cap {
                return Err(ReplayError::Budget {
                    node: d as i64,
                    why: format!(
                        "{} NACKs to node {s}, budget {nack_cap} ({awaited} awaited × {} retries)",
                        nacks[d][s], retry.max_retries
                    ),
                });
            }
            // a go-back-N resend services one NACK with at most the
            // whole retained window (all data packets of the flow)
            let sends_to_d = |pc: &&vcal_spmd::PairComm| pc.peer as usize == d;
            let packets: u64 = plan.nodes[s]
                .comm
                .sends
                .iter()
                .filter(sends_to_d)
                .map(|pc| pc.runs.len() as u64)
                .sum();
            let elems: u64 = plan.nodes[s]
                .comm
                .sends
                .iter()
                .filter(sends_to_d)
                .map(|pc| pc.elems())
                .sum();
            let window = match mode {
                CommMode::Vectorized => packets,
                CommMode::Element => elems,
            };
            if retransmits[s][d] > nacks[d][s] * window {
                return Err(ReplayError::Budget {
                    node: s as i64,
                    why: format!(
                        "{} retransmits to node {d}, budget {} ({} NACKs × window {window})",
                        retransmits[s][d],
                        nacks[d][s] * window,
                        nacks[d][s]
                    ),
                });
            }
        }
    }
    Ok(summary)
}

/// Re-validate a program-level DAG schedule against its dependency DAG.
///
/// Walks the host-side deterministic events of a
/// [`crate::session::DistSession::run_program`] trace and checks, per
/// scheduling round (one pass over the whole program):
///
/// 1. a `clause_begin` for step `s` is preceded by a `dag_ready` for
///    `s` in the same round — the scheduler announced the step before
///    dispatching it;
/// 2. a `clause_begin` for step `s` occurs only after a `clause_end`
///    for **every** DAG predecessor of `s` in the same round — no
///    clause starts before the steps it depends on have committed;
/// 3. no step begins or ends twice in a round, no step ends without
///    beginning, and every begun step has ended by the end of the
///    trace.
///
/// Rounds are implicit: when every begun step has ended and a step
/// that already ran this round is announced again, a new round starts.
/// Any violation is a forged or reordered schedule and is reported as
/// [`ReplayError::Phase`] on [`HOST`].
pub fn replay_check_dag(
    log: &TraceLog,
    dag: &vcal_spmd::ProgramDag,
) -> Result<ReplaySummary, ReplayError> {
    let n = dag.steps;
    let mut summary = ReplaySummary::default();
    let err = |why: String| ReplayError::Phase { node: HOST, why };

    let mut ready = vec![false; n]; // dag_ready seen this round
    let mut begun = vec![false; n];
    let mut ended = vec![false; n];
    let mut open = 0usize; // begun but not yet ended
    let mut done = 0usize; // ended this round
    for e in log.deterministic() {
        if e.node != HOST {
            continue;
        }
        summary.det_events += 1;
        match &e.kind {
            EventKind::DagReady { step } => {
                let s = *step;
                if s >= n {
                    return Err(err(format!("dag_ready for step {s}, program has {n}")));
                }
                if ready[s] {
                    // a step is announced once per round: a repeat
                    // marks the next round, which may only start once
                    // the current one has fully drained
                    if open > 0 || done < n {
                        return Err(err(format!(
                            "dag_ready for step {s} repeated before the round completed"
                        )));
                    }
                    ready = vec![false; n];
                    begun = vec![false; n];
                    ended = vec![false; n];
                    done = 0;
                }
                ready[s] = true;
            }
            EventKind::ClauseBegin { step } => {
                let s = *step;
                if s >= n {
                    return Err(err(format!("clause_begin for step {s}, program has {n}")));
                }
                if !ready[s] {
                    return Err(err(format!(
                        "clause_begin for step {s} without a prior dag_ready"
                    )));
                }
                if begun[s] {
                    return Err(err(format!("clause_begin for step {s} repeated")));
                }
                for p in dag.preds_of(s) {
                    if !ended[p] {
                        return Err(err(format!(
                            "clause_begin for step {s} before its DAG predecessor {p} ended"
                        )));
                    }
                }
                begun[s] = true;
                open += 1;
            }
            EventKind::ClauseEnd { step } => {
                let s = *step;
                if s >= n {
                    return Err(err(format!("clause_end for step {s}, program has {n}")));
                }
                if !begun[s] {
                    return Err(err(format!("clause_end for step {s} that never began")));
                }
                if ended[s] {
                    return Err(err(format!("clause_end for step {s} repeated")));
                }
                ended[s] = true;
                open -= 1;
                done += 1;
            }
            _ => {}
        }
    }
    if open > 0 {
        return Err(err(format!("{open} clause(s) begun but never ended")));
    }
    Ok(summary)
}

/// A timer helper: measure a closure and report it to the tracer.
pub fn timed<R>(tracer: &dyn Tracer, node: i64, phase: Phase, f: impl FnOnce() -> R) -> R {
    if !tracer.enabled() {
        return f();
    }
    let t0 = std::time::Instant::now();
    let r = f();
    tracer.timing(node, phase, t0.elapsed());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clocks_are_per_node_and_per_class() {
        let tr = CollectingTracer::new();
        tr.record(0, EventKind::PhaseStart(Phase::Send));
        tr.record(1, EventKind::PhaseStart(Phase::Send));
        tr.record(0, EventKind::Ack { dst: 1 }); // aux class
        tr.record(0, EventKind::PhaseEnd(Phase::Send));
        let log = tr.finish();
        let det: Vec<_> = log.deterministic().collect();
        assert_eq!(det.len(), 3);
        // node 0's deterministic clock is 0, 1 — the interleaved Ack
        // advanced the aux clock, not the deterministic one
        assert_eq!((det[0].node, det[0].t), (0, 0));
        assert_eq!((det[1].node, det[1].t), (0, 1));
        assert_eq!((det[2].node, det[2].t), (1, 0));
        assert_eq!(log.reliability_events(), 1);
    }

    #[test]
    fn jsonl_is_sorted_and_excludes_aux() {
        let tr = CollectingTracer::new();
        tr.record(1, EventKind::PhaseStart(Phase::Send));
        tr.record(0, EventKind::Nack { peer: 1 });
        tr.record(0, EventKind::PhaseStart(Phase::Send));
        let log = tr.finish();
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"node\":0"), "{jsonl}");
        assert!(lines[1].contains("\"node\":1"), "{jsonl}");
        assert!(!jsonl.contains("nack"), "{jsonl}");
        assert!(log.to_jsonl_full().contains("nack"));
    }

    #[test]
    fn timings_never_enter_the_log_body() {
        let tr = CollectingTracer::new();
        tr.record(0, EventKind::PhaseStart(Phase::Update));
        tr.timing(0, Phase::Update, Duration::from_millis(3));
        let log = tr.finish();
        assert_eq!(log.timings.len(), 1);
        assert!(!log.to_jsonl_full().contains("nanos"));
        assert!(log.phase_totals()[&Phase::Update] >= Duration::from_millis(3));
    }

    #[test]
    fn null_tracer_is_disabled() {
        assert!(!NULL_TRACER.enabled());
        // record/timing are no-ops — just exercise them
        NULL_TRACER.record(0, EventKind::PhaseStart(Phase::Send));
        NULL_TRACER.timing(0, Phase::Send, Duration::ZERO);
    }
}
