//! DOACROSS pipelining for `•`-ordered clauses.
//!
//! The paper notes that interchanging parameter expressions under "more
//! complicated orderings" yields "DOACROSS-style synchronization
//! patterns" (Section 2.6) but does not elaborate. This module makes the
//! classic case executable: a first-order-style recurrence
//!
//! ```text
//! ∆(i ∈ (imin:imax)) • ([i](A) := Expr([i-d](A), [g(i)](B), ...))
//! ```
//!
//! with carried distances `d > 0`, block-decomposed `A`: each processor
//! runs its contiguous range *in order*, blocking only on the boundary
//! values owned by its predecessor — a software pipeline where processor
//! `p` starts as soon as the last `max(d)` values of `p-1` arrive,
//! instead of after `p-1` finishes everything.

use crate::darray::DistArray;
use crate::distributed::zero_part;
use crate::error::MachineError;
use crate::stats::{ExecReport, NodeStats};
use std::collections::{BTreeMap, HashMap};
use std::sync::mpsc::{channel as unbounded, Receiver, Sender};
use vcal_core::func::Fn1;
use vcal_core::{BinOp, Clause, CmpOp, Expr, Guard, Ordering};
use vcal_decomp::{Decomp1, Distribution};
use vcal_spmd::{CompiledKernel, SimdPolicy};

/// One deduplicated read access of the pipelined clause.
struct PipeSlot {
    array: String,
    g: Fn1,
    /// Whether this slot reads the recurrence array (and may therefore
    /// resolve through the predecessor halo instead of the local part).
    is_rec: bool,
}

/// The clause guard with its read slot resolved at plan time.
enum PipeGuard {
    Always,
    Cmp { slot: usize, op: CmpOp, rhs: f64 },
}

/// A value of the recurrence array crossing a block boundary.
#[derive(Debug, Clone, Copy)]
struct BoundaryMsg {
    /// Global index of the value.
    g: i64,
    /// The value.
    value: f64,
}

/// Carried-dependence analysis: the distances `d` at which the clause
/// reads its own output (`f = identity`, reads `A[i-d]` with `d >= 1`).
/// Returns `None` if the clause is not a forward recurrence of that
/// shape.
pub fn carried_distances(clause: &Clause) -> Option<Vec<i64>> {
    if clause.iter.dims() != 1 {
        return None;
    }
    if clause.lhs.map.as_fn1()? != &Fn1::identity() {
        return None;
    }
    let mut dists = Vec::new();
    for r in clause.read_refs() {
        if r.array != clause.lhs.array {
            continue;
        }
        match r.map.as_fn1()?.simplify() {
            Fn1::Affine { a: 1, c } if c < 0 => {
                if !dists.contains(&(-c)) {
                    dists.push(-c);
                }
            }
            _ => return None, // non-shift self-reference: not pipelinable
        }
    }
    if dists.is_empty() {
        None
    } else {
        dists.sort_unstable();
        Some(dists)
    }
}

/// Execute a `•` recurrence clause with DOACROSS pipelining.
///
/// Requirements (checked): carried distances per [`carried_distances`];
/// the recurrence array block-decomposed; every *other* read array
/// resident wherever it is needed (replicated, or block-decomposed with
/// an identity-like access that stays on-node — verified element-wise).
pub fn run_doacross(
    clause: &Clause,
    arrays: &mut BTreeMap<String, DistArray>,
) -> Result<ExecReport, MachineError> {
    run_doacross_with(clause, arrays, SimdPolicy::default())
}

/// Like [`run_doacross`], with an explicit [`SimdPolicy`] for API
/// uniformity with the SPMD machines. The carried dependence serializes
/// every element — lane parallelism would read values the pipeline has
/// not produced yet — so the tier always declines: the report's SIMD
/// census shows one fallback run per non-empty pipeline stage and zero
/// vector runs under every policy, and results are identical.
pub fn run_doacross_with(
    clause: &Clause,
    arrays: &mut BTreeMap<String, DistArray>,
    simd: SimdPolicy,
) -> Result<ExecReport, MachineError> {
    let _ = simd; // never vectorizes; see above
    if clause.ordering != Ordering::Seq {
        return Err(MachineError::PlanMismatch(
            "DOACROSS executes `•` clauses; use the SPMD machines for `//`".into(),
        ));
    }
    let dists = carried_distances(clause).ok_or_else(|| {
        MachineError::PlanMismatch(
            "clause is not a forward recurrence A[i] := Expr(A[i-d], ...)".into(),
        )
    })?;
    let Some(&max_d) = dists.last() else {
        return Err(MachineError::PlanMismatch(
            "recurrence has no carried distances".into(),
        ));
    };

    let rec_name = clause.lhs.array.clone();
    let rec = arrays
        .get(&rec_name)
        .ok_or_else(|| MachineError::UnknownArray(rec_name.clone()))?;
    let dec = rec.decomp().clone();
    if !matches!(dec.dist(), Distribution::Block { .. }) {
        return Err(MachineError::PlanMismatch(
            "DOACROSS pipelining requires a block decomposition of the recurrence array".into(),
        ));
    }
    let pmax = dec.pmax();
    if let Distribution::Block { b } = dec.dist() {
        if b < max_d {
            return Err(MachineError::PlanMismatch(format!(
                "carried distance {max_d} exceeds the block size {b}: values would \
                 cross more than one boundary"
            )));
        }
    }
    let (imin, imax) = (clause.iter.bounds.lo()[0], clause.iter.bounds.hi()[0]);

    // locality check for the non-recurrence reads
    for r in clause.read_refs() {
        if r.array == rec_name {
            continue;
        }
        let da = arrays
            .get(&r.array)
            .ok_or_else(|| MachineError::UnknownArray(r.array.clone()))?;
        let g = r
            .map
            .as_fn1()
            .ok_or_else(|| MachineError::PlanMismatch("1-D accesses only".into()))?;
        for i in imin..=imax {
            let owner = dec.proc_of(i);
            if !da.decomp().resides_on(g.eval(i), owner) {
                return Err(MachineError::PlanMismatch(format!(
                    "operand {}[{}] not local to the owner of iteration {i}; \
                     replicate it or align its decomposition",
                    r.array,
                    g.eval(i)
                )));
            }
        }
    }

    // compile the clause body once into flat postfix bytecode over the
    // deduplicated read slots — the pipeline's inner loop then gathers
    // operands (local part or predecessor halo) and runs the bytecode
    // instead of recursing through the `Expr` tree per element
    let mut slots: Vec<PipeSlot> = Vec::new();
    for r in clause.read_refs() {
        if let Some(g) = r.map.as_fn1() {
            if !slots.iter().any(|s| s.array == r.array && s.g == *g) {
                slots.push(PipeSlot {
                    array: r.array.clone(),
                    g: g.clone(),
                    is_rec: r.array == rec_name,
                });
            }
        }
    }
    let kernel = CompiledKernel::compile(&clause.rhs, slots.len(), |r| {
        let g = r.map.as_fn1()?;
        slots.iter().position(|s| s.array == r.array && s.g == *g)
    });
    let pguard: Option<PipeGuard> = match &clause.guard {
        Guard::Always => Some(PipeGuard::Always),
        Guard::Cmp { lhs, op, rhs } => lhs.map.as_fn1().and_then(|g| {
            slots
                .iter()
                .position(|s| s.array == lhs.array && s.g == *g)
                .map(|slot| PipeGuard::Cmp {
                    slot,
                    op: *op,
                    rhs: *rhs,
                })
        }),
    };
    // both the body and the guard must have resolved for the compiled
    // inner loop; otherwise the tree walker remains (naive fallback)
    let compiled = match (&kernel, &pguard) {
        (Some(k), Some(g)) => Some((k, g)),
        _ => None,
    };

    // disassemble
    let names: Vec<String> = arrays.keys().cloned().collect();
    let mut decomps: BTreeMap<String, Decomp1> = BTreeMap::new();
    let mut per_node: Vec<BTreeMap<String, Vec<f64>>> =
        (0..pmax).map(|_| BTreeMap::new()).collect();
    for (name, da) in std::mem::take(arrays) {
        decomps.insert(name.clone(), da.decomp().clone());
        let (_, parts) = da.into_parts();
        for (p, part) in parts.into_iter().enumerate() {
            per_node[p].insert(name.clone(), part);
        }
    }

    // successor channels: node p receives boundary values from p-1
    let mut txs: Vec<Option<Sender<BoundaryMsg>>> = Vec::new();
    let mut rxs: Vec<Option<Receiver<BoundaryMsg>>> = Vec::new();
    rxs.push(None); // node 0 has no predecessor
    for _ in 1..pmax {
        let (tx, rx) = unbounded();
        txs.push(Some(tx));
        rxs.push(Some(rx));
    }
    txs.push(None); // last node has no successor

    type DoacrossOutcome = (
        i64,
        BTreeMap<String, Vec<f64>>,
        NodeStats,
        Result<(), MachineError>,
    );
    let mut results: Vec<DoacrossOutcome> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (p, mut locals) in per_node.into_iter().enumerate() {
            let p = p as i64;
            let rx = rxs[p as usize].take();
            let tx = txs[p as usize].take();
            let dec = &dec;
            let decomps = &decomps;
            let rec_name = &rec_name;
            let dists = &dists;
            let slots = &slots;
            handles.push(scope.spawn(move || {
                let mut stats = NodeStats::default();
                let mut halo: HashMap<i64, f64> = HashMap::new();
                let mut vals = vec![0.0f64; slots.len()];
                let mut stack: Vec<f64> =
                    Vec::with_capacity(compiled.map_or(0, |(k, _)| k.stack_capacity()));
                let res = (|| -> Result<(), MachineError> {
                    // iteration sub-range owned by p
                    let my_cnt = dec.local_count(p);
                    let my_lo = if my_cnt > 0 { dec.global_of(p, 0) } else { 0 };
                    let my_hi = if my_cnt > 0 {
                        dec.global_of(p, my_cnt - 1)
                    } else {
                        -1
                    };
                    let lo = my_lo.max(imin);
                    let hi = my_hi.min(imax);
                    if lo <= hi {
                        // SIMD census: the stage's serial stretch is one
                        // scalar fallback run (carried dependence)
                        stats.simd_fallback_runs += 1;
                    }
                    // forward the *initial* (never-to-be-computed) values in
                    // the boundary window first, so the successor's earliest
                    // iterations can read pre-state data across the boundary.
                    if let (Some(tx), true) = (tx.as_ref(), my_cnt > 0) {
                        for g in (my_hi - max_d + 1).max(my_lo)..=my_hi {
                            if g < lo || g > hi {
                                let off = dec.local_of(g) as usize;
                                stats.msgs_sent += 1;
                                let _ = tx.send(BoundaryMsg {
                                    g,
                                    value: locals[rec_name][off],
                                });
                            }
                        }
                    }
                    for i in lo..=hi {
                        // gather carried operands
                        for &d in dists.iter() {
                            let src = i - d;
                            if src >= my_lo || src < dec.extent().lo()[0] {
                                continue; // local or out of array (guarded by caller)
                            }
                            if !halo.contains_key(&src) {
                                let rx = rx.as_ref().ok_or_else(|| {
                                    MachineError::PlanMismatch(format!(
                                        "node {p} needs predecessor values but has no \
                                         predecessor channel"
                                    ))
                                })?;
                                loop {
                                    let msg =
                                        rx.recv().map_err(|_| MachineError::PeerDisconnected {
                                            node: p,
                                            peer: p - 1,
                                        })?;
                                    stats.msgs_received += 1;
                                    halo.insert(msg.g, msg.value);
                                    if msg.g == src {
                                        break;
                                    }
                                }
                            }
                        }
                        // evaluate
                        stats.iterations += 1;
                        if let Some((kernel, pguard)) = compiled {
                            // compiled inner loop: gather each slot once
                            // (local part, or predecessor halo for
                            // carried reads), then run the bytecode
                            for (slot, ps) in slots.iter().enumerate() {
                                let g = ps.g.eval(i);
                                let dec_r = &decomps[&ps.array];
                                vals[slot] = if ps.is_rec && !dec_r.resides_on(g, p) {
                                    halo.get(&g).copied().ok_or_else(|| {
                                        MachineError::MissingMessage {
                                            node: p,
                                            array: ps.array.clone(),
                                            index: i,
                                        }
                                    })?
                                } else {
                                    locals[&ps.array][dec_r.local_of(g) as usize]
                                };
                            }
                            let guard_ok = match pguard {
                                PipeGuard::Always => true,
                                PipeGuard::Cmp { slot, op, rhs } => op.holds(vals[*slot], *rhs),
                            };
                            if guard_ok {
                                let v = kernel.eval(&[i], &vals, &mut stack);
                                let off = dec.local_of(i) as usize;
                                if let Some(rec) = locals.get_mut(rec_name) {
                                    rec[off] = v;
                                }
                            }
                        } else {
                            let guard_ok = eval_guard_local(
                                &clause.guard,
                                i,
                                p,
                                &locals,
                                decomps,
                                rec_name,
                                &halo,
                            )?;
                            if guard_ok {
                                let v = eval_local(
                                    &clause.rhs,
                                    i,
                                    p,
                                    &locals,
                                    decomps,
                                    rec_name,
                                    &halo,
                                )?;
                                let off = dec.local_of(i) as usize;
                                if let Some(rec) = locals.get_mut(rec_name) {
                                    rec[off] = v;
                                }
                            }
                        }
                        // forward boundary values the successor will need:
                        // successor's first max_d iterations read back to
                        // my_hi - max_d + 1.
                        if i > my_hi - max_d {
                            if let Some(tx) = tx.as_ref() {
                                let off = dec.local_of(i) as usize;
                                let value = locals[rec_name][off];
                                stats.msgs_sent += 1;
                                let _ = tx.send(BoundaryMsg { g: i, value });
                            }
                        }
                    }
                    Ok(())
                })();
                (p, locals, stats, res)
            }));
        }
        for (p, h) in handles.into_iter().enumerate() {
            // the supervisor: an escaped panic becomes a typed error,
            // never a host abort
            results.push(h.join().unwrap_or_else(|_| {
                (
                    p as i64,
                    BTreeMap::new(),
                    NodeStats::default(),
                    Err(MachineError::NodePanicked { node: p as i64 }),
                )
            }));
        }
    });
    results.sort_by_key(|(p, ..)| *p);

    // a panic (or the disconnect it causes downstream) is the root cause
    let mut first_err: Option<MachineError> = None;
    for (.., res) in &results {
        if let Err(e) = res {
            match (&first_err, e) {
                (None, _) => first_err = Some(e.clone()),
                (Some(MachineError::NodePanicked { .. }), _) => {}
                (Some(_), MachineError::NodePanicked { .. }) => first_err = Some(e.clone()),
                _ => {}
            }
        }
    }

    // reassemble even on error so the session keeps its arrays; the
    // pipeline mutates locals in place, so a failed run is reported as
    // a typed error over best-effort state, never a panic
    let mut report = ExecReport::default();
    let mut parts_by_name: BTreeMap<String, Vec<Vec<f64>>> = BTreeMap::new();
    for (p, mut locals, stats, _res) in results {
        for name in &names {
            let part = match locals.remove(name) {
                Some(part) => part,
                None => match zero_part(&decomps[name], p) {
                    Ok(part) => part,
                    Err(e) => {
                        // a negative local count is a plan-shape bug;
                        // surface it unless a node error already won
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                        Vec::new()
                    }
                },
            };
            parts_by_name.entry(name.clone()).or_default().push(part);
        }
        report.nodes.push(stats);
    }
    for (name, parts) in parts_by_name {
        let d = decomps[&name].clone();
        arrays.insert(name, DistArray::from_parts(d, parts));
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

#[allow(clippy::too_many_arguments)]
fn eval_local(
    e: &Expr,
    i: i64,
    p: i64,
    locals: &BTreeMap<String, Vec<f64>>,
    decomps: &BTreeMap<String, Decomp1>,
    rec_name: &str,
    halo: &HashMap<i64, f64>,
) -> Result<f64, MachineError> {
    match e {
        Expr::Ref(r) => {
            let g = r
                .map
                .as_fn1()
                .ok_or_else(|| {
                    MachineError::PlanMismatch(format!(
                        "read ref `{}` is not 1-D but the pipeline is",
                        r.array
                    ))
                })?
                .eval(i);
            let dec = &decomps[&r.array];
            if r.array == rec_name && !dec.resides_on(g, p) {
                halo.get(&g)
                    .copied()
                    .ok_or_else(|| MachineError::MissingMessage {
                        node: p,
                        array: r.array.clone(),
                        index: i,
                    })
            } else {
                Ok(locals[&r.array][dec.local_of(g) as usize])
            }
        }
        Expr::Lit(v) => Ok(*v),
        Expr::LoopVar { .. } => Ok(i as f64),
        Expr::Neg(inner) => Ok(-eval_local(inner, i, p, locals, decomps, rec_name, halo)?),
        Expr::Bin(op, a, b) => {
            let va = eval_local(a, i, p, locals, decomps, rec_name, halo)?;
            let vb = eval_local(b, i, p, locals, decomps, rec_name, halo)?;
            Ok(match op {
                BinOp::Add => va + vb,
                BinOp::Sub => va - vb,
                BinOp::Mul => va * vb,
                BinOp::Div => va / vb,
                BinOp::Min => va.min(vb),
                BinOp::Max => va.max(vb),
            })
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn eval_guard_local(
    g: &Guard,
    i: i64,
    p: i64,
    locals: &BTreeMap<String, Vec<f64>>,
    decomps: &BTreeMap<String, Decomp1>,
    rec_name: &str,
    halo: &HashMap<i64, f64>,
) -> Result<bool, MachineError> {
    match g {
        Guard::Always => Ok(true),
        Guard::Cmp { lhs, op, rhs } => {
            let v = eval_local(
                &Expr::Ref(lhs.clone()),
                i,
                p,
                locals,
                decomps,
                rec_name,
                halo,
            )?;
            Ok(op.holds(v, *rhs))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::{Array, ArrayRef, Bounds, Env, IndexSet};

    fn recurrence(n: i64, d: i64) -> Clause {
        // A[i] := A[i-d] + B[i]
        Clause {
            iter: IndexSet::range(d, n - 1),
            ordering: Ordering::Seq,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::add(
                Expr::Ref(ArrayRef::d1("A", Fn1::shift(-d))),
                Expr::Ref(ArrayRef::d1("B", Fn1::identity())),
            ),
        }
    }

    fn setup(n: i64, pmax: i64, d: i64) -> (Clause, Env, BTreeMap<String, DistArray>) {
        let clause = recurrence(n, d);
        let mut env = Env::new();
        env.insert(
            "A",
            Array::from_fn(Bounds::range(0, n - 1), |i| (i.scalar() % 5) as f64),
        );
        env.insert(
            "B",
            Array::from_fn(Bounds::range(0, n - 1), |i| 0.5 * i.scalar() as f64),
        );
        let dec = Decomp1::block(pmax, Bounds::range(0, n - 1));
        let mut arrays = BTreeMap::new();
        for name in ["A", "B"] {
            arrays.insert(
                name.to_string(),
                DistArray::scatter_from(env.get(name).unwrap(), dec.clone()),
            );
        }
        (clause, env, arrays)
    }

    #[test]
    fn carried_distance_analysis() {
        assert_eq!(carried_distances(&recurrence(10, 1)), Some(vec![1]));
        assert_eq!(carried_distances(&recurrence(10, 3)), Some(vec![3]));
        // non-recurrence: no self read
        let c = Clause {
            iter: IndexSet::range(0, 9),
            ordering: Ordering::Seq,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("B", Fn1::identity())),
        };
        assert_eq!(carried_distances(&c), None);
        // backward dependence (i+1): not a forward recurrence
        let c = Clause {
            iter: IndexSet::range(0, 8),
            ordering: Ordering::Seq,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("A", Fn1::shift(1))),
        };
        assert_eq!(carried_distances(&c), None);
    }

    #[test]
    fn pipeline_matches_sequential_reference() {
        for (n, pmax, d) in [(64i64, 4i64, 1i64), (63, 4, 2), (40, 8, 3), (32, 1, 1)] {
            let (clause, env, mut arrays) = setup(n, pmax, d);
            let mut reference = env.clone();
            reference.exec_clause(&clause);
            let report = run_doacross(&clause, &mut arrays)
                .unwrap_or_else(|e| panic!("n={n} pmax={pmax} d={d}: {e}"));
            assert_eq!(
                arrays["A"]
                    .gather()
                    .max_abs_diff(reference.get("A").unwrap()),
                0.0,
                "n={n} pmax={pmax} d={d}"
            );
            assert_eq!(report.total().iterations, (n - d) as u64);
        }
    }

    #[test]
    fn boundary_messages_are_minimal() {
        let (clause, _, mut arrays) = setup(64, 4, 1);
        let report = run_doacross(&clause, &mut arrays).unwrap();
        // each of the 3 interior boundaries carries d = 1 value
        assert_eq!(report.total().msgs_received, 3);
    }

    #[test]
    fn guarded_recurrence() {
        // running sum only over positive B values
        let n = 48;
        let clause = Clause {
            iter: IndexSet::range(1, n - 1),
            ordering: Ordering::Seq,
            guard: Guard::Cmp {
                lhs: ArrayRef::d1("B", Fn1::identity()),
                op: vcal_core::CmpOp::Gt,
                rhs: 10.0,
            },
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::add(Expr::Ref(ArrayRef::d1("A", Fn1::shift(-1))), Expr::Lit(1.0)),
        };
        let mut env = Env::new();
        env.insert("A", Array::zeros(Bounds::range(0, n - 1)));
        env.insert(
            "B",
            Array::from_fn(Bounds::range(0, n - 1), |i| i.scalar() as f64),
        );
        let dec = Decomp1::block(4, Bounds::range(0, n - 1));
        let mut arrays = BTreeMap::new();
        for name in ["A", "B"] {
            arrays.insert(
                name.to_string(),
                DistArray::scatter_from(env.get(name).unwrap(), dec.clone()),
            );
        }
        let mut reference = env.clone();
        reference.exec_clause(&clause);
        run_doacross(&clause, &mut arrays).unwrap();
        assert_eq!(
            arrays["A"]
                .gather()
                .max_abs_diff(reference.get("A").unwrap()),
            0.0
        );
    }

    #[test]
    fn rejects_parallel_clause_and_bad_layouts() {
        let (mut clause, env, mut arrays) = setup(32, 4, 1);
        clause.ordering = Ordering::Par;
        assert!(matches!(
            run_doacross(&clause, &mut arrays),
            Err(MachineError::PlanMismatch(_))
        ));
        clause.ordering = Ordering::Seq;
        // scatter layout of the recurrence array is rejected
        let dec = Decomp1::scatter(4, Bounds::range(0, 31));
        let mut arrays2 = BTreeMap::new();
        for name in ["A", "B"] {
            arrays2.insert(
                name.to_string(),
                DistArray::scatter_from(env.get(name).unwrap(), dec.clone()),
            );
        }
        assert!(matches!(
            run_doacross(&clause, &mut arrays2),
            Err(MachineError::PlanMismatch(_))
        ));
    }

    #[test]
    fn misaligned_operand_rejected() {
        let (clause, env, _) = setup(32, 4, 1);
        let mut arrays = BTreeMap::new();
        arrays.insert(
            "A".to_string(),
            DistArray::scatter_from(
                env.get("A").unwrap(),
                Decomp1::block(4, Bounds::range(0, 31)),
            ),
        );
        arrays.insert(
            "B".to_string(),
            DistArray::scatter_from(
                env.get("B").unwrap(),
                Decomp1::scatter(4, Bounds::range(0, 31)),
            ),
        );
        assert!(matches!(
            run_doacross(&clause, &mut arrays),
            Err(MachineError::PlanMismatch(_))
        ));
    }
}
